# Empty compiler generated dependencies file for morphling_sim.
# This may be replaced when dependencies are built.
