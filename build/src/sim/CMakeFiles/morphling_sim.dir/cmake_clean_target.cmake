file(REMOVE_RECURSE
  "libmorphling_sim.a"
)
