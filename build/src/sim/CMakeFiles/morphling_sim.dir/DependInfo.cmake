
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dma.cc" "src/sim/CMakeFiles/morphling_sim.dir/dma.cc.o" "gcc" "src/sim/CMakeFiles/morphling_sim.dir/dma.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/morphling_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/morphling_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/hbm.cc" "src/sim/CMakeFiles/morphling_sim.dir/hbm.cc.o" "gcc" "src/sim/CMakeFiles/morphling_sim.dir/hbm.cc.o.d"
  "/root/repo/src/sim/noc.cc" "src/sim/CMakeFiles/morphling_sim.dir/noc.cc.o" "gcc" "src/sim/CMakeFiles/morphling_sim.dir/noc.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/morphling_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/morphling_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/morphling_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/morphling_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/morphling_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
