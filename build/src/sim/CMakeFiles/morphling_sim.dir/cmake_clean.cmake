file(REMOVE_RECURSE
  "CMakeFiles/morphling_sim.dir/dma.cc.o"
  "CMakeFiles/morphling_sim.dir/dma.cc.o.d"
  "CMakeFiles/morphling_sim.dir/event_queue.cc.o"
  "CMakeFiles/morphling_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/morphling_sim.dir/hbm.cc.o"
  "CMakeFiles/morphling_sim.dir/hbm.cc.o.d"
  "CMakeFiles/morphling_sim.dir/noc.cc.o"
  "CMakeFiles/morphling_sim.dir/noc.cc.o.d"
  "CMakeFiles/morphling_sim.dir/stats.cc.o"
  "CMakeFiles/morphling_sim.dir/stats.cc.o.d"
  "CMakeFiles/morphling_sim.dir/trace.cc.o"
  "CMakeFiles/morphling_sim.dir/trace.cc.o.d"
  "libmorphling_sim.a"
  "libmorphling_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphling_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
