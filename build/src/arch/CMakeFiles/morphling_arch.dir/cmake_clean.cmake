file(REMOVE_RECURSE
  "CMakeFiles/morphling_arch.dir/accelerator.cc.o"
  "CMakeFiles/morphling_arch.dir/accelerator.cc.o.d"
  "CMakeFiles/morphling_arch.dir/analysis.cc.o"
  "CMakeFiles/morphling_arch.dir/analysis.cc.o.d"
  "CMakeFiles/morphling_arch.dir/area_power.cc.o"
  "CMakeFiles/morphling_arch.dir/area_power.cc.o.d"
  "CMakeFiles/morphling_arch.dir/buffers.cc.o"
  "CMakeFiles/morphling_arch.dir/buffers.cc.o.d"
  "CMakeFiles/morphling_arch.dir/config.cc.o"
  "CMakeFiles/morphling_arch.dir/config.cc.o.d"
  "CMakeFiles/morphling_arch.dir/fft_unit.cc.o"
  "CMakeFiles/morphling_arch.dir/fft_unit.cc.o.d"
  "CMakeFiles/morphling_arch.dir/functional/functional_xpu.cc.o"
  "CMakeFiles/morphling_arch.dir/functional/functional_xpu.cc.o.d"
  "CMakeFiles/morphling_arch.dir/functional/ms_fft.cc.o"
  "CMakeFiles/morphling_arch.dir/functional/ms_fft.cc.o.d"
  "CMakeFiles/morphling_arch.dir/functional/vpe.cc.o"
  "CMakeFiles/morphling_arch.dir/functional/vpe.cc.o.d"
  "CMakeFiles/morphling_arch.dir/hw_scheduler.cc.o"
  "CMakeFiles/morphling_arch.dir/hw_scheduler.cc.o.d"
  "CMakeFiles/morphling_arch.dir/rotator.cc.o"
  "CMakeFiles/morphling_arch.dir/rotator.cc.o.d"
  "CMakeFiles/morphling_arch.dir/timing.cc.o"
  "CMakeFiles/morphling_arch.dir/timing.cc.o.d"
  "CMakeFiles/morphling_arch.dir/vpu.cc.o"
  "CMakeFiles/morphling_arch.dir/vpu.cc.o.d"
  "CMakeFiles/morphling_arch.dir/xpu.cc.o"
  "CMakeFiles/morphling_arch.dir/xpu.cc.o.d"
  "libmorphling_arch.a"
  "libmorphling_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphling_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
