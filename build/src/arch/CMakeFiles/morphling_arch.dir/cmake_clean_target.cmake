file(REMOVE_RECURSE
  "libmorphling_arch.a"
)
