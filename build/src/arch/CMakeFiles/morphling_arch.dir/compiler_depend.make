# Empty compiler generated dependencies file for morphling_arch.
# This may be replaced when dependencies are built.
