
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accelerator.cc" "src/arch/CMakeFiles/morphling_arch.dir/accelerator.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/accelerator.cc.o.d"
  "/root/repo/src/arch/analysis.cc" "src/arch/CMakeFiles/morphling_arch.dir/analysis.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/analysis.cc.o.d"
  "/root/repo/src/arch/area_power.cc" "src/arch/CMakeFiles/morphling_arch.dir/area_power.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/area_power.cc.o.d"
  "/root/repo/src/arch/buffers.cc" "src/arch/CMakeFiles/morphling_arch.dir/buffers.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/buffers.cc.o.d"
  "/root/repo/src/arch/config.cc" "src/arch/CMakeFiles/morphling_arch.dir/config.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/config.cc.o.d"
  "/root/repo/src/arch/fft_unit.cc" "src/arch/CMakeFiles/morphling_arch.dir/fft_unit.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/fft_unit.cc.o.d"
  "/root/repo/src/arch/functional/functional_xpu.cc" "src/arch/CMakeFiles/morphling_arch.dir/functional/functional_xpu.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/functional/functional_xpu.cc.o.d"
  "/root/repo/src/arch/functional/ms_fft.cc" "src/arch/CMakeFiles/morphling_arch.dir/functional/ms_fft.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/functional/ms_fft.cc.o.d"
  "/root/repo/src/arch/functional/vpe.cc" "src/arch/CMakeFiles/morphling_arch.dir/functional/vpe.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/functional/vpe.cc.o.d"
  "/root/repo/src/arch/hw_scheduler.cc" "src/arch/CMakeFiles/morphling_arch.dir/hw_scheduler.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/hw_scheduler.cc.o.d"
  "/root/repo/src/arch/rotator.cc" "src/arch/CMakeFiles/morphling_arch.dir/rotator.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/rotator.cc.o.d"
  "/root/repo/src/arch/timing.cc" "src/arch/CMakeFiles/morphling_arch.dir/timing.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/timing.cc.o.d"
  "/root/repo/src/arch/vpu.cc" "src/arch/CMakeFiles/morphling_arch.dir/vpu.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/vpu.cc.o.d"
  "/root/repo/src/arch/xpu.cc" "src/arch/CMakeFiles/morphling_arch.dir/xpu.cc.o" "gcc" "src/arch/CMakeFiles/morphling_arch.dir/xpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/morphling_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/morphling_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tfhe/CMakeFiles/morphling_tfhe.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/morphling_compiler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
