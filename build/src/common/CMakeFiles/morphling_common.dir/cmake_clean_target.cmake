file(REMOVE_RECURSE
  "libmorphling_common.a"
)
