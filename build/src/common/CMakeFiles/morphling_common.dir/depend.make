# Empty dependencies file for morphling_common.
# This may be replaced when dependencies are built.
