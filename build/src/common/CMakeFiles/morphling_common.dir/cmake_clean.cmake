file(REMOVE_RECURSE
  "CMakeFiles/morphling_common.dir/logging.cc.o"
  "CMakeFiles/morphling_common.dir/logging.cc.o.d"
  "CMakeFiles/morphling_common.dir/rng.cc.o"
  "CMakeFiles/morphling_common.dir/rng.cc.o.d"
  "CMakeFiles/morphling_common.dir/table.cc.o"
  "CMakeFiles/morphling_common.dir/table.cc.o.d"
  "libmorphling_common.a"
  "libmorphling_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphling_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
