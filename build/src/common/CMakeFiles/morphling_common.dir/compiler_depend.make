# Empty compiler generated dependencies file for morphling_common.
# This may be replaced when dependencies are built.
