file(REMOVE_RECURSE
  "CMakeFiles/morphling_tfhe.dir/batch.cc.o"
  "CMakeFiles/morphling_tfhe.dir/batch.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/bootstrap.cc.o"
  "CMakeFiles/morphling_tfhe.dir/bootstrap.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/encoding.cc.o"
  "CMakeFiles/morphling_tfhe.dir/encoding.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/fft.cc.o"
  "CMakeFiles/morphling_tfhe.dir/fft.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/ggsw.cc.o"
  "CMakeFiles/morphling_tfhe.dir/ggsw.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/glwe.cc.o"
  "CMakeFiles/morphling_tfhe.dir/glwe.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/keyset.cc.o"
  "CMakeFiles/morphling_tfhe.dir/keyset.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/lwe.cc.o"
  "CMakeFiles/morphling_tfhe.dir/lwe.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/noise.cc.o"
  "CMakeFiles/morphling_tfhe.dir/noise.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/opcount.cc.o"
  "CMakeFiles/morphling_tfhe.dir/opcount.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/params.cc.o"
  "CMakeFiles/morphling_tfhe.dir/params.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/polynomial.cc.o"
  "CMakeFiles/morphling_tfhe.dir/polynomial.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/radix.cc.o"
  "CMakeFiles/morphling_tfhe.dir/radix.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/serialize.cc.o"
  "CMakeFiles/morphling_tfhe.dir/serialize.cc.o.d"
  "CMakeFiles/morphling_tfhe.dir/torus.cc.o"
  "CMakeFiles/morphling_tfhe.dir/torus.cc.o.d"
  "libmorphling_tfhe.a"
  "libmorphling_tfhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphling_tfhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
