file(REMOVE_RECURSE
  "libmorphling_tfhe.a"
)
