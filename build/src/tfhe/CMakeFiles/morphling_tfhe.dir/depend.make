# Empty dependencies file for morphling_tfhe.
# This may be replaced when dependencies are built.
