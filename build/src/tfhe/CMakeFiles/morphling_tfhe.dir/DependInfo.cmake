
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tfhe/batch.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/batch.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/batch.cc.o.d"
  "/root/repo/src/tfhe/bootstrap.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/bootstrap.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/bootstrap.cc.o.d"
  "/root/repo/src/tfhe/encoding.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/encoding.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/encoding.cc.o.d"
  "/root/repo/src/tfhe/fft.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/fft.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/fft.cc.o.d"
  "/root/repo/src/tfhe/ggsw.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/ggsw.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/ggsw.cc.o.d"
  "/root/repo/src/tfhe/glwe.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/glwe.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/glwe.cc.o.d"
  "/root/repo/src/tfhe/keyset.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/keyset.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/keyset.cc.o.d"
  "/root/repo/src/tfhe/lwe.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/lwe.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/lwe.cc.o.d"
  "/root/repo/src/tfhe/noise.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/noise.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/noise.cc.o.d"
  "/root/repo/src/tfhe/opcount.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/opcount.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/opcount.cc.o.d"
  "/root/repo/src/tfhe/params.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/params.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/params.cc.o.d"
  "/root/repo/src/tfhe/polynomial.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/polynomial.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/polynomial.cc.o.d"
  "/root/repo/src/tfhe/radix.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/radix.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/radix.cc.o.d"
  "/root/repo/src/tfhe/serialize.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/serialize.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/serialize.cc.o.d"
  "/root/repo/src/tfhe/torus.cc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/torus.cc.o" "gcc" "src/tfhe/CMakeFiles/morphling_tfhe.dir/torus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/morphling_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
