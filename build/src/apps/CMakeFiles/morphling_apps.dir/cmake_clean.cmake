file(REMOVE_RECURSE
  "CMakeFiles/morphling_apps.dir/circuit.cc.o"
  "CMakeFiles/morphling_apps.dir/circuit.cc.o.d"
  "CMakeFiles/morphling_apps.dir/cpu_cost_model.cc.o"
  "CMakeFiles/morphling_apps.dir/cpu_cost_model.cc.o.d"
  "CMakeFiles/morphling_apps.dir/quantized_mlp.cc.o"
  "CMakeFiles/morphling_apps.dir/quantized_mlp.cc.o.d"
  "CMakeFiles/morphling_apps.dir/workloads.cc.o"
  "CMakeFiles/morphling_apps.dir/workloads.cc.o.d"
  "CMakeFiles/morphling_apps.dir/xgboost_model.cc.o"
  "CMakeFiles/morphling_apps.dir/xgboost_model.cc.o.d"
  "libmorphling_apps.a"
  "libmorphling_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphling_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
