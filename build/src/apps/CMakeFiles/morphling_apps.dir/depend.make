# Empty dependencies file for morphling_apps.
# This may be replaced when dependencies are built.
