
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/circuit.cc" "src/apps/CMakeFiles/morphling_apps.dir/circuit.cc.o" "gcc" "src/apps/CMakeFiles/morphling_apps.dir/circuit.cc.o.d"
  "/root/repo/src/apps/cpu_cost_model.cc" "src/apps/CMakeFiles/morphling_apps.dir/cpu_cost_model.cc.o" "gcc" "src/apps/CMakeFiles/morphling_apps.dir/cpu_cost_model.cc.o.d"
  "/root/repo/src/apps/quantized_mlp.cc" "src/apps/CMakeFiles/morphling_apps.dir/quantized_mlp.cc.o" "gcc" "src/apps/CMakeFiles/morphling_apps.dir/quantized_mlp.cc.o.d"
  "/root/repo/src/apps/workloads.cc" "src/apps/CMakeFiles/morphling_apps.dir/workloads.cc.o" "gcc" "src/apps/CMakeFiles/morphling_apps.dir/workloads.cc.o.d"
  "/root/repo/src/apps/xgboost_model.cc" "src/apps/CMakeFiles/morphling_apps.dir/xgboost_model.cc.o" "gcc" "src/apps/CMakeFiles/morphling_apps.dir/xgboost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/morphling_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tfhe/CMakeFiles/morphling_tfhe.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/morphling_compiler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
