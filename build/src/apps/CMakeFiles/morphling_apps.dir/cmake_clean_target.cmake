file(REMOVE_RECURSE
  "libmorphling_apps.a"
)
