# Empty dependencies file for morphling_compiler.
# This may be replaced when dependencies are built.
