file(REMOVE_RECURSE
  "libmorphling_compiler.a"
)
