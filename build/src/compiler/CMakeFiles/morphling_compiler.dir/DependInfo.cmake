
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/isa.cc" "src/compiler/CMakeFiles/morphling_compiler.dir/isa.cc.o" "gcc" "src/compiler/CMakeFiles/morphling_compiler.dir/isa.cc.o.d"
  "/root/repo/src/compiler/program.cc" "src/compiler/CMakeFiles/morphling_compiler.dir/program.cc.o" "gcc" "src/compiler/CMakeFiles/morphling_compiler.dir/program.cc.o.d"
  "/root/repo/src/compiler/sw_scheduler.cc" "src/compiler/CMakeFiles/morphling_compiler.dir/sw_scheduler.cc.o" "gcc" "src/compiler/CMakeFiles/morphling_compiler.dir/sw_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/morphling_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tfhe/CMakeFiles/morphling_tfhe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
