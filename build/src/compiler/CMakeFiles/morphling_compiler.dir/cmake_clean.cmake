file(REMOVE_RECURSE
  "CMakeFiles/morphling_compiler.dir/isa.cc.o"
  "CMakeFiles/morphling_compiler.dir/isa.cc.o.d"
  "CMakeFiles/morphling_compiler.dir/program.cc.o"
  "CMakeFiles/morphling_compiler.dir/program.cc.o.d"
  "CMakeFiles/morphling_compiler.dir/sw_scheduler.cc.o"
  "CMakeFiles/morphling_compiler.dir/sw_scheduler.cc.o.d"
  "libmorphling_compiler.a"
  "libmorphling_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphling_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
