file(REMOVE_RECURSE
  "CMakeFiles/test_multilut.dir/test_multilut.cc.o"
  "CMakeFiles/test_multilut.dir/test_multilut.cc.o.d"
  "test_multilut"
  "test_multilut.pdb"
  "test_multilut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
