# Empty dependencies file for test_multilut.
# This may be replaced when dependencies are built.
