file(REMOVE_RECURSE
  "CMakeFiles/test_hw_scheduler.dir/test_hw_scheduler.cc.o"
  "CMakeFiles/test_hw_scheduler.dir/test_hw_scheduler.cc.o.d"
  "test_hw_scheduler"
  "test_hw_scheduler.pdb"
  "test_hw_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
