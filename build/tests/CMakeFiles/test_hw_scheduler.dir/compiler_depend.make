# Empty compiler generated dependencies file for test_hw_scheduler.
# This may be replaced when dependencies are built.
