# Empty dependencies file for test_quantized_mlp.
# This may be replaced when dependencies are built.
