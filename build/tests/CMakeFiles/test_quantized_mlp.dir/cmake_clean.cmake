file(REMOVE_RECURSE
  "CMakeFiles/test_quantized_mlp.dir/test_quantized_mlp.cc.o"
  "CMakeFiles/test_quantized_mlp.dir/test_quantized_mlp.cc.o.d"
  "test_quantized_mlp"
  "test_quantized_mlp.pdb"
  "test_quantized_mlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantized_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
