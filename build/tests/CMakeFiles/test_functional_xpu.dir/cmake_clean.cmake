file(REMOVE_RECURSE
  "CMakeFiles/test_functional_xpu.dir/test_functional_xpu.cc.o"
  "CMakeFiles/test_functional_xpu.dir/test_functional_xpu.cc.o.d"
  "test_functional_xpu"
  "test_functional_xpu.pdb"
  "test_functional_xpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_xpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
