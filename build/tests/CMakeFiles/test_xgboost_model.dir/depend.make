# Empty dependencies file for test_xgboost_model.
# This may be replaced when dependencies are built.
