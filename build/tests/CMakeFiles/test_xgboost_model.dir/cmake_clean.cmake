file(REMOVE_RECURSE
  "CMakeFiles/test_xgboost_model.dir/test_xgboost_model.cc.o"
  "CMakeFiles/test_xgboost_model.dir/test_xgboost_model.cc.o.d"
  "test_xgboost_model"
  "test_xgboost_model.pdb"
  "test_xgboost_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xgboost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
