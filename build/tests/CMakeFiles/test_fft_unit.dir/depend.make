# Empty dependencies file for test_fft_unit.
# This may be replaced when dependencies are built.
