file(REMOVE_RECURSE
  "CMakeFiles/test_fft_unit.dir/test_fft_unit.cc.o"
  "CMakeFiles/test_fft_unit.dir/test_fft_unit.cc.o.d"
  "test_fft_unit"
  "test_fft_unit.pdb"
  "test_fft_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
