# Empty compiler generated dependencies file for test_opcount.
# This may be replaced when dependencies are built.
