# Empty compiler generated dependencies file for test_rotator.
# This may be replaced when dependencies are built.
