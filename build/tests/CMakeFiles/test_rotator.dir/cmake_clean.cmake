file(REMOVE_RECURSE
  "CMakeFiles/test_rotator.dir/test_rotator.cc.o"
  "CMakeFiles/test_rotator.dir/test_rotator.cc.o.d"
  "test_rotator"
  "test_rotator.pdb"
  "test_rotator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rotator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
