# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_gate_logic "/root/repo/build/examples/gate_logic")
set_tests_properties(example_gate_logic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_private_inference "/root/repo/build/examples/private_inference")
set_tests_properties(example_private_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_big_integers "/root/repo/build/examples/big_integers")
set_tests_properties(example_big_integers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_client_server "/root/repo/build/examples/client_server")
set_tests_properties(example_client_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xgboost_inference "/root/repo/build/examples/xgboost_inference")
set_tests_properties(example_xgboost_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_private_auction "/root/repo/build/examples/private_auction")
set_tests_properties(example_private_auction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_noise_budget "/root/repo/build/examples/noise_budget")
set_tests_properties(example_noise_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect_program "/root/repo/build/examples/inspect_program")
set_tests_properties(example_inspect_program PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
