# Empty compiler generated dependencies file for big_integers.
# This may be replaced when dependencies are built.
