file(REMOVE_RECURSE
  "CMakeFiles/big_integers.dir/big_integers.cpp.o"
  "CMakeFiles/big_integers.dir/big_integers.cpp.o.d"
  "big_integers"
  "big_integers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_integers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
