# Empty dependencies file for xgboost_inference.
# This may be replaced when dependencies are built.
