file(REMOVE_RECURSE
  "CMakeFiles/xgboost_inference.dir/xgboost_inference.cpp.o"
  "CMakeFiles/xgboost_inference.dir/xgboost_inference.cpp.o.d"
  "xgboost_inference"
  "xgboost_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgboost_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
