file(REMOVE_RECURSE
  "CMakeFiles/gate_logic.dir/gate_logic.cpp.o"
  "CMakeFiles/gate_logic.dir/gate_logic.cpp.o.d"
  "gate_logic"
  "gate_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
