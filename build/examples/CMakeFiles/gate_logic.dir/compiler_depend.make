# Empty compiler generated dependencies file for gate_logic.
# This may be replaced when dependencies are built.
