# Empty compiler generated dependencies file for bench_ablation_rotator.
# This may be replaced when dependencies are built.
