file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rotator.dir/bench_ablation_rotator.cc.o"
  "CMakeFiles/bench_ablation_rotator.dir/bench_ablation_rotator.cc.o.d"
  "bench_ablation_rotator"
  "bench_ablation_rotator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rotator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
