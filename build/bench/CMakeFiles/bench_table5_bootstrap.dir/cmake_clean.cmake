file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_bootstrap.dir/bench_table5_bootstrap.cc.o"
  "CMakeFiles/bench_table5_bootstrap.dir/bench_table5_bootstrap.cc.o.d"
  "bench_table5_bootstrap"
  "bench_table5_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
