# Empty dependencies file for bench_fig8b_xpu_sweep.
# This may be replaced when dependencies are built.
