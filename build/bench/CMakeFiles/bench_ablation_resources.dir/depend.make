# Empty dependencies file for bench_ablation_resources.
# This may be replaced when dependencies are built.
