# Empty dependencies file for bench_cpu_primitives.
# This may be replaced when dependencies are built.
