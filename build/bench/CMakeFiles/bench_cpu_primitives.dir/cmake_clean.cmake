file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_primitives.dir/bench_cpu_primitives.cc.o"
  "CMakeFiles/bench_cpu_primitives.dir/bench_cpu_primitives.cc.o.d"
  "bench_cpu_primitives"
  "bench_cpu_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
