file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multilut.dir/bench_ablation_multilut.cc.o"
  "CMakeFiles/bench_ablation_multilut.dir/bench_ablation_multilut.cc.o.d"
  "bench_ablation_multilut"
  "bench_ablation_multilut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multilut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
