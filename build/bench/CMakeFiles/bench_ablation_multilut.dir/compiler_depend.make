# Empty compiler generated dependencies file for bench_ablation_multilut.
# This may be replaced when dependencies are built.
