file(REMOVE_RECURSE
  "CMakeFiles/bench_functional_datapath.dir/bench_functional_datapath.cc.o"
  "CMakeFiles/bench_functional_datapath.dir/bench_functional_datapath.cc.o.d"
  "bench_functional_datapath"
  "bench_functional_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
