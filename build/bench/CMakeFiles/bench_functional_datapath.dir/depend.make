# Empty dependencies file for bench_functional_datapath.
# This may be replaced when dependencies are built.
