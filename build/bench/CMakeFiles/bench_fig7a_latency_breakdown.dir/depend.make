# Empty dependencies file for bench_fig7a_latency_breakdown.
# This may be replaced when dependencies are built.
