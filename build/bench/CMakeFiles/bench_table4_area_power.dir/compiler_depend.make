# Empty compiler generated dependencies file for bench_table4_area_power.
# This may be replaced when dependencies are built.
