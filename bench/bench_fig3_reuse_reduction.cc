/**
 * @file
 * Regenerates Figure 3: reduction in the number of domain-transform
 * operations during bootstrapping for the three reuse types on the
 * 4x4 VPE array, across (k, l_b) = (1,1), (2,2), (3,3) (sets A, B, C).
 */

#include <iostream>

#include "arch/analysis.h"
#include "bench_util.h"
#include "tfhe/params.h"

using namespace morphling;
using namespace morphling::arch;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "fig3_reuse_reduction");
    bench::banner("Figure 3",
                  "domain-transform count per bootstrap by reuse type");

    Table t({"Set", "(k, l_b)", "No-Reuse", "Input-Reuse",
             "reduction", "In+Out-Reuse", "reduction",
             "Paper reduction"});
    struct Row
    {
        const char *set;
        const char *paper;
    };
    // The paper quotes: input reuse 25% at (1,1) and 37.5% at (3,3);
    // input+output reuse up to 83.3% at (3,3).
    const Row rows[] = {
        {"A", "25% / -"},
        {"B", "- / -"},
        {"C", "37.5% / 83.3%"},
    };
    for (const auto &row : rows) {
        const auto &p = tfhe::paramsByName(row.set);
        const auto none = transformsPerBootstrap(p, ReuseMode::None);
        const auto input = transformsPerBootstrap(p, ReuseMode::Input);
        const auto io =
            transformsPerBootstrap(p, ReuseMode::InputOutput);
        t.addRow({row.set,
                  "(" + std::to_string(p.glweDimension) + ", " +
                      std::to_string(p.bskLevels) + ")",
                  Table::fmtCount(none), Table::fmtCount(input),
                  Table::fmt(100.0 * (1.0 - double(input) / none), 1) +
                      "%",
                  Table::fmtCount(io),
                  Table::fmt(100.0 * (1.0 - double(io) / none), 1) +
                      "%",
                  row.paper});
        const std::string set = std::string("set ") + row.set;
        report.add("transforms_no_reuse", set,
                   static_cast<double>(none), "count");
        report.add("transforms_input_reuse", set,
                   static_cast<double>(input), "count");
        report.add("transforms_io_reuse", set,
                   static_cast<double>(io), "count");
    }
    t.print(std::cout);

    std::cout << "headline: no-reuse bootstrap at set C needs "
              << Table::fmtCount(transformsPerBootstrap(
                     tfhe::paramsSetC(), ReuseMode::None))
              << " transforms (paper: 46,752)\n";

    // Per-external-product reuse opportunity (Section IV-B).
    Table r({"Set", "ACC-input reuse (k+1)", "BSK reuse",
             "ACC-output partial-sum reuse (k+1)l_b"});
    for (const char *name : {"A", "B", "C"}) {
        const auto &p = tfhe::paramsByName(name);
        const auto op = reuseOpportunity(p);
        r.addRow({name, std::to_string(op.accInputReuse),
                  std::to_string(op.bskReuse),
                  std::to_string(op.accOutputReuse)});
    }
    r.print(std::cout);
    return 0;
}
