/**
 * @file
 * Validation bench for the functional XPU datapath (Figure 5): runs a
 * real blind rotation through the rotator -> decomposition ->
 * merge-split FFT -> VPE array -> IFFT pipeline, checks the result
 * against the reference library, and reports the datapath counters
 * next to the closed-form resource arithmetic that the cycle-accurate
 * model is built on. This is the bridge between "the hardware computes
 * correctly" and "the timing model counts correctly".
 */

#include <chrono>
#include <iostream>

#include "arch/functional/functional_xpu.h"
#include "arch/timing.h"
#include "bench_util.h"
#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"

using namespace morphling;
using namespace morphling::arch;
using namespace morphling::tfhe;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "functional_datapath");
    bench::banner("Functional datapath (Figure 5)",
                  "real blind rotation through the modelled XPU");

    const TfheParams &params = paramsSetI();
    Rng rng(0xDA7A);
    std::cout << "keys for " << params.summary() << "...\n";
    const KeySet keys = KeySet::generate(params, rng);
    Rng bsk_rng(0xDA7A + 1);
    const auto raw_bsk = functional::generateRawBsk(
        keys.lweKey, keys.glweKey, bsk_rng);

    functional::FunctionalXpu xpu(params);
    const auto t0 = std::chrono::steady_clock::now();
    xpu.loadBootstrapKey(raw_bsk);
    const auto t1 = std::chrono::steady_clock::now();

    // One full programmable bootstrap through the datapath.
    const std::uint32_t space = 4;
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto tp = buildTestPolynomial(params.polyDegree, lut);

    bool all_ok = true;
    const auto t2 = std::chrono::steady_clock::now();
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = encryptPadded(keys, m, space, rng);
        const auto switched = modSwitch(ct, params.polyDegree);
        const auto acc = xpu.runBlindRotate(tp, switched);
        const auto out = keys.ksk.apply(acc.sampleExtract());
        const auto dec = decryptPadded(keys, out, space);
        all_ok &= dec == (m + 1) % 4;
    }
    const auto t3 = std::chrono::steady_clock::now();

    std::cout << (all_ok ? "PASS" : "FAIL")
              << ": f(m) = m+1 mod 4 for every message through the "
                 "functional XPU\n";
    report.add("datapath_correct", "set I", all_ok ? 1 : 0, "bool");
    report.add("bootstrap_ms",
               "set I, functional XPU, this host",
               std::chrono::duration<double, std::milli>(t3 - t2)
                       .count() /
                   space,
               "ms");
    std::cout << "BSK transform (merge-split): "
              << std::chrono::duration<double>(t1 - t0).count()
              << " s; per host-side bootstrap: "
              << std::chrono::duration<double, std::milli>(t3 - t2)
                         .count() /
                     space
              << " ms\n";

    // Datapath counters vs the closed-form arithmetic.
    const auto stats = xpu.stats();
    const ArchConfig cfg = ArchConfig::morphlingDefault();
    const std::uint64_t kp1 = params.glweDimension + 1;
    const std::uint64_t lb = params.bskLevels;

    Table t({"Counter", "Measured", "Closed form (per iteration)"});
    t.addRow({"blind-rotation iterations",
              Table::fmtCount(stats.iterations), "-"});
    t.addRow({"merge-split FFT passes",
              Table::fmtCount(stats.fftPasses),
              "ceil((k+1)l_b/2) = " +
                  std::to_string((kp1 * lb + 1) / 2) +
                  " (+ BSK preload)"});
    t.addRow({"merge-split IFFT passes",
              Table::fmtCount(stats.ifftPasses),
              "ceil((k+1)/2) = " + std::to_string((kp1 + 1) / 2)});
    t.addRow({"VPE complex MACs", Table::fmtCount(stats.vpeMacOps),
              "(k+1)^2 l_b N/2 = " +
                  Table::fmtCount(kp1 * kp1 * lb * params.polyDegree /
                                  2)});
    t.addRow({"double-pointer rotations",
              Table::fmtCount(stats.rotations), "k+1 per iteration"});
    t.print(std::cout);

    const auto round = epRoundTiming(params, cfg, 1);
    bench::note("the cycle model charges " +
                std::to_string(round.roundCycles()) +
                " cycles per iteration for one row at these "
                "parameters; every pass counted above is one "
                "N/16-cycle slot on a transform unit.");
    return all_ok ? 0 : 1;
}
