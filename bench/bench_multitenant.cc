/**
 * @file
 * Multi-tenant front door under mixed load, against the single-tenant
 * baseline:
 *
 *  1. Baseline: one tenant pushes kRequests through a
 *     MultiTenantService; per-request p50/p99 and superbatch density
 *     (batch fill fraction) set the reference.
 *  2. Mixed load: two tenants with equal quotas submit the same
 *     volume concurrently, each through its own per-tenant service
 *     (tenants cannot share superbatches: one BSK per batch). The
 *     fairness headline is worst-tenant p99 over best-tenant p99,
 *     gated at <= 3x by scripts/check_multitenant_bench.py in the
 *     perf-smoke CI leg (the quantiles are log-bucket estimates, so a
 *     factor-2 bucket edge alone must not trip the gate).
 *
 * Latency quantiles come from the per-tenant telemetry histograms —
 * the same numbers a production scrape would see.
 */

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/multi_tenant_service.h"
#include "tfhe/encoding.h"

using namespace morphling;
using namespace morphling::service;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::uint32_t kSpace = 4;
constexpr unsigned kRequests = 512; //!< per tenant

double
seconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

ServiceConfig
serviceTemplate()
{
    ServiceConfig config;
    config.maxOutstanding = kRequests; // measure batching, not admission
    config.maxWait = std::chrono::microseconds(5000);
    config.numWorkers = 1; // overridden per tenant by quota weight
    return config;
}

/** Drive one tenant: saturating submission of kRequests. */
void
drive(MultiTenantService &front, const TenantId &tenant,
      const tfhe::KeySet &keys, LutId lut, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::future<tfhe::LweCiphertext>> futures;
    futures.reserve(kRequests);
    for (unsigned i = 0; i < kRequests; ++i) {
        futures.push_back(front.submit(
            tenant,
            tfhe::encryptPadded(keys, i % kSpace, kSpace, rng), lut));
    }
    for (auto &f : futures)
        f.wait();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "multitenant");
    bench::banner("Multi-tenant service",
                  "per-tenant p50/p99 and superbatch density under "
                  "mixed load vs. a single-tenant baseline");

    const tfhe::TfheParams &params = tfhe::paramsTest();
    Rng rngA(0x7E4A), rngB(0x7E4B);
    const tfhe::KeySet keysA = tfhe::KeySet::generate(params, rngA);
    const tfhe::KeySet keysB = tfhe::KeySet::generate(params, rngB);
    const auto evalA = tfhe::EvaluationKeys::fromKeySet(keysA);
    const auto evalB = tfhe::EvaluationKeys::fromKeySet(keysB);
    const auto lut = tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
        return (m + 1) % kSpace;
    });
    const unsigned superbatch = serviceTemplate().superbatchSize;

    // --- single-tenant baseline --------------------------------------
    double solo_seconds = 0;
    TenantStats solo;
    double solo_density = 0;
    {
        telemetry::MetricsRegistry metrics;
        MultiTenantConfig config;
        config.service = serviceTemplate();
        config.metrics = &metrics;
        MultiTenantService front(config);
        front.addTenant("solo", evalA);
        const LutId id = front.registerLut("solo", lut);

        const auto t0 = Clock::now();
        drive(front, "solo", keysA, id, 0x501);
        solo_seconds = seconds(Clock::now() - t0);
        solo = front.stats("solo");
        if (const auto svc = front.serviceStats("solo"))
            solo_density = svc->meanOccupancy(superbatch);
    }
    const double solo_bs = kRequests / solo_seconds;

    // --- mixed load: two equal tenants, concurrent ---------------------
    double mixed_seconds = 0;
    TenantStats a, b;
    double density_a = 0, density_b = 0;
    {
        telemetry::MetricsRegistry metrics;
        MultiTenantConfig config;
        config.service = serviceTemplate();
        config.registry.maxResident = 2;
        config.metrics = &metrics;
        MultiTenantService front(config);
        front.addTenant("a", evalA);
        front.addTenant("b", evalB);
        const LutId lutIdA = front.registerLut("a", lut);
        const LutId lutIdB = front.registerLut("b", lut);

        const auto t0 = Clock::now();
        std::thread ta([&] { drive(front, "a", keysA, lutIdA, 0xA); });
        std::thread tb([&] { drive(front, "b", keysB, lutIdB, 0xB); });
        ta.join();
        tb.join();
        mixed_seconds = seconds(Clock::now() - t0);
        a = front.stats("a");
        b = front.stats("b");
        if (const auto svc = front.serviceStats("a"))
            density_a = svc->meanOccupancy(superbatch);
        if (const auto svc = front.serviceStats("b"))
            density_b = svc->meanOccupancy(superbatch);
    }
    const double mixed_bs = 2.0 * kRequests / mixed_seconds;
    const double worst_p99 = std::max(a.p99LatencyUs, b.p99LatencyUs);
    const double best_p99 =
        std::max(1.0, std::min(a.p99LatencyUs, b.p99LatencyUs));
    const double fairness = worst_p99 / best_p99;

    Table t({"Scenario", "Tenant", "p50 us", "p99 us", "density",
             "BS/s"});
    t.addRow({"baseline", "solo", Table::fmt(solo.p50LatencyUs, 0),
              Table::fmt(solo.p99LatencyUs, 0),
              Table::fmt(solo_density, 2),
              Table::fmtCount(static_cast<std::uint64_t>(solo_bs))});
    t.addRow({"mixed", "a", Table::fmt(a.p50LatencyUs, 0),
              Table::fmt(a.p99LatencyUs, 0),
              Table::fmt(density_a, 2), "-"});
    t.addRow({"mixed", "b", Table::fmt(b.p50LatencyUs, 0),
              Table::fmt(b.p99LatencyUs, 0),
              Table::fmt(density_b, 2),
              Table::fmtCount(static_cast<std::uint64_t>(mixed_bs))});
    t.print(std::cout);
    bench::note("tenants never share a superbatch (one BSK per "
                "batch); density is per-tenant mean batch fill. "
                "fairness = worst p99 / best p99 = " +
                Table::fmt(fairness, 2) + "x (CI gate: <= 3x)");

    report.add("baseline_p50", "TEST params, 1 tenant",
               solo.p50LatencyUs, "us");
    report.add("baseline_p99", "TEST params, 1 tenant",
               solo.p99LatencyUs, "us");
    report.add("baseline_density", "TEST params, 1 tenant",
               solo_density, "fraction");
    report.add("baseline_throughput", "TEST params, 1 tenant", solo_bs,
               "BS/s");
    report.add("tenant_a_p50", "TEST params, mixed 2-tenant",
               a.p50LatencyUs, "us");
    report.add("tenant_a_p99", "TEST params, mixed 2-tenant",
               a.p99LatencyUs, "us");
    report.add("tenant_b_p50", "TEST params, mixed 2-tenant",
               b.p50LatencyUs, "us");
    report.add("tenant_b_p99", "TEST params, mixed 2-tenant",
               b.p99LatencyUs, "us");
    report.add("tenant_a_density", "TEST params, mixed 2-tenant",
               density_a, "fraction");
    report.add("tenant_b_density", "TEST params, mixed 2-tenant",
               density_b, "fraction");
    report.add("mixed_throughput", "TEST params, mixed 2-tenant",
               mixed_bs, "BS/s");
    report.add("fairness_p99_ratio", "TEST params, mixed 2-tenant",
               fairness, "x");
    return 0;
}
