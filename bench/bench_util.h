/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Every bench prints: a banner naming the paper artifact it
 * regenerates, the parameter sets involved, the regenerated rows, and —
 * where the paper publishes numbers — the paper's values alongside for
 * comparison. Output is plain text so `bench_output.txt` diffs cleanly.
 *
 * With `--json`, a bench additionally writes its headline metrics to
 * BENCH_<name>.json (machine-readable, one file per binary) so runs can
 * be archived and compared across commits; each file carries the git
 * SHA the binary was configured from.
 */

#ifndef MORPHLING_BENCH_BENCH_UTIL_H
#define MORPHLING_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"

#ifndef MORPHLING_GIT_SHA
#define MORPHLING_GIT_SHA "unknown"
#endif

namespace morphling::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::cout << "\n=================================================="
                 "====================\n"
              << artifact << " -- " << description << "\n"
              << "===================================================="
                 "==================\n";
}

/** Print a note line (methodology caveats, calibration notes). */
inline void
note(const std::string &text)
{
    std::cout << "note: " << text << "\n";
}

/** Format a ratio like "14.7x". */
inline std::string
times(double ratio, int precision = 1)
{
    return Table::fmt(ratio, precision) + "x";
}

/**
 * Machine-readable results sink. Construct at the top of main() with
 * argc/argv and the bench's short name; record headline metrics with
 * add() as they are computed. When the binary was invoked with
 * `--json`, the destructor writes BENCH_<name>.json into the working
 * directory; without the flag the Report is free.
 */
class Report
{
  public:
    Report(int argc, char **argv, std::string name)
        : name_(std::move(name))
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--json")
                path_ = "BENCH_" + name_ + ".json";
            else if (arg.rfind("--json=", 0) == 0)
                path_ = arg.substr(7);
        }
    }

    ~Report()
    {
        if (path_.empty())
            return;
        std::ofstream os(path_);
        if (!os) {
            std::cerr << "warning: cannot write " << path_ << "\n";
            return;
        }
        write(os);
        std::cout << "json: wrote " << path_ << "\n";
    }

    Report(const Report &) = delete;
    Report &operator=(const Report &) = delete;

    bool enabled() const { return !path_.empty(); }

    /** Record one metric. `params` names the configuration the value
     *  was measured under ("set I", "batch=64", ...). */
    void add(const std::string &metric, const std::string &params,
             double value, const std::string &unit)
    {
        entries_.push_back(Entry{metric, params, value, unit});
    }

    void write(std::ostream &os) const
    {
        os << "{\n  \"bench\": \"" << escape(name_) << "\",\n"
           << "  \"git_sha\": \"" << escape(MORPHLING_GIT_SHA)
           << "\",\n  \"metrics\": [";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const Entry &e = entries_[i];
            os << (i ? "," : "") << "\n    {\"name\": \""
               << escape(e.metric) << "\", \"params\": \""
               << escape(e.params) << "\", \"value\": "
               << fmtValue(e.value) << ", \"unit\": \""
               << escape(e.unit) << "\"}";
        }
        os << "\n  ]\n}\n";
    }

  private:
    struct Entry
    {
        std::string metric;
        std::string params;
        double value;
        std::string unit;
    };

    static std::string escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    static std::string fmtValue(double v)
    {
        if (!std::isfinite(v))
            return "null"; // JSON has no Inf/NaN
        char buf[64];
        if (v == static_cast<double>(static_cast<long long>(v)))
            std::snprintf(buf, sizeof buf, "%lld",
                          static_cast<long long>(v));
        else
            std::snprintf(buf, sizeof buf, "%.17g", v);
        return buf;
    }

    std::string name_;
    std::string path_;
    std::vector<Entry> entries_;
};

} // namespace morphling::bench

#endif // MORPHLING_BENCH_BENCH_UTIL_H
