/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Every bench prints: a banner naming the paper artifact it
 * regenerates, the parameter sets involved, the regenerated rows, and —
 * where the paper publishes numbers — the paper's values alongside for
 * comparison. Output is plain text so `bench_output.txt` diffs cleanly.
 */

#ifndef MORPHLING_BENCH_BENCH_UTIL_H
#define MORPHLING_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>

#include "common/table.h"

namespace morphling::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::cout << "\n=================================================="
                 "====================\n"
              << artifact << " -- " << description << "\n"
              << "===================================================="
                 "==================\n";
}

/** Print a note line (methodology caveats, calibration notes). */
inline void
note(const std::string &text)
{
    std::cout << "note: " << text << "\n";
}

/** Format a ratio like "14.7x". */
inline std::string
times(double ratio, int precision = 1)
{
    return Table::fmt(ratio, precision) + "x";
}

} // namespace morphling::bench

#endif // MORPHLING_BENCH_BENCH_UTIL_H
