/**
 * @file
 * Ablation: the double-pointer rotation inside Private-A1 vs a
 * variable-delay shifter in the XPU (the design alternative Section
 * V-C rejects).
 *
 * A shifter realizes X^a by physically moving coefficients: its delay
 * depends on the (per-ciphertext, data-dependent) mask value a, which
 * stalls the streaming pipeline. The double-pointer design resolves any
 * rotation in address generation, so the FFT input stream never
 * bubbles. We model the shifter's expected stall as the average
 * misalignment a mod N distributed over the vector width and compare
 * steady-state throughput; we also measure the functional rotator.
 */

#include <chrono>
#include <iostream>

#include "arch/accelerator.h"
#include "arch/rotator.h"
#include "bench_util.h"
#include "common/rng.h"

using namespace morphling;
using namespace morphling::arch;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "ablation_rotator");
    bench::banner("Ablation (Section V-C)",
                  "double-pointer rotation vs variable-delay shifter");

    const ArchConfig cfg = ArchConfig::morphlingDefault();
    Table t({"Set", "Double-pointer (BS/s)", "Shifter model (BS/s)",
             "Gain"});
    for (const char *set : {"I", "II", "III", "IV"}) {
        const auto &params = tfhe::paramsByName(set);
        Accelerator acc(cfg, params);
        const double base = acc.runBootstrapBatch(512).throughputBs;

        // Shifter model: every external product adds the expected
        // serial-shift latency E[a mod N] / lanes = N/2/8 cycles to the
        // round (the rotation cannot overlap the stream because the
        // stream *is* the rotated data).
        const auto round = epRoundTiming(params, cfg, cfg.vpeRows);
        const double stall = params.polyDegree / 2.0 / cfg.vectorLanes;
        const double slowdown =
            (static_cast<double>(round.roundCycles()) + stall) /
            static_cast<double>(round.roundCycles());
        const double shifter = base / slowdown;

        t.addRow({set,
                  Table::fmtCount(static_cast<std::uint64_t>(base)),
                  Table::fmtCount(static_cast<std::uint64_t>(shifter)),
                  bench::times(base / shifter, 2)});
        report.add("gain_over_shifter", std::string("set ") + set,
                   base / shifter, "x");
    }
    t.print(std::cout);

    // Functional rotator throughput and reorder-unit pressure.
    const unsigned n = 1024;
    Rotator rot(n, 8);
    Rng rng(77);
    tfhe::TorusPolynomial poly(n);
    for (unsigned i = 0; i < n; ++i)
        poly[i] = rng.nextU32();

    const int reps = 20000;
    unsigned reorders = 0;
    const auto start = std::chrono::steady_clock::now();
    tfhe::Torus32 sink = 0;
    for (int i = 0; i < reps; ++i) {
        const unsigned power =
            static_cast<unsigned>(rng.nextBelow(2 * n));
        const auto rotated = rot.rotate(poly, power);
        sink += rotated[0];
        reorders += rot.needsReorder(power);
    }
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start)
            .count() /
        reps;

    report.add("rotate_us", "N=1024, this host", us, "us");
    std::cout << "functional double-pointer rotate (N=1024): "
              << Table::fmt(us, 2) << " us/rotation on this host; "
              << Table::fmt(100.0 * reorders / reps, 1)
              << "% of random rotations need the reorder unit "
                 "(expected 87.5% for 8-lane vectors)\n";
    if (sink == 1)
        std::cout << "";
    return 0;
}
