/**
 * @file
 * Regenerates Table V: bootstrapping latency and throughput across
 * implementation platforms.
 *
 * Morphling rows are produced by the cycle-level simulator (throughput:
 * 2048-bootstrap steady-state batch; latency: closed-form pipeline
 * latency of one bootstrap, the paper's latency metric). Comparator
 * platforms are closed hardware/software we cannot rerun; their rows
 * quote the paper's published numbers (flagged as such) so the speedup
 * columns can be reproduced.
 */

#include <iostream>

#include "arch/accelerator.h"
#include "bench_util.h"

using namespace morphling;
using namespace morphling::arch;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "table5_bootstrap");
    bench::banner("Table V",
                  "bootstrap latency/throughput across platforms");

    Table t({"Implementation", "Platform", "Set", "Latency (ms)",
             "Throughput (BS/s)", "Source"});

    struct Published
    {
        const char *impl;
        const char *platform;
        const char *set;
        const char *latency;
        const char *throughput;
    };
    const Published published[] = {
        {"Concrete", "CPU", "I", "15.65", "63"},
        {"Concrete", "CPU", "II", "27.26", "36"},
        {"Concrete", "CPU", "III", "82.19", "12"},
        {"NuFHE", "GPU", "I", "240.00", "2,500"},
        {"NuFHE", "GPU", "II", "420.00", "550"},
        {"cuFHE", "GPU", "IV", "66.00", "1,786"},
        {"XHEC", "FPGA", "I", "~1.15", "4,000"},
        {"XHEC", "FPGA", "II", "~1.65", "2,800"},
        {"MATCHA", "ASIC 16nm", "I", "0.20", "10,000"},
        {"Strix", "ASIC 28nm", "I", "0.16", "74,696"},
        {"Strix", "ASIC 28nm", "II", "0.23", "39,600"},
        {"Strix", "ASIC 28nm", "III", "0.44", "21,104"},
    };
    for (const auto &p : published) {
        t.addRow({p.impl, p.platform, p.set, p.latency, p.throughput,
                  "published"});
    }
    t.addSeparator();

    const ArchConfig cfg = ArchConfig::morphlingDefault();
    double set1_throughput = 0;
    for (const char *set : {"I", "II", "III", "IV"}) {
        const auto &params = tfhe::paramsByName(set);
        Accelerator acc(cfg, params);
        const SimReport r = acc.runBootstrapBatch(2048);
        if (std::string(set) == "I")
            set1_throughput = r.throughputBs;
        const std::string setname = std::string("set ") + set;
        report.add("latency", setname, r.pipelineLatencyMs, "ms");
        report.add("throughput", setname, r.throughputBs, "BS/s");
        report.add("energy_per_bs", setname, r.energyPerBsUj, "uJ");
        t.addRow({"Morphling (this repo)", "ASIC 28nm (sim)", set,
                  Table::fmt(r.pipelineLatencyMs),
                  Table::fmtCount(
                      static_cast<std::uint64_t>(r.throughputBs)) +
                      "  (" + Table::fmt(r.energyPerBsUj, 0) +
                      " uJ/BS)",
                  "simulated"});
    }
    t.addSeparator();
    const Published paper_morphling[] = {
        {"Morphling (paper)", "ASIC 28nm", "I", "0.11", "147,615"},
        {"Morphling (paper)", "ASIC 28nm", "II", "0.20", "78,692"},
        {"Morphling (paper)", "ASIC 28nm", "III", "0.38", "41,850"},
        {"Morphling (paper)", "ASIC 28nm", "IV", "0.16", "98,933"},
    };
    for (const auto &p : paper_morphling) {
        t.addRow({p.impl, p.platform, p.set, p.latency, p.throughput,
                  "published"});
    }
    t.print(std::cout);

    // Speedups at set I (paper: 3440x CPU, 143x GPU, 14.7x ASIC).
    Table s({"Against", "Paper", "This repro"});
    s.addRow({"Concrete (CPU, set I)", "2343x",
              bench::times(set1_throughput / 63)});
    s.addRow({"NuFHE (GPU, set I)", "59x",
              bench::times(set1_throughput / 2500)});
    s.addRow({"MATCHA (ASIC, set I)", "14.8x",
              bench::times(set1_throughput / 10000)});
    s.addRow({"Strix (ASIC, set I)", "1.98x",
              bench::times(set1_throughput / 74696, 2)});
    s.print(std::cout);
    bench::note("the paper's headline 3440x/143x/14.7x maxima occur at "
                "other sets; at set I the ratios above follow directly "
                "from Table V.");
    return 0;
}
