/**
 * @file
 * Ablation: XPU resource balance. Morphling ships 2 forward FFT units
 * and 4 IFFT units per XPU ("Morphling employs 24 I/FFTs, which
 * correspond to 16 bootstrapping cores"). This sweep varies the
 * transform-unit mix at fixed total unit count — and the vector width —
 * to show the shipped point is the balanced one for the
 * input+output-reuse dataflow: forward demand is (k+1) l_b polynomials
 * per ciphertext per iteration against only (k+1) inverse polynomials.
 */

#include <iostream>

#include "arch/accelerator.h"
#include "bench_util.h"

using namespace morphling;
using namespace morphling::arch;

namespace {

double
throughput(const ArchConfig &cfg, const tfhe::TfheParams &params)
{
    Accelerator acc(cfg, params);
    return acc.runBootstrapBatch(512).throughputBs;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "ablation_resources");
    bench::banner("Ablation (Section V-A)",
                  "XPU transform-unit balance and vector width");

    const ArchConfig base = ArchConfig::morphlingDefault();

    // Six transform units per XPU, split between forward and inverse.
    Table t({"FFT:IFFT per XPU", "Set I (BS/s)", "Set C (BS/s)"});
    for (unsigned ffts = 1; ffts <= 5; ++ffts) {
        ArchConfig cfg = base;
        cfg.fftUnitsPerXpu = ffts;
        cfg.ifftUnitsPerXpu = 6 - ffts;
        const double set1 = throughput(cfg, tfhe::paramsByName("I"));
        t.addRow({std::to_string(ffts) + ":" + std::to_string(6 - ffts),
                  Table::fmtCount(static_cast<std::uint64_t>(set1)),
                  Table::fmtCount(static_cast<std::uint64_t>(
                      throughput(cfg, tfhe::paramsByName("C"))))});
        report.add("throughput",
                   "set I, fft:ifft=" + std::to_string(ffts) + ":" +
                       std::to_string(6 - ffts),
                   set1, "BS/s");
    }
    t.print(std::cout);
    bench::note("the shipped 2:4 split matches the 4:2 point for the "
                "IO-reuse dataflow on k=1 sets because merge-split "
                "forward units carry two polynomials per pass; the "
                "high-k set C favors forward capacity exactly as the "
                "(k+1)l_b : (k+1) demand ratio predicts.");

    // Vector width (elements per cycle through every unit).
    Table v({"Vector lanes", "Set I throughput (BS/s)", "Scaling"});
    double base_thr = 0;
    for (unsigned lanes : {4u, 8u, 16u}) {
        ArchConfig cfg = base;
        cfg.vectorLanes = lanes;
        const double thr = throughput(cfg, tfhe::paramsByName("I"));
        if (lanes == 4)
            base_thr = thr;
        v.addRow({std::to_string(lanes),
                  Table::fmtCount(static_cast<std::uint64_t>(thr)),
                  bench::times(thr / base_thr, 2)});
    }
    v.print(std::cout);
    bench::note("throughput scales with the streaming width until the "
                "VPU key-switch rate becomes the binding constraint "
                "(the 8-lane design point sits at that crossover).");
    return 0;
}
