/**
 * @file
 * Microbenchmarks of this repository's TFHE primitives on the host CPU
 * (google-benchmark): negacyclic FFT, external product, blind-rotation
 * step, key switching, and full programmable bootstrapping. These are
 * the "Concrete-equivalent" numbers the CPU rows of the comparison
 * tables are grounded in.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tfhe/batch.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/fft.h"
#include "tfhe/fft_dispatch.h"
#include "tfhe/workspace.h"

using namespace morphling;
using namespace morphling::tfhe;

namespace {

/** Key material shared across benchmark iterations (expensive to
 *  generate). */
const KeySet &
keysFor(const std::string &name)
{
    static std::map<std::string, KeySet> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        Rng rng(0xBE27C4);
        it = cache.emplace(name,
                           KeySet::generate(paramsByName(name), rng))
                 .first;
    }
    return it->second;
}

void
BM_ForwardFft(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const auto &fft = NegacyclicFft::forDegree(n);
    Rng rng(1);
    TorusPolynomial poly(n);
    for (unsigned i = 0; i < n; ++i)
        poly[i] = rng.nextU32();
    FourierPolynomial out(n);
    for (auto _ : state) {
        fft.forward(poly, out);
        benchmark::DoNotOptimize(out.re(0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardFft)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void
BM_InverseFft(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    const auto &fft = NegacyclicFft::forDegree(n);
    Rng rng(2);
    FourierPolynomial in(n);
    for (unsigned i = 0; i < in.size(); ++i) {
        in.re(i) = rng.nextDouble() * 1e6;
        in.im(i) = rng.nextDouble() * 1e6;
    }
    TorusPolynomial out(n);
    for (auto _ : state) {
        fft.inverse(in, out);
        benchmark::DoNotOptimize(out[0]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InverseFft)->Arg(512)->Arg(1024)->Arg(2048);

void
BM_ExternalProduct(benchmark::State &state)
{
    const auto &keys = keysFor("I");
    Rng rng(3);
    const auto tp = constantTestPolynomial(
        keys.params.polyDegree, doubleToTorus32(0.125));
    GlweCiphertext acc = GlweCiphertext::trivial(
        keys.params.glweDimension, tp);
    for (auto _ : state) {
        acc = externalProductFourier(keys.bsk.entry(0), acc);
        benchmark::DoNotOptimize(acc.body()[0]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExternalProduct);

void
BM_CmuxRotate(benchmark::State &state)
{
    const auto &keys = keysFor("I");
    const auto tp = constantTestPolynomial(
        keys.params.polyDegree, doubleToTorus32(0.125));
    GlweCiphertext acc = GlweCiphertext::trivial(
        keys.params.glweDimension, tp);
    unsigned power = 1;
    for (auto _ : state) {
        acc = cmuxRotate(keys.bsk.entry(0), acc, power);
        power = power % (2 * keys.params.polyDegree - 1) + 1;
        benchmark::DoNotOptimize(acc.body()[0]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CmuxRotate);

void
BM_WorkspaceExternalProduct(benchmark::State &state)
{
    // The explicit-workspace entry point: no result-ciphertext
    // allocation per call either (the legacy wrapper above still
    // returns by value).
    const auto &keys = keysFor("I");
    const auto tp = constantTestPolynomial(
        keys.params.polyDegree, doubleToTorus32(0.125));
    GlweCiphertext acc = GlweCiphertext::trivial(
        keys.params.glweDimension, tp);
    GlweCiphertext result;
    BootstrapWorkspace ws;
    for (auto _ : state) {
        externalProductFourier(keys.bsk.entry(0), acc, result, ws);
        benchmark::DoNotOptimize(result.body()[0]);
        std::swap(acc, result);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkspaceExternalProduct);

void
BM_KeySwitch(benchmark::State &state)
{
    const auto &keys = keysFor("I");
    Rng rng(4);
    const auto glwe_ct = GlweCiphertext::encrypt(
        keys.glweKey,
        constantTestPolynomial(keys.params.polyDegree, 0),
        keys.params.glweNoiseStd, rng);
    const auto extracted = glwe_ct.sampleExtract();
    for (auto _ : state) {
        auto out = keys.ksk.apply(extracted);
        benchmark::DoNotOptimize(out.body());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeySwitch);

void
BM_ProgrammableBootstrap(benchmark::State &state)
{
    // Per-set full bootstrap: these are the Table V "CPU" equivalents
    // for this host.
    static const char *kSets[] = {"I", "II", "III"};
    const auto &keys = keysFor(kSets[state.range(0)]);
    Rng rng(5);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    auto ct = encryptPadded(keys, 1, 4, rng);
    for (auto _ : state) {
        ct = programmableBootstrap(keys, ct, lut);
        benchmark::DoNotOptimize(ct.body());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(std::string("set ") + kSets[state.range(0)]);
}
BENCHMARK(BM_ProgrammableBootstrap)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_WorkspaceBootstrap(benchmark::State &state)
{
    // The pure zero-allocation path: explicit workspace, prebuilt test
    // polynomial, output written in place. Difference to
    // BM_ProgrammableBootstrap is the per-call LUT/test-poly build and
    // result handling, not the transform pipeline (shared).
    static const char *kSets[] = {"I", "II", "III"};
    const auto &keys = keysFor(kSets[state.range(0)]);
    Rng rng(8);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto tp = buildTestPolynomial(keys.params.polyDegree, lut);
    auto ct = encryptPadded(keys, 1, 4, rng);
    LweCiphertext out;
    BootstrapWorkspace ws;
    for (auto _ : state) {
        bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);
        benchmark::DoNotOptimize(out.body());
        std::swap(ct, out);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(std::string("set ") + kSets[state.range(0)]);
}
BENCHMARK(BM_WorkspaceBootstrap)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_Batch64(benchmark::State &state)
{
    // One superbatch-sized batch (64 = compiler::kSuperbatchSize) on a
    // single thread: the service-layer unit of work, and the CPU row of
    // the 64-slot throughput comparisons in docs/perf.md.
    const auto &keys = keysFor("I");
    Rng rng(9);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    std::vector<LweCiphertext> batch;
    for (unsigned i = 0; i < 64; ++i)
        batch.push_back(encryptPadded(keys, i % 4, 4, rng));
    BatchOptions opts;
    opts.threads = 1;
    for (auto _ : state) {
        auto out = batchBootstrap(keys, batch, lut, opts);
        benchmark::DoNotOptimize(out.back().body());
    }
    state.SetItemsProcessed(state.iterations() * batch.size());
    state.SetLabel("64 inputs, 1 thread, set I");
}
BENCHMARK(BM_Batch64)->Unit(benchmark::kMillisecond);

void
BM_ParallelBatchBootstrap(benchmark::State &state)
{
    // Multicore scaling of this library (the basis of the CPU cost
    // model's parallel-efficiency assumption).
    const auto &keys = keysFor("I");
    const auto threads = static_cast<unsigned>(state.range(0));
    Rng rng(7);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    std::vector<LweCiphertext> batch;
    for (unsigned i = 0; i < 2 * threads; ++i)
        batch.push_back(encryptPadded(keys, i % 4, 4, rng));
    BatchOptions opts;
    opts.threads = threads;
    for (auto _ : state) {
        auto out = batchBootstrap(keys, batch, lut, opts);
        benchmark::DoNotOptimize(out.back().body());
    }
    state.SetItemsProcessed(state.iterations() * batch.size());
    state.SetLabel(std::to_string(threads) + " threads, set I");
}
BENCHMARK(BM_ParallelBatchBootstrap)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

// ---------------------------------------------------------------------
// SIMD kernel tiers: the benchmarks below are registered once per tier
// the host supports (BM_BatchFftForward/avx512/1024, ...), forcing the
// dispatch so the per-tier speedups land side by side in
// BENCH_cpu_primitives.json. Items processed counts polynomials, so
// per-item times compare directly across tiers and against the
// single-polynomial BM_ForwardFft/BM_InverseFft.
// ---------------------------------------------------------------------

constexpr unsigned kFftBatch = 8; //!< l_b*(k+1) of set I, one CMux load

void
runBatchFftForward(benchmark::State &state, FftDispatchTier tier,
                   unsigned n)
{
    forceFftDispatchTier(tier);
    const BatchFft bfft(n);
    Rng rng(11);
    std::vector<IntPolynomial> polys(kFftBatch, IntPolynomial(n));
    std::vector<FourierPolynomial> spectra(kFftBatch,
                                           FourierPolynomial(n));
    std::vector<const IntPolynomial *> in;
    std::vector<FourierPolynomial *> out;
    for (unsigned i = 0; i < kFftBatch; ++i) {
        for (unsigned j = 0; j < n; ++j)
            polys[i][j] = static_cast<std::int32_t>(rng.nextU32());
        in.push_back(&polys[i]);
        out.push_back(&spectra[i]);
    }
    for (auto _ : state) {
        bfft.forward(in.data(), out.data(), kFftBatch);
        benchmark::DoNotOptimize(spectra[0].re(0));
    }
    state.SetItemsProcessed(state.iterations() * kFftBatch);
    state.SetLabel(fftDispatchTierName(tier));
    resetFftDispatchTier();
}

void
runBatchFftInverse(benchmark::State &state, FftDispatchTier tier,
                   unsigned n)
{
    forceFftDispatchTier(tier);
    const BatchFft bfft(n);
    Rng rng(12);
    std::vector<FourierPolynomial> spectra(kFftBatch,
                                           FourierPolynomial(n));
    std::vector<FourierPolynomial> pristine(kFftBatch,
                                            FourierPolynomial(n));
    std::vector<TorusPolynomial> outs(kFftBatch, TorusPolynomial(n));
    std::vector<FourierPolynomial *> in;
    std::vector<TorusPolynomial *> out;
    for (unsigned i = 0; i < kFftBatch; ++i) {
        for (unsigned j = 0; j < pristine[i].size(); ++j) {
            pristine[i].re(j) = rng.nextDouble() * 1e6;
            pristine[i].im(j) = rng.nextDouble() * 1e6;
        }
        in.push_back(&spectra[i]);
        out.push_back(&outs[i]);
    }
    for (auto _ : state) {
        // inverseInPlace may clobber its input (scalar-tier contract);
        // restore from the pristine copy so every iteration transforms
        // real data instead of blown-up leftovers that would force the
        // slow wide-value rounding guard and skew the comparison.
        for (unsigned i = 0; i < kFftBatch; ++i)
            spectra[i] = pristine[i];
        bfft.inverseInPlace(in.data(), out.data(), kFftBatch);
        benchmark::DoNotOptimize(outs[0][0]);
    }
    state.SetItemsProcessed(state.iterations() * kFftBatch);
    state.SetLabel(fftDispatchTierName(tier));
    resetFftDispatchTier();
}

void
runDispatchBootstrap(benchmark::State &state, FftDispatchTier tier)
{
    // The full workspace bootstrap under a forced kernel tier: the
    // end-to-end evidence for the SIMD speedup (scalar row vs widest
    // row of this family).
    forceFftDispatchTier(tier);
    const auto &keys = keysFor("I");
    Rng rng(13);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto tp = buildTestPolynomial(keys.params.polyDegree, lut);
    auto ct = encryptPadded(keys, 1, 4, rng);
    LweCiphertext out;
    BootstrapWorkspace ws;
    for (auto _ : state) {
        bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);
        benchmark::DoNotOptimize(out.body());
        std::swap(ct, out);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(std::string(fftDispatchTierName(tier)) + ", set I");
    resetFftDispatchTier();
}

void
registerDispatchTierBenchmarks()
{
    for (const auto tier : supportedFftDispatchTiers()) {
        const std::string tn = fftDispatchTierName(tier);
        for (const unsigned n : {1024u, 2048u}) {
            benchmark::RegisterBenchmark(
                ("BM_BatchFftForward/" + tn + "/" + std::to_string(n))
                    .c_str(),
                [tier, n](benchmark::State &s) {
                    runBatchFftForward(s, tier, n);
                });
            benchmark::RegisterBenchmark(
                ("BM_BatchFftInverse/" + tn + "/" + std::to_string(n))
                    .c_str(),
                [tier, n](benchmark::State &s) {
                    runBatchFftInverse(s, tier, n);
                });
        }
        benchmark::RegisterBenchmark(
            ("BM_DispatchBootstrap/" + tn).c_str(),
            [tier](benchmark::State &s) { runDispatchBootstrap(s, tier); })
            ->Unit(benchmark::kMillisecond);
    }
}

void
BM_GateBootstrap(benchmark::State &state)
{
    const auto &keys = keysFor("I");
    Rng rng(6);
    auto a = encryptBit(keys, true, rng);
    const auto b = encryptBit(keys, false, rng);
    for (auto _ : state) {
        a = gateNand(keys, a, b);
        benchmark::DoNotOptimize(a.body());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("NAND, set I");
}
BENCHMARK(BM_GateBootstrap)->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Custom main so that `bench_cpu_primitives --json` emits the machine-
 * readable report BENCH_cpu_primitives.json (in the working directory)
 * alongside the usual console table. All other flags pass through to
 * google-benchmark unchanged.
 */
int
main(int argc, char **argv)
{
    static std::string out_flag =
        "--benchmark_out=BENCH_cpu_primitives.json";
    static std::string fmt_flag = "--benchmark_out_format=json";

    std::vector<char *> args;
    bool json = false;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            json = true;
        else
            args.push_back(argv[i]);
    }
    if (json) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }

    registerDispatchTierBenchmarks();

    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    // Stamp the report with the auto-selected tier so JSON consumers
    // know which kernels produced the untiered rows.
    benchmark::AddCustomContext(
        "fft_dispatch",
        morphling::tfhe::fftDispatchTierName(
            morphling::tfhe::activeFftDispatchTier()));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
