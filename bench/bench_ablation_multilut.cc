/**
 * @file
 * Ablation: multi-LUT bootstrapping — the transform-domain-reuse idea
 * applied at the algorithm level. Packing nu functions into one test
 * polynomial shares the expensive blind rotation across nu outputs
 * (only the cheap extractions and key switches multiply), at the price
 * of an nu-fold smaller noise margin.
 *
 * Reports host-measured amortization of this library and the simulated
 * accelerator throughput in LUT evaluations per second.
 */

#include <chrono>
#include <iostream>

#include "arch/accelerator.h"
#include "bench_util.h"
#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"

using namespace morphling;
using namespace morphling::tfhe;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "ablation_multilut");
    bench::banner("Ablation (multi-LUT bootstrapping)",
                  "several functions per blind rotation");

    // Host measurement on set I.
    const TfheParams &params = paramsSetI();
    Rng rng(0x171717);
    std::cout << "keys for " << params.summary() << "...\n";
    const KeySet keys = KeySet::generate(params, rng);
    const std::uint32_t space = 4;

    Table t({"Functions per rotation", "Host ms/rotation",
             "Host ms/LUT output", "Amortization"});
    double single_per_output = 0;
    for (unsigned nu : {1u, 2u, 4u, 8u}) {
        std::vector<std::vector<Torus32>> luts;
        for (unsigned k = 0; k < nu; ++k) {
            luts.push_back(makePaddedLut(space, [k](std::uint32_t m) {
                return (m + k) % 4;
            }));
        }
        auto ct = encryptPadded(keys, 1, space, rng);
        const int reps = 3;
        const auto t0 = std::chrono::steady_clock::now();
        unsigned outputs = 0;
        for (int r = 0; r < reps; ++r) {
            const auto out = multiLutBootstrap(keys, ct, luts);
            outputs += static_cast<unsigned>(out.size());
            ct = out[0];
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double per_rotation =
            std::chrono::duration<double, std::milli>(t1 - t0).count() /
            reps;
        const double per_output = per_rotation * reps / outputs;
        if (nu == 1)
            single_per_output = per_output;
        t.addRow({std::to_string(nu), Table::fmt(per_rotation, 2),
                  Table::fmt(per_output, 2),
                  bench::times(single_per_output / per_output, 2)});
        report.add("amortization",
                   "set I, nu=" + std::to_string(nu),
                   single_per_output / per_output, "x");
    }
    t.print(std::cout);

    // Accelerator view: a workload of L LUT evaluations costs L/nu
    // blind rotations (the SE/KS stages still run per output, on the
    // VPU, overlapped).
    const arch::ArchConfig cfg = arch::ArchConfig::morphlingDefault();
    arch::Accelerator acc(cfg, params);
    Table s({"Functions per rotation", "Simulated rotations",
             "LUT outputs/s (sim)"});
    const std::uint64_t outputs_wanted = 4096;
    for (unsigned nu : {1u, 2u, 4u}) {
        const std::uint64_t rotations = outputs_wanted / nu;
        const auto r = acc.runBootstrapBatch(rotations);
        s.addRow({std::to_string(nu), Table::fmtCount(rotations),
                  Table::fmtCount(static_cast<std::uint64_t>(
                      r.throughputBs * nu))});
    }
    s.print(std::cout);
    bench::note("a Morphling running multi-LUT workloads multiplies "
                "its effective LUT throughput by the packing factor; "
                "the margin cost bounds nu by the noise budget "
                "(tfhe/noise.h).");
    return 0;
}
