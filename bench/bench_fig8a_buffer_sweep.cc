/**
 * @file
 * Regenerates Figure 8-a: the impact of the Private-A1 buffer size on
 * bootstrap latency and throughput. The paper observes degradation
 * below 4096 KiB (fewer consecutive ciphertext streams can share one
 * BSK fetch, so the 2-channel BSK path saturates) and stability above.
 * Run at the 128-bit set III.
 */

#include <iostream>
#include <vector>

#include "arch/accelerator.h"
#include "bench_util.h"

using namespace morphling;
using namespace morphling::arch;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "fig8a_buffer_sweep");
    bench::banner("Figure 8-a",
                  "Private-A1 size vs latency and throughput (set III)");

    const auto &params = tfhe::paramsByName("III");
    const std::vector<unsigned> sizes = {512,  1024, 2048,
                                         4096, 8192, 16384};

    std::vector<SimReport> reports;
    for (unsigned kib : sizes) {
        ArchConfig cfg = ArchConfig::morphlingDefault();
        cfg.privateA1KiB = kib;
        Accelerator acc(cfg, params);
        reports.push_back(acc.runBootstrapBatch(1024));
    }

    // Reference = the paper's 4096 KiB design point.
    double reference = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        if (sizes[i] == 4096)
            reference = reports[i].throughputBs;
    }

    Table t({"Private-A1 (KiB)", "Stream sets", "Throughput (BS/s)",
             "vs 4096 KiB", "Batch latency (ms)"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const auto &r = reports[i];
        t.addRow({std::to_string(sizes[i]),
                  std::to_string(r.streamSets),
                  Table::fmtCount(
                      static_cast<std::uint64_t>(r.throughputBs)),
                  Table::fmt(100.0 * r.throughputBs / reference, 1) +
                      "%",
                  Table::fmt(r.meanChunkLatencyMs, 2)});
        report.add("throughput",
                   "set III, A1=" + std::to_string(sizes[i]) + "KiB",
                   r.throughputBs, "BS/s");
    }
    t.print(std::cout);

    bench::note("paper: performance degrades when Private-A1 falls "
                "below 4096 KiB and stabilizes above — Morphling sets "
                "it to 4096 KiB. The knee reproduces at the same "
                "point.");
    return 0;
}
