/**
 * @file
 * Ablations of the SW-HW co-optimization (Sections IV-C, V-E): KSK
 * reuse, batching width, and BSK stream-set reuse. Each row disables
 * one mechanism on set I and reports the throughput impact.
 */

#include <iostream>

#include "arch/accelerator.h"
#include "bench_util.h"
#include "compiler/sw_scheduler.h"

using namespace morphling;
using namespace morphling::arch;

namespace {

SimReport
runWith(const ArchConfig &cfg, const compiler::SchedulerConfig &sched,
        const tfhe::TfheParams &params, std::uint64_t count = 1024)
{
    compiler::SwScheduler sw(params, sched);
    Accelerator acc(cfg, params);
    return acc.run(sw.scheduleBootstrapBatch(count));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "ablation_scheduler");
    bench::banner("Ablation (Sections IV-C / V-E)",
                  "scheduler and reuse mechanisms, set I");

    const auto &params = tfhe::paramsByName("I");
    const ArchConfig base_cfg = ArchConfig::morphlingDefault();
    const compiler::SchedulerConfig base_sched;

    const SimReport baseline = runWith(base_cfg, base_sched, params);

    Table t({"Configuration", "Throughput (BS/s)", "vs full design",
             "HBM traffic (GiB)"});
    auto add = [&](const std::string &name, const SimReport &r) {
        report.add("throughput", name, r.throughputBs, "BS/s");
        t.addRow({name,
                  Table::fmtCount(
                      static_cast<std::uint64_t>(r.throughputBs)),
                  Table::fmt(100.0 * r.throughputBs /
                                 baseline.throughputBs,
                             1) +
                      "%",
                  Table::fmt(r.hbmBytes / 1073741824.0, 2)});
    };

    add("full design (64-way KSK reuse, 4 groups x 16, 4 stream sets)",
        baseline);

    {
        // No KSK reuse: every ciphertext fetches its own KSK slice.
        compiler::SchedulerConfig sched = base_sched;
        sched.kskReuse = 1;
        add("no KSK reuse", runWith(base_cfg, sched, params));
    }
    {
        // No BSK stream reuse: Private-A1 only holds one stream set.
        ArchConfig cfg = base_cfg;
        cfg.maxStreamSets = 1;
        add("no BSK stream reuse (1 stream set)",
            runWith(cfg, base_sched, params));
    }
    {
        // Narrow batching: groups of 4 ciphertexts leave VPE rows idle.
        compiler::SchedulerConfig sched = base_sched;
        sched.groupSize = 4;
        add("narrow batching (groups of 4)",
            runWith(base_cfg, sched, params));
    }
    {
        // Single scheduling group: no group-level overlap at all.
        compiler::SchedulerConfig sched = base_sched;
        sched.numGroups = 1;
        add("single scheduling group",
            runWith(base_cfg, sched, params));
    }
    {
        // Everything off.
        compiler::SchedulerConfig sched = base_sched;
        sched.kskReuse = 1;
        sched.groupSize = 4;
        sched.numGroups = 1;
        ArchConfig cfg = base_cfg;
        cfg.maxStreamSets = 1;
        add("all mechanisms disabled", runWith(cfg, sched, params));
    }
    t.print(std::cout);

    bench::note("the full design's 64-fold BSK reuse = 4 VPE rows x 4 "
                "XPUs x 4 buffered streams; KSK reuse spans the same "
                "64-ciphertext superbatch (Section IV-C).");
    return 0;
}
