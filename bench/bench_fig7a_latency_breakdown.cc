/**
 * @file
 * Regenerates Figure 7-a: the latency breakdown of one bootstrap across
 * Morphling's components for sets I-IV. The paper reports the XPU
 * (blind rotation) at 88-93% of the total; the VPU stages (MS, SE, KS)
 * make up the rest.
 */

#include <iostream>

#include "arch/accelerator.h"
#include "bench_util.h"

using namespace morphling;
using namespace morphling::arch;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "fig7a_latency_breakdown");
    bench::banner("Figure 7-a",
                  "per-bootstrap latency breakdown across components");

    const ArchConfig cfg = ArchConfig::morphlingDefault();
    Table t({"Set", "XPU (BR)", "VPU (MS)", "VPU (SE)", "VPU (KS)",
             "XPU share", "Paper XPU share"});

    for (const char *set : {"I", "II", "III", "IV"}) {
        const auto &params = tfhe::paramsByName(set);
        Accelerator acc(cfg, params);
        const SimReport r = acc.runBootstrapBatch(64);

        double total = 0;
        for (const auto &[stage, cycles] : r.latencyBreakdown)
            total += cycles;
        const double br = r.latencyBreakdown.at("XPU (blind rotation)");
        auto cyc = [&](const char *key) {
            return Table::fmtCount(static_cast<std::uint64_t>(
                r.latencyBreakdown.at(key)));
        };
        t.addRow({set, cyc("XPU (blind rotation)"),
                  cyc("VPU (mod switch)"), cyc("VPU (sample extract)"),
                  cyc("VPU (key switch)"),
                  Table::fmt(100.0 * br / total, 1) + "%", "88-93%"});
        report.add("xpu_share", std::string("set ") + set,
                   100.0 * br / total, "percent");
    }
    t.print(std::cout);
    bench::note("cycles for one ciphertext through the MS -> BR -> SE "
                "-> KS pipeline; the programmable VPU overlaps its "
                "stages with other ciphertexts' blind rotations at "
                "full load.");

    // Measured component activity in a steady-state run (set I).
    Accelerator acc(cfg, tfhe::paramsByName("I"));
    const SimReport r = acc.runBootstrapBatch(2048);
    Table u({"Component", "Busy fraction of makespan"});
    u.addRow({"XPU complex (compute)", Table::fmt(r.xpuBusyFrac, 3)});
    u.addRow({"XPU complex (BSK stall)",
              Table::fmt(r.xpuStallFrac, 3)});
    u.addRow({"VPU lane-groups (mean)", Table::fmt(r.vpuBusyFrac, 3)});
    u.print(std::cout);
    report.add("xpu_busy_frac", "set I, batch 2048", r.xpuBusyFrac,
               "fraction");
    report.add("xpu_stall_frac", "set I, batch 2048", r.xpuStallFrac,
               "fraction");
    return 0;
}
