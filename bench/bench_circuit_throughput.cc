/**
 * @file
 * Circuit IR throughput: gate bootstraps per second through the
 * exec::CircuitExecutor at 1/2/4 functional shards.
 *
 * The workload is a batch of independent 8-bit ripple-carry adders
 * fused into one circuit::Circuit, so every bootstrap level is wide
 * enough for the sharded backend to fan out. Shards are threads on
 * this host, so the wall-clock gates/sec is the honest figure here; on
 * a single-core CI container expect flat scaling (the sharded run's
 * value is its bit-identity, checked in tests, not its speed).
 */

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "circuit/circuit.h"
#include "circuit/lowering.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/circuit_executor.h"
#include "exec/sharded_backend.h"
#include "tfhe/encoding.h"

using namespace morphling;

namespace {

/** `count` independent 8-bit adders in one circuit. */
circuit::Circuit
adderBatch(unsigned count, unsigned bits)
{
    circuit::Circuit c;
    for (unsigned k = 0; k < count; ++k) {
        std::vector<circuit::Wire> a, b, sum;
        for (unsigned i = 0; i < bits; ++i)
            a.push_back(c.bitInput());
        for (unsigned i = 0; i < bits; ++i)
            b.push_back(c.bitInput());
        const auto carry = circuit::buildRippleAdder(c, a, b, sum);
        for (auto w : sum)
            c.markOutput(w);
        c.markOutput(carry);
    }
    return c;
}

double
runOnceMs(const tfhe::EvaluationKeys &keys,
          const circuit::LoweredCircuit &lowered,
          const std::vector<tfhe::LweCiphertext> &inputs,
          unsigned shards)
{
    auto backend = exec::ShardedBackend::functional(keys, shards);
    exec::CircuitExecutor executor(keys.params, backend);
    const auto t0 = std::chrono::steady_clock::now();
    (void)executor.run(lowered, inputs);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "circuit_throughput");
    bench::banner("Circuit throughput",
                  "gate bootstraps/sec through exec::CircuitExecutor "
                  "at 1/2/4 shards");

    constexpr unsigned kAdders = 8;
    constexpr unsigned kBits = 8;
    Rng rng(0xC14C);
    const auto keyset =
        tfhe::KeySet::generate(tfhe::paramsTest(), rng);
    const auto keys = tfhe::EvaluationKeys::fromKeySet(keyset);

    const auto c = adderBatch(kAdders, kBits);
    const compiler::SwScheduler scheduler(keyset.params);
    const auto lowered = circuit::lower(c, scheduler);
    std::vector<tfhe::LweCiphertext> inputs;
    for (unsigned i = 0; i < c.numInputs(); ++i)
        inputs.push_back(tfhe::encryptBit(keyset, (i % 3) == 0, rng));

    std::cout << "  workload: " << kAdders << " x " << kBits
              << "-bit adders = " << c.bootstrapCount()
              << " gate bootstraps over " << c.bootstrapDepth()
              << " levels\n\n";

    // Warm FFT tables and allocator pools before timing.
    (void)runOnceMs(keys, lowered, inputs, 1);

    constexpr unsigned kReps = 3;
    const double gates = static_cast<double>(c.bootstrapCount());
    double base_wall = 0;
    Table t({"Shards", "Wall (ms)", "Gates/s", "Speedup"});
    for (const unsigned shards : {1u, 2u, 4u}) {
        double best = 0;
        for (unsigned rep = 0; rep < kReps; ++rep) {
            const double ms =
                runOnceMs(keys, lowered, inputs, shards);
            if (rep == 0 || ms < best)
                best = ms;
        }
        if (shards == 1)
            base_wall = best;
        const double gps = gates / (best / 1e3);
        t.addRow({std::to_string(shards), Table::fmt(best, 1),
                  Table::fmtCount(static_cast<std::uint64_t>(gps)),
                  bench::times(base_wall / best, 2)});
        const std::string params = "shards=" + std::to_string(shards);
        report.add("gates_per_sec", params, gps, "gates/s");
        report.add("wall_ms", params, best, "ms");
    }
    t.print(std::cout);
    bench::note("shards are host threads here: scaling tracks the "
                "core count (flat on single-core CI); sharded "
                "bit-identity is asserted in tests/test_circuit_exec");
    return 0;
}
