/**
 * @file
 * Regenerates Figure 8-b: throughput vs number of XPUs with the
 * Private-A1 buffer fixed at 4096 KiB. The paper observes linear
 * scaling up to four XPUs and degradation beyond — the fixed on-chip
 * buffer and external bandwidth stop feeding additional arrays.
 * Run at the 128-bit set III.
 */

#include <iostream>
#include <vector>

#include "arch/accelerator.h"
#include "arch/area_power.h"
#include "bench_util.h"

using namespace morphling;
using namespace morphling::arch;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "fig8b_xpu_sweep");
    bench::banner("Figure 8-b",
                  "throughput vs number of XPUs (set III, A1 = 4 MiB)");

    const auto &params = tfhe::paramsByName("III");
    const std::vector<unsigned> counts = {1, 2, 3, 4, 5, 6, 8};

    double one_xpu = 0;
    Table t({"#XPUs", "Stream sets", "Throughput (BS/s)", "Scaling",
             "Chip area (mm^2)"});
    for (unsigned xpus : counts) {
        ArchConfig cfg = ArchConfig::morphlingDefault();
        cfg.numXpus = xpus;
        Accelerator acc(cfg, params);
        const SimReport r = acc.runBootstrapBatch(1024);
        if (xpus == 1)
            one_xpu = r.throughputBs;
        t.addRow({std::to_string(xpus), std::to_string(r.streamSets),
                  Table::fmtCount(
                      static_cast<std::uint64_t>(r.throughputBs)),
                  bench::times(r.throughputBs / one_xpu, 2),
                  Table::fmt(chipAreaPower(cfg).total().areaMm2, 1)});
        report.add("throughput",
                   "set III, xpus=" + std::to_string(xpus),
                   r.throughputBs, "BS/s");
    }
    t.print(std::cout);

    bench::note("paper: linear until four XPUs, then degradation — "
                "beyond four, the fixed Private-A1 capacity halves the "
                "BSK stream reuse and the 2-channel BSK path "
                "saturates. Morphling ships with four XPUs.");
    return 0;
}
