/**
 * @file
 * Regenerates Figure 7-b: throughput and speedup of the transform-
 * domain-reuse architecture types on sets A, B, C, with identical
 * compute resources. The baseline is the No-Reuse type (MATCHA-style);
 * Input-Reuse is Strix-style; Input+Output-Reuse is Morphling, with
 * the merge-split FFT as the final additive technique.
 */

#include <iostream>

#include "arch/accelerator.h"
#include "bench_util.h"

using namespace morphling;
using namespace morphling::arch;

namespace {

double
throughput(const ArchConfig &cfg, const tfhe::TfheParams &params)
{
    Accelerator acc(cfg, params);
    return acc.runBootstrapBatch(512).throughputBs;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "fig7b_reuse_speedup");
    bench::banner("Figure 7-b",
                  "throughput/speedup by transform-domain reuse type "
                  "(same compute resources)");

    const ArchConfig base = ArchConfig::morphlingDefault();

    Table t({"Set", "Variant", "Throughput (BS/s)", "Speedup",
             "Paper speedup"});
    struct PaperNumbers
    {
        const char *set;
        const char *input;
        const char *io;
        const char *overall; // IO + merge-split
    };
    const PaperNumbers paper[] = {
        {"A", "~1.3x", "2.0x", "2.6x"},
        {"B", "~1.5x", "2.9x", "~3.8x"},
        {"C", "~1.6x", "3.9x", "5.3x"},
    };

    for (const auto &pn : paper) {
        const auto &params = tfhe::paramsByName(pn.set);
        const double none = throughput(
            base.withReuse(ReuseMode::None, false), params);
        const double input = throughput(
            base.withReuse(ReuseMode::Input, false), params);
        const double io = throughput(
            base.withReuse(ReuseMode::InputOutput, false), params);
        const double io_ms = throughput(
            base.withReuse(ReuseMode::InputOutput, true), params);

        t.addRow({pn.set, "No-Reuse (MATCHA-style)",
                  Table::fmtCount(static_cast<std::uint64_t>(none)),
                  "1.0x", "1.0x"});
        t.addRow({pn.set, "Input-Reuse (Strix-style)",
                  Table::fmtCount(static_cast<std::uint64_t>(input)),
                  bench::times(input / none, 2), pn.input});
        t.addRow({pn.set, "Input+Output-Reuse",
                  Table::fmtCount(static_cast<std::uint64_t>(io)),
                  bench::times(io / none, 2), pn.io});
        t.addRow({pn.set, "  + merge-split FFT",
                  Table::fmtCount(static_cast<std::uint64_t>(io_ms)),
                  bench::times(io_ms / none, 2), pn.overall});
        t.addSeparator();
        const std::string set = std::string("set ") + pn.set;
        report.add("speedup_input_reuse", set, input / none, "x");
        report.add("speedup_io_reuse", set, io / none, "x");
        report.add("speedup_io_merge_split", set, io_ms / none, "x");
    }
    t.print(std::cout);

    bench::note("input+output-reuse speedups reproduce the paper "
                "(2.0/2.9/3.9x); our Input-Reuse model shares forward "
                "transforms perfectly and lands near 2x where the "
                "paper measures 1.3-1.6x — the paper's Strix-style "
                "baseline pays extra inverse-path overheads we do not "
                "model. Merge-split gains are correspondingly larger "
                "here (see EXPERIMENTS.md).");
    return 0;
}
