/**
 * @file
 * Regenerates Table IV: the area and power breakdown of Morphling in
 * 28nm, from the calibrated component model, side by side with the
 * paper's published values.
 */

#include <iostream>

#include "arch/area_power.h"
#include "bench_util.h"

using namespace morphling;
using namespace morphling::arch;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "table4_area_power");
    bench::banner("Table IV", "area and power breakdown (28nm model)");
    const ArchConfig cfg = ArchConfig::morphlingDefault();

    struct PaperRow
    {
        const char *component;
        double area;
        double power;
    };

    Table t({"Component", "Area (mm^2)", "Power (W)",
             "Paper area", "Paper power"});

    const auto xpu = xpuAreaPower(cfg);
    const PaperRow xpu_rows[] = {
        {"decomposition units", 0.01, 0.004},
        {"FFT units", 1.22, 0.91},
        {"coef buffers", 0.06, 0.03},
        {"twiddle buffer", 0.75, 0.37},
        {"VPE array", 4.71, 3.13},
        {"IFFT units", 2.45, 1.82},
    };
    for (const auto &row : xpu_rows) {
        const auto &v = xpu.entry(row.component);
        t.addRow({std::string("  ") + row.component,
                  Table::fmt(v.areaMm2), Table::fmt(v.powerW),
                  Table::fmt(row.area), Table::fmt(row.power)});
    }
    t.addRow({"XPU (one)", Table::fmt(xpu.total().areaMm2),
              Table::fmt(xpu.total().powerW), "9.23", "6.23"});
    t.addSeparator();

    const auto chip = chipAreaPower(cfg);
    const PaperRow chip_rows[] = {
        {"XPUs", 36.95, 25.11},       {"VPU", 0.22, 0.13},
        {"NoC", 0.21, 0.17},          {"Private-A1", 8.31, 4.27},
        {"Private-A2", 8.10, 3.99},   {"Private-B", 4.05, 2.42},
        {"Shared", 2.02, 0.99},       {"HBM2e PHY", 14.90, 15.90},
    };
    for (const auto &row : chip_rows) {
        const auto &v = chip.entry(row.component);
        t.addRow({row.component, Table::fmt(v.areaMm2),
                  Table::fmt(v.powerW), Table::fmt(row.area),
                  Table::fmt(row.power)});
    }
    t.addSeparator();
    t.addRow({"Total", Table::fmt(chip.total().areaMm2),
              Table::fmt(chip.total().powerW), "74.79", "53.00"});
    t.print(std::cout);
    report.add("chip_area", "morphling default, 28nm",
               chip.total().areaMm2, "mm^2");
    report.add("chip_power", "morphling default, 28nm",
               chip.total().powerW, "W");

    bench::note("densities are calibrated to the paper's synthesis "
                "(we cannot run TSMC 28nm); the model's value is "
                "consistent scaling across configuration sweeps.");

    // Demonstrate scaling for the Figure 8-b configurations.
    Table s({"#XPUs", "Chip area (mm^2)", "Chip power (W)"});
    for (unsigned x : {1u, 2u, 4u, 6u, 8u}) {
        ArchConfig v = cfg;
        v.numXpus = x;
        const auto a = chipAreaPower(v).total();
        s.addRow({std::to_string(x), Table::fmt(a.areaMm2),
                  Table::fmt(a.powerW)});
    }
    s.print(std::cout);
    return 0;
}
