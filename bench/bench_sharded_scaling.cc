/**
 * @file
 * Scaling of exec::ShardedBackend over a 4-group 64-LWE superbatch:
 * functional-backend throughput at 1/2/4 shards, plus the cycle
 * model's view of sharding the same superbatch across independent
 * accelerators.
 *
 * Throughput headline: each shard is an independent worker (a host or
 * an accelerator of its own in deployment), so the figure of merit is
 * the slowest shard's critical path — max over shards of the thread
 * CPU time spent inside the shard's run. Speedup(N) = critical
 * path(1) / critical path(N). On an N-core host this equals the wall
 * speedup; this container has one core, so wall time is also reported
 * (expect ~1x here) to keep the projection honest.
 */

#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/sharded_backend.h"
#include "exec/timing_backend.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

using namespace morphling;

namespace {

struct Sample
{
    double criticalPathMs = 0; //!< max over shards, thread CPU time
    double wallMs = 0;         //!< end-to-end load() wall time
};

Sample
runOnce(const tfhe::EvaluationKeys &keys, unsigned shards,
        const compiler::Program &program, const exec::Job &job)
{
    auto backend = exec::ShardedBackend::functional(keys, shards);
    const auto t0 = std::chrono::steady_clock::now();
    (void)backend.run(program, job);
    const auto t1 = std::chrono::steady_clock::now();
    Sample s;
    for (const auto &st : backend.shardStats()) {
        s.criticalPathMs = std::max(
            s.criticalPathMs, static_cast<double>(st.cpuNanos) / 1e6);
    }
    s.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "sharded_scaling");
    bench::banner("Sharded scaling",
                  "superbatch fan-out across N backends "
                  "(exec::ShardedBackend)");

    Rng rng(0x5CA1E);
    const auto keyset =
        tfhe::KeySet::generate(tfhe::paramsTest(), rng);
    const auto keys = tfhe::EvaluationKeys::fromKeySet(keyset);
    const auto program = compiler::SwScheduler(keyset.params)
                             .scheduleBootstrapBatch(64);

    std::vector<tfhe::LweCiphertext> inputs;
    for (unsigned i = 0; i < 64; ++i)
        inputs.push_back(tfhe::encryptPadded(keyset, i % 4, 4, rng));
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    exec::Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    bench::note("throughput projects each shard onto its own "
                "worker: speedup = critical path(1 shard) / critical "
                "path(N), critical path = slowest shard's thread CPU "
                "time");
    (void)runOnce(keys, 1, program, job); // warm caches and tables

    constexpr unsigned kReps = 4;
    const unsigned shard_counts[] = {1, 2, 4};
    double base_critical = 0;
    double base_wall = 0;
    Table t({"Shards", "Critical path (ms)", "Wall (ms)",
             "Throughput speedup", "Wall speedup"});
    for (const unsigned n : shard_counts) {
        Sample best;
        for (unsigned rep = 0; rep < kReps; ++rep) {
            const Sample s = runOnce(keys, n, program, job);
            if (rep == 0 || s.criticalPathMs < best.criticalPathMs)
                best.criticalPathMs = s.criticalPathMs;
            if (rep == 0 || s.wallMs < best.wallMs)
                best.wallMs = s.wallMs;
        }
        if (n == 1) {
            base_critical = best.criticalPathMs;
            base_wall = best.wallMs;
        }
        const double speedup = base_critical / best.criticalPathMs;
        const double wall_speedup = base_wall / best.wallMs;
        t.addRow({std::to_string(n),
                  Table::fmt(best.criticalPathMs, 1),
                  Table::fmt(best.wallMs, 1),
                  bench::times(speedup, 2),
                  bench::times(wall_speedup, 2)});
        const std::string params = "shards=" + std::to_string(n);
        report.add("critical_path_ms", params, best.criticalPathMs,
                   "ms");
        report.add("throughput_speedup", params, speedup, "x");
        report.add("wall_speedup", params, wall_speedup, "x");
    }
    t.print(std::cout);

    // The cycle model's view: the same superbatch split across N
    // independent simulated accelerators. A 16-LWE group slice keeps
    // the full BSK stream, so virtual-time scaling saturates well
    // below Nx — the honest reason multi-accelerator throughput comes
    // from sharding the *request stream*, not one superbatch.
    bench::banner("Sharded makespan (cycle model, set I)",
                  "one superbatch split across N simulated "
                  "accelerators");
    const auto &sim_params = tfhe::paramsSetI();
    const auto cfg = arch::ArchConfig::morphlingDefault();
    const auto sim_program =
        compiler::SwScheduler(sim_params).scheduleBootstrapBatch(64);
    std::uint64_t mono_cycles = 0;
    Table sim_t({"Shards", "Makespan (cycles)", "Virtual speedup"});
    for (const unsigned n : shard_counts) {
        auto backend =
            exec::ShardedBackend::timing(cfg, sim_params, n);
        const auto result = backend.run(sim_program, exec::Job{});
        if (n == 1)
            mono_cycles = result.report.cycles;
        const double speedup =
            static_cast<double>(mono_cycles) /
            static_cast<double>(result.report.cycles);
        sim_t.addRow({std::to_string(n),
                      Table::fmtCount(result.report.cycles),
                      bench::times(speedup, 2)});
        report.add("makespan_cycles",
                   "set I, shards=" + std::to_string(n),
                   static_cast<double>(result.report.cycles),
                   "cycles");
    }
    sim_t.print(std::cout);
    bench::note("virtual speedup is BSK-streaming bound: each "
                "accelerator still streams the whole bootstrapping "
                "key for its groups");

    // The shared-fabric view (arch::AcceleratorFleet): the same
    // request stream, N accelerators on one HBM. The 16-group
    // group-interleaved schedule gives every shard all four VPU lane
    // groups and phase-aligns the shards on the same blind-rotation
    // slice, so each BSK_i is fetched from HBM once and broadcast to
    // all N consumers; double-buffered prefetch hides the stream
    // behind compute. Virtual time is all on one shared clock, so the
    // makespan comparison is exact. A 1024-LWE superbatch keeps each
    // shard deep enough in chunks that the pipeline fill/drain tail
    // does not dominate.
    bench::banner("Shared-HBM fleet makespan (cycle model, set I)",
                  "1024-LWE superbatch, N accelerators on one memory "
                  "fabric with BSK broadcast");
    constexpr std::uint64_t kFleetBatch = 1024;
    const auto mono_ref_program =
        compiler::SwScheduler(sim_params).scheduleBootstrapBatch(
            kFleetBatch);
    compiler::SchedulerConfig ileave_cfg;
    ileave_cfg.numGroups = 16;
    ileave_cfg.groupSize = 16;
    ileave_cfg.interleave = compiler::InterleaveMode::kGroupInterleaved;
    const auto fleet_program =
        compiler::SwScheduler(sim_params, ileave_cfg)
            .scheduleBootstrapBatch(kFleetBatch);
    std::uint64_t mono_ref = 0;
    {
        auto backend =
            exec::ShardedBackend::fleetTiming(cfg, sim_params, 1);
        mono_ref = backend.run(mono_ref_program, exec::Job{})
                       .report.cycles;
        report.add("mono_makespan_cycles", "set I, 4x16 round-robin",
                   static_cast<double>(mono_ref), "cycles");
    }
    Table fleet_t({"Shards", "Private (cycles)", "Fleet (cycles)",
                   "Fleet speedup", "BSK traffic saved", "XPU stall"});
    for (const unsigned n : shard_counts) {
        auto priv =
            exec::ShardedBackend::timing(cfg, sim_params, n);
        const auto priv_result = priv.run(fleet_program, exec::Job{});
        auto backend =
            exec::ShardedBackend::fleetTiming(cfg, sim_params, n);
        const auto result = backend.run(fleet_program, exec::Job{});
        const auto &fr = backend.fleetReport();
        const double speedup =
            static_cast<double>(mono_ref) /
            static_cast<double>(result.report.cycles);
        const double traffic_saved =
            fr.bskFetchedBytes > 0
                ? static_cast<double>(priv_result.report.bskBytes) /
                      static_cast<double>(fr.bskFetchedBytes)
                : 1.0;
        fleet_t.addRow({std::to_string(n),
                        Table::fmtCount(priv_result.report.cycles),
                        Table::fmtCount(result.report.cycles),
                        bench::times(speedup, 2),
                        bench::times(traffic_saved, 2),
                        Table::fmt(result.report.xpuStallFrac * 100, 1) +
                            "%"});
        const std::string params = "set I, shards=" + std::to_string(n);
        report.add("private_makespan_cycles", params,
                   static_cast<double>(priv_result.report.cycles),
                   "cycles");
        report.add("fleet_makespan_cycles", params,
                   static_cast<double>(result.report.cycles), "cycles");
        report.add("fleet_speedup", params, speedup, "x");
        report.add("fleet_broadcast_amortization", params,
                   fr.broadcastAmortization, "x");
        report.add("fleet_bsk_fetched_bytes", params,
                   static_cast<double>(fr.bskFetchedBytes), "bytes");
        report.add("fleet_bsk_delivered_bytes", params,
                   static_cast<double>(fr.bskDeliveredBytes), "bytes");
        report.add("fleet_xpu_stall_frac", params,
                   result.report.xpuStallFrac, "frac");
    }
    fleet_t.print(std::cout);
    bench::note("fleet speedup is vs the 4x16 round-robin mono "
                "schedule (best single-accelerator baseline); private "
                "columns run the same interleaved program on N "
                "private memory systems");
    bench::note("virtual-time makespans on a shared clock; the host "
                "is still one core, so wall time does not scale — the "
                "makespan projection is the deployment claim");

    // Prefetch ablation: with the double buffer off (depth 1) the XPU
    // waits for every BSK slice; depth 2 hides the stream entirely.
    bench::banner("BSK prefetch ablation (4-shard fleet, set I)",
                  "bskPrefetchDepth 1 (serial fetch) vs 2 (double "
                  "buffer)");
    Table ab_t({"Depth", "Makespan (cycles)", "XPU stall"});
    for (const unsigned depth : {1u, 2u}) {
        auto ab_cfg = cfg;
        ab_cfg.bskPrefetchDepth = depth;
        auto backend =
            exec::ShardedBackend::fleetTiming(ab_cfg, sim_params, 4);
        const auto result = backend.run(fleet_program, exec::Job{});
        ab_t.addRow({std::to_string(depth),
                     Table::fmtCount(result.report.cycles),
                     Table::fmt(result.report.xpuStallFrac * 100, 1) +
                         "%"});
        const std::string params =
            "set I, shards=4, depth=" + std::to_string(depth);
        report.add("prefetch_makespan_cycles", params,
                   static_cast<double>(result.report.cycles), "cycles");
        report.add("prefetch_xpu_stall_frac", params,
                   result.report.xpuStallFrac, "frac");
    }
    ab_t.print(std::cout);
    return 0;
}
