/**
 * @file
 * Measures the BootstrapService against the raw batch hot path it
 * wraps:
 *
 *  1. Full-load throughput: >= 1000 requests pushed through the
 *     service (64-LWE superbatches, worker pool) vs. one
 *     batchBootstrap call over the same inputs with all hardware
 *     threads. The service's queueing/assembly overhead must stay
 *     within 10% of raw.
 *  2. Trickle load: a single client submitting one request at a time.
 *     Batches never fill, so every request rides a flush-timer batch;
 *     the p99 queueing latency must stay bounded by maxWait instead
 *     of waiting (forever) for 63 peers.
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/bootstrap_service.h"
#include "tfhe/encoding.h"

using namespace morphling;
using namespace morphling::service;
using Clock = std::chrono::steady_clock;

namespace {

double
seconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "service_throughput");
    bench::banner("Service throughput",
                  "BootstrapService superbatch assembly vs. the raw "
                  "batch hot path");

    const tfhe::TfheParams &params = tfhe::paramsTest();
    Rng rng(0x5EB47C);
    const tfhe::KeySet keys = tfhe::KeySet::generate(params, rng);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });

    constexpr unsigned kRequests = 1024;
    std::vector<tfhe::LweCiphertext> inputs;
    inputs.reserve(kRequests);
    for (unsigned i = 0; i < kRequests; ++i)
        inputs.push_back(tfhe::encryptPadded(keys, i % 4, 4, rng));

    // --- raw hot path: one batch call, all hardware threads ----------
    tfhe::BatchOptions all_threads;
    all_threads.threads = 0;
    const auto raw_t0 = Clock::now();
    auto raw_out = tfhe::batchBootstrap(keys, inputs, lut, all_threads);
    const double raw_seconds = seconds(Clock::now() - raw_t0);
    const double raw_bs = kRequests / raw_seconds;

    // --- service, saturated ------------------------------------------
    ServiceConfig config;
    config.maxOutstanding = kRequests; // measure assembly, not admission
    config.maxWait = std::chrono::microseconds(5000);
    double svc_seconds = 0;
    std::uint64_t full_batches = 0, superbatches = 0;
    double occupancy = 0;
    {
        BootstrapService svc(keys, config);
        const LutId id = svc.registerLut(lut);
        std::vector<std::future<tfhe::LweCiphertext>> futures;
        futures.reserve(kRequests);
        const auto t0 = Clock::now();
        for (unsigned i = 0; i < kRequests; ++i)
            futures.push_back(svc.submit(inputs[i], id));
        for (auto &f : futures)
            f.wait();
        svc_seconds = seconds(Clock::now() - t0);
        const ServiceStats stats = svc.stats();
        full_batches = stats.fullBatches;
        superbatches = stats.superbatches;
        occupancy = stats.occupancy.mean();
        svc.shutdown();
    }
    const double svc_bs = kRequests / svc_seconds;

    Table t({"Path", "Requests", "Seconds", "BS/s", "vs raw"});
    t.addRow({"raw batchBootstrap (all threads)",
              Table::fmtCount(kRequests), Table::fmt(raw_seconds, 3),
              Table::fmtCount(static_cast<std::uint64_t>(raw_bs)),
              "1.00x"});
    t.addRow({"BootstrapService (64-superbatches)",
              Table::fmtCount(kRequests), Table::fmt(svc_seconds, 3),
              Table::fmtCount(static_cast<std::uint64_t>(svc_bs)),
              bench::times(svc_bs / raw_bs, 2)});
    t.print(std::cout);
    bench::note("target: service >= 0.90x of raw at full batches "
                "(measured " + Table::fmt(svc_bs / raw_bs, 3) + "x; " +
                Table::fmtCount(superbatches) + " batches, " +
                Table::fmtCount(full_batches) + " full, mean occupancy " +
                Table::fmt(occupancy, 1) + ")");
    report.add("raw_throughput", "TEST params, all threads", raw_bs,
               "BS/s");
    report.add("service_throughput", "TEST params, 64-superbatch",
               svc_bs, "BS/s");
    report.add("service_vs_raw", "TEST params", svc_bs / raw_bs, "x");

    // --- trickle load: the flush timer bounds latency -----------------
    ServiceConfig trickle;
    trickle.maxWait = std::chrono::microseconds(2000);
    constexpr unsigned kTrickle = 48;
    std::vector<double> latencies_us;
    double queue_p99_source_max = 0, queue_mean = 0;
    std::uint64_t timer_flushes = 0;
    {
        BootstrapService svc(keys, trickle);
        const LutId id = svc.registerLut(lut);
        for (unsigned i = 0; i < kTrickle; ++i) {
            const auto t0 = Clock::now();
            auto future = svc.submit(inputs[i], id);
            future.wait();
            latencies_us.push_back(
                seconds(Clock::now() - t0) * 1e6);
            std::this_thread::sleep_for(
                std::chrono::microseconds(500));
        }
        const ServiceStats stats = svc.stats();
        timer_flushes = stats.timerFlushes;
        queue_p99_source_max = stats.queueLatencyUs.max();
        queue_mean = stats.queueLatencyUs.mean();
        svc.shutdown();
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    const double p50 = latencies_us[latencies_us.size() / 2];
    const double p99 =
        latencies_us[std::min<std::size_t>(latencies_us.size() - 1,
                                           latencies_us.size() * 99 /
                                               100)];

    Table t2({"Trickle metric", "Value"});
    t2.addRow({"requests (1 in flight)", Table::fmtCount(kTrickle)});
    t2.addRow({"flush timer (maxWait)", "2000 us"});
    t2.addRow({"timer flushes", Table::fmtCount(timer_flushes)});
    t2.addRow({"queue latency mean", Table::fmt(queue_mean, 0) + " us"});
    t2.addRow({"queue latency max",
               Table::fmt(queue_p99_source_max, 0) + " us"});
    t2.addRow({"end-to-end p50", Table::fmt(p50, 0) + " us"});
    t2.addRow({"end-to-end p99", Table::fmt(p99, 0) + " us"});
    t2.print(std::cout);
    bench::note("without the flush timer a lone request would wait "
                "for 63 peers; with it, queueing is bounded by "
                "maxWait + one batch execution");
    report.add("trickle_p50", "TEST params, maxWait=2000us", p50, "us");
    report.add("trickle_p99", "TEST params, maxWait=2000us", p99, "us");

    (void)raw_out;
    return 0;
}
