/**
 * @file
 * Regenerates Table VI: application execution time of Morphling vs a
 * 64-core CPU for the XGBoost classifier, DeepCNN-20/50/100 and VGG-9.
 *
 * Morphling times come from simulating the SW-scheduled workload on
 * the cycle-level model. CPU times come from the calibrated 64-core
 * Concrete model (per-bootstrap cost from Table V, bootstraps
 * parallelized across cores). All applications run at 128-bit
 * security; the sign-comparison workloads (XGBoost, VGG-9 ReLUs) map
 * onto the single-level set IV, the CNN LUT workloads onto set III —
 * the decomposition that reproduces the paper's published times (see
 * EXPERIMENTS.md for the VGG-9 activation-count discussion).
 */

#include <iostream>

#include "apps/cpu_cost_model.h"
#include "apps/workload_exec.h"
#include "apps/workloads.h"
#include "bench_util.h"

using namespace morphling;

int
main(int argc, char **argv)
{
    bench::Report json(argc, argv, "table6_applications");
    bench::banner("Table VI",
                  "application execution time: Morphling vs CPU "
                  "(128-bit sets)");

    const arch::ArchConfig cfg = arch::ArchConfig::morphlingDefault();

    struct AppRow
    {
        compiler::Workload workload;
        const char *set;
        const char *paperCpu;
        const char *paperMorphling;
        const char *paperSpeedup;
    };
    const AppRow rows[] = {
        {apps::xgboostWorkload(100, 6), "IV", "9.59", "0.06", "144x"},
        {apps::deepCnnWorkload(20), "III", "33.32", "0.34", "95x"},
        {apps::deepCnnWorkload(50), "III", "74.94", "0.84", "88x"},
        {apps::deepCnnWorkload(100), "III", "180.09", "1.72", "104x"},
        {apps::vgg9Workload(), "IV", "94.78", "0.67", "140x"},
    };

    Table t({"Application", "Set", "PBS count", "CPU model (s)",
             "Morphling sim (s)", "Speedup", "Paper CPU (s)",
             "Paper Morphling (s)", "Paper speedup"});

    for (const auto &row : rows) {
        const auto &params = tfhe::paramsByName(row.set);
        const apps::CpuCostModel cpu = apps::paperConcreteCpu(params);

        const double cpu_s =
            cpu.workloadSeconds(row.workload, params.lweDimension);
        const auto report =
            apps::timeWorkload(row.workload, cfg, params);

        t.addRow({row.workload.name, row.set,
                  Table::fmtCount(row.workload.totalBootstraps()),
                  Table::fmt(cpu_s), Table::fmt(report.seconds),
                  bench::times(cpu_s / report.seconds, 0),
                  row.paperCpu, row.paperMorphling, row.paperSpeedup});
        json.add("morphling_seconds", row.workload.name,
                 report.seconds, "s");
        json.add("speedup_vs_cpu", row.workload.name,
                 cpu_s / report.seconds, "x");
    }
    t.print(std::cout);

    bench::note("CPU model: Concrete per-bootstrap latency (Table V, "
                "op-count-extrapolated for set IV) over 64 cores at "
                "70% parallel efficiency, plus linear ops at 3 "
                "GMAC/s/core over (n+1)-word ciphertexts.");
    bench::note("our VGG-9 counts one PBS per post-conv activation "
                "(230k); the paper's published times imply ~65k "
                "activations (pruned/quantized ReLU schedule), so both "
                "our CPU and Morphling columns scale up together and "
                "the speedup — the architecture claim — is preserved.");
    return 0;
}
