/**
 * @file
 * Regenerates Figure 1: the operation / memory / execution-time
 * breakdown of one bootstrap at the 128-bit parameter set
 * (N, n, k, l_b, l_k) = (1024, 481, 2, 4, 9).
 *
 * Operations use the closed-form counting of tfhe/opcount.h with the
 * CPU-reference cost model (N-point FFT, inverse transform per
 * product, as a CPU library executes it). Execution time is measured
 * by timing this repository's own TFHE implementation on the current
 * host (the paper measured Concrete on a Xeon; absolute times differ,
 * the split is what Figure 1 shows).
 */

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/opcount.h"

using namespace morphling;
using namespace morphling::tfhe;

namespace {

double
percent(std::uint64_t part, std::uint64_t whole)
{
    return 100.0 * static_cast<double>(part) /
           static_cast<double>(whole);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "fig1_breakdown");
    bench::banner("Figure 1",
                  "operation breakdown of bootstrapping, 128-bit set "
                  "(N=1024, n=481, k=2, l_b=4, l_k=9)");
    const TfheParams &params = paramsFig1();
    std::cout << params.summary() << "\n";

    // --- Operations ------------------------------------------------
    const OpBreakdown ops = bootstrapOps(params, CostModel::CpuReference);
    Table op_table({"Task", "Multiplications", "Share",
                    "Paper (Fig. 1)"});
    op_table.addRow({"I/FFT (blind rotation)",
                     Table::fmtCount(ops.fftMults),
                     Table::fmt(percent(ops.fftMults, ops.total())) + "%",
                     "~88%"});
    op_table.addRow({"Pointwise MULT (blind rotation)",
                     Table::fmtCount(ops.pointwiseMults),
                     Table::fmt(percent(ops.pointwiseMults,
                                        ops.total())) +
                         "%",
                     "~9%"});
    op_table.addRow({"Key switching",
                     Table::fmtCount(ops.keySwitchMults),
                     Table::fmt(percent(ops.keySwitchMults,
                                        ops.total())) +
                         "%",
                     "1.9%"});
    op_table.addRow(
        {"Other (decomp, MS, SE)",
         Table::fmtCount(ops.decompOps + ops.modSwitchOps +
                         ops.sampleExtractOps),
         Table::fmt(percent(ops.decompOps + ops.modSwitchOps +
                                ops.sampleExtractOps,
                            ops.total())) +
             "%",
         "~1%"});
    op_table.addSeparator();
    op_table.addRow({"Total", Table::fmtCount(ops.total()), "100%", ""});
    op_table.print(std::cout);

    std::cout << "polynomial multiplications per bootstrap: "
              << Table::fmtCount(polyMultsPerBootstrap(params))
              << "  (paper: \"more than 10,000\")\n";
    report.add("fft_share", "fig1 set",
               percent(ops.fftMults, ops.total()), "percent");
    report.add("poly_mults_per_bootstrap", "fig1 set",
               static_cast<double>(polyMultsPerBootstrap(params)),
               "count");

    // --- Memory ------------------------------------------------------
    const MemBreakdown mem = bootstrapMem(params);
    Table mem_table({"Structure", "Size (MB)", "Paper (Fig. 1)"});
    mem_table.addRow({"BSK (Fourier domain, f64)",
                      Table::fmt(mem.bskTransformBytes / 1048576.0),
                      "101.4 MB"});
    mem_table.addRow({"BSK (coefficient domain, 32-bit)",
                      Table::fmt(mem.bskBytes / 1048576.0), "-"});
    mem_table.addRow({"KSK", Table::fmt(mem.kskBytes / 1048576.0),
                      "33.8 MB"});
    mem_table.addRow({"ACC ciphertext",
                      Table::fmt(mem.accBytes / 1048576.0, 4), "-"});
    mem_table.print(std::cout);
    bench::note("the paper's 101.4 MB BSK sits between our 32-bit "
                "coefficient (70.9 MB) and f64 Fourier (141.9 MB) "
                "formats; Concrete stores a mixed representation.");

    // --- Execution time (this host, this library) -------------------
    Rng rng(0xF16);
    const KeySet keys = KeySet::generate(params, rng);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) { return m; });
    auto ct = encryptPadded(keys, 1, 4, rng);

    // Time the stages separately.
    const auto t0 = std::chrono::steady_clock::now();
    const auto switched = modSwitch(ct, params.polyDegree);
    const auto t1 = std::chrono::steady_clock::now();
    const auto tp = buildTestPolynomial(params.polyDegree, lut);
    const auto acc = blindRotate(keys.bsk, tp, switched);
    const auto t2 = std::chrono::steady_clock::now();
    const auto extracted = acc.sampleExtract();
    const auto t3 = std::chrono::steady_clock::now();
    const auto out = keys.ksk.apply(extracted);
    const auto t4 = std::chrono::steady_clock::now();

    auto ms = [](auto a, auto b) {
        return std::chrono::duration<double, std::milli>(b - a).count();
    };
    Table time_table({"Stage", "This host (ms)", "Paper CPU (ms)"});
    time_table.addRow({"Mod switch", Table::fmt(ms(t0, t1), 3), "-"});
    time_table.addRow(
        {"Blind rotation", Table::fmt(ms(t1, t2), 2), "37.7"});
    time_table.addRow(
        {"Sample extraction", Table::fmt(ms(t2, t3), 3), "-"});
    time_table.addRow({"Key switching", Table::fmt(ms(t3, t4), 2),
                       "6.4"});
    time_table.print(std::cout);
    report.add("blind_rotate_ms", "fig1 set, this host", ms(t1, t2),
               "ms");
    report.add("key_switch_ms", "fig1 set, this host", ms(t3, t4),
               "ms");
    bench::note("absolute times differ from the paper's Xeon 6226R "
                "(and our l_k differs in the KS stage); blind rotation "
                "dominating is the reproduced claim.");

    // Sanity: the result still decrypts.
    std::cout << "decrypt(bootstrap(1)) = "
              << decryptPadded(keys, out, 4) << " (expect 1)\n";
    return 0;
}
