/**
 * @file
 * Remote execution round trip over a loopback TCP socket, against the
 * in-process baseline:
 *
 *  1. Baseline: a FunctionalBackend runs a 64-LWE superbatch in
 *     process; mean per-superbatch latency sets the reference.
 *  2. Remote: the same program/job ships to an exec::RemoteServer on
 *     127.0.0.1 (framed protocol: serialized program + ciphertexts +
 *     LUT up, streamed retirements + outputs back) through an
 *     exec::RemoteBackend. The cold first request (connect, handshake,
 *     wire key enrollment) is reported separately from the warm
 *     steady state.
 *
 * The headline is remote_overhead_ratio (warm remote / local), gated
 * at <= 1.5x by scripts/check_remote_bench.py in the perf-smoke CI
 * leg: on loopback the wire cost of a superbatch (~17 KiB each way
 * for TEST params) must stay small next to 64 blind rotations.
 */

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/functional_backend.h"
#include "exec/remote_backend.h"
#include "exec/remote_server.h"
#include "tfhe/encoding.h"

using namespace morphling;
using Clock = std::chrono::steady_clock;

namespace {

constexpr unsigned kSuperbatch = 64;
constexpr unsigned kIters = 8;

double
micros(Clock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "remote_roundtrip");
    bench::banner("Remote round trip",
                  "64-LWE superbatch over loopback TCP vs. the "
                  "in-process FunctionalBackend");

    const tfhe::TfheParams &params = tfhe::paramsTest();
    Rng rng(0x4E3B);
    const tfhe::KeySet keys = tfhe::KeySet::generate(params, rng);
    const auto eval = tfhe::EvaluationKeys::fromKeySet(keys);

    std::vector<tfhe::LweCiphertext> inputs;
    for (unsigned i = 0; i < kSuperbatch; ++i)
        inputs.push_back(tfhe::encryptPadded(keys, i % 4, 4, rng));
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto program = compiler::SwScheduler(params)
                             .scheduleBootstrapBatch(kSuperbatch);
    const exec::Job job = exec::Job::batch(inputs, lut);

    // --- in-process baseline ------------------------------------------
    exec::FunctionalBackend local(eval);
    local.run(program, job); // warm caches / FFT dispatch
    const auto t0 = Clock::now();
    for (unsigned i = 0; i < kIters; ++i)
        local.run(program, job);
    const double local_us = micros(Clock::now() - t0) / kIters;

    // --- remote over loopback -----------------------------------------
    // The server starts empty: the first request pays connect +
    // handshake + wire key enrollment (the cold path a new tenant
    // sees); warm iterations reuse the connection and the enrolled
    // key.
    exec::RemoteServerConfig serverConfig;
    serverConfig.inner.kind = exec::BackendKind::kFunctional;
    exec::RemoteServer server(serverConfig);
    server.start();

    exec::RemoteClientConfig clientConfig;
    clientConfig.port = server.port();
    exec::RemoteBackend remote(eval, clientConfig);

    const auto c0 = Clock::now();
    remote.run(program, job);
    const double cold_us = micros(Clock::now() - c0);

    const auto r0 = Clock::now();
    for (unsigned i = 0; i < kIters; ++i)
        remote.run(program, job);
    const double remote_us = micros(Clock::now() - r0) / kIters;
    const double bytes_up = static_cast<double>(remote.lastBytesSent());
    const double bytes_down =
        static_cast<double>(remote.lastBytesReceived());

    const auto stats = server.stats();
    server.stop();

    const double overhead = remote_us / local_us;

    Table t({"Backend", "us/superbatch", "us/LWE", "wire up KiB",
             "wire down KiB"});
    t.addRow({"functional (local)", Table::fmt(local_us, 0),
              Table::fmt(local_us / kSuperbatch, 1), "-", "-"});
    t.addRow({"remote (loopback)", Table::fmt(remote_us, 0),
              Table::fmt(remote_us / kSuperbatch, 1),
              Table::fmt(bytes_up / 1024.0, 1),
              Table::fmt(bytes_down / 1024.0, 1)});
    t.print(std::cout);
    bench::note("overhead = " + bench::times(overhead, 2) +
                " (CI gate: <= 1.5x warm); cold first request " +
                Table::fmt(cold_us, 0) +
                " us including connect + key enrollment");
    bench::note("server saw " + std::to_string(stats.requests) +
                " requests / " + std::to_string(stats.executions) +
                " executions, " + std::to_string(stats.replays) +
                " replays");

    report.add("local_superbatch_us", "TEST params, batch=64",
               local_us, "us");
    report.add("remote_superbatch_us",
               "TEST params, batch=64, loopback warm", remote_us, "us");
    report.add("remote_cold_us",
               "TEST params, batch=64, connect+enroll", cold_us, "us");
    report.add("remote_overhead_ratio", "warm remote / local",
               overhead, "x");
    report.add("wire_bytes_up", "per superbatch request", bytes_up,
               "bytes");
    report.add("wire_bytes_down", "per superbatch response",
               bytes_down, "bytes");
    report.add("server_executions", "loopback server",
               static_cast<double>(stats.executions), "count");
    report.add("server_replays", "loopback server",
               static_cast<double>(stats.replays), "count");
    return 0;
}
