#!/usr/bin/env python3
"""Validate the remote-overhead gate in BENCH_remote_roundtrip.json.

Run by the perf-smoke CI leg after `bench_remote_roundtrip --json`.
Checks:

  1. The report carries a context stamp (git_sha) and every required
     metric row.
  2. Overhead: the warm remote superbatch (loopback TCP through
     exec::RemoteBackend/RemoteServer) costs at most MAX_OVERHEAD of
     the in-process FunctionalBackend. The superbatch itself is 64
     blind rotations (tens of ms under TEST params), so framing +
     serialization + a loopback hop must disappear into it; 1.5x only
     trips when the transport re-serializes keys per request, stalls
     on Nagle-style buffering, or re-executes instead of replaying.
  3. Idempotency never regressed into re-execution: the server
     reports zero replays in this clean-path run, and execution count
     matches request volume (cold enrollment adds one rejected
     request, no extra execution).
  4. Sanity: wire bytes are positive and plausibly sized (a superbatch
     request is KiB-scale, not bytes and not GiB).

Exits non-zero with a diagnostic on any failure.
"""

import json
import sys

# Warm loopback remote over local. See the module docstring for why
# this is 1.5x and not tighter.
MAX_OVERHEAD = 1.5

REQUIRED = (
    "local_superbatch_us",
    "remote_superbatch_us",
    "remote_cold_us",
    "remote_overhead_ratio",
    "wire_bytes_up",
    "wire_bytes_down",
    "server_executions",
    "server_replays",
)


def fail(msg):
    print(f"check_remote_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_remote_roundtrip.json")
    with open(sys.argv[1]) as f:
        report = json.load(f)

    sha = report.get("git_sha", "")
    if not sha or sha == "unknown":
        fail("report lacks a git_sha context stamp")
    print(f"ok: context stamp git_sha={sha}")

    rows = {m["name"]: m["value"] for m in report.get("metrics", [])}
    for name in REQUIRED:
        if name not in rows:
            fail(f"metric {name} missing from report")
    print(f"ok: all {len(REQUIRED)} required metrics present")

    local = rows["local_superbatch_us"]
    remote = rows["remote_superbatch_us"]
    if local <= 0 or remote <= 0:
        fail(f"non-positive latency: local={local} remote={remote}")
    ratio = remote / local
    if abs(ratio - rows["remote_overhead_ratio"]) > 1e-6:
        fail(f"remote_overhead_ratio {rows['remote_overhead_ratio']:.4f}"
             f" disagrees with recomputed {ratio:.4f}")
    print(f"ok: warm remote/local = {ratio:.2f}x")
    if ratio > MAX_OVERHEAD:
        fail(f"warm remote superbatch is {ratio:.2f}x local "
             f"(> {MAX_OVERHEAD}x): the transport is not disappearing "
             "into the blind rotations")

    if rows["server_replays"] != 0:
        fail(f"{rows['server_replays']} cache replays on the clean "
             "path: the client is retrying requests it should not")
    if rows["server_executions"] <= 0:
        fail("server reports zero executions")

    for name in ("wire_bytes_up", "wire_bytes_down"):
        size = rows[name]
        if not 1024 <= size <= 64 * 1024 * 1024:
            fail(f"{name} = {size} bytes is implausible for a "
                 "64-LWE superbatch request")
    print("ok: wire sizes plausible "
          f"({rows['wire_bytes_up'] / 1024:.1f} KiB up, "
          f"{rows['wire_bytes_down'] / 1024:.1f} KiB down)")


if __name__ == "__main__":
    main()
