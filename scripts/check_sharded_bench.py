#!/usr/bin/env python3
"""Validate the shared-HBM fleet rows of BENCH_sharded_scaling.json.

Run by the perf-smoke CI leg after `bench_sharded_scaling --json`.
Checks:

  1. Context stamp: the report names the sharded_scaling bench and
     carries the git SHA it was configured from.
  2. Rows exist: mono reference plus private/fleet makespans, fleet
     speedup and broadcast amortization for 1, 2 and 4 shards, and the
     prefetch-depth ablation rows.
  3. Gate: the 4-shard shared-HBM fleet makespan speedup over the mono
     reference is >= 2.0x. The measured value is ~3.4x on the 1024-LWE
     superbatch; the 2.0x gate only catches a fleet that regressed
     back toward the private-memory BSK-streaming bound (~1.2x).
  4. Broadcast conservation: delivered bytes = shards x fetched bytes
     (every fetch serves every shard when the group-interleaved
     schedule phase-aligns them), and the recorded amortization agrees.
  5. Prefetch ablation: depth 2 (double buffer) must strictly reduce
     both the XPU stall fraction and the makespan vs depth 1.

Exits non-zero with a diagnostic on any failure.
"""

import json
import sys

# Fleet 4-shard makespan speedup over the 4x16 round-robin mono
# schedule. See the module docstring for why this is 2.0 and not
# tighter.
MIN_FLEET_SPEEDUP = 2.0

SHARDS = (1, 2, 4)


def fail(msg):
    print(f"check_sharded_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_sharded_scaling.json")
    with open(sys.argv[1]) as f:
        report = json.load(f)

    if report.get("bench") != "sharded_scaling":
        fail(f"report names bench {report.get('bench')!r}, "
             "expected 'sharded_scaling'")
    sha = report.get("git_sha", "")
    if not sha:
        fail("report carries no git_sha context stamp")
    print(f"ok: sharded_scaling report stamped with sha {sha}")

    rows = {(m["name"], m["params"]): m["value"]
            for m in report.get("metrics", [])}

    def get(name, params):
        if (name, params) not in rows:
            fail(f"metric {name} [{params}] missing from report")
        return rows[(name, params)]

    mono = get("mono_makespan_cycles", "set I, 4x16 round-robin")
    if mono <= 0:
        fail(f"mono reference makespan {mono} is not positive")

    for n in SHARDS:
        params = f"set I, shards={n}"
        private = get("private_makespan_cycles", params)
        fleet = get("fleet_makespan_cycles", params)
        speedup = get("fleet_speedup", params)
        amort = get("fleet_broadcast_amortization", params)
        fetched = get("fleet_bsk_fetched_bytes", params)
        delivered = get("fleet_bsk_delivered_bytes", params)
        if private <= 0 or fleet <= 0:
            fail(f"non-positive makespan at shards={n}")
        if abs(speedup - mono / fleet) > 1e-6 * speedup:
            fail(f"fleet_speedup {speedup:.4f} at shards={n} disagrees "
                 f"with mono/fleet = {mono / fleet:.4f}")
        if fetched <= 0:
            fail(f"fleet fetched no BSK bytes at shards={n}")
        if abs(delivered - n * fetched) > 1e-6 * delivered:
            fail(f"broadcast conservation: delivered {delivered} != "
                 f"{n} x fetched {fetched} at shards={n}")
        if abs(amort - delivered / fetched) > 1e-6 * amort:
            fail(f"amortization {amort:.4f} disagrees with "
                 f"delivered/fetched = {delivered / fetched:.4f} "
                 f"at shards={n}")
        print(f"ok: shards={n}: fleet {fleet:.0f} cycles, "
              f"speedup {speedup:.2f}x, broadcast {amort:.2f}x")

    speedup4 = rows[("fleet_speedup", "set I, shards=4")]
    if speedup4 < MIN_FLEET_SPEEDUP:
        fail(f"4-shard fleet speedup {speedup4:.2f}x is below the "
             f"{MIN_FLEET_SPEEDUP}x gate: the shared fabric has "
             "regressed toward the private-memory BSK-streaming bound")
    print(f"ok: 4-shard fleet speedup {speedup4:.2f}x "
          f">= {MIN_FLEET_SPEEDUP}x")

    serial = get("prefetch_makespan_cycles", "set I, shards=4, depth=1")
    buffered = get("prefetch_makespan_cycles",
                   "set I, shards=4, depth=2")
    stall1 = get("prefetch_xpu_stall_frac", "set I, shards=4, depth=1")
    stall2 = get("prefetch_xpu_stall_frac", "set I, shards=4, depth=2")
    if not buffered < serial:
        fail(f"double-buffered makespan {buffered} is not below the "
             f"serial-fetch makespan {serial}")
    if not stall2 < stall1:
        fail(f"double-buffered stall {stall2} is not below the "
             f"serial-fetch stall {stall1}")
    print(f"ok: prefetch ablation: stall {stall1:.3f} -> {stall2:.3f}, "
          f"makespan {serial:.0f} -> {buffered:.0f}")


if __name__ == "__main__":
    main()
