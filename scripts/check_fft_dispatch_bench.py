#!/usr/bin/env python3
"""Validate the batched-FFT dispatch rows of BENCH_cpu_primitives.json.

Run by the perf-smoke CI leg after `bench_cpu_primitives --json` with a
filter covering the dispatch families. Checks:

  1. BM_BatchFftForward, BM_BatchFftInverse and BM_DispatchBootstrap
     entries exist, including the scalar tier (always registered).
  2. When a vector tier ran on this host, the widest tier's batched
     forward FFT at N=1024 beats scalar by a generous margin. The real
     speedup is ~2x on AVX-512 hardware; the 1.15x gate only catches a
     dispatch path that silently routes wide batches through the scalar
     kernels (shared CI runners are too noisy for a tight threshold).

Exits non-zero with a diagnostic on any failure.
"""

import json
import sys

# Tier lane widths, used to pick the widest tier that produced rows.
WIDTH = {"scalar": 1, "neon": 2, "avx2": 4, "avx512": 8}

# Below this ratio the widest tier is indistinguishable from scalar and
# the wide-kernel path is assumed broken. Generous on purpose: see the
# module docstring.
MIN_SPEEDUP = 1.15


def fail(msg):
    print(f"check_fft_dispatch_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_cpu_primitives.json")
    with open(sys.argv[1]) as f:
        report = json.load(f)

    rows = {b["name"]: b for b in report.get("benchmarks", [])}

    for family in ("BM_BatchFftForward", "BM_BatchFftInverse",
                   "BM_DispatchBootstrap"):
        names = [n for n in rows if n.startswith(family + "/")]
        if not names:
            fail(f"no {family} entries in report")
        if not any("/scalar" in n for n in names):
            fail(f"{family} has no scalar-tier row")
        print(f"ok: {family}: {len(names)} rows")

    tiers = sorted(
        {n.split("/")[1] for n in rows if n.startswith("BM_BatchFftForward/")},
        key=lambda t: WIDTH.get(t, 0),
    )
    widest = tiers[-1]
    if WIDTH.get(widest, 0) <= 1:
        print("ok: only the scalar tier is supported here; "
              "skipping the speedup gate")
        return

    scalar = rows.get("BM_BatchFftForward/scalar/1024")
    wide = rows.get("BM_BatchFftForward/%s/1024" % widest)
    if scalar is None or wide is None:
        fail("missing BM_BatchFftForward/{scalar,%s}/1024 rows" % widest)
    speedup = scalar["real_time"] / wide["real_time"]
    print(f"ok: forward FFT N=1024 {widest} vs scalar: {speedup:.2f}x")
    if speedup < MIN_SPEEDUP:
        fail(f"{widest} tier is only {speedup:.2f}x over scalar "
             f"(< {MIN_SPEEDUP}x): wide-kernel dispatch looks broken")

    dispatch = report.get("context", {}).get("fft_dispatch")
    if not dispatch:
        fail("context.fft_dispatch missing from report")
    print(f"ok: context.fft_dispatch = {dispatch}")


if __name__ == "__main__":
    main()
