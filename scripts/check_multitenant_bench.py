#!/usr/bin/env python3
"""Validate the fairness gate in BENCH_multitenant.json.

Run by the perf-smoke CI leg after `bench_multitenant --json`. Checks:

  1. The baseline and both mixed-load tenants reported p99 latency and
     superbatch density rows.
  2. Fairness: under the symmetric two-tenant mixed load the
     worst-tenant p99 stays within MAX_P99_RATIO of the best-tenant
     p99. The quantiles are power-of-two log-bucket estimates, so a
     single bucket edge is already a 2x step; the 3x gate only
     catches a front door that systematically starves one tenant.
  3. Sanity: densities are in (0, 1] and throughputs are positive.

Exits non-zero with a diagnostic on any failure.
"""

import json
import sys

# Worst-tenant p99 over best-tenant p99 under symmetric load. See the
# module docstring for why this is 3x and not tighter.
MAX_P99_RATIO = 3.0

REQUIRED = (
    "baseline_p99",
    "baseline_density",
    "baseline_throughput",
    "tenant_a_p99",
    "tenant_b_p99",
    "tenant_a_density",
    "tenant_b_density",
    "mixed_throughput",
    "fairness_p99_ratio",
)


def fail(msg):
    print(f"check_multitenant_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_multitenant.json")
    with open(sys.argv[1]) as f:
        report = json.load(f)

    rows = {m["name"]: m["value"] for m in report.get("metrics", [])}
    for name in REQUIRED:
        if name not in rows:
            fail(f"metric {name} missing from report")
    print(f"ok: all {len(REQUIRED)} required metrics present")

    for name in ("baseline_density", "tenant_a_density",
                 "tenant_b_density"):
        density = rows[name]
        if not 0.0 < density <= 1.0:
            fail(f"{name} = {density} outside (0, 1]")
    print("ok: superbatch densities in (0, 1]")

    for name in ("baseline_throughput", "mixed_throughput"):
        if rows[name] <= 0:
            fail(f"{name} = {rows[name]} is not positive")

    worst = max(rows["tenant_a_p99"], rows["tenant_b_p99"])
    best = max(1.0, min(rows["tenant_a_p99"], rows["tenant_b_p99"]))
    ratio = worst / best
    print(f"ok: mixed-load p99 worst/best = {ratio:.2f}x")
    if abs(ratio - rows["fairness_p99_ratio"]) > 1e-6:
        fail(f"fairness_p99_ratio {rows['fairness_p99_ratio']:.4f} "
             f"disagrees with recomputed {ratio:.4f}")
    if ratio > MAX_P99_RATIO:
        fail(f"worst-tenant p99 is {ratio:.2f}x the best tenant's "
             f"(> {MAX_P99_RATIO}x): the front door is starving a "
             "tenant under symmetric load")


if __name__ == "__main__":
    main()
