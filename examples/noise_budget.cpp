/**
 * @file
 * Watching the noise: measure ciphertext noise growth under
 * homomorphic additions, compare it with the analytic model, and show
 * bootstrapping resetting it — the phenomenon that makes bootstrapping
 * "an essential operation" (Section I) and Morphling's entire reason
 * to exist.
 *
 * Build & run:  ./build/examples/noise_budget
 */

#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "tfhe/encoding.h"
#include "tfhe/noise.h"

using namespace morphling;
using namespace morphling::tfhe;

int
main()
{
    const TfheParams &params = paramsTest();
    Rng rng(0xB0B);
    std::cout << "generating keys for " << params.summary() << "\n";
    const KeySet keys = KeySet::generate(params, rng);
    const NoiseModel model(params);

    std::cout << "analytic model:\n"
              << "  fresh LWE noise std        = "
              << params.lweNoiseStd << "\n"
              << "  bootstrap output noise std = "
              << std::sqrt(model.bootstrapOutputVariance()) << "\n"
              << "  mod-switch input noise std = "
              << std::sqrt(model.modSwitchVariance()) << "\n"
              << "  LUT margin at p=4          = "
              << model.slotSigmas(4, model.bootstrapOutputVariance())
              << " sigmas\n\n";

    // Accumulate encryptions of zero onto an encryption of 1 and watch
    // the phase error grow as sqrt(#additions).
    const Torus32 target = encodePadded(1, 4);
    auto ct = encryptPadded(keys, 1, 4, rng);
    Table t({"Additions", "Measured noise", "Predicted (sqrt growth)",
             "Still decrypts?"});
    int additions = 0;
    for (int step : {0, 4, 16, 64, 256}) {
        while (additions < step) {
            auto zero = encryptPadded(keys, 0, 4, rng);
            ct.addAssign(zero);
            ++additions;
        }
        const double measured =
            torusDistance(ct.phase(keys.lweKey), target);
        const double predicted =
            std::sqrt(1.0 + additions) * params.lweNoiseStd;
        t.addRow({std::to_string(additions),
                  Table::fmt(measured, 7), Table::fmt(predicted, 7),
                  decryptPadded(keys, ct, 4) == 1 ? "yes" : "NO"});
    }
    t.print(std::cout);

    // One bootstrap resets the accumulated noise.
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto refreshed = programmableBootstrap(keys, ct, lut);
    std::cout << "after bootstrap: noise = "
              << Table::fmt(
                     torusDistance(refreshed.phase(keys.lweKey), target),
                     7)
              << " (model predicts ~"
              << Table::fmt(std::sqrt(model.bootstrapOutputVariance()),
                            7)
              << "), decrypts to "
              << decryptPadded(keys, refreshed, 4) << "\n";

    // Empirical vs predicted bootstrap output noise over many samples.
    const double measured_bs =
        measureBootstrapNoiseStd(keys, 4, 40, rng);
    std::cout << "bootstrap output noise over 40 samples: measured "
              << Table::fmt(measured_bs, 7) << " vs predicted "
              << Table::fmt(std::sqrt(model.bootstrapOutputVariance()),
                            7)
              << "\n";
    return 0;
}
