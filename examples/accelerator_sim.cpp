/**
 * @file
 * Drive the cycle-level Morphling model directly: configure the chip,
 * compile a bootstrap batch, simulate it, and inspect the report —
 * the workflow behind every table/figure bench.
 *
 * Usage:  ./build/examples/accelerator_sim [SET] [COUNT] [XPUS]
 *   SET    parameter set name (I, II, III, IV, A, B, C; default I)
 *   COUNT  bootstraps to run (default 1024)
 *   XPUS   number of XPUs (default 4)
 */

#include <cstdlib>
#include <iostream>

#include "arch/accelerator.h"
#include "arch/area_power.h"
#include "common/table.h"

using namespace morphling;
using namespace morphling::arch;

int
main(int argc, char **argv)
{
    const std::string set = argc > 1 ? argv[1] : "I";
    const std::uint64_t count =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
    const unsigned xpus =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;

    const auto &params = tfhe::paramsByName(set);
    ArchConfig config = ArchConfig::morphlingDefault();
    config.numXpus = xpus;

    std::cout << "simulating " << count << " bootstraps of "
              << params.summary() << "\n"
              << "chip: " << config.numXpus << " XPUs ("
              << config.vpeRows << "x" << config.vpeCols
              << " VPE arrays, " << config.fftUnitsPerXpu << " FFT + "
              << config.ifftUnitsPerXpu << " IFFT each, merge-split "
              << (config.mergeSplitFft ? "on" : "off") << "), "
              << reuseModeName(config.reuse) << ", "
              << config.hbm.bandwidthGBs << " GB/s HBM\n";

    const auto area = chipAreaPower(config).total();
    std::cout << "area/power model: " << Table::fmt(area.areaMm2, 2)
              << " mm^2, " << Table::fmt(area.powerW, 2) << " W (28nm)\n";

    Accelerator accelerator(config, params);
    const SimReport r = accelerator.runBootstrapBatch(count);

    Table t({"Metric", "Value"});
    t.addRow({"makespan", Table::fmt(r.seconds * 1e3, 3) + " ms (" +
                              Table::fmtCount(r.cycles) + " cycles"
                              ")"});
    t.addRow({"throughput",
              Table::fmtCount(static_cast<std::uint64_t>(
                  r.throughputBs)) +
                  " bootstraps/s"});
    t.addRow({"pipeline latency (one bootstrap)",
              Table::fmt(r.pipelineLatencyMs, 3) + " ms"});
    t.addRow({"mean batched chunk latency",
              Table::fmt(r.meanChunkLatencyMs, 3) + " ms"});
    t.addRow({"XPU busy / BSK stall",
              Table::fmt(100 * r.xpuBusyFrac, 1) + "% / " +
                  Table::fmt(100 * r.xpuStallFrac, 1) + "%"});
    t.addRow({"VPU lane-group utilization",
              Table::fmt(100 * r.vpuBusyFrac, 1) + "%"});
    t.addRow({"BSK stream sets in Private-A1",
              std::to_string(r.streamSets)});
    t.addRow({"HBM traffic",
              Table::fmt(r.hbmBytes / 1048576.0, 1) + " MiB (avg " +
                  Table::fmt(r.hbmAchievedGBs, 1) + " GB/s)"});
    t.print(std::cout);

    std::cout << "\nper-bootstrap latency breakdown (cycles):\n";
    Table b({"Stage", "Cycles"});
    for (const auto &[stage, cycles] : r.latencyBreakdown)
        b.addRow({stage, Table::fmtCount(
                             static_cast<std::uint64_t>(cycles))});
    b.print(std::cout);

    std::cout << "\nNoC occupancy ("
              << Table::fmt(r.nocAggregateTBs, 1)
              << " TB/s provisioned):\n";
    Table n({"Link", "Occupancy"});
    for (const auto &[link, util] : r.nocUtilization)
        n.addRow({link, Table::fmt(100 * util, 1) + "%"});
    n.print(std::cout);
    return 0;
}
