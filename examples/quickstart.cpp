/**
 * @file
 * Quickstart: the five-minute tour of the library.
 *
 * 1. Pick a TFHE parameter set and generate keys.
 * 2. Encrypt a small integer.
 * 3. Compute on it homomorphically (add, scale).
 * 4. Refresh the noise / evaluate a function with programmable
 *    bootstrapping.
 * 5. Decrypt and check.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdint>
#include <iostream>

#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/params.h"

using namespace morphling;
using namespace morphling::tfhe;

int
main()
{
    // 1. Parameters and keys. Set I is the paper's 80-bit benchmark
    // set (N=1024, n=500); KeySet::generate derives the LWE key, the
    // GLWE key, the bootstrapping key (Fourier domain) and the
    // key-switching key from one seed.
    const TfheParams &params = paramsSetI();
    std::cout << "parameters: " << params.summary() << "\n";

    Rng rng(/*seed=*/2024);
    std::cout << "generating keys (BSK: "
              << params.bskBytes() / (1024 * 1024) << " MiB)...\n";
    const KeySet keys = KeySet::generate(params, rng);

    // 2. Encrypt. We use the padded-integer convention: messages in
    // [0, p) with one bit of padding so bootstrapping can evaluate
    // arbitrary look-up tables.
    const std::uint32_t space = 8; // 3-bit messages
    const std::uint32_t message = 5;
    LweCiphertext ct = encryptPadded(keys, message, space, rng);
    std::cout << "encrypted " << message << " (space " << space
              << ")\n";

    // 3. Homomorphic linear ops are free (no bootstrap): add a
    // constant, then an encrypted value.
    ct.addPlain(encodePadded(1, space)); // 5 + 1
    LweCiphertext one = encryptPadded(keys, 1, space, rng);
    ct.addAssign(one); // 6 + 1 = 7
    // (With one bit of padding the running sum must stay below
    // `space`; larger circuits bootstrap between additions.)

    // 4. Programmable bootstrap: refresh the accumulated noise while
    // evaluating the identity LUT. Any function [0,p) -> [0,p) works.
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return m;
    });
    std::cout << "bootstrapping (one blind rotation = "
              << params.lweDimension << " external products)...\n";
    const LweCiphertext refreshed = programmableBootstrap(keys, ct, lut);

    // 5. Decrypt.
    const std::uint32_t result = decryptPadded(keys, refreshed, space);
    std::cout << "decrypt(bootstrap(5 + 1 + 1)) = " << result
              << " (expect 7)\n";

    // Bonus: evaluate a real function under encryption: f(m) = m^2 mod 8.
    const auto square = makePaddedLut(space, [](std::uint32_t m) {
        return (m * m) % 8;
    });
    const LweCiphertext ct3 = encryptPadded(keys, 3, space, rng);
    const LweCiphertext squared =
        programmableBootstrap(keys, ct3, square);
    std::cout << "decrypt(square(3)) = "
              << decryptPadded(keys, squared, space) << " (expect 1)\n";

    return 0;
}
