/**
 * @file
 * Telemetry walkthrough (docs/observability.md): profiles one 64-LWE
 * superbatch through the BootstrapService with wall-clock spans
 * recording, replays the same superbatch on the cycle-level
 * accelerator model with the simulator bridge installed, and exports
 *
 *   profile_bootstrap_trace.json  — Chrome trace (open in Perfetto or
 *                                   chrome://tracing): the service's
 *                                   CPU spans and the accelerator's
 *                                   virtual-time tracks side by side
 *   profile_bootstrap_metrics.prom — Prometheus text exposition
 *   profile_bootstrap_metrics.json — metrics snapshot as JSON
 *
 * Runs at the TEST parameter set so it doubles as an integration test.
 */

#include <fstream>
#include <future>
#include <iostream>
#include <vector>

#include "arch/accelerator.h"
#include "common/rng.h"
#include "service/bootstrap_service.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/metrics.h"
#include "telemetry/sim_bridge.h"
#include "telemetry/telemetry.h"
#include "tfhe/encoding.h"

using namespace morphling;

int
main()
{
    constexpr unsigned kRequests = compiler::kSuperbatchSize; // 64

    // --- one superbatch through the service, spans recording ---------
    const tfhe::TfheParams &params = tfhe::paramsTest();
    Rng rng(0x9806);
    const tfhe::KeySet keys = tfhe::KeySet::generate(params, rng);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });

    auto &session = telemetry::TraceSession::instance();
    session.start(telemetry::Level::kStage);

    unsigned correct = 0;
    {
        service::BootstrapService svc(keys);
        const service::LutId id = svc.registerLut(lut);
        std::vector<std::future<tfhe::LweCiphertext>> futures;
        futures.reserve(kRequests);
        for (unsigned i = 0; i < kRequests; ++i) {
            futures.push_back(
                svc.submit(tfhe::encryptPadded(keys, i % 4, 4, rng),
                           id));
        }
        for (unsigned i = 0; i < kRequests; ++i) {
            const auto out = futures[i].get();
            correct += tfhe::decryptPadded(keys, out, 4) ==
                       (i % 4 + 1) % 4;
        }
        svc.shutdown();
    }
    session.stop();
    std::cout << "service: " << correct << "/" << kRequests
              << " requests bootstrapped correctly, "
              << session.totalSpans() << " spans recorded\n";

    // --- the same superbatch on the cycle simulator -------------------
    telemetry::SimTraceRecorder recorder;
    recorder.install();
    const arch::ArchConfig cfg = arch::ArchConfig::morphlingDefault();
    arch::Accelerator acc(cfg, tfhe::paramsByName("I"));
    const arch::SimReport report = acc.runBootstrapBatch(kRequests);
    recorder.uninstall();
    std::cout << "sim: " << report.cycles << " cycles for "
              << kRequests << " bootstraps ("
              << recorder.intervals().size()
              << " virtual-time intervals captured)\n";

    // --- export -------------------------------------------------------
    telemetry::ChromeTraceOptions options;
    options.simClockGHz = cfg.clockGHz;
    if (!telemetry::writeChromeTraceFile("profile_bootstrap_trace.json",
                                         session, &recorder, options))
        return 1;
    std::cout << "wrote profile_bootstrap_trace.json (load in Perfetto "
                 "or chrome://tracing)\n";

    {
        std::ofstream prom("profile_bootstrap_metrics.prom");
        telemetry::MetricsRegistry::instance().writePrometheus(prom);
        std::ofstream json("profile_bootstrap_metrics.json");
        telemetry::MetricsRegistry::instance().writeJson(json);
    }
    std::cout << "wrote profile_bootstrap_metrics.prom / .json\n";

    return correct == kRequests ? 0 : 1;
}
