/**
 * @file
 * A sealed-bid auction on encrypted bids: the auctioneer learns the
 * winning bid (and nothing about the losers) by running comparator +
 * multiplexer circuits over encrypted bit vectors — the gate-level
 * workload class the paper's XGBoost benchmark belongs to.
 *
 * The tournament is a circuit::Circuit submitted whole through
 * BootstrapService::submitCircuit, so the service's worker pool
 * lowers and schedules it level by level. The accelerator model then
 * prices a paper-scale batch of the same circuit, closing the loop
 * between the functional path and the performance model.
 *
 * Build & run:  ./build/examples/private_auction
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "arch/accelerator.h"
#include "circuit/circuit.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "service/bootstrap_service.h"
#include "tfhe/params.h"

using namespace morphling;
using circuit::Circuit;
using circuit::Wire;

namespace {

/** Build max(a, b) over `bits`-wide inputs: compare, then mux each
 *  output bit. */
void
buildMax(Circuit &c, const std::vector<Wire> &a,
         const std::vector<Wire> &b, std::vector<Wire> &out)
{
    const auto a_ge_b = circuit::buildGreaterEqual(c, a, b);
    for (std::size_t i = 0; i < a.size(); ++i)
        out.push_back(c.mux(a_ge_b, a[i], b[i]));
}

} // namespace

int
main()
{
    const unsigned bits = 4;
    const std::vector<unsigned> bids = {9, 3, 14, 7};

    // Build the tournament circuit: max(max(b0,b1), max(b2,b3)).
    Circuit c;
    std::vector<std::vector<Wire>> in(bids.size());
    for (auto &bid_wires : in) {
        for (unsigned i = 0; i < bits; ++i)
            bid_wires.push_back(c.bitInput());
    }
    std::vector<Wire> semi1, semi2, winner;
    buildMax(c, in[0], in[1], semi1);
    buildMax(c, in[2], in[3], semi2);
    buildMax(c, semi1, semi2, winner);
    for (auto w : winner)
        c.markOutput(w);

    std::cout << "tournament circuit: " << c.bootstrapCount()
              << " bootstraps, depth " << c.bootstrapDepth() << "\n";

    // Sanity on plaintext first.
    std::vector<std::uint32_t> plain_in;
    for (auto bid : bids) {
        for (unsigned i = 0; i < bits; ++i)
            plain_in.push_back((bid >> i) & 1);
    }
    const auto plain_out = c.evaluatePlain(plain_in);
    unsigned plain_max = 0;
    for (unsigned i = 0; i < bits; ++i)
        plain_max |= static_cast<unsigned>(plain_out[i]) << i;
    std::cout << "plaintext check: max bid = " << plain_max << "\n";

    // Encrypted run, submitted whole to the bootstrap service.
    const auto &params = tfhe::paramsTest();
    Rng rng(0xB1D5);
    std::cout << "generating keys for " << params.summary() << "\n";
    const tfhe::KeySet keys = tfhe::KeySet::generate(params, rng);

    std::vector<tfhe::LweCiphertext> enc_in;
    for (std::uint32_t b : plain_in)
        enc_in.push_back(tfhe::encryptBit(keys, b != 0, rng));

    service::ServiceConfig config;
    config.numWorkers = 2;
    service::BootstrapService service(keys, config);

    const auto t0 = std::chrono::steady_clock::now();
    auto future = service.submitCircuit(c, enc_in);
    const auto enc_out = future.get();
    const auto t1 = std::chrono::steady_clock::now();

    unsigned enc_max = 0;
    for (unsigned i = 0; i < bits; ++i) {
        enc_max |= static_cast<unsigned>(
                       tfhe::decryptBit(keys, enc_out[i]))
                   << i;
    }
    std::cout << "encrypted auction: winning bid = " << enc_max
              << " (host time "
              << std::chrono::duration<double>(t1 - t0).count()
              << " s)\n";

    // Paper-scale batch on the accelerator model: 1024 concurrent
    // auctions at the 128-bit set III.
    const auto &big = tfhe::paramsByName("III");
    const auto workload = c.toWorkload("auction-batch", 1024);
    compiler::SwScheduler scheduler(big);
    arch::Accelerator accelerator(
        arch::ArchConfig::morphlingDefault(), big);
    const auto report = accelerator.run(scheduler.schedule(workload));
    std::cout << "Morphling (simulated): 1024 auctions ("
              << workload.totalBootstraps() << " bootstraps) in "
              << report.seconds << " s = "
              << report.seconds / 1024 * 1e3 << " ms per auction\n";

    return enc_max == plain_max ? 0 : 1;
}
