/**
 * @file
 * Private neural-network inference, end to end and fully functional: a
 * small quantized MLP evaluated on an encrypted input through
 * apps::QuantizedMlp — linear layers accumulate homomorphically for
 * free, every ReLU is one programmable bootstrap (the mechanism behind
 * the paper's DeepCNN / VGG-9 benchmarks).
 *
 * The encrypted result is checked against the plaintext reference, and
 * the same model is compiled to a Morphling workload to show what a
 * batch of inferences costs on the simulated accelerator.
 *
 * Build & run:  ./build/examples/private_inference
 */

#include <iostream>
#include <vector>

#include "apps/quantized_mlp.h"
#include "arch/accelerator.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "tfhe/params.h"

using namespace morphling;
using namespace morphling::apps;

int
main()
{
    // A 4 -> 4 -> 2 quantized MLP over a 16-value signed message
    // space (activations in [-8, 8), 2-bit weights).
    QuantizedMlp mlp(16);
    {
        DenseLayer hidden;
        hidden.weights = {
            {1, -1, 2, 0}, {0, 1, -2, 1}, {2, 0, 1, -1}, {-1, 1, 0, 2}};
        hidden.shift = 1; // rescale >> 1 inside the ReLU bootstrap
        hidden.reluAfter = true;
        mlp.addLayer(std::move(hidden));

        DenseLayer logits;
        logits.weights = {{1, 2, -1, 1}, {2, -1, 1, 0}};
        logits.shift = 0;
        logits.reluAfter = false; // raw logits, no bootstrap
        mlp.addLayer(std::move(logits));
    }

    const std::vector<int> input = {1, 2, 0, 1};
    const auto reference = mlp.inferPlain(input);
    std::cout << "plaintext reference logits: " << reference[0] << ", "
              << reference[1] << "\n";

    // Keys and encrypted inference.
    const auto &params = tfhe::paramsTest();
    Rng rng(99);
    std::cout << "generating keys for " << params.summary() << "\n";
    const tfhe::KeySet keys = tfhe::KeySet::generate(params, rng);

    std::vector<tfhe::LweCiphertext> enc_input;
    for (int v : input)
        enc_input.push_back(mlp.encryptSigned(keys, v, rng));

    std::cout << "encrypted inference (" << mlp.bootstrapCount()
              << " ReLU bootstraps)...\n";
    const auto enc_out = mlp.inferEncrypted(keys, enc_input);

    bool all_match = true;
    for (std::size_t j = 0; j < enc_out.size(); ++j) {
        const int got = mlp.decryptSigned(keys, enc_out[j]);
        std::cout << "logit[" << j << "] = " << got << " (expect "
                  << reference[j] << ")\n";
        all_match &= got == reference[j];
    }
    std::cout << (all_match ? "PASS" : "FAIL")
              << ": encrypted inference "
              << (all_match ? "matches" : "does not match")
              << " the plaintext reference\n";

    // What would a batch of 1024 such inferences cost on Morphling?
    const auto &big = tfhe::paramsByName("III");
    const auto workload = mlp.workload("mlp-batch", 1024);
    compiler::SwScheduler scheduler(big);
    arch::Accelerator accelerator(
        arch::ArchConfig::morphlingDefault(), big);
    const auto report = accelerator.run(scheduler.schedule(workload));
    std::cout << "Morphling (simulated, set III): 1024 inferences ("
              << workload.totalBootstraps() << " bootstraps) in "
              << report.seconds * 1e3 << " ms\n";

    return all_match ? 0 : 1;
}
