/**
 * @file
 * Large-precision arithmetic over TFHE: the multi-ciphertext radix
 * representation the paper's introduction describes ("TFHE encrypts
 * large-precision plaintext into multiple ciphertexts ... computation
 * of multiple small-parameter ciphertexts rather than a single
 * large-parameter ciphertext").
 *
 * Demonstrates a 10-bit encrypted accumulator: digit-wise additions
 * are free; carry propagation costs two programmable bootstraps per
 * digit — the independent-bootstrap batch Morphling's scheduler packs
 * into its 64-ciphertext superbatches.
 *
 * Build & run:  ./build/examples/big_integers
 */

#include <iostream>

#include "common/rng.h"
#include "tfhe/radix.h"

using namespace morphling;
using namespace morphling::tfhe;

int
main()
{
    const TfheParams &params = paramsTest();
    Rng rng(4242);
    std::cout << "generating keys for " << params.summary() << "\n";
    const KeySet keys = KeySet::generate(params, rng);

    // A 5-digit base-4 integer holds values mod 2^10.
    const unsigned digits = 5;
    const std::uint32_t base = 4;
    auto acc = RadixCiphertext::encrypt(keys, 100, digits, base, rng);
    std::cout << "encrypted accumulator = 100 (" << digits
              << " base-" << base << " digit ciphertexts)\n";

    std::uint64_t expected = 100;
    unsigned total_bootstraps = 0;
    const std::uint64_t terms[] = {250, 99, 3, 412, 77};
    for (auto term : terms) {
        if (acc.additionsBeforeOverflow() == 0) {
            const unsigned cost = acc.propagateCarries(keys);
            total_bootstraps += cost;
            std::cout << "  [carry propagation: " << cost
                      << " bootstraps]\n";
        }
        const auto ct =
            RadixCiphertext::encrypt(keys, term, digits, base, rng);
        acc.addAssign(ct); // digit-wise, bootstrap-free
        expected += term;
        std::cout << "  += " << term << " (free digit-wise add, "
                  << acc.additionsBeforeOverflow()
                  << " adds of headroom left)\n";
    }

    total_bootstraps += acc.propagateCarries(keys);
    const std::uint64_t result = acc.decrypt(keys);
    std::cout << "decrypted sum = " << result << " (expect "
              << expected % 1024 << ", mod 2^10), using "
              << total_bootstraps << " bootstraps total\n";

    // Scalar multiplication: 3 * value, then renormalize.
    auto tripled = RadixCiphertext::encrypt(keys, 111, digits, base,
                                            rng);
    tripled.scalarMulAssign(3);
    tripled.propagateCarries(keys);
    std::cout << "3 * 111 = " << tripled.decrypt(keys)
              << " (expect 333)\n";

    return result == expected % 1024 ? 0 : 1;
}
