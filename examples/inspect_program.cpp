/**
 * @file
 * Look inside the SW scheduler (Figure 6): compile a small workload,
 * print the instruction-stream disassembly per scheduling group, the
 * opcode histogram, and the serialized machine encoding — then run it
 * on the simulator.
 *
 * Usage:  ./build/examples/inspect_program [BOOTSTRAPS]
 */

#include <cstdlib>
#include <iostream>

#include "arch/accelerator.h"
#include "common/table.h"
#include "compiler/sw_scheduler.h"

using namespace morphling;
using namespace morphling::compiler;

int
main(int argc, char **argv)
{
    const std::uint64_t count =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 48;

    const auto &params = tfhe::paramsSetI();
    SwScheduler scheduler(params);

    // A two-stage workload: a linear layer feeding a batch of
    // bootstraps (dependent stages -> barrier).
    Workload w;
    w.name = "inspect-demo";
    w.stages.push_back({count, 100000});
    w.stages.push_back({count / 2, 0});
    const Program program = scheduler.schedule(w);

    std::cout << "workload '" << w.name << "': "
              << w.totalBootstraps() << " bootstraps, "
              << w.totalLinearMacs() << " MACs -> " << program.size()
              << " instructions\n\n";

    // Per-group streams.
    for (std::uint8_t g = 0; g < 4; ++g) {
        const auto stream = program.groupStream(g);
        std::cout << "group " << int(g) << " stream (" << stream.size()
                  << " instructions):\n";
        for (const auto &inst : stream)
            std::cout << "    " << inst.toString() << "\n";
    }

    // Opcode histogram.
    std::cout << "\nopcode histogram:\n";
    Table t({"Opcode", "Count"});
    for (const auto &[op, n] : program.histogram())
        t.addRow({opcodeName(op), std::to_string(n)});
    t.print(std::cout);

    // Machine encoding round trip.
    const auto words = program.serialize();
    std::cout << "serialized: " << words.size() * 8
              << " bytes; first words:";
    for (std::size_t i = 0; i < std::min<std::size_t>(4, words.size());
         ++i)
        std::cout << " 0x" << std::hex << words[i] << std::dec;
    std::cout << "\n\n";

    // Execute.
    arch::Accelerator acc(arch::ArchConfig::morphlingDefault(), params);
    const auto r = acc.run(program);
    std::cout << "simulated: " << r.cycles << " cycles ("
              << r.seconds * 1e6 << " us), " << r.bootstraps
              << " bootstraps, XPU busy "
              << Table::fmt(100 * r.xpuBusyFrac, 1) << "%\n";
    return 0;
}
