/**
 * @file
 * The deployment split every FHE service uses — now multi-tenant,
 * served through the front door, service::MultiTenantService: each
 * client keeps its own secret key; the server enrolls each tenant's
 * evaluation keys (BSK + KSK) behind a content-derived fingerprint,
 * routes ciphertext queries by tenant id, and batches each tenant's
 * queries into Morphling-style 64-LWE superbatches (tenants never
 * share a superbatch — one bootstrapping key per batch). Per-tenant
 * token buckets bound how hard one tenant can push, and per-tenant
 * stats expose p50/p99 latency the way a production scrape would.
 * Wire format: this library's versioned binary serialization
 * (tfhe/serialize.h).
 *
 * Build & run:  ./build/examples/client_server
 */

#include <chrono>
#include <future>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "service/multi_tenant_service.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

using namespace morphling;
using namespace morphling::tfhe;
using morphling::service::LutId;
using morphling::service::MultiTenantConfig;
using morphling::service::MultiTenantService;
using morphling::service::TenantId;
using morphling::service::TenantQuota;

namespace {

/** One client's identity: its own keys and its own queries. */
struct Client {
    TenantId name;
    KeySet keys;
    std::vector<std::uint32_t> queries;
};

/**
 * What the untrusted server runs: no KeySet, no secret bits. One
 * MultiTenantService fronts every tenant; enrollment hands it only
 * serialized evaluation keys, and each query carries its tenant id.
 */
std::vector<std::vector<std::string>>
serverSide(const std::vector<std::pair<TenantId, std::string>> &enrollments,
           const std::vector<std::pair<TenantId, std::string>> &queries)
{
    MultiTenantConfig config;
    config.service.maxWait = std::chrono::milliseconds(5);
    MultiTenantService front(config);

    // Enroll every tenant. The registry fingerprints the keys
    // (content-derived, stable across restarts) and keeps the hot set
    // resident; a modest rate quota bounds each tenant's burst.
    TenantQuota quota;
    quota.ratePerSec = 1000;
    quota.burst = 64;
    for (const auto &[tenant, wire] : enrollments) {
        std::istringstream keys_in(wire);
        const auto fp = front.addTenant(
            tenant, loadEvaluationKeys(keys_in), quota);
        std::cout << "server: enrolled '" << tenant
                  << "' (key fingerprint " << std::hex << fp << std::dec
                  << ")\n";
    }

    // The service: a private threshold check, f(m) = (m >= 4), plus a
    // noise refresh — one programmable bootstrap per query. Each
    // tenant gets its own LUT table (ids are per-tenant).
    const auto table = makePaddedLut(8, [](std::uint32_t m) {
        return m >= 4 ? 1u : 0u;
    });
    std::vector<LutId> luts;
    for (const auto &[tenant, wire] : enrollments)
        luts.push_back(front.registerLut(tenant, table));

    // Accept every query first (they arrive interleaved across
    // tenants in a real deployment); the front door routes each to
    // its tenant's service and admission bucket.
    std::vector<std::future<LweCiphertext>> answers;
    std::vector<std::size_t> owner;
    for (const auto &[tenant, wire] : queries) {
        std::istringstream query_in(wire);
        std::size_t which = 0;
        while (enrollments[which].first != tenant)
            ++which;
        owner.push_back(which);
        answers.push_back(front.submit(
            tenant, loadCiphertext(query_in), luts[which]));
    }

    std::vector<std::vector<std::string>> out(enrollments.size());
    for (std::size_t i = 0; i < answers.size(); ++i) {
        std::ostringstream wire;
        saveCiphertext(wire, answers[i].get());
        out[owner[i]].push_back(wire.str());
    }

    for (const auto &[tenant, wire] : enrollments) {
        const auto stats = front.stats(tenant);
        std::cout << "server: '" << tenant << "': " << stats.completed
                  << " bootstraps, p99 " << stats.p99LatencyUs
                  << " us, " << stats.throttled << " throttled\n";
    }
    front.shutdown();
    return out;
}

} // namespace

int
main()
{
    // --- Clients: independent key ceremonies --------------------------
    const TfheParams &params = paramsTest();
    Rng rng(0xC11E47);
    std::cout << "clients: generating keys for " << params.summary()
              << "\n";
    std::vector<Client> clients;
    clients.push_back({"alice", KeySet::generate(params, rng),
                       {2, 6, 3, 7}});
    clients.push_back({"bob", KeySet::generate(params, rng),
                       {5, 1, 4}});

    // Each client serializes only its evaluation keys; the secret key
    // never leaves the client.
    std::vector<std::pair<TenantId, std::string>> enrollments;
    for (const auto &client : clients) {
        std::ostringstream wire;
        saveEvaluationKeys(wire, EvaluationKeys::fromKeySet(client.keys));
        std::cout << "client " << client.name
                  << ": evaluation keys serialized ("
                  << wire.str().size() / 1024 << " KiB)\n";
        enrollments.emplace_back(client.name, wire.str());
    }

    // --- Clients: encrypt interleaved bursts of queries ---------------
    std::vector<std::pair<TenantId, std::string>> query_wires;
    for (std::size_t round = 0;; ++round) {
        bool any = false;
        for (auto &client : clients) {
            if (round >= client.queries.size())
                continue;
            any = true;
            std::ostringstream wire;
            saveCiphertext(wire, encryptPadded(
                client.keys, client.queries[round], 8, rng));
            query_wires.emplace_back(client.name, wire.str());
        }
        if (!any)
            break;
    }

    // --- Server: blind, batched, multi-tenant computation --------------
    const auto answer_wires = serverSide(enrollments, query_wires);

    // --- Clients: decrypt their own responses --------------------------
    bool all_correct = true;
    for (std::size_t c = 0; c < clients.size(); ++c) {
        const Client &client = clients[c];
        for (std::size_t i = 0; i < client.queries.size(); ++i) {
            std::istringstream answer_in(answer_wires[c][i]);
            const LweCiphertext answer = loadCiphertext(answer_in);
            const std::uint32_t verdict =
                decryptPadded(client.keys, answer, 8);
            const bool expect = client.queries[i] >= 4;
            all_correct &= verdict == (expect ? 1u : 0u);
            std::cout << "client " << client.name << ": is "
                      << client.queries[i] << " >= 4?  server says "
                      << (verdict ? "yes" : "no") << " (expect "
                      << (expect ? "yes" : "no") << ")\n";
        }
    }
    if (!all_correct) {
        std::cout << "MISMATCH: at least one verdict was wrong\n";
        return 1;
    }
    return 0;
}
