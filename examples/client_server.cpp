/**
 * @file
 * The deployment split every FHE service uses: the client keeps the
 * secret key; the server receives only evaluation keys (BSK + KSK) and
 * ciphertexts over the wire, computes blindly, and returns a ciphertext
 * only the client can open. Wire format: this library's versioned
 * binary serialization (tfhe/serialize.h).
 *
 * Build & run:  ./build/examples/client_server
 */

#include <iostream>
#include <sstream>

#include "common/rng.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

using namespace morphling;
using namespace morphling::tfhe;

namespace {

/** What the untrusted server runs: no KeySet, no secret bits. */
std::string
serverSide(const std::string &eval_keys_wire,
           const std::string &query_wire)
{
    std::istringstream keys_in(eval_keys_wire);
    const EvaluationKeys keys = loadEvaluationKeys(keys_in);
    std::istringstream query_in(query_wire);
    const LweCiphertext query = loadCiphertext(query_in);

    // The service: a private threshold check, f(m) = (m >= 4), plus a
    // noise refresh — one programmable bootstrap.
    const auto lut = makePaddedLut(8, [](std::uint32_t m) {
        return m >= 4 ? 1u : 0u;
    });
    const LweCiphertext answer = serverBootstrap(keys, query, lut);

    std::ostringstream out;
    saveCiphertext(out, answer);
    return out.str();
}

} // namespace

int
main()
{
    // --- Client: key ceremony ----------------------------------------
    const TfheParams &params = paramsTest();
    Rng rng(0xC11E47);
    std::cout << "client: generating keys for " << params.summary()
              << "\n";
    const KeySet keys = KeySet::generate(params, rng);

    std::ostringstream eval_wire;
    saveEvaluationKeys(eval_wire, EvaluationKeys::fromKeySet(keys));
    std::cout << "client: evaluation keys serialized ("
              << eval_wire.str().size() / 1024
              << " KiB; the secret key never leaves)\n";

    // --- Client: encrypt queries --------------------------------------
    for (std::uint32_t m : {2u, 6u}) {
        std::ostringstream query_wire;
        saveCiphertext(query_wire, encryptPadded(keys, m, 8, rng));

        // --- Server: blind computation --------------------------------
        const std::string answer_wire =
            serverSide(eval_wire.str(), query_wire.str());

        // --- Client: decrypt the response ------------------------------
        std::istringstream answer_in(answer_wire);
        const LweCiphertext answer = loadCiphertext(answer_in);
        const std::uint32_t verdict = decryptPadded(keys, answer, 8);
        std::cout << "client: is " << m << " >= 4?  server says "
                  << (verdict ? "yes" : "no") << " (expect "
                  << (m >= 4 ? "yes" : "no") << ")\n";
    }
    return 0;
}
