/**
 * @file
 * The deployment split every FHE service uses — now served through the
 * blessed public surface, service::BootstrapService: the client keeps
 * the secret key; the server receives only evaluation keys (BSK + KSK)
 * and ciphertexts over the wire, batches concurrent queries into
 * Morphling-style 64-LWE superbatches, computes blindly on a worker
 * pool, and returns ciphertexts only the client can open. Wire format:
 * this library's versioned binary serialization (tfhe/serialize.h).
 *
 * Build & run:  ./build/examples/client_server
 */

#include <chrono>
#include <future>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "service/bootstrap_service.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

using namespace morphling;
using namespace morphling::tfhe;
using morphling::service::BootstrapService;
using morphling::service::LutId;
using morphling::service::ServiceConfig;

namespace {

/**
 * What the untrusted server runs: no KeySet, no secret bits. It
 * stands up one BootstrapService over the deserialized evaluation
 * keys and answers a stream of independent queries; the service
 * assembles them into superbatches, and its flush timer ships partial
 * batches so a light trickle of clients still gets answers.
 */
std::vector<std::string>
serverSide(const std::string &eval_keys_wire,
           const std::vector<std::string> &query_wires)
{
    std::istringstream keys_in(eval_keys_wire);
    EvaluationKeys keys = loadEvaluationKeys(keys_in);

    ServiceConfig config;
    config.maxWait = std::chrono::milliseconds(5);
    BootstrapService service(std::move(keys), config);

    // The service: a private threshold check, f(m) = (m >= 4), plus a
    // noise refresh — one programmable bootstrap per query.
    const LutId threshold = service.registerLut(
        makePaddedLut(8, [](std::uint32_t m) {
            return m >= 4 ? 1u : 0u;
        }));

    // Accept every query first (they arrive interleaved in a real
    // deployment); futures keep answers paired with their queries.
    std::vector<std::future<LweCiphertext>> answers;
    for (const auto &wire : query_wires) {
        std::istringstream query_in(wire);
        answers.push_back(
            service.submit(loadCiphertext(query_in), threshold));
    }

    std::vector<std::string> out;
    for (auto &answer : answers) {
        std::ostringstream wire;
        saveCiphertext(wire, answer.get());
        out.push_back(wire.str());
    }

    const auto stats = service.stats();
    std::cout << "server: " << stats.completed << " bootstraps in "
              << stats.superbatches << " superbatch(es), "
              << stats.timerFlushes << " shipped by the flush timer\n";
    service.shutdown();
    return out;
}

} // namespace

int
main()
{
    // --- Client: key ceremony ----------------------------------------
    const TfheParams &params = paramsTest();
    Rng rng(0xC11E47);
    std::cout << "client: generating keys for " << params.summary()
              << "\n";
    const KeySet keys = KeySet::generate(params, rng);

    std::ostringstream eval_wire;
    saveEvaluationKeys(eval_wire, EvaluationKeys::fromKeySet(keys));
    std::cout << "client: evaluation keys serialized ("
              << eval_wire.str().size() / 1024
              << " KiB; the secret key never leaves)\n";

    // --- Client: encrypt a burst of queries ---------------------------
    const std::vector<std::uint32_t> queries = {2, 6, 3, 7, 4, 0};
    std::vector<std::string> query_wires;
    for (std::uint32_t m : queries) {
        std::ostringstream wire;
        saveCiphertext(wire, encryptPadded(keys, m, 8, rng));
        query_wires.push_back(wire.str());
    }

    // --- Server: blind, batched computation ---------------------------
    const auto answer_wires = serverSide(eval_wire.str(), query_wires);

    // --- Client: decrypt the responses --------------------------------
    bool all_correct = true;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        std::istringstream answer_in(answer_wires[i]);
        const LweCiphertext answer = loadCiphertext(answer_in);
        const std::uint32_t verdict = decryptPadded(keys, answer, 8);
        const bool expect = queries[i] >= 4;
        all_correct &= verdict == (expect ? 1u : 0u);
        std::cout << "client: is " << queries[i] << " >= 4?  server says "
                  << (verdict ? "yes" : "no") << " (expect "
                  << (expect ? "yes" : "no") << ")\n";
    }
    if (!all_correct) {
        std::cout << "MISMATCH: at least one verdict was wrong\n";
        return 1;
    }
    return 0;
}
