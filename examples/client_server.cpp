/**
 * @file
 * The deployment split every FHE service uses — now across two real
 * processes. The parent runs the multi-tenant front door
 * (service::MultiTenantService); a forked child runs the execution
 * server (exec::RemoteServer) on a localhost TCP port. Each client
 * keeps its own secret key; the front door enrolls each tenant's
 * evaluation keys (BSK + KSK) behind a content-derived fingerprint,
 * routes ciphertext queries by tenant id, and batches each tenant's
 * queries into Morphling-style 64-LWE superbatches — but every
 * superbatch now ships over the wire (compiled program, ciphertexts
 * and LUT in one framed request; exec::RemoteBackend) and executes in
 * the server process, with tenant keys auto-enrolled over TCP on
 * first use. Per-tenant token buckets bound how hard one tenant can
 * push, and per-tenant stats expose p50/p99 latency the way a
 * production scrape would. Wire formats: this library's versioned
 * binary serialization (tfhe/serialize.h) and the framed remote
 * protocol (exec/remote_protocol.h).
 *
 * Build & run:  ./build/examples/client_server
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "exec/remote_server.h"
#include "service/multi_tenant_service.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

using namespace morphling;
using namespace morphling::tfhe;
using morphling::service::LutId;
using morphling::service::MultiTenantConfig;
using morphling::service::MultiTenantService;
using morphling::service::TenantId;
using morphling::service::TenantQuota;

namespace {

/** One client's identity: its own keys and its own queries. */
struct Client {
    TenantId name;
    KeySet keys;
    std::vector<std::uint32_t> queries;
};

/**
 * The execution-server process: hosts a functional backend behind the
 * remote protocol, with no key material of its own — tenants'
 * evaluation keys arrive over the wire (auto-enrollment). Reports its
 * ephemeral port through `port_fd`, serves until `quit_fd` reaches
 * EOF, then exits.
 */
int
executionServerProcess(int port_fd, int quit_fd)
{
    exec::RemoteServerConfig config;
    config.inner.kind = exec::BackendKind::kFunctional;
    exec::RemoteServer server(config);
    server.start();

    const std::uint16_t port = server.port();
    if (::write(port_fd, &port, sizeof(port)) != sizeof(port))
        return 2;
    ::close(port_fd);

    // Block until the front-door process says goodbye (closes the
    // pipe); a byte or EOF both mean "stop serving".
    char byte;
    while (::read(quit_fd, &byte, 1) < 0 && errno == EINTR) {
    }
    ::close(quit_fd);

    const auto stats = server.stats();
    std::cout << "server process: " << stats.requests << " requests, "
              << stats.executions << " executions, "
              << stats.enrollments << " keys enrolled over the wire, "
              << stats.bytesIn / 1024 << " KiB in / "
              << stats.bytesOut / 1024 << " KiB out\n";
    server.stop();
    return 0;
}

/**
 * What the untrusted front door runs: no KeySet, no secret bits. One
 * MultiTenantService fronts every tenant; enrollment hands it only
 * serialized evaluation keys, and each query carries its tenant id.
 * Execution happens in the server process at `server_port` — the
 * front door's workers ship every superbatch over TCP.
 */
std::vector<std::vector<std::string>>
frontDoorSide(
    std::uint16_t server_port,
    const std::vector<std::pair<TenantId, std::string>> &enrollments,
    const std::vector<std::pair<TenantId, std::string>> &queries)
{
    MultiTenantConfig config;
    config.service.maxWait = std::chrono::milliseconds(5);
    config.service.backend = exec::BackendKind::kRemote;
    config.service.remote.port = server_port;
    MultiTenantService front(config);

    // Enroll every tenant. The registry fingerprints the keys
    // (content-derived, stable across restarts) and keeps the hot set
    // resident; a modest rate quota bounds each tenant's burst. The
    // execution server learns each tenant's keys lazily: the first
    // superbatch under an unknown fingerprint triggers wire
    // enrollment.
    TenantQuota quota;
    quota.ratePerSec = 1000;
    quota.burst = 64;
    for (const auto &[tenant, wire] : enrollments) {
        std::istringstream keys_in(wire);
        const auto fp = front.addTenant(
            tenant, loadEvaluationKeys(keys_in), quota);
        std::cout << "front door: enrolled '" << tenant
                  << "' (key fingerprint " << std::hex << fp << std::dec
                  << ")\n";
    }

    // The service: a private threshold check, f(m) = (m >= 4), plus a
    // noise refresh — one programmable bootstrap per query. Each
    // tenant gets its own LUT table (ids are per-tenant).
    const auto table = makePaddedLut(8, [](std::uint32_t m) {
        return m >= 4 ? 1u : 0u;
    });
    std::vector<LutId> luts;
    for (const auto &[tenant, wire] : enrollments)
        luts.push_back(front.registerLut(tenant, table));

    // Accept every query first (they arrive interleaved across
    // tenants in a real deployment); the front door routes each to
    // its tenant's service and admission bucket.
    std::vector<std::future<LweCiphertext>> answers;
    std::vector<std::size_t> owner;
    for (const auto &[tenant, wire] : queries) {
        std::istringstream query_in(wire);
        std::size_t which = 0;
        while (enrollments[which].first != tenant)
            ++which;
        owner.push_back(which);
        answers.push_back(front.submit(
            tenant, loadCiphertext(query_in), luts[which]));
    }

    std::vector<std::vector<std::string>> out(enrollments.size());
    for (std::size_t i = 0; i < answers.size(); ++i) {
        std::ostringstream wire;
        saveCiphertext(wire, answers[i].get());
        out[owner[i]].push_back(wire.str());
    }

    for (const auto &[tenant, wire] : enrollments) {
        const auto stats = front.stats(tenant);
        std::cout << "front door: '" << tenant << "': "
                  << stats.completed << " bootstraps, p99 "
                  << stats.p99LatencyUs << " us, " << stats.throttled
                  << " throttled\n";
    }
    front.shutdown();
    return out;
}

} // namespace

int
main()
{
    // --- Clients: independent key ceremonies --------------------------
    const TfheParams &params = paramsTest();
    Rng rng(0xC11E47);
    std::cout << "clients: generating keys for " << params.summary()
              << "\n";
    std::vector<Client> clients;
    clients.push_back({"alice", KeySet::generate(params, rng),
                       {2, 6, 3, 7}});
    clients.push_back({"bob", KeySet::generate(params, rng),
                       {5, 1, 4}});

    // Each client serializes only its evaluation keys; the secret key
    // never leaves the client.
    std::vector<std::pair<TenantId, std::string>> enrollments;
    for (const auto &client : clients) {
        std::ostringstream wire;
        saveEvaluationKeys(wire, EvaluationKeys::fromKeySet(client.keys));
        std::cout << "client " << client.name
                  << ": evaluation keys serialized ("
                  << wire.str().size() / 1024 << " KiB)\n";
        enrollments.emplace_back(client.name, wire.str());
    }

    // --- Clients: encrypt interleaved bursts of queries ---------------
    std::vector<std::pair<TenantId, std::string>> query_wires;
    for (std::size_t round = 0;; ++round) {
        bool any = false;
        for (auto &client : clients) {
            if (round >= client.queries.size())
                continue;
            any = true;
            std::ostringstream wire;
            saveCiphertext(wire, encryptPadded(
                client.keys, client.queries[round], 8, rng));
            query_wires.emplace_back(client.name, wire.str());
        }
        if (!any)
            break;
    }

    // --- Fork the execution-server process (before any threads) -------
    std::cout.flush(); // don't let the child re-flush buffered lines
    int port_pipe[2];  // child -> parent: the bound port
    int quit_pipe[2];  // parent -> child: EOF means stop
    if (::pipe(port_pipe) != 0 || ::pipe(quit_pipe) != 0) {
        std::perror("pipe");
        return 1;
    }
    const pid_t child = ::fork();
    if (child < 0) {
        std::perror("fork");
        return 1;
    }
    if (child == 0) {
        ::close(port_pipe[0]);
        ::close(quit_pipe[1]);
        const int rc =
            executionServerProcess(port_pipe[1], quit_pipe[0]);
        std::exit(rc);
    }
    ::close(port_pipe[1]);
    ::close(quit_pipe[0]);

    std::uint16_t server_port = 0;
    if (::read(port_pipe[0], &server_port, sizeof(server_port)) !=
        sizeof(server_port)) {
        std::cerr << "server process failed to report its port\n";
        return 1;
    }
    ::close(port_pipe[0]);
    std::cout << "server process " << child
              << " listening on 127.0.0.1:" << server_port << "\n";

    // --- Front door: blind, batched, multi-tenant, over TCP -----------
    const auto answer_wires =
        frontDoorSide(server_port, enrollments, query_wires);

    // Tell the server process to stop, and collect its exit status.
    ::close(quit_pipe[1]);
    int status = 0;
    ::waitpid(child, &status, 0);
    const bool server_ok =
        WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!server_ok)
        std::cout << "server process exited abnormally\n";

    // --- Clients: decrypt their own responses --------------------------
    bool all_correct = true;
    for (std::size_t c = 0; c < clients.size(); ++c) {
        const Client &client = clients[c];
        for (std::size_t i = 0; i < client.queries.size(); ++i) {
            std::istringstream answer_in(answer_wires[c][i]);
            const LweCiphertext answer = loadCiphertext(answer_in);
            const std::uint32_t verdict =
                decryptPadded(client.keys, answer, 8);
            const bool expect = client.queries[i] >= 4;
            all_correct &= verdict == (expect ? 1u : 0u);
            std::cout << "client " << client.name << ": is "
                      << client.queries[i] << " >= 4?  server says "
                      << (verdict ? "yes" : "no") << " (expect "
                      << (expect ? "yes" : "no") << ")\n";
        }
    }
    if (!all_correct) {
        std::cout << "MISMATCH: at least one verdict was wrong\n";
        return 1;
    }
    return server_ok ? 0 : 1;
}
