/**
 * @file
 * Private tree-ensemble (XGBoost-style) inference.
 *
 * Functional part: a small ensemble of depth-2 decision stumps
 * evaluated obliviously on an encrypted feature vector. Every internal
 * node compares an encrypted feature against its threshold with one
 * sign bootstrap; leaves are selected with encrypted indicator
 * arithmetic and the ensemble score is accumulated homomorphically —
 * exactly the structure of the paper's XGBoost benchmark (100
 * estimators, depth 6), shrunk to run in seconds.
 *
 * Scaling part: the full-size workload is compiled by the SW scheduler
 * and timed on the cycle-level Morphling model.
 *
 * Build & run:  ./build/examples/xgboost_inference
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "apps/workloads.h"
#include "arch/accelerator.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/params.h"

using namespace morphling;
using namespace morphling::tfhe;

namespace {

/** A depth-1 regression stump: if feature[idx] >= threshold then
 *  leaf_hi else leaf_lo (leaves are small integers). */
struct Stump
{
    unsigned featureIndex;
    std::uint32_t threshold; // in the same [0, p) domain as features
    int leafLo, leafHi;
};

/**
 * Oblivious comparison feature >= threshold: sign-bootstrap the
 * difference. Returns an encryption of +1/8 (true) or -1/8 (false).
 */
LweCiphertext
compareGe(const KeySet &keys, const LweCiphertext &feature,
          std::uint32_t threshold, std::uint32_t space)
{
    LweCiphertext diff = feature;
    // Subtract threshold - half a slot so equality lands on "true".
    diff.addPlain(0 - encodePadded(threshold, space) +
                  (encodeMessage(1, 4 * space) / 2));
    return signBootstrap(keys, diff, boolMu());
}

} // namespace

int
main()
{
    const TfheParams &params = paramsTest();
    Rng rng(1234);
    std::cout << "generating keys for " << params.summary() << "\n";
    const KeySet keys = KeySet::generate(params, rng);

    // --- Functional mini-ensemble ------------------------------------
    const std::uint32_t space = 8; // 3-bit quantized features
    const std::vector<Stump> ensemble = {
        {0, 3, -1, +2}, {1, 5, 0, +1},  {2, 2, +1, -1},
        {0, 6, 0, +2},  {3, 4, -2, +1}, {1, 1, +1, 0},
    };
    const std::vector<std::uint32_t> features = {4, 2, 7, 4};

    // Plaintext reference score.
    int score_ref = 0;
    for (const auto &s : ensemble) {
        score_ref += features[s.featureIndex] >= s.threshold ? s.leafHi
                                                             : s.leafLo;
    }

    // Encrypt the features.
    std::vector<LweCiphertext> enc;
    for (auto f : features)
        enc.push_back(encryptPadded(keys, f, space, rng));

    std::cout << "evaluating " << ensemble.size()
              << " stumps obliviously (one sign bootstrap each)...\n";
    // score = sum_t [ (lo+hi)/2 + sign * (hi-lo)/2 ], kept in units of
    // 1/8 torus steps scaled by 1: we accumulate sign ciphertexts
    // scaled by (hi-lo) and add the plaintext (lo+hi) part, all times
    // 1/2 -> use units of halves to stay integral.
    LweCiphertext score(keys.params.lweDimension); // encrypts 0
    int plain_halves = 0;
    for (const auto &s : ensemble) {
        // sign is +-1/8; scale by (hi-lo): contributes
        // (hi-lo) * (+-1/8).
        LweCiphertext sign =
            compareGe(keys, enc[s.featureIndex], s.threshold, space);
        sign.scaleAssign(s.leafHi - s.leafLo);
        score.addAssign(sign);
        plain_halves += s.leafHi + s.leafLo;
    }
    // score now encrypts sum (hi-lo)*(+-1)/8. Decode in 1/8 steps.
    const double phase = torus32ToDouble(score.phase(keys.lweKey));
    const int signed_sum = static_cast<int>(std::lround(phase * 8.0));
    const int score_dec = (signed_sum + plain_halves) / 2;
    std::cout << "decrypted ensemble score = " << score_dec
              << " (plaintext reference " << score_ref << ")\n";
    std::cout << (score_dec == score_ref ? "PASS" : "FAIL") << "\n";

    // --- Paper-scale timing on the accelerator model ------------------
    const auto &big_params = tfhe::paramsByName("IV");
    const auto workload = apps::xgboostWorkload(100, 6);
    compiler::SwScheduler scheduler(big_params);
    arch::Accelerator accelerator(
        arch::ArchConfig::morphlingDefault(), big_params);
    const auto report = accelerator.run(scheduler.schedule(workload));
    std::cout << "\nfull-size XGBoost (100 estimators, depth 6): "
              << workload.totalBootstraps()
              << " comparisons -> simulated "
              << report.seconds << " s on Morphling (paper: 0.06 s)\n";
    return score_dec == score_ref ? 0 : 1;
}
