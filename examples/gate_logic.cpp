/**
 * @file
 * Encrypted boolean logic: the classic TFHE gate-bootstrapping API,
 * and the same logic expressed as a circuit::Circuit submitted whole
 * to the bootstrap service.
 *
 * Demonstrates every two-input gate, then runs a 4-bit ripple-carry
 * adder entirely on encrypted bits twice: gate by gate through the
 * tfhe API, and as one BootstrapService::submitCircuit call — the two
 * paths produce bit-identical ciphertexts.
 *
 * Build & run:  ./build/examples/gate_logic
 */

#include <array>
#include <iostream>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "service/bootstrap_service.h"
#include "tfhe/encoding.h"
#include "tfhe/params.h"

using namespace morphling;
using namespace morphling::tfhe;

namespace {

/** Encrypted full adder: returns (sum, carry_out). */
std::pair<LweCiphertext, LweCiphertext>
fullAdder(const KeySet &keys, const LweCiphertext &a,
          const LweCiphertext &b, const LweCiphertext &carry_in)
{
    const LweCiphertext a_xor_b = gateXor(keys, a, b);
    LweCiphertext sum = gateXor(keys, a_xor_b, carry_in);
    LweCiphertext carry =
        gateOr(keys, gateAnd(keys, a, b),
               gateAnd(keys, a_xor_b, carry_in));
    return {std::move(sum), std::move(carry)};
}

} // namespace

int
main()
{
    // The reduced TEST set keeps this demo snappy; swap in
    // paramsSetI() for paper-scale parameters.
    const TfheParams &params = paramsTest();
    Rng rng(77);
    std::cout << "generating keys for " << params.summary() << "\n";
    const KeySet keys = KeySet::generate(params, rng);

    // --- Truth tables -------------------------------------------------
    std::cout << "\n a b | NAND AND OR XOR\n";
    for (int a = 0; a <= 1; ++a) {
        for (int b = 0; b <= 1; ++b) {
            const auto ca = encryptBit(keys, a != 0, rng);
            const auto cb = encryptBit(keys, b != 0, rng);
            std::cout << " " << a << " " << b << " |    "
                      << decryptBit(keys, gateNand(keys, ca, cb))
                      << "   "
                      << decryptBit(keys, gateAnd(keys, ca, cb))
                      << "  "
                      << decryptBit(keys, gateOr(keys, ca, cb)) << "   "
                      << decryptBit(keys, gateXor(keys, ca, cb))
                      << "\n";
        }
    }

    // --- Encrypted 4-bit addition, gate by gate ------------------------
    const unsigned x = 11, y = 6; // 11 + 6 = 17 = 0b10001
    std::array<LweCiphertext, 4> xa, ya;
    for (unsigned i = 0; i < 4; ++i) {
        xa[i] = encryptBit(keys, (x >> i) & 1, rng);
        ya[i] = encryptBit(keys, (y >> i) & 1, rng);
    }

    std::cout << "\nadding " << x << " + " << y
              << " on encrypted bits (12 gate bootstraps)...\n";
    LweCiphertext carry = trivialBit(keys, false);
    unsigned result = 0;
    for (unsigned i = 0; i < 4; ++i) {
        auto [sum, carry_out] = fullAdder(keys, xa[i], ya[i], carry);
        result |= static_cast<unsigned>(decryptBit(keys, sum)) << i;
        carry = std::move(carry_out);
    }
    result |= static_cast<unsigned>(decryptBit(keys, carry)) << 4;
    std::cout << "decrypted sum = " << result << " (expect " << x + y
              << ")\n";

    // --- The same adder as one circuit submission ----------------------
    // Build the ripple-carry adder as a circuit::Circuit and hand the
    // whole program to the bootstrap service; its workers lower the
    // netlist level by level onto the execution backend.
    circuit::Circuit adder;
    std::vector<circuit::Wire> a_wires, b_wires, sum_wires;
    for (unsigned i = 0; i < 4; ++i)
        a_wires.push_back(adder.bitInput());
    for (unsigned i = 0; i < 4; ++i)
        b_wires.push_back(adder.bitInput());
    const auto carry_out =
        circuit::buildRippleAdder(adder, a_wires, b_wires, sum_wires);
    for (auto w : sum_wires)
        adder.markOutput(w);
    adder.markOutput(carry_out);

    std::vector<LweCiphertext> circuit_in;
    for (unsigned i = 0; i < 4; ++i)
        circuit_in.push_back(xa[i]);
    for (unsigned i = 0; i < 4; ++i)
        circuit_in.push_back(ya[i]);

    std::cout << "same adder as one submitCircuit call ("
              << adder.bootstrapCount() << " bootstraps, depth "
              << adder.bootstrapDepth() << ")...\n";
    service::BootstrapService service(keys);
    const auto circuit_out =
        service.submitCircuit(adder, circuit_in).get();
    unsigned circuit_sum = 0;
    for (unsigned i = 0; i < 5; ++i) {
        circuit_sum |= static_cast<unsigned>(
                           decryptBit(keys, circuit_out[i]))
                       << i;
    }
    std::cout << "decrypted sum = " << circuit_sum << " (expect "
              << x + y << ")\n";

    // --- MUX: encrypted select between two encrypted values ------------
    const auto sel = encryptBit(keys, true, rng);
    const auto picked =
        gateMux(keys, sel, encryptBit(keys, true, rng),
                encryptBit(keys, false, rng));
    std::cout << "MUX(1, 1, 0) = " << decryptBit(keys, picked)
              << " (expect 1)\n";
    return (result == x + y && circuit_sum == x + y) ? 0 : 1;
}
