/**
 * @file
 * Tests of the bootstrapped boolean gate layer: truth tables of every
 * two-input gate, the linear NOT, MUX, and a small composed circuit
 * (full adder) to check gate outputs chain correctly.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/encoding.h"
#include "tfhe/params.h"

namespace morphling::tfhe {
namespace {

class GateFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(31337);
        keys_ = new KeySet(KeySet::generate(paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{2718281828};

    LweCiphertext
    enc(bool b)
    {
        return encryptBit(keys(), b, rng);
    }
    bool
    dec(const LweCiphertext &ct)
    {
        return decryptBit(keys(), ct);
    }

    static KeySet *keys_;
};

KeySet *GateFixture::keys_ = nullptr;

TEST_F(GateFixture, EncryptDecryptBit)
{
    for (int rep = 0; rep < 10; ++rep) {
        EXPECT_TRUE(dec(enc(true)));
        EXPECT_FALSE(dec(enc(false)));
    }
}

TEST_F(GateFixture, TrivialBit)
{
    EXPECT_TRUE(dec(trivialBit(keys(), true)));
    EXPECT_FALSE(dec(trivialBit(keys(), false)));
}

TEST_F(GateFixture, NotIsLinear)
{
    EXPECT_FALSE(dec(gateNot(enc(true))));
    EXPECT_TRUE(dec(gateNot(enc(false))));
}

struct GateCase
{
    const char *name;
    LweCiphertext (*fn)(const KeySet &, const LweCiphertext &,
                        const LweCiphertext &);
    bool truth[4]; //!< outputs for (a,b) = 00, 01, 10, 11
};

class TwoInputGates : public GateFixture,
                      public ::testing::WithParamInterface<int>
{
};

const GateCase kGateCases[] = {
    {"NAND", &gateNand, {true, true, true, false}},
    {"AND", &gateAnd, {false, false, false, true}},
    {"OR", &gateOr, {false, true, true, true}},
    {"NOR", &gateNor, {true, false, false, false}},
    {"XOR", &gateXor, {false, true, true, false}},
    {"XNOR", &gateXnor, {true, false, false, true}},
};

TEST_P(TwoInputGates, TruthTable)
{
    const auto &gate = kGateCases[GetParam()];
    for (int a = 0; a <= 1; ++a) {
        for (int b = 0; b <= 1; ++b) {
            const auto out =
                gate.fn(keys(), enc(a != 0), enc(b != 0));
            EXPECT_EQ(dec(out), gate.truth[a * 2 + b])
                << gate.name << "(" << a << "," << b << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllGates, TwoInputGates, ::testing::Range(0, 6),
                         [](const auto &info) {
                             return kGateCases[info.param].name;
                         });

TEST_F(GateFixture, MuxSelects)
{
    for (int s = 0; s <= 1; ++s) {
        for (int x = 0; x <= 1; ++x) {
            for (int y = 0; y <= 1; ++y) {
                const auto out = gateMux(keys(), enc(s != 0),
                                         enc(x != 0), enc(y != 0));
                EXPECT_EQ(dec(out), s ? (x != 0) : (y != 0))
                    << "MUX(" << s << "," << x << "," << y << ")";
            }
        }
    }
}

TEST_F(GateFixture, FullAdderCircuit)
{
    // sum = a XOR b XOR cin; cout = majority(a, b, cin).
    for (int a = 0; a <= 1; ++a) {
        for (int b = 0; b <= 1; ++b) {
            for (int cin = 0; cin <= 1; ++cin) {
                const auto ca = enc(a != 0), cb = enc(b != 0),
                           cc = enc(cin != 0);
                const auto ab = gateXor(keys(), ca, cb);
                const auto sum = gateXor(keys(), ab, cc);
                const auto carry = gateOr(
                    keys(), gateAnd(keys(), ca, cb),
                    gateAnd(keys(), ab, cc));
                EXPECT_EQ(dec(sum), ((a + b + cin) & 1) != 0);
                EXPECT_EQ(dec(carry), (a + b + cin) >= 2);
            }
        }
    }
}

TEST_F(GateFixture, LongGateChainStaysClean)
{
    // 16 chained NAND gates: each output feeds the next. Bootstrapped
    // outputs must never degrade.
    auto ct = enc(true);
    bool expected = true;
    const auto one = enc(true);
    for (int i = 0; i < 16; ++i) {
        ct = gateNand(keys(), ct, one);
        expected = !(expected && true);
        EXPECT_EQ(dec(ct), expected) << "step " << i;
    }
}

} // namespace
} // namespace morphling::tfhe
