/**
 * @file
 * Tests for the unified telemetry subsystem: span recording (nesting,
 * ordering, level gating, ring overflow), the metrics registry
 * (log-bucket boundaries, Prometheus and JSON golden exports), the
 * Chrome trace exporter (structure of the emitted JSON), the simulator
 * bridge, multi-threaded recording (run under the tsan build via the
 * `tsan` label), and the allocation guard: a warmed-up bootstrap
 * records spans without a single heap allocation, preserving the
 * zero-allocation hot-path guarantee.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/metrics.h"
#include "telemetry/sim_bridge.h"
#include "telemetry/telemetry.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/workspace.h"

// ---------------------------------------------------------------------
// Allocation-count hook (same shape as tests/test_workspace.cc): every
// path through global operator new bumps the counter while tracking is
// enabled.
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_track{false};
std::atomic<std::uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t size)
{
    if (g_track.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new(std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace morphling::telemetry {
namespace {

// ---------------------------------------------------------------------
// SpanRing
// ---------------------------------------------------------------------

TEST(SpanRing, DropsWhenFullInsteadOfOverwriting)
{
    SpanRing ring(4, 7);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.tid(), 7u);
    for (std::uint64_t i = 0; i < 6; ++i) {
        const bool ok =
            ring.push(SpanEvent{"cat", "name", i, i + 1, 0});
        EXPECT_EQ(ok, i < 4);
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 2u);
    // The first four events survived untouched — nothing wrapped.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).startNs, i);

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
}

#if MORPHLING_TELEMETRY_ENABLED

// ---------------------------------------------------------------------
// Spans: nesting, ordering, level gating
// ---------------------------------------------------------------------

TEST(Span, RecordsNestingDepthAndOrdering)
{
    auto &session = TraceSession::instance();
    session.start(Level::kStage);
    {
        MORPHLING_SPAN("test", "outer");
        {
            MORPHLING_SPAN("test", "middle");
            MORPHLING_SPAN("test", "inner");
        }
    }
    session.stop();

    SpanRing &ring = session.ringForThisThread();
    ASSERT_EQ(ring.size(), 3u);
    // RAII order: the deepest span destructs (and records) first.
    const SpanEvent &inner = ring.at(0);
    const SpanEvent &middle = ring.at(1);
    const SpanEvent &outer = ring.at(2);
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_STREQ(middle.name, "middle");
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_STREQ(outer.category, "test");
    EXPECT_EQ(outer.depth, 0u);
    EXPECT_EQ(middle.depth, 1u);
    EXPECT_EQ(inner.depth, 2u);
    // Containment: children start no earlier and end no later.
    EXPECT_GE(middle.startNs, outer.startNs);
    EXPECT_LE(middle.endNs, outer.endNs);
    EXPECT_GE(inner.startNs, middle.startNs);
    EXPECT_LE(inner.endNs, middle.endNs);
    EXPECT_LE(inner.startNs, inner.endNs);
    EXPECT_EQ(session.totalSpans(), 3u);
}

TEST(Span, FineSpansRecordOnlyAtFineLevel)
{
    auto &session = TraceSession::instance();
    session.start(Level::kStage);
    {
        MORPHLING_SPAN_FINE("test", "fine");
    }
    EXPECT_EQ(session.totalSpans(), 0u);

    session.start(Level::kFine);
    {
        MORPHLING_SPAN_FINE("test", "fine");
    }
    session.stop();
    EXPECT_EQ(session.totalSpans(), 1u);
}

TEST(Span, NothingRecordsWhileStopped)
{
    auto &session = TraceSession::instance();
    session.start();
    session.stop();
    session.clear();
    {
        MORPHLING_SPAN("test", "ignored");
    }
    EXPECT_EQ(session.totalSpans(), 0u);
}

TEST(Span, StartClearsPreviousSession)
{
    auto &session = TraceSession::instance();
    session.start();
    {
        MORPHLING_SPAN("test", "first");
    }
    session.start(); // re-arm: old spans are gone
    {
        MORPHLING_SPAN("test", "second");
    }
    session.stop();
    SpanRing &ring = session.ringForThisThread();
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_STREQ(ring.at(0).name, "second");
}

// ---------------------------------------------------------------------
// Multi-threaded recording (tsan label exercises this under
// -fsanitize=thread)
// ---------------------------------------------------------------------

TEST(Span, ConcurrentRecordingFromManyThreads)
{
    auto &session = TraceSession::instance();
    session.start(Level::kFine);

    constexpr unsigned kThreads = 4;
    constexpr unsigned kSpansPerThread = 1000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([]() {
            for (unsigned i = 0; i < kSpansPerThread; ++i) {
                MORPHLING_SPAN("mt", "work");
            }
        });
    }
    // The control thread reads published prefixes while producers run —
    // the acquire/release pair on the ring index makes this safe.
    std::uint64_t seen = session.totalSpans();
    EXPECT_LE(seen, kThreads * kSpansPerThread);
    for (auto &th : threads)
        th.join();
    session.stop();

    EXPECT_EQ(session.totalSpans(),
              std::uint64_t{kThreads} * kSpansPerThread);
    EXPECT_EQ(session.totalDropped(), 0u);
    for (const SpanRing *ring : session.rings()) {
        for (std::size_t i = 0; i < ring->size(); ++i) {
            const SpanEvent &ev = ring->at(i);
            EXPECT_LE(ev.startNs, ev.endNs);
        }
    }
}

#endif // MORPHLING_TELEMETRY_ENABLED

// ---------------------------------------------------------------------
// Histogram bucket boundaries
// ---------------------------------------------------------------------

TEST(Histogram, BucketBoundaries)
{
    // Everything <= 1 (and NaN) lands in the first bucket.
    EXPECT_EQ(Histogram::bucketIndex(-5.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1.0), 0u);
    // Bucket i is the smallest power of two holding the value.
    EXPECT_EQ(Histogram::bucketIndex(1.5), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2.0), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2.0001), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4.0), 2u);
    EXPECT_EQ(Histogram::bucketIndex(1024.0), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1025.0), 11u);
    // The top bucket is +Inf.
    EXPECT_EQ(Histogram::bucketIndex(1e19), Histogram::kBuckets - 1);

    EXPECT_EQ(Histogram::bucketUpperBound(0), 1.0);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 2.0);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 1024.0);
    EXPECT_TRUE(
        std::isinf(Histogram::bucketUpperBound(Histogram::kBuckets - 1)));
}

TEST(Histogram, ObserveTracksCountSumMinMax)
{
    Histogram h("lat", "");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    h.observe(1.0);
    h.observe(3.0);
    h.observe(100.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 104.0);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 100.0);
    EXPECT_NEAR(h.mean(), 104.0 / 3.0, 1e-12);
    EXPECT_EQ(h.bucketCount(0), 1u); // 1.0
    EXPECT_EQ(h.bucketCount(2), 1u); // 3.0 -> le 4
    EXPECT_EQ(h.bucketCount(7), 1u); // 100.0 -> le 128
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
}

TEST(Gauge, SetAndAdd)
{
    Gauge g("depth", "");
    g.set(4.0);
    g.add(-1.5);
    EXPECT_EQ(g.value(), 2.5);
}

// ---------------------------------------------------------------------
// Export goldens (local registry — the process-wide singleton is not
// touched, so these are exact)
// ---------------------------------------------------------------------

MetricsRegistry &
goldenRegistry()
{
    static MetricsRegistry reg;
    static bool filled = false;
    if (!filled) {
        filled = true;
        auto &c = reg.counter("service.requests", "reqs");
        c.inc(3);
        reg.gauge("queue.depth").set(2.5);
        auto &h = reg.histogram("lat");
        h.observe(1.0);
        h.observe(3.0);
        h.observe(100.0);
    }
    return reg;
}

TEST(MetricsExport, PrometheusGolden)
{
    std::ostringstream os;
    goldenRegistry().writePrometheus(os);
    const std::string expected =
        "# HELP morphling_service_requests reqs\n"
        "# TYPE morphling_service_requests counter\n"
        "morphling_service_requests 3\n"
        "# TYPE morphling_queue_depth gauge\n"
        "morphling_queue_depth 2.5\n"
        "# TYPE morphling_lat histogram\n"
        "morphling_lat_bucket{le=\"1\"} 1\n"
        "morphling_lat_bucket{le=\"2\"} 1\n"
        "morphling_lat_bucket{le=\"4\"} 2\n"
        "morphling_lat_bucket{le=\"8\"} 2\n"
        "morphling_lat_bucket{le=\"16\"} 2\n"
        "morphling_lat_bucket{le=\"32\"} 2\n"
        "morphling_lat_bucket{le=\"64\"} 2\n"
        "morphling_lat_bucket{le=\"128\"} 3\n"
        "morphling_lat_bucket{le=\"+Inf\"} 3\n"
        "morphling_lat_sum 104\n"
        "morphling_lat_count 3\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(MetricsExport, JsonGolden)
{
    std::ostringstream os;
    goldenRegistry().writeJson(os);
    const std::string expected =
        "{\n"
        "  \"counters\": {\n"
        "    \"service.requests\": 3\n"
        "  },\n"
        "  \"gauges\": {\n"
        "    \"queue.depth\": 2.5\n"
        "  },\n"
        "  \"histograms\": {\n"
        "    \"lat\": {\"count\": 3, \"sum\": 104, \"min\": 1, "
        "\"max\": 100, \"buckets\": [{\"le\": 1, \"count\": 1}, "
        "{\"le\": 4, \"count\": 1}, {\"le\": 128, \"count\": 1}]}\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(MetricsExport, EmptyRegistryIsValid)
{
    MetricsRegistry reg;
    std::ostringstream prom, json;
    reg.writePrometheus(prom);
    reg.writeJson(json);
    EXPECT_EQ(prom.str(), "");
    EXPECT_EQ(json.str(),
              "{\n  \"counters\": {},\n  \"gauges\": {},\n"
              "  \"histograms\": {}\n}\n");
}

TEST(MetricsRegistry, HandlesAreStable)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("x");
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);
}

// ---------------------------------------------------------------------
// Simulator bridge
// ---------------------------------------------------------------------

TEST(SimBridge, InstallRecordUninstall)
{
    EXPECT_EQ(SimTraceRecorder::current(), nullptr);
    {
        SimTraceRecorder rec;
        rec.install();
        EXPECT_EQ(SimTraceRecorder::current(), &rec);
        MORPHLING_SIM_INTERVAL("hbm.ch0", "xfer", 10, 20, 256);
        MORPHLING_SIM_INSTANT("log.xpu", "stall", 15);
#if MORPHLING_TELEMETRY_ENABLED
        ASSERT_EQ(rec.intervals().size(), 1u);
        const auto iv = rec.intervals()[0];
        EXPECT_EQ(iv.track, "hbm.ch0");
        EXPECT_EQ(iv.name, "xfer");
        EXPECT_EQ(iv.startTick, 10u);
        EXPECT_EQ(iv.endTick, 20u);
        EXPECT_EQ(iv.bytes, 256u);
        ASSERT_EQ(rec.instants().size(), 1u);
        EXPECT_EQ(rec.instants()[0].tick, 15u);
#endif
    }
    // The destructor uninstalled the recorder.
    EXPECT_EQ(SimTraceRecorder::current(), nullptr);
}

TEST(SimBridge, DropsBeyondMaxEvents)
{
    SimTraceRecorder rec(/*max_events=*/3);
    rec.interval("t", "a", 0, 1);
    rec.interval("t", "b", 1, 2);
    rec.instant("t", "c", 2);
    rec.interval("t", "overflow", 2, 3);
    rec.instant("t", "overflow", 3);
    EXPECT_EQ(rec.intervals().size() + rec.instants().size(), 3u);
    EXPECT_EQ(rec.droppedEvents(), 2u);
}

// ---------------------------------------------------------------------
// Chrome trace exporter
// ---------------------------------------------------------------------

TEST(ChromeTrace, EmitsBothClockDomains)
{
    auto &session = TraceSession::instance();
    SimTraceRecorder rec;
    rec.interval("xpu", "iteration", 0, 1200, 0);
    rec.interval("hbm.ch0", "xfer", 100, 300, 4096);
    rec.instant("log.xpu", "wave starts", 50);

#if MORPHLING_TELEMETRY_ENABLED
    session.start();
    {
        MORPHLING_SPAN("tfhe", "bootstrap");
    }
    session.stop();
#endif

    std::ostringstream os;
    writeChromeTrace(os, session, &rec);
    const std::string trace = os.str();

    // Structure Perfetto needs: traceEvents array, metadata naming the
    // virtual-time process, complete ("X") and instant ("i") events.
    EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(trace.find("sim (virtual time)"), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"xpu\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"hbm.ch0\""), std::string::npos);
    EXPECT_NE(trace.find("\"bytes\":4096"), std::string::npos);
    // 1200 ticks at the default 1.2 GHz are exactly one microsecond.
    EXPECT_NE(trace.find("\"dur\":1.000"), std::string::npos);
#if MORPHLING_TELEMETRY_ENABLED
    EXPECT_NE(trace.find("cpu (wall clock)"), std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"tfhe\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"bootstrap\""), std::string::npos);
#endif
    // Well-formed closing.
    EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");
}

// ---------------------------------------------------------------------
// Zero-allocation guards
// ---------------------------------------------------------------------

TEST(ZeroAlloc, WarmBootstrapWithInactiveSessionDoesNotAllocate)
{
    using namespace morphling::tfhe;
    const TfheParams &params = paramsTest();
    Rng rng(0x7E1E);
    const KeySet keys = KeySet::generate(params, rng);
    const auto lut =
        makePaddedLut(4, [](std::uint32_t m) { return m; });
    const auto tp = buildTestPolynomial(params.polyDegree, lut);
    const auto ct = encryptPadded(keys, 1, 4, rng);

    auto &ws = BootstrapWorkspace::forThisThread();
    LweCiphertext out;
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws); // warm-up

    TraceSession::instance().stop();
    g_allocs.store(0);
    g_track.store(true);
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);
    g_track.store(false);
    EXPECT_EQ(g_allocs.load(), 0u)
        << "telemetry must not allocate on the warmed-up hot path "
           "while no session records";
}

#if MORPHLING_TELEMETRY_ENABLED

TEST(ZeroAlloc, WarmBootstrapWithActiveSessionDoesNotAllocate)
{
    using namespace morphling::tfhe;
    const TfheParams &params = paramsTest();
    Rng rng(0x7E1F);
    const KeySet keys = KeySet::generate(params, rng);
    const auto lut =
        makePaddedLut(4, [](std::uint32_t m) { return m; });
    const auto tp = buildTestPolynomial(params.polyDegree, lut);
    const auto ct = encryptPadded(keys, 1, 4, rng);

    auto &ws = BootstrapWorkspace::forThisThread();
    LweCiphertext out;
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws); // warm-up

    auto &session = TraceSession::instance();
    session.start(Level::kFine);
    {
        MORPHLING_SPAN("test", "ring warm-up"); // first touch registers
    }

    g_allocs.store(0);
    g_track.store(true);
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);
    g_track.store(false);
    session.stop();
    EXPECT_GT(session.totalSpans(), 1u);
    EXPECT_EQ(g_allocs.load(), 0u)
        << "span recording must reuse the preallocated ring";
}

#else // !MORPHLING_TELEMETRY_ENABLED

TEST(TelemetryOff, MacrosCompileToNothing)
{
    // The statement forms are valid and side-effect free...
    MORPHLING_SPAN("test", "gone");
    MORPHLING_SPAN_FINE("test", "gone");
    MORPHLING_SIM_INTERVAL("t", "gone", 0, 1, 0);
    MORPHLING_SIM_INSTANT("t", "gone", 0);
    // ...and MORPHLING_TELEMETRY_ONLY drops its body entirely.
    bool ran = false;
    MORPHLING_TELEMETRY_ONLY(ran = true;)
    EXPECT_FALSE(ran);
    EXPECT_EQ(TraceSession::instance().totalSpans(), 0u);
}

#endif // MORPHLING_TELEMETRY_ENABLED

} // namespace
} // namespace morphling::telemetry
