/**
 * @file
 * Tests of the double-pointer rotator: bit-exact agreement with the
 * ring rotation for every power, and the address-generation behaviour
 * of the reorder unit.
 */

#include <gtest/gtest.h>

#include "arch/rotator.h"
#include "common/rng.h"

namespace morphling::arch {
namespace {

tfhe::TorusPolynomial
randomPoly(unsigned n, Rng &rng)
{
    tfhe::TorusPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = rng.nextU32();
    return p;
}

TEST(Rotator, MatchesRingRotationForEveryPower)
{
    const unsigned n = 64;
    Rotator rot(n, 8);
    Rng rng(404);
    const auto poly = randomPoly(n, rng);
    for (unsigned power = 0; power < 2 * n; ++power) {
        EXPECT_EQ(rot.rotate(poly, power), poly.mulByXPower(power))
            << "power=" << power;
    }
}

TEST(Rotator, MatchesAtFullDegree)
{
    // Paper-scale geometry: N = 1024, 8-lane vectors.
    const unsigned n = 1024;
    Rotator rot(n, 8);
    Rng rng(405);
    const auto poly = randomPoly(n, rng);
    for (unsigned power : {0u, 1u, 7u, 8u, 513u, 1024u, 1025u, 2047u}) {
        EXPECT_EQ(rot.rotate(poly, power), poly.mulByXPower(power))
            << "power=" << power;
    }
}

TEST(Rotator, AlignedRotationsNeedNoReorder)
{
    Rotator rot(1024, 8);
    EXPECT_FALSE(rot.needsReorder(0));
    EXPECT_FALSE(rot.needsReorder(8));
    EXPECT_FALSE(rot.needsReorder(1024));
    EXPECT_TRUE(rot.needsReorder(1));
    EXPECT_TRUE(rot.needsReorder(513));
}

TEST(Rotator, AccessGeneration)
{
    Rotator rot(64, 8);
    // Aligned rotation: each output vector reads exactly one stored
    // vector.
    const auto aligned = rot.accessFor(0, 16);
    EXPECT_FALSE(aligned.split);
    EXPECT_EQ(aligned.offset, 0u);
    EXPECT_EQ(aligned.firstVector, aligned.secondVector);

    // Unaligned rotation: reorder unit stitches two stored vectors.
    const auto unaligned = rot.accessFor(0, 3);
    EXPECT_TRUE(unaligned.split);
    EXPECT_NE(unaligned.firstVector, unaligned.secondVector);
    EXPECT_EQ(unaligned.offset, (64 - 3) % 8);
}

TEST(Rotator, RotationByZeroIsIdentityAccess)
{
    Rotator rot(64, 8);
    for (unsigned v = 0; v < rot.numVectors(); ++v) {
        const auto acc = rot.accessFor(v, 0);
        EXPECT_EQ(acc.firstVector, v);
        EXPECT_FALSE(acc.split);
    }
}

TEST(Rotator, DoubleRotationComposes)
{
    const unsigned n = 128;
    Rotator rot(n, 8);
    Rng rng(406);
    const auto poly = randomPoly(n, rng);
    const auto once = rot.rotate(rot.rotate(poly, 37), 41);
    const auto direct = rot.rotate(poly, 78);
    EXPECT_EQ(once, direct);
}

} // namespace
} // namespace morphling::arch
