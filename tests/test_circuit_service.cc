/**
 * @file
 * Tests of the circuit submission path through BootstrapService:
 * whole encrypted programs via submitCircuit on the functional and
 * sharded backends, bit-identity against gate-by-gate evaluation,
 * mixed single-LUT + circuit workloads on one pool, and the
 * configuration validation surface.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "service/bootstrap_service.h"
#include "tfhe/params.h"

namespace morphling::service {
namespace {

using circuit::Circuit;
using circuit::Wire;
using tfhe::KeySet;
using tfhe::LweCiphertext;

class CircuitServiceFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xC15E);
        keys_ = new KeySet(KeySet::generate(tfhe::paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0x5E4F1CE};

    static Circuit
    adder(unsigned bits)
    {
        Circuit c;
        std::vector<Wire> a, b, sum;
        for (unsigned i = 0; i < bits; ++i)
            a.push_back(c.bitInput());
        for (unsigned i = 0; i < bits; ++i)
            b.push_back(c.bitInput());
        const auto carry = circuit::buildRippleAdder(c, a, b, sum);
        for (auto w : sum)
            c.markOutput(w);
        c.markOutput(carry);
        return c;
    }

    std::vector<LweCiphertext>
    adderInputs(unsigned x, unsigned y, unsigned bits)
    {
        std::vector<LweCiphertext> in;
        for (unsigned i = 0; i < bits; ++i)
            in.push_back(tfhe::encryptBit(keys(), (x >> i) & 1, rng));
        for (unsigned i = 0; i < bits; ++i)
            in.push_back(tfhe::encryptBit(keys(), (y >> i) & 1, rng));
        return in;
    }

    unsigned
    decryptValue(const std::vector<LweCiphertext> &bits)
    {
        unsigned v = 0;
        for (std::size_t i = 0; i < bits.size(); ++i) {
            v |= static_cast<unsigned>(
                     tfhe::decryptBit(keys(), bits[i]))
                 << i;
        }
        return v;
    }

    static KeySet *keys_;
};

KeySet *CircuitServiceFixture::keys_ = nullptr;

/** The PR's acceptance check: an 8-bit encrypted adder submitted
 *  whole runs end-to-end and is bit-identical to direct gate-by-gate
 *  encrypted evaluation — on the functional backend and on a 4-shard
 *  sharded backend. */
TEST_F(CircuitServiceFixture, Adder8BitIdenticalAcrossBackends)
{
    const auto c = adder(8);
    const unsigned x = 173, y = 99;
    const auto inputs = adderInputs(x, y, 8);
    const auto reference = c.evaluateEncrypted(keys(), inputs);

    for (const auto kind : {exec::BackendKind::kFunctional,
                            exec::BackendKind::kShardedFunctional}) {
        ServiceConfig config;
        config.backend = kind;
        config.numShards = 4;
        config.numWorkers = 2;
        BootstrapService service(keys(), config);

        auto outputs = service.submitCircuit(c, inputs).get();
        ASSERT_EQ(outputs.size(), reference.size());
        for (std::size_t i = 0; i < outputs.size(); ++i) {
            EXPECT_EQ(outputs[i].raw(), reference[i].raw())
                << "backend " << static_cast<int>(kind) << " output "
                << i;
        }
        EXPECT_EQ(decryptValue(outputs), x + y);

        const auto stats = service.stats();
        EXPECT_EQ(stats.circuits, 1u);
        EXPECT_EQ(stats.circuitsCompleted, 1u);
        EXPECT_EQ(stats.circuitBootstraps, c.bootstrapCount());
        EXPECT_EQ(stats.circuitLatencyUs.count(), 1u);
    }
}

TEST_F(CircuitServiceFixture, ManyCircuitsInterleaved)
{
    const auto c = adder(4);
    ServiceConfig config;
    config.numWorkers = 3;
    BootstrapService service(keys(), config);

    std::vector<std::future<std::vector<LweCiphertext>>> futures;
    std::vector<unsigned> expect;
    for (unsigned r = 0; r < 6; ++r) {
        const unsigned x = (3 * r + 1) % 16, y = (7 * r + 5) % 16;
        expect.push_back(x + y);
        futures.push_back(
            service.submitCircuit(c, adderInputs(x, y, 4)));
    }
    for (std::size_t r = 0; r < futures.size(); ++r)
        EXPECT_EQ(decryptValue(futures[r].get()), expect[r]) << r;

    const auto stats = service.stats();
    EXPECT_EQ(stats.circuits, 6u);
    EXPECT_EQ(stats.circuitsCompleted, 6u);
    EXPECT_EQ(service.outstanding(), 0u);
}

TEST_F(CircuitServiceFixture, MixedSingleLutAndCircuitTraffic)
{
    // Single-LUT requests and whole circuits share the pool; both
    // families complete correctly.
    ServiceConfig config;
    config.numWorkers = 2;
    config.maxWait = std::chrono::microseconds(200);
    BootstrapService service(keys(), config);

    const auto lut = service.registerLut(
        tfhe::makePaddedLut(4, [](std::uint32_t m) {
            return (m + 1) % 4;
        }));

    const auto c = adder(4);
    auto circuit_future =
        service.submitCircuit(c, adderInputs(6, 9, 4));

    std::vector<std::future<LweCiphertext>> lut_futures;
    for (std::uint32_t m = 0; m < 4; ++m) {
        lut_futures.push_back(service.submit(
            tfhe::encryptPadded(keys(), m, 4, rng), lut));
    }

    EXPECT_EQ(decryptValue(circuit_future.get()), 15u);
    for (std::uint32_t m = 0; m < 4; ++m) {
        EXPECT_EQ(tfhe::decryptPadded(keys(), lut_futures[m].get(), 4),
                  (m + 1) % 4);
    }

    const auto stats = service.stats();
    EXPECT_EQ(stats.accepted, 4u);
    EXPECT_EQ(stats.circuits, 1u);
}

TEST_F(CircuitServiceFixture, CircuitsDrainOnShutdown)
{
    const auto c = adder(4);
    ServiceConfig config;
    config.numWorkers = 1;
    auto *service = new BootstrapService(keys(), config);
    auto future = service->submitCircuit(c, adderInputs(2, 3, 4));
    delete service; // destructor shuts down: accepted work completes
    EXPECT_EQ(decryptValue(future.get()), 5u);
}

TEST_F(CircuitServiceFixture, InvalidShardCountThrows)
{
    // Satellite regression: numShards = 0 with the sharded backend
    // must be rejected by validate() and surface as invalid_argument.
    ServiceConfig config;
    config.backend = exec::BackendKind::kShardedFunctional;
    config.numShards = 0;
    EXPECT_TRUE(config.validate().has_value());
    EXPECT_THROW(BootstrapService(keys(), config),
                 std::invalid_argument);
}

TEST_F(CircuitServiceFixture, ValidateCatchesBadConfigs)
{
    ServiceConfig ok;
    EXPECT_FALSE(ok.validate().has_value());

    ServiceConfig no_batch;
    no_batch.superbatchSize = 0;
    EXPECT_TRUE(no_batch.validate().has_value());

    ServiceConfig timing;
    timing.backend = exec::BackendKind::kTiming;
    EXPECT_TRUE(timing.validate().has_value());
    EXPECT_THROW(BootstrapService(keys(), timing),
                 std::invalid_argument);
}

} // namespace
} // namespace morphling::service
