/**
 * @file
 * Tests of the multi-tenant front door (service/multi_tenant_service.h)
 * and the tenant key registry (service/tenant_registry.h):
 *
 *  - registry identity: enroll() agrees with the serialize-layer
 *    fingerprint, LRU eviction and warm-up counters move as specified;
 *  - eviction bit-identity: a tenant evicted from the working set and
 *    re-admitted (keys warmed up from cold storage, LUTs replayed)
 *    produces bit-identical ciphertexts for identical inputs;
 *  - fairness under adversarial load: a flooding tenant exhausts its
 *    own token bucket and cannot push a trickle tenant past its SLO;
 *  - admission control: trySubmit bounces on an empty bucket, submit
 *    blocks until refill, and a circuit costing more than the bucket
 *    depth is admitted against a full bucket (negative balance)
 *    instead of blocking forever;
 *  - key rotation: re-adding a tenant with different keys drains and
 *    tears down its live service, so the next submission evaluates
 *    under the rotated keys, not the stale ones;
 *  - per-tenant telemetry: labelled metrics land in both export
 *    formats, and the quantile estimator brackets the observations.
 *
 * All run under the `tenant` ctest label (plus tsan: the fairness
 * test is a genuine multi-threaded adversarial workload).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "service/multi_tenant_service.h"
#include "service/tenant_registry.h"
#include "tfhe/encoding.h"

namespace morphling::service {
namespace {

using namespace std::chrono_literals;
using tfhe::KeySet;
using tfhe::LweCiphertext;

constexpr std::uint32_t kSpace = 4;

class TenantFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rngA(0xA11CE);
        keysA_ = new KeySet(KeySet::generate(tfhe::paramsTest(), rngA));
        evalA_ = new tfhe::EvaluationKeys(
            tfhe::EvaluationKeys::fromKeySet(*keysA_));
        Rng rngB(0xB0B);
        keysB_ = new KeySet(KeySet::generate(tfhe::paramsTest(), rngB));
        evalB_ = new tfhe::EvaluationKeys(
            tfhe::EvaluationKeys::fromKeySet(*keysB_));
    }
    static void
    TearDownTestSuite()
    {
        delete evalB_;
        delete keysB_;
        delete evalA_;
        delete keysA_;
        keysA_ = keysB_ = nullptr;
        evalA_ = evalB_ = nullptr;
    }

    const KeySet &keysA() { return *keysA_; }
    const KeySet &keysB() { return *keysB_; }
    const tfhe::EvaluationKeys &evalA() { return *evalA_; }
    const tfhe::EvaluationKeys &evalB() { return *evalB_; }

    Rng rng{0x7E7A};

    LweCiphertext
    encryptA(std::uint32_t m)
    {
        return tfhe::encryptPadded(keysA(), m, kSpace, rng);
    }

    LweCiphertext
    encryptB(std::uint32_t m)
    {
        return tfhe::encryptPadded(keysB(), m, kSpace, rng);
    }

    static std::vector<tfhe::Torus32>
    plusOneLut()
    {
        return tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return (m + 1) % kSpace;
        });
    }

    /** A service template tuned for tiny test batches. */
    static ServiceConfig
    smallService()
    {
        ServiceConfig config;
        config.superbatchSize = 4;
        config.maxWait = 2ms;
        config.maxOutstanding = 32;
        return config;
    }

    static KeySet *keysA_, *keysB_;
    static tfhe::EvaluationKeys *evalA_, *evalB_;
};

KeySet *TenantFixture::keysA_ = nullptr;
KeySet *TenantFixture::keysB_ = nullptr;
tfhe::EvaluationKeys *TenantFixture::evalA_ = nullptr;
tfhe::EvaluationKeys *TenantFixture::evalB_ = nullptr;

TEST_F(TenantFixture, RegistryFingerprintMatchesSerializeLayer)
{
    telemetry::MetricsRegistry metrics;
    TenantRegistry registry({/*maxResident=*/2}, &metrics);
    const auto fp = registry.enroll("alice", evalA());
    EXPECT_EQ(fp, tfhe::fingerprintEvaluationKeys(evalA()));
    EXPECT_EQ(registry.fingerprint("alice"), fp);
    EXPECT_NE(fp, tfhe::fingerprintEvaluationKeys(evalB()));

    // Byte-identical re-enrollment is a no-op.
    EXPECT_EQ(registry.enroll("alice", evalA()), fp);
    EXPECT_EQ(registry.stats().enrolled, 1u);
}

TEST_F(TenantFixture, RegistryLruEvictsAndWarmsUp)
{
    telemetry::MetricsRegistry metrics;
    TenantRegistry registry({/*maxResident=*/2}, &metrics);
    registry.enroll("a", evalA());
    registry.enroll("b", evalB());
    registry.enroll("c", evalA());
    EXPECT_EQ(registry.stats().resident, 0u); // enrollment is cold

    auto a = registry.acquire("a"); // warm-up 1
    auto b = registry.acquire("b"); // warm-up 2
    EXPECT_TRUE(registry.resident("a"));
    EXPECT_TRUE(registry.resident("b"));

    auto c = registry.acquire("c"); // warm-up 3, evicts LRU = "a"
    EXPECT_FALSE(registry.resident("a"));
    EXPECT_TRUE(registry.resident("b"));
    EXPECT_TRUE(registry.resident("c"));

    // The handed-out shared_ptr outlives the eviction: "a" is still
    // usable by whoever held it.
    EXPECT_EQ(tfhe::fingerprintEvaluationKeys(*a),
              tfhe::fingerprintEvaluationKeys(evalA()));

    // Re-acquiring "a" warms up again and evicts "b" (LRU after the
    // "c" touch).
    auto a2 = registry.acquire("a");
    EXPECT_FALSE(registry.resident("b"));

    const auto stats = registry.stats();
    EXPECT_EQ(stats.warmUps, 4u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.resident, 2u);
    EXPECT_GT(stats.residentBytes, 0u);
    EXPECT_GT(stats.lastWarmUpUs, 0.0);

    // A hit refreshes recency without a warm-up.
    auto c2 = registry.acquire("c");
    EXPECT_EQ(registry.stats().hits, 1u);

    EXPECT_THROW((void)registry.acquire("nobody"), std::out_of_range);
}

TEST_F(TenantFixture, EvictionAndWarmUpYieldBitIdenticalOutputs)
{
    telemetry::MetricsRegistry metrics;
    MultiTenantConfig config;
    config.service = smallService();
    config.registry.maxResident = 1;
    config.maxLiveServices = 1;
    config.metrics = &metrics;
    MultiTenantService front(config);

    front.addTenant("alice", evalA());
    front.addTenant("bob", evalB());
    const LutId lutA = front.registerLut("alice", plusOneLut());
    const LutId lutB = front.registerLut("bob", plusOneLut());

    const LweCiphertext input = encryptA(2);

    auto f1 = front.submit("alice", input, lutA);
    ASSERT_EQ(f1.wait_for(60s), std::future_status::ready);
    const LweCiphertext out1 = f1.get();
    EXPECT_EQ(tfhe::decryptPadded(keysA(), out1, kSpace), 3u);
    EXPECT_TRUE(front.stats("alice").resident);

    // Bob's first submission forces alice's idle service out of the
    // working set (maxLiveServices = 1) and her keys out of the
    // registry's LRU.
    auto fB = front.submit("bob", encryptB(1), lutB);
    ASSERT_EQ(fB.wait_for(60s), std::future_status::ready);
    EXPECT_EQ(tfhe::decryptPadded(keysB(), fB.get(), kSpace), 2u);
    EXPECT_FALSE(front.stats("alice").resident);
    EXPECT_FALSE(front.registry().resident("alice"));

    // Re-admission: keys warm up from cold storage, the LUT namespace
    // replays, and the identical input produces the bit-identical
    // ciphertext — blind rotation is deterministic in the keys.
    auto f2 = front.submit("alice", input, lutA);
    ASSERT_EQ(f2.wait_for(60s), std::future_status::ready);
    const LweCiphertext out2 = f2.get();
    EXPECT_EQ(out1.raw(), out2.raw());

    const auto reg = front.registry().stats();
    EXPECT_GE(reg.warmUps, 3u);   // alice, bob, alice again
    EXPECT_GE(reg.evictions, 2u); // alice out, bob out
    EXPECT_EQ(front.stats("alice").completed, 2u);
    EXPECT_EQ(front.stats("bob").completed, 1u);
}

TEST_F(TenantFixture, FloodingTenantCannotStarveTrickleTenant)
{
    telemetry::MetricsRegistry metrics;
    MultiTenantConfig config;
    config.service = smallService();
    config.registry.maxResident = 2;
    config.metrics = &metrics;
    MultiTenantService front(config);

    // The flood is rate-limited to its quota; the trickle tenant is
    // unthrottled with a generous latency SLO the flood must not be
    // able to break.
    TenantQuota floodQuota;
    floodQuota.ratePerSec = 400;
    floodQuota.burst = 8;
    TenantQuota trickleQuota;
    trickleQuota.sloLatencyUs = 2e6; // 2 s: orders above normal
    front.addTenant("flood", evalA(), floodQuota);
    front.addTenant("trickle", evalB(), trickleQuota);
    const LutId floodLut = front.registerLut("flood", plusOneLut());
    const LutId trickleLut =
        front.registerLut("trickle", plusOneLut());

    std::atomic<bool> stop{false};
    std::thread flooder([&] {
        Rng floodRng(0xF100D);
        std::vector<std::future<LweCiphertext>> futures;
        while (!stop.load()) {
            auto ct =
                tfhe::encryptPadded(keysA(), 1, kSpace, floodRng);
            if (auto f =
                    front.trySubmit("flood", std::move(ct), floodLut))
                futures.push_back(std::move(*f));
        }
        for (auto &f : futures)
            f.wait();
    });

    // The trickle tenant submits sequentially under the flood.
    for (unsigned i = 0; i < 12; ++i) {
        auto f = front.submit("trickle", encryptB(i % kSpace),
                              trickleLut);
        ASSERT_EQ(f.wait_for(60s), std::future_status::ready);
        EXPECT_EQ(tfhe::decryptPadded(keysB(), f.get(), kSpace),
                  (i + 1) % kSpace);
        std::this_thread::sleep_for(2ms);
    }
    stop = true;
    flooder.join();

    const auto trickle = front.stats("trickle");
    const auto flood = front.stats("flood");
    EXPECT_EQ(trickle.completed, 12u);
    EXPECT_EQ(trickle.sloBreaches, 0u)
        << "flood pushed the trickle tenant past its SLO (p99 = "
        << trickle.p99LatencyUs << " us)";
    EXPECT_LE(trickle.p99LatencyUs, trickleQuota.sloLatencyUs);
    EXPECT_GT(flood.throttled, 0u)
        << "the flood was never throttled - the token bucket is not "
           "limiting admission";
    EXPECT_EQ(trickle.throttled, 0u);
}

TEST_F(TenantFixture, AdmissionBucketBouncesAndRefills)
{
    telemetry::MetricsRegistry metrics;
    MultiTenantConfig config;
    config.service = smallService();
    config.metrics = &metrics;
    MultiTenantService front(config);

    // Warm-up pass with no quota: materializing the service (key
    // deserialization, worker spin-up) must not eat into the bucket
    // timing measured below.
    front.addTenant("capped", evalA());
    const LutId lut = front.registerLut("capped", plusOneLut());
    auto warm = front.submit("capped", encryptA(0), lut);
    ASSERT_EQ(warm.wait_for(60s), std::future_status::ready);
    warm.get();

    // Re-adding the tenant updates the quota in place: one token per
    // 200 ms, so the fail-fast sequence below cannot refill under it.
    TenantQuota quota;
    quota.ratePerSec = 5;
    quota.burst = 2;
    front.addTenant("capped", evalA(), quota);

    // The bucket starts full: exactly `burst` fail-fast admissions.
    auto f1 = front.trySubmit("capped", encryptA(0), lut);
    auto f2 = front.trySubmit("capped", encryptA(1), lut);
    ASSERT_TRUE(f1.has_value());
    ASSERT_TRUE(f2.has_value());
    auto f3 = front.trySubmit("capped", encryptA(2), lut);
    EXPECT_FALSE(f3.has_value());
    EXPECT_EQ(front.stats("capped").throttled, 1u);

    // A blocking submit waits out the refill instead of bouncing.
    auto f4 = front.submit("capped", encryptA(3), lut);
    ASSERT_EQ(f1->wait_for(60s), std::future_status::ready);
    ASSERT_EQ(f2->wait_for(60s), std::future_status::ready);
    ASSERT_EQ(f4.wait_for(60s), std::future_status::ready);
    EXPECT_EQ(tfhe::decryptPadded(keysA(), f4.get(), kSpace), 0u);
    EXPECT_EQ(front.stats("capped").completed, 4u);
}

TEST_F(TenantFixture, OversizedCircuitAdmitsAgainstSmallBucket)
{
    telemetry::MetricsRegistry metrics;
    MultiTenantConfig config;
    config.service = smallService();
    config.metrics = &metrics;
    MultiTenantService front(config);

    // Refill clamps tokens to burst, so a draw above the bucket depth
    // could never be covered by waiting: the blocking submitCircuit
    // must admit it against a full bucket (driving the balance
    // negative) rather than sleeping forever.
    TenantQuota quota;
    quota.ratePerSec = 1000;
    quota.burst = 2;
    front.addTenant("alice", evalA(), quota);

    circuit::Circuit c;
    std::vector<circuit::Wire> a, b, sum;
    for (unsigned i = 0; i < 4; ++i)
        a.push_back(c.bitInput());
    for (unsigned i = 0; i < 4; ++i)
        b.push_back(c.bitInput());
    const auto carry = circuit::buildRippleAdder(c, a, b, sum);
    for (auto w : sum)
        c.markOutput(w);
    c.markOutput(carry);
    ASSERT_GT(static_cast<double>(c.bootstrapCount()), quota.burst);

    const unsigned x = 5, y = 9;
    std::vector<LweCiphertext> inputs;
    for (unsigned i = 0; i < 4; ++i)
        inputs.push_back(
            tfhe::encryptBit(keysA(), ((x >> i) & 1) != 0, rng));
    for (unsigned i = 0; i < 4; ++i)
        inputs.push_back(
            tfhe::encryptBit(keysA(), ((y >> i) & 1) != 0, rng));

    auto f = front.submitCircuit("alice", c, std::move(inputs));
    ASSERT_EQ(f.wait_for(60s), std::future_status::ready);
    const auto outputs = f.get();
    unsigned v = 0;
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        v |= static_cast<unsigned>(
                 tfhe::decryptBit(keysA(), outputs[i]))
             << i;
    }
    EXPECT_EQ(v, x + y);
}

TEST_F(TenantFixture, KeyRotationRefreshesLiveService)
{
    telemetry::MetricsRegistry metrics;
    MultiTenantConfig config;
    config.service = smallService();
    config.metrics = &metrics;
    MultiTenantService front(config);

    front.addTenant("alice", evalA());
    const LutId lut = front.registerLut("alice", plusOneLut());
    auto f1 = front.submit("alice", encryptA(1), lut);
    ASSERT_EQ(f1.wait_for(60s), std::future_status::ready);
    EXPECT_EQ(tfhe::decryptPadded(keysA(), f1.get(), kSpace), 2u);
    EXPECT_TRUE(front.stats("alice").resident);

    // Rotate to key set B while the service is live: the stale
    // service must be drained and torn down, so the next submission
    // re-materializes (replaying the LUT namespace) under the new
    // keys instead of silently evaluating under the rotated-out ones.
    const auto fp = front.addTenant("alice", evalB());
    EXPECT_EQ(fp, tfhe::fingerprintEvaluationKeys(evalB()));
    EXPECT_FALSE(front.stats("alice").resident);

    auto f2 = front.submit("alice", encryptB(2), lut);
    ASSERT_EQ(f2.wait_for(60s), std::future_status::ready);
    EXPECT_EQ(tfhe::decryptPadded(keysB(), f2.get(), kSpace), 3u);
}

TEST_F(TenantFixture, RejectsDegenerateQuotasAndUnknownTenants)
{
    telemetry::MetricsRegistry metrics;
    MultiTenantConfig config;
    config.service = smallService();
    config.metrics = &metrics;
    MultiTenantService front(config);

    TenantQuota negative_rate;
    negative_rate.ratePerSec = -1;
    EXPECT_THROW(front.addTenant("x", evalA(), negative_rate),
                 std::invalid_argument);

    TenantQuota empty_bucket;
    empty_bucket.ratePerSec = 10;
    empty_bucket.burst = 0;
    EXPECT_THROW(front.addTenant("x", evalA(), empty_bucket),
                 std::invalid_argument);

    TenantQuota zero_weight;
    zero_weight.weight = 0;
    EXPECT_THROW(front.addTenant("x", evalA(), zero_weight),
                 std::invalid_argument);

    TenantQuota negative_slo;
    negative_slo.sloLatencyUs = -5;
    EXPECT_THROW(front.addTenant("x", evalA(), negative_slo),
                 std::invalid_argument);

    EXPECT_THROW((void)front.submit("ghost", encryptA(0), 0),
                 std::out_of_range);
    EXPECT_THROW((void)front.stats("ghost"), std::out_of_range);

    // The front door validates its service template up front.
    MultiTenantConfig bad;
    bad.service.backend = exec::BackendKind::kTiming;
    bad.metrics = &metrics;
    EXPECT_THROW(MultiTenantService rejected(bad),
                 std::invalid_argument);
}

TEST_F(TenantFixture, PerTenantMetricsReachBothExportFormats)
{
    telemetry::MetricsRegistry metrics;
    MultiTenantConfig config;
    config.service = smallService();
    config.metrics = &metrics;
    {
        MultiTenantService front(config);
        front.addTenant("alice", evalA());
        const LutId lut = front.registerLut("alice", plusOneLut());
        auto f = front.submit("alice", encryptA(1), lut);
        ASSERT_EQ(f.wait_for(60s), std::future_status::ready);
        f.get();
    }

    std::ostringstream json;
    metrics.writeJson(json);
    EXPECT_NE(json.str().find("tenant.alice.latency_us"),
              std::string::npos);
    EXPECT_NE(json.str().find("tenant.alice.completed"),
              std::string::npos);
    EXPECT_NE(json.str().find("tenant.registry.warmups"),
              std::string::npos);

    std::ostringstream prom;
    metrics.writePrometheus(prom);
    EXPECT_NE(prom.str().find("morphling_tenant_alice_latency_us"),
              std::string::npos);
    EXPECT_NE(prom.str().find("morphling_tenant_registry_warmups"),
              std::string::npos);
}

TEST(TenantQuantile, BracketsObservationsWithinOneLogBucket)
{
    telemetry::Histogram h("t", "");
    EXPECT_EQ(histogramQuantile(h, 0.5), 0.0); // empty

    for (int i = 0; i < 99; ++i)
        h.observe(100.0);
    h.observe(100000.0);

    const double p50 = histogramQuantile(h, 0.50);
    const double p99 = histogramQuantile(h, 0.99);
    const double p100 = histogramQuantile(h, 1.0);
    EXPECT_GE(p50, 100.0);
    EXPECT_LE(p50, 256.0); // within one power-of-two bucket
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p100);
    EXPECT_LE(p100, h.max()); // clamped to the observed maximum
}

} // namespace
} // namespace morphling::service
