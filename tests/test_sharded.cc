/**
 * @file
 * Tests of exec::ShardedBackend: bit-identical outputs and an
 * identical merged retirement order to the single FunctionalBackend
 * for N in {1, 2, 4} shards, the retirement contract over the merged
 * log, timing-shard makespan semantics, mixed functional/timing
 * fleets, and the co-simulator's sharded-reference checks.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "arch/config.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/cosim.h"
#include "exec/functional_backend.h"
#include "exec/sharded_backend.h"
#include "exec/timing_backend.h"
#include "tfhe/batch.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

namespace morphling::exec {
namespace {

class ShardedFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0x5AAD);
        keys_ = new tfhe::KeySet(
            tfhe::KeySet::generate(tfhe::paramsTest(), rng));
        evalKeys_ = new tfhe::EvaluationKeys(
            tfhe::EvaluationKeys::fromKeySet(*keys_));
    }
    static void
    TearDownTestSuite()
    {
        delete evalKeys_;
        delete keys_;
        keys_ = nullptr;
        evalKeys_ = nullptr;
    }

    const tfhe::KeySet &keys() { return *keys_; }
    const tfhe::EvaluationKeys &evalKeys() { return *evalKeys_; }

    Rng rng{0x5AAD5};

    std::vector<tfhe::LweCiphertext>
    encryptBatch(std::size_t count)
    {
        std::vector<tfhe::LweCiphertext> out;
        out.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            out.push_back(tfhe::encryptPadded(
                keys(), static_cast<std::uint32_t>(i % 4), 4, rng));
        }
        return out;
    }

    /** Exactly-once coverage + per-group program order. */
    static void
    checkRetirementContract(const compiler::Program &program,
                            const std::vector<RetiredInstruction> &log)
    {
        ASSERT_EQ(log.size(), program.size());
        std::set<std::size_t> seen;
        std::map<unsigned, std::size_t> last_index;
        for (const auto &r : log) {
            EXPECT_TRUE(seen.insert(r.index).second)
                << "instruction " << r.index << " retired twice";
            EXPECT_EQ(r.inst, program.at(r.index));
            const unsigned g = r.inst.group;
            if (last_index.count(g)) {
                EXPECT_LT(last_index[g], r.index)
                    << "group " << g << " retired out of program order";
            }
            last_index[g] = r.index;
        }
    }

    /** Same retired instructions, in the same order. */
    static void
    expectSameOrder(const std::vector<RetiredInstruction> &a,
                    const std::vector<RetiredInstruction> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].index, b[i].index)
                << "retirement " << i << " diverges";
            EXPECT_EQ(a[i].inst, b[i].inst);
        }
    }

    static tfhe::KeySet *keys_;
    static tfhe::EvaluationKeys *evalKeys_;
};

tfhe::KeySet *ShardedFixture::keys_ = nullptr;
tfhe::EvaluationKeys *ShardedFixture::evalKeys_ = nullptr;

TEST_F(ShardedFixture, SliceGroupsPartitionsTheProgram)
{
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    ASSERT_EQ(program.numGroups(), 4u);

    const auto even = program.sliceGroups("even", {0, 2});
    const auto odd = program.sliceGroups("odd", {1, 3});
    EXPECT_EQ(even.program.size() + odd.program.size(), program.size());
    EXPECT_EQ(even.program.numGroups(), 2u);
    EXPECT_EQ(odd.program.numGroups(), 2u);

    // Slice instructions are the source instructions in source order,
    // with only the group id remapped.
    for (std::size_t j = 0; j < even.program.size(); ++j) {
        const auto &src = program.at(even.globalIndex[j]);
        const auto &dst = even.program.at(j);
        EXPECT_EQ(dst.op, src.op);
        EXPECT_EQ(dst.count, src.count);
        EXPECT_EQ(dst.operand, src.operand);
        EXPECT_EQ(src.group, even.groups[dst.group]);
        if (j > 0)
            EXPECT_LT(even.globalIndex[j - 1], even.globalIndex[j]);
    }

    // Ids beyond numGroups() yield empty streams (round-robin shard
    // assignment over more shards than groups).
    const auto empty = program.sliceGroups("empty", {7});
    EXPECT_EQ(empty.program.size(), 0u);
}

TEST_F(ShardedFixture, MatchesFunctionalBitExactForN124)
{
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);

    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    // The group-parallel functional run is the canonical retirement
    // order ShardedBackend's merge reproduces for every shard count.
    Job par_job = job;
    par_job.options.threads = 4;
    FunctionalBackend mono(evalKeys());
    const auto reference = mono.run(program, par_job);
    ASSERT_TRUE(reference.hasOutputs);

    for (const unsigned n : {1u, 2u, 4u}) {
        auto sharded = ShardedBackend::functional(evalKeys(), n);
        const auto result = sharded.run(program, job);
        ASSERT_TRUE(result.hasOutputs) << n << " shards";
        ASSERT_EQ(result.outputs.size(), reference.outputs.size());
        for (std::size_t i = 0; i < result.outputs.size(); ++i) {
            EXPECT_EQ(result.outputs[i].raw(),
                      reference.outputs[i].raw())
                << "slot " << i << " with " << n << " shards";
        }
        expectSameOrder(result.retired, reference.retired);
        checkRetirementContract(program, result.retired);
    }
}

TEST_F(ShardedFixture, MultiStageBarrierProgramMerges)
{
    compiler::Workload w;
    w.name = "two-stage";
    w.stages.push_back({16, 300});
    w.stages.push_back({16, 0});
    const auto program =
        compiler::SwScheduler(keys().params).schedule(w);
    const auto inputs = encryptBatch(32);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return 3 - m;
    });

    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    Job par_job = job;
    par_job.options.threads = 4;
    FunctionalBackend mono(evalKeys());
    const auto reference = mono.run(program, par_job);

    auto sharded = ShardedBackend::functional(evalKeys(), 2);
    const auto result = sharded.run(program, job);
    ASSERT_TRUE(result.hasOutputs);
    for (std::size_t i = 0; i < result.outputs.size(); ++i)
        EXPECT_EQ(result.outputs[i].raw(), reference.outputs[i].raw());
    expectSameOrder(result.retired, reference.retired);
}

TEST_F(ShardedFixture, MoreShardsThanGroupsStillCovers)
{
    // 8 bootstraps schedule into fewer groups than shards; the extra
    // shards run empty slices and the merge still covers everything.
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(8);
    const auto inputs = encryptBatch(8);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    auto sharded = ShardedBackend::functional(evalKeys(), 6);
    const auto result = sharded.run(program, job);
    ASSERT_TRUE(result.hasOutputs);
    checkRetirementContract(program, result.retired);
    const auto reference = tfhe::batchBootstrap(keys(), inputs, lut);
    for (std::size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(result.outputs[i].raw(), reference[i].raw());
}

TEST_F(ShardedFixture, SteppedReplayHonoursContract)
{
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(32);
    const auto inputs = encryptBatch(32);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 2) % 4;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    auto sharded = ShardedBackend::functional(evalKeys(), 4);
    sharded.load(program, job);
    EXPECT_FALSE(sharded.done());
    std::vector<RetiredInstruction> log;
    while (auto r = sharded.step()) {
        EXPECT_EQ(r->seq, log.size());
        log.push_back(*r);
    }
    EXPECT_TRUE(sharded.done());
    checkRetirementContract(program, log);

    const auto result = sharded.finish();
    ASSERT_TRUE(result.hasOutputs);
    const auto reference = tfhe::batchBootstrap(keys(), inputs, lut);
    for (std::size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(result.outputs[i].raw(), reference[i].raw());
}

TEST_F(ShardedFixture, ShardStatsDescribeThePartition)
{
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    auto sharded = ShardedBackend::functional(evalKeys(), 4);
    (void)sharded.run(program, job);
    ASSERT_EQ(sharded.shardStats().size(), 4u);
    std::size_t instructions = 0;
    std::uint64_t rotations = 0;
    std::set<unsigned> owned;
    for (const auto &st : sharded.shardStats()) {
        instructions += st.instructions;
        rotations += st.blindRotations;
        for (const unsigned g : st.groups)
            EXPECT_TRUE(owned.insert(g).second)
                << "group " << g << " owned twice";
        EXPECT_FALSE(st.hasReport); // functional shards do not time
        EXPECT_GT(st.wallNanos, 0u);
        EXPECT_GT(st.cpuNanos, 0u);
    }
    EXPECT_EQ(instructions, program.size());
    EXPECT_EQ(rotations, program.totalBlindRotations());
}

TEST_F(ShardedFixture, TimingShardsReportMakespan)
{
    const auto &params = tfhe::paramsSetI();
    const auto cfg = arch::ArchConfig::morphlingDefault();
    const auto program =
        compiler::SwScheduler(params).scheduleBootstrapBatch(64);

    auto sharded = ShardedBackend::timing(cfg, params, 4);
    const auto result = sharded.run(program, Job{});
    ASSERT_TRUE(result.hasReport);
    EXPECT_FALSE(result.hasOutputs);
    checkRetirementContract(program, result.retired);

    std::uint64_t max_cycles = 0;
    std::uint64_t bootstraps = 0;
    for (const auto &st : sharded.shardStats()) {
        EXPECT_TRUE(st.hasReport);
        EXPECT_GT(st.cycles, 0u);
        max_cycles = std::max(max_cycles, st.cycles);
    }
    for (unsigned s = 0; s < sharded.numShards(); ++s) {
        const auto *tb = dynamic_cast<const TimingBackend *>(
            &sharded.shardBackend(s));
        ASSERT_NE(tb, nullptr);
        bootstraps += tb->report().bootstraps;
    }
    EXPECT_EQ(result.report.cycles, max_cycles);
    EXPECT_EQ(sharded.makespan(), max_cycles);
    EXPECT_EQ(result.report.bootstraps, bootstraps);
    EXPECT_EQ(result.report.bootstraps, 64u);

    // A 16-LWE shard of the superbatch cannot beat a quarter of the
    // monolithic run (BSK streaming is shared), but the makespan must
    // not exceed the monolithic accelerator either.
    TimingBackend mono(cfg, params);
    const auto whole = mono.run(program, Job{});
    EXPECT_LE(result.report.cycles, whole.report.cycles);
}

TEST_F(ShardedFixture, MixedFunctionalAndTimingShards)
{
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    std::vector<std::unique_ptr<ExecutionBackend>> mix;
    mix.push_back(std::make_unique<FunctionalBackend>(evalKeys()));
    mix.push_back(std::make_unique<TimingBackend>(
        arch::ArchConfig::morphlingDefault(), keys().params));
    ShardedBackend sharded(std::move(mix));
    const auto result = sharded.run(program, job);

    // The timing shard produced no ciphertexts, so the merged result
    // has none either — but it does carry the timing shard's report,
    // and the merged log still covers the whole program.
    EXPECT_FALSE(result.hasOutputs);
    EXPECT_TRUE(result.hasReport);
    EXPECT_GT(result.report.cycles, 0u);
    checkRetirementContract(program, result.retired);
}

TEST_F(ShardedFixture, CosimAcceptsShardedFunctionalReference)
{
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    auto sharded = ShardedBackend::functional(evalKeys(), 4);
    TimingBackend timing(arch::ArchConfig::morphlingDefault(),
                         keys().params);
    CosimOptions options;
    options.referenceKeys = &evalKeys();
    LockstepCosim cosim(sharded, timing, options);
    const auto report = cosim.run(program, job);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.lockstepComparisons, program.size());
    EXPECT_TRUE(report.functional.hasOutputs);
}

TEST_F(ShardedFixture, CosimAcceptsShardedTimingReference)
{
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    FunctionalBackend functional(evalKeys());
    auto sharded = ShardedBackend::timing(
        arch::ArchConfig::morphlingDefault(), keys().params, 2);
    LockstepCosim cosim(functional, sharded);
    const auto report = cosim.run(program, job);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_TRUE(report.timing.hasReport);
}

TEST_F(ShardedFixture, CosimAcceptsFleetTimingReference)
{
    // Shared-fabric shards have no inner TimingBackend; the
    // co-simulator's sharded checks must still verify their raw
    // shared-clock completion logs and come back green.
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    FunctionalBackend functional(evalKeys());
    auto sharded = ShardedBackend::fleetTiming(
        arch::ArchConfig::morphlingDefault(), keys().params, 4);
    EXPECT_TRUE(sharded.fleetMode());
    LockstepCosim cosim(functional, sharded);
    const auto report = cosim.run(program, job);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_TRUE(report.timing.hasReport);
    EXPECT_EQ(sharded.shardCompletions().size(), 4u);
}

using ShardedDeathTest = ShardedFixture;

TEST_F(ShardedDeathTest, FinishBeforeFullReplayIsRejected)
{
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(8);
    const auto inputs = encryptBatch(8);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    auto sharded = ShardedBackend::functional(evalKeys(), 2);
    sharded.load(program, job);
    (void)sharded.step();
    EXPECT_DEATH((void)sharded.finish(), "");
}

} // namespace
} // namespace morphling::exec
