/**
 * @file
 * Unit tests for the memory-system models: HBM channels, striping, the
 * NoC links, and the DMA engines (bandwidth conservation invariants).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/dma.h"
#include "sim/hbm.h"
#include "sim/noc.h"

namespace morphling::sim {
namespace {

HbmConfig
testHbm()
{
    HbmConfig cfg;
    cfg.channels = 8;
    cfg.bandwidthGBs = 310.0;
    cfg.clockGHz = 1.2;
    cfg.accessLatency = 100;
    return cfg;
}

TEST(Hbm, BytesPerCycleMatchesSpec)
{
    const HbmConfig cfg = testHbm();
    // 310 GB/s over 8 channels at 1.2 GHz.
    EXPECT_NEAR(cfg.bytesPerCyclePerChannel(), 310.0 / 8 / 1.2, 1e-9);
}

TEST(Hbm, SingleAccessLatency)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    const std::uint64_t bytes = 32768;
    const Tick done = hbm.access(0, bytes);
    const double bpc = testHbm().bytesPerCyclePerChannel();
    const Tick expected =
        static_cast<Tick>(std::ceil(bytes / bpc)) + 100;
    EXPECT_EQ(done, expected);
}

TEST(Hbm, ChannelSerializesBackToBack)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    const Tick d1 = hbm.access(0, 1 << 20);
    const Tick d2 = hbm.access(0, 1 << 20);
    // Second transfer queues behind the first's occupancy (latency is
    // pipelined, so the gap is exactly the busy time).
    EXPECT_EQ(d2 - d1, d1 - 100);
}

TEST(Hbm, DifferentChannelsAreIndependent)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    const Tick d1 = hbm.access(0, 1 << 20);
    const Tick d2 = hbm.access(1, 1 << 20);
    EXPECT_EQ(d1, d2);
}

TEST(Hbm, StripedAccessUsesAllChannels)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    const Tick striped = hbm.accessStriped(0, 4, 4 << 20);
    EventQueue eq2;
    Hbm hbm2(eq2, testHbm());
    const Tick single = hbm2.access(0, 4 << 20);
    // Four channels: roughly 4x faster (latency once).
    EXPECT_LT(striped, single / 2);
}

TEST(Hbm, CompletionCallbackFires)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    bool fired = false;
    const Tick done = hbm.access(0, 4096, [&]() { fired = true; });
    eq.runAll();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.now(), done);
}

TEST(Hbm, AchievedBandwidthBelowPeak)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    for (int i = 0; i < 100; ++i)
        hbm.accessStriped(0, 8, 1 << 20, []() {});
    eq.runAll();
    EXPECT_GT(hbm.totalBytes(), 0u);
    // Sustained model can never exceed the configured aggregate.
    EXPECT_LE(hbm.achievedBandwidthGBs(), 310.0 + 1.0);
    EXPECT_GT(hbm.achievedBandwidthGBs(), 200.0);
}

TEST(Noc, LinkTransferTiming)
{
    EventQueue eq;
    Noc noc(eq);
    auto &link = noc.addLink("a1_to_xpu", 64);
    const Tick done = link.transfer(6400);
    EXPECT_EQ(done, 100u);
    EXPECT_EQ(link.totalBytes(), 6400u);
}

TEST(Noc, LinkSerializes)
{
    EventQueue eq;
    Noc noc(eq);
    auto &link = noc.addLink("l", 64);
    link.transfer(640);
    const Tick done = link.transfer(640);
    EXPECT_EQ(done, 20u);
}

TEST(Noc, AggregateBandwidth)
{
    EventQueue eq;
    Noc noc(eq);
    // The paper's chip-wide 4.8 TB/s at 1.2 GHz = 4000 B/cycle total.
    for (int i = 0; i < 8; ++i)
        noc.addLink("xbar" + std::to_string(i), 500);
    EXPECT_NEAR(noc.aggregateBandwidthTBs(1.2), 4.8, 1e-9);
}

TEST(Noc, UtilizationTracksBusyFraction)
{
    EventQueue eq;
    Noc noc(eq);
    auto &link = noc.addLink("l", 64);
    link.transfer(64 * 50); // 50 cycles
    eq.runUntil(100);
    EXPECT_NEAR(link.utilization(), 0.5, 1e-9);
}

TEST(Dma, LoadStripesAndCompletes)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    DmaEngine dma(eq, hbm, "ksk_dma", 0, 6);
    EXPECT_NEAR(dma.bytesPerCycle(),
                testHbm().bytesPerCyclePerChannel() * 6, 1e-9);

    bool fired = false;
    dma.load(6 << 20, [&]() { fired = true; });
    EXPECT_EQ(dma.outstanding(), 1u);
    eq.runAll();
    EXPECT_TRUE(fired);
    EXPECT_EQ(dma.outstanding(), 0u);
    EXPECT_EQ(dma.totalBytes(), std::uint64_t{6} << 20);
}

TEST(Hbm, StripedMulticastDeliversAllAtOneOccupancy)
{
    EventQueue eq;
    Hbm uni(eq, testHbm());
    const std::uint64_t bytes = 4 << 20;
    const Tick unicast = uni.accessStriped(0, 8, bytes, nullptr);

    EventQueue eq2;
    Hbm hbm(eq2, testHbm());
    unsigned fired = 0;
    std::vector<EventQueue::Callback> consumers;
    for (unsigned i = 0; i < 3; ++i)
        consumers.push_back([&fired]() { ++fired; });
    const Tick done =
        hbm.accessStripedMulticast(0, 8, bytes, std::move(consumers));
    // One channel occupancy no matter how many consumers listen.
    EXPECT_EQ(done, unicast);
    // A follow-up transfer queues behind exactly one occupancy —
    // identical timeline to the unicast channel.
    EXPECT_EQ(hbm.accessStriped(0, 8, bytes, nullptr),
              uni.accessStriped(0, 8, bytes, nullptr));
    eq2.runAll();
    EXPECT_EQ(fired, 3u);
}

TEST(MulticastDma, JoinInFlightCoalesces)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    MulticastDma bus(eq, hbm, "bsk_bus", 0, 8, 2);
    const std::uint64_t bytes = 1 << 20;

    Tick done0 = 0;
    Tick done1 = 0;
    bus.request(0, 7, bytes, [&]() { done0 = eq.now(); });
    bus.request(1, 7, bytes, [&]() { done1 = eq.now(); });
    eq.runAll();

    // One HBM read, both consumers complete together.
    EXPECT_EQ(bus.fetches(), 1u);
    EXPECT_EQ(bus.joins(), 1u);
    EXPECT_EQ(bus.fetchedBytes(), bytes);
    EXPECT_EQ(bus.deliveredBytes(), 2 * bytes);
    EXPECT_EQ(bus.deliveredBytes(0), bytes);
    EXPECT_EQ(bus.deliveredBytes(1), bytes);
    EXPECT_GT(done0, Tick{0});
    EXPECT_EQ(done0, done1);
}

TEST(MulticastDma, ResidencyServesLateConsumerForFree)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    MulticastDma bus(eq, hbm, "bsk_bus", 0, 8, 2);
    const std::uint64_t bytes = 1 << 20;

    bus.request(0, 3, bytes, nullptr);
    eq.runAll();
    ASSERT_EQ(bus.fetches(), 1u);

    // The tag is resident: the straggler completes at `now` without
    // touching HBM again.
    Tick late = 0;
    const Tick asked = eq.now();
    bus.request(1, 3, bytes, [&]() { late = eq.now(); });
    eq.runAll();
    EXPECT_EQ(bus.fetches(), 1u);
    EXPECT_EQ(bus.residencyHits(), 1u);
    EXPECT_EQ(bus.fetchedBytes(), bytes);
    EXPECT_EQ(bus.deliveredBytes(), 2 * bytes);
    EXPECT_EQ(late, asked);
}

TEST(MulticastDma, EvictedTagRefetches)
{
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    MulticastDma bus(eq, hbm, "bsk_bus", 0, 8, 1,
                     /*residency_depth=*/1);
    const std::uint64_t bytes = 1 << 20;

    bus.request(0, 0, bytes, nullptr);
    eq.runAll();
    bus.request(0, 1, bytes, nullptr); // evicts tag 0
    eq.runAll();
    bus.request(0, 0, bytes, nullptr); // must re-read HBM
    eq.runAll();
    EXPECT_EQ(bus.fetches(), 3u);
    EXPECT_EQ(bus.residencyHits(), 0u);
    EXPECT_EQ(bus.fetchedBytes(), 3 * bytes);
}

TEST(Dma, ChannelPartitionIsolation)
{
    // XPU loads on channels 6..7 must not slow VPU loads on 0..5.
    EventQueue eq;
    Hbm hbm(eq, testHbm());
    DmaEngine vpu_dma(eq, hbm, "vpu", 0, 6);
    DmaEngine xpu_dma(eq, hbm, "xpu", 6, 2);

    const Tick xpu_alone = xpu_dma.load(1 << 20);
    const Tick vpu_done = vpu_dma.load(1 << 20);
    EXPECT_LT(vpu_done, xpu_alone); // more channels -> faster
    // Re-issuing on the XPU path is unaffected by VPU traffic.
    const Tick xpu_again = xpu_dma.load(1 << 20);
    EXPECT_EQ(xpu_again - 100, 2 * (xpu_alone - 100));
}

} // namespace
} // namespace morphling::sim
