/**
 * @file
 * Unit tests for gadget decomposition, GGSW encryption, and the
 * external product (schoolbook vs Fourier), plus the CMux selector
 * identity that blind rotation is built on.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/ggsw.h"
#include "tfhe/params.h"

namespace morphling::tfhe {
namespace {

TEST(GadgetDecompose, ReconstructionErrorBounded)
{
    Rng rng(1);
    for (unsigned base_bits : {2u, 6u, 8u, 10u, 23u}) {
        for (unsigned levels = 1; levels * base_bits <= 32 && levels <= 4;
             ++levels) {
            const double bound =
                0x1.0p-1 / std::pow(2.0, base_bits * levels) + 1e-12;
            for (int rep = 0; rep < 200; ++rep) {
                const Torus32 v = rng.nextU32();
                std::vector<std::int32_t> digits(levels);
                gadgetDecomposeScalar(v, base_bits, levels,
                                      digits.data());
                Torus32 recon = 0;
                for (unsigned j = 0; j < levels; ++j) {
                    recon += static_cast<Torus32>(
                        static_cast<std::int64_t>(digits[j])
                        << (32 - (j + 1) * base_bits));
                }
                EXPECT_LE(torusDistance(recon, v), bound)
                    << "base=2^" << base_bits << " l=" << levels;
            }
        }
    }
}

TEST(GadgetDecompose, DigitsAreCentered)
{
    Rng rng(2);
    const unsigned base_bits = 7, levels = 3;
    const std::int32_t half = 1 << (base_bits - 1);
    for (int rep = 0; rep < 500; ++rep) {
        const Torus32 v = rng.nextU32();
        std::int32_t digits[3];
        gadgetDecomposeScalar(v, base_bits, levels, digits);
        for (auto d : digits) {
            EXPECT_GE(d, -half);
            EXPECT_LT(d, half);
        }
    }
}

TEST(GadgetDecompose, ZeroDecomposesToZero)
{
    std::int32_t digits[4] = {9, 9, 9, 9};
    gadgetDecomposeScalar(0, 8, 4, digits);
    for (auto d : digits)
        EXPECT_EQ(d, 0);
}

TEST(GadgetDecompose, PolynomialMatchesScalar)
{
    Rng rng(3);
    const unsigned n = 64, base_bits = 6, levels = 3;
    TorusPolynomial poly(n);
    for (unsigned i = 0; i < n; ++i)
        poly[i] = rng.nextU32();
    std::vector<IntPolynomial> out;
    gadgetDecompose(poly, base_bits, levels, out);
    ASSERT_EQ(out.size(), levels);
    std::int32_t digits[3];
    for (unsigned i = 0; i < n; ++i) {
        gadgetDecomposeScalar(poly[i], base_bits, levels, digits);
        for (unsigned j = 0; j < levels; ++j)
            EXPECT_EQ(out[j][i], digits[j]);
    }
}

class GgswFixture : public ::testing::Test
{
  protected:
    const TfheParams &params = paramsTest();
    Rng rng{424242};
    GlweKey key = GlweKey::generate(params, rng);

    GlweCiphertext
    encryptRandom(std::uint32_t space, TorusPolynomial *message_out)
    {
        TorusPolynomial m(params.polyDegree);
        for (unsigned i = 0; i < m.degree(); ++i)
            m[i] = encodeMessage(
                static_cast<std::uint32_t>(rng.nextBelow(space)), space);
        if (message_out)
            *message_out = m;
        return GlweCiphertext::encrypt(key, m, params.glweNoiseStd, rng);
    }
};

TEST_F(GgswFixture, GgswShape)
{
    const auto ggsw =
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng);
    EXPECT_EQ(ggsw.numRows(),
              (params.glweDimension + 1) * params.bskLevels);
    EXPECT_EQ(ggsw.levels(), params.bskLevels);
    EXPECT_EQ(ggsw.baseBits(), params.bskBaseBits);
}

TEST_F(GgswFixture, ExternalProductByZeroGivesZero)
{
    const auto ggsw =
        GgswCiphertext::encrypt(key, 0, params.glweNoiseStd, rng);
    TorusPolynomial message;
    const auto ct = encryptRandom(4, &message);
    const auto result = externalProductSchoolbook(ggsw, ct);
    const auto phase = result.phase(key);
    // GGSW(0) [.] C decrypts to (approximately) the zero polynomial.
    for (unsigned i = 0; i < phase.degree(); ++i)
        EXPECT_LT(torusDistance(phase[i], 0), 1e-3);
}

TEST_F(GgswFixture, ExternalProductByOneIsIdentity)
{
    const auto ggsw =
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng);
    TorusPolynomial message;
    const auto ct = encryptRandom(4, &message);
    const auto result = externalProductSchoolbook(ggsw, ct);
    const auto phase = result.phase(key);
    for (unsigned i = 0; i < phase.degree(); ++i)
        EXPECT_EQ(decodeMessage(phase[i], 4),
                  decodeMessage(message[i], 4));
}

TEST_F(GgswFixture, FourierMatchesSchoolbook)
{
    const auto ggsw =
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng);
    const auto fourier = FourierGgsw::fromGgsw(ggsw);
    const auto ct = encryptRandom(4, nullptr);

    const auto ref = externalProductSchoolbook(ggsw, ct);
    const auto got = externalProductFourier(fourier, ct);
    for (unsigned c = 0; c <= params.glweDimension; ++c) {
        for (unsigned i = 0; i < params.polyDegree; ++i) {
            EXPECT_LT(torusDistance(got.component(c)[i],
                                    ref.component(c)[i]),
                      1.0 / (1 << 24))
                << "c=" << c << " i=" << i;
        }
    }
}

TEST_F(GgswFixture, CmuxSelectsBetweenRotatedAndOriginal)
{
    TorusPolynomial message;
    const auto ct = encryptRandom(4, &message);
    const unsigned power = 2 * params.polyDegree - 5;

    // Selector 0: output == input.
    const auto sel0 = FourierGgsw::fromGgsw(
        GgswCiphertext::encrypt(key, 0, params.glweNoiseStd, rng));
    const auto keep = cmuxRotate(sel0, ct, power);
    const auto keep_phase = keep.phase(key);
    for (unsigned i = 0; i < message.degree(); ++i)
        EXPECT_EQ(decodeMessage(keep_phase[i], 4),
                  decodeMessage(message[i], 4));

    // Selector 1: output == X^power * input.
    const auto sel1 = FourierGgsw::fromGgsw(
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng));
    const auto rot = cmuxRotate(sel1, ct, power);
    const auto rot_phase = rot.phase(key);
    const auto expected = message.mulByXPower(power);
    for (unsigned i = 0; i < message.degree(); ++i)
        EXPECT_EQ(decodeMessage(rot_phase[i], 4),
                  decodeMessage(expected[i], 4));
}

TEST_F(GgswFixture, ChainedCmuxAccumulatesRotations)
{
    // A miniature blind rotation: the accumulated rotation is the sum
    // of the selected powers.
    TorusPolynomial message;
    auto acc = encryptRandom(4, &message);
    const unsigned n_poly = params.polyDegree;
    unsigned total = 0;
    const unsigned powers[] = {3, 0, 11, 7};
    const int bits[] = {1, 1, 0, 1};
    for (int step = 0; step < 4; ++step) {
        const auto sel = FourierGgsw::fromGgsw(GgswCiphertext::encrypt(
            key, bits[step], params.glweNoiseStd, rng));
        acc = cmuxRotate(sel, acc, powers[step]);
        if (bits[step])
            total += powers[step];
    }
    const auto phase = acc.phase(key);
    const auto expected = message.mulByXPower(total % (2 * n_poly));
    for (unsigned i = 0; i < message.degree(); ++i)
        EXPECT_EQ(decodeMessage(phase[i], 4),
                  decodeMessage(expected[i], 4));
}

} // namespace
} // namespace morphling::tfhe
