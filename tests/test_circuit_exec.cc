/**
 * @file
 * Tests of circuit lowering and the CircuitExecutor: lowering
 * structure (level/step grouping, bootstrap conservation), the
 * executor's bit-identity against gate-by-gate encrypted evaluation
 * on functional and sharded backends, and the cross-level retirement
 * log contract.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/lowering.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/circuit_executor.h"
#include "exec/functional_backend.h"
#include "exec/sharded_backend.h"
#include "tfhe/params.h"

namespace morphling::exec {
namespace {

using circuit::Circuit;
using circuit::Wire;
using tfhe::BoolGate;
using tfhe::KeySet;
using tfhe::LweCiphertext;

class CircuitExecFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xC1EC);
        keys_ = new KeySet(KeySet::generate(tfhe::paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0xE4EC5};

    std::vector<LweCiphertext>
    encryptBits(unsigned value, unsigned bits)
    {
        std::vector<LweCiphertext> out;
        for (unsigned i = 0; i < bits; ++i)
            out.push_back(
                tfhe::encryptBit(keys(), (value >> i) & 1, rng));
        return out;
    }

    static Circuit
    adder(unsigned bits)
    {
        Circuit c;
        std::vector<Wire> a, b, sum;
        for (unsigned i = 0; i < bits; ++i)
            a.push_back(c.bitInput());
        for (unsigned i = 0; i < bits; ++i)
            b.push_back(c.bitInput());
        const auto carry = circuit::buildRippleAdder(c, a, b, sum);
        for (auto w : sum)
            c.markOutput(w);
        c.markOutput(carry);
        return c;
    }

    /** Bitwise identity of two ciphertext vectors. */
    static void
    expectIdentical(const std::vector<LweCiphertext> &got,
                    const std::vector<LweCiphertext> &want)
    {
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i].raw(), want[i].raw()) << "output " << i;
    }

    static KeySet *keys_;
};

KeySet *CircuitExecFixture::keys_ = nullptr;

TEST_F(CircuitExecFixture, LoweringStructure)
{
    // Two gates on level 1, one gate and one LUT node on level 2:
    // level 2 must split into two steps (batches never mix LUTs).
    Circuit c;
    const auto a = c.bitInput();
    const auto b = c.bitInput();
    const auto word = c.wordInput(4);
    const auto table = c.registerLut(4, {3, 2, 1, 0});
    const auto x = c.gate(BoolGate::Xor, a, b);
    const auto y = c.gate(BoolGate::And, a, b);
    c.markOutput(c.gate(BoolGate::Or, x, y));
    const auto first = c.applyLut(table, word);
    c.markOutput(c.applyLut(table, first));

    compiler::SwScheduler scheduler(keys().params);
    const auto lowered = circuit::lower(c, scheduler);
    EXPECT_EQ(lowered.totalBootstraps, c.bootstrapCount());
    ASSERT_EQ(lowered.numLevels(), 2u);
    // Level 1: the two gates share the sign LUT, the first applyLut is
    // its own step.
    ASSERT_EQ(lowered.levels[0].size(), 2u);
    EXPECT_TRUE(lowered.levels[0][0].signLut);
    EXPECT_EQ(lowered.levels[0][0].nodes.size(), 2u); // x and y
    EXPECT_FALSE(lowered.levels[0][1].signLut);
    EXPECT_EQ(lowered.levels[0][1].nodes.size(), 1u); // first applyLut
    // Level 2: one gate step + one LUT step.
    ASSERT_EQ(lowered.levels[1].size(), 2u);
    for (const auto &level : lowered.levels) {
        for (const auto &step : level) {
            EXPECT_GT(step.program.size(), 0u);
            EXPECT_FALSE(step.lutEntries.empty());
        }
    }
}

TEST_F(CircuitExecFixture, AdderMatchesGateByGateBitIdentical)
{
    const auto c = adder(4);
    const unsigned x = 13, y = 6;
    auto inputs = encryptBits(x, 4);
    for (const auto &ct : encryptBits(y, 4))
        inputs.push_back(ct);

    const auto reference = c.evaluateEncrypted(keys(), inputs);

    FunctionalBackend backend(keys());
    CircuitExecutor executor(keys().params, backend);
    const auto result = executor.run(c, inputs);
    expectIdentical(result.outputs, reference);

    // And the plaintext answer is right.
    unsigned sum = 0;
    for (unsigned i = 0; i < 5; ++i) {
        sum |= static_cast<unsigned>(
                   tfhe::decryptBit(keys(), result.outputs[i]))
               << i;
    }
    EXPECT_EQ(sum, x + y);
}

TEST_F(CircuitExecFixture, ComparatorMatchesGateByGateBitIdentical)
{
    Circuit c;
    std::vector<Wire> a, b;
    for (int i = 0; i < 4; ++i)
        a.push_back(c.bitInput());
    for (int i = 0; i < 4; ++i)
        b.push_back(c.bitInput());
    c.markOutput(circuit::buildGreaterEqual(c, a, b));
    c.markOutput(circuit::buildEqual(c, a, b));

    auto inputs = encryptBits(9, 4);
    for (const auto &ct : encryptBits(12, 4))
        inputs.push_back(ct);

    const auto reference = c.evaluateEncrypted(keys(), inputs);
    FunctionalBackend backend(keys());
    CircuitExecutor executor(keys().params, backend);
    expectIdentical(executor.run(c, inputs).outputs, reference);
}

TEST_F(CircuitExecFixture, LutWordCircuitMatchesGateByGate)
{
    // Chained 4-value LUT nodes exercise the staircase (non-sign) job
    // path through the executor.
    Circuit c;
    const auto in = c.wordInput(4);
    const auto tbl = c.registerLut(4, {1, 2, 3, 0});
    c.markOutput(c.applyLut(tbl, c.applyLut(tbl, in)));

    for (std::uint32_t m = 0; m < 4; ++m) {
        const std::vector<LweCiphertext> inputs = {
            tfhe::encryptPadded(keys(), m, 4, rng)};
        const auto reference = c.evaluateEncrypted(keys(), inputs);
        FunctionalBackend backend(keys());
        CircuitExecutor executor(keys().params, backend);
        const auto result = executor.run(c, inputs);
        expectIdentical(result.outputs, reference);
        EXPECT_EQ(tfhe::decryptPadded(keys(), result.outputs[0], 4),
                  (m + 2) % 4);
    }
}

TEST_F(CircuitExecFixture, ShardedMatchesFunctionalBitIdentical)
{
    const auto c = adder(8);
    auto inputs = encryptBits(200, 8);
    for (const auto &ct : encryptBits(88, 8))
        inputs.push_back(ct);

    FunctionalBackend functional(keys());
    CircuitExecutor functional_exec(keys().params, functional);
    const auto base = functional_exec.run(c, inputs);

    for (unsigned shards : {2u, 4u}) {
        auto sharded = ShardedBackend::functional(keys(), shards);
        CircuitExecutor sharded_exec(keys().params, sharded);
        const auto result = sharded_exec.run(c, inputs);
        expectIdentical(result.outputs, base.outputs);
    }
}

TEST_F(CircuitExecFixture, RetirementLogSpansLevels)
{
    const auto c = adder(4);
    auto inputs = encryptBits(5, 4);
    for (const auto &ct : encryptBits(10, 4))
        inputs.push_back(ct);

    FunctionalBackend backend(keys());
    CircuitExecutor executor(keys().params, backend);
    const auto result = executor.run(c, inputs);

    // Per-level stats cover every bootstrap exactly once.
    std::uint64_t from_levels = 0;
    for (const auto &level : result.levels)
        from_levels += level.bootstraps;
    EXPECT_EQ(from_levels, c.bootstrapCount());
    EXPECT_EQ(result.totalBootstraps, c.bootstrapCount());
    EXPECT_EQ(result.levels.size(), c.bootstrapDepth());

    // The retirement log spans multiple levels with a globally
    // monotone sequence and non-decreasing level tags.
    ASSERT_FALSE(result.retired.empty());
    unsigned max_level = 0;
    std::uint64_t expected_seq = 0;
    for (const auto &entry : result.retired) {
        EXPECT_EQ(entry.inst.seq, expected_seq++);
        EXPECT_GE(entry.level, max_level);
        max_level = std::max(max_level, entry.level);
    }
    EXPECT_EQ(max_level, c.bootstrapDepth());
}

TEST_F(CircuitExecFixture, LinearOnlyCircuitNeedsNoBackendWork)
{
    // Inputs, constants and NOT run without a single bootstrap.
    Circuit c;
    const auto a = c.bitInput();
    c.markOutput(c.invert(a));
    c.markOutput(c.constant(true));

    FunctionalBackend backend(keys());
    CircuitExecutor executor(keys().params, backend);
    const auto result =
        executor.run(c, {tfhe::encryptBit(keys(), false, rng)});
    EXPECT_EQ(result.totalBootstraps, 0u);
    EXPECT_TRUE(result.retired.empty());
    EXPECT_TRUE(tfhe::decryptBit(keys(), result.outputs[0]));
    EXPECT_TRUE(tfhe::decryptBit(keys(), result.outputs[1]));
}

} // namespace
} // namespace morphling::exec
