/**
 * @file
 * Unit tests for the common substrate: RNG determinism and statistics,
 * bit utilities, and the table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bits.h"
#include "common/rng.h"
#include "common/table.h"

namespace morphling {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(7);
    Rng child = parent.fork();
    // The fork consumed one parent draw; child stream must not mirror
    // the parent stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (parent() == child());
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(13);
    const int count = 200000;
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < count; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / count;
    const double var = sum_sq / count - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1023));
}

TEST(Bits, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor(1025), 10u);
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(Bits, DivCeilAndRoundUp)
{
    EXPECT_EQ(divCeil(10, 3), 4);
    EXPECT_EQ(divCeil(9, 3), 3);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
}

TEST(Bits, BitField)
{
    EXPECT_EQ(bitField(0xF0F0, 4, 4), 0xFu);
    EXPECT_EQ(bitField(0xF0F0, 0, 4), 0x0u);
    EXPECT_EQ(bitField(~0ull, 0, 64), ~0ull);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"A", "Metric"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    EXPECT_EQ(t.numRows(), 2u);
    const std::string s = t.toString();
    EXPECT_NE(s.find("| longer | 2"), std::string::npos);
    EXPECT_NE(s.find("| A"), std::string::npos);
}

TEST(Table, FormattersProduceReadableText)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmtCount(1234567), "1,234,567");
    EXPECT_EQ(Table::fmtCount(7), "7");
    EXPECT_EQ(Table::fmtCount(1000), "1,000");
}

} // namespace
} // namespace morphling
