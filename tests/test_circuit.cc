/**
 * @file
 * Tests of the boolean circuit layer: netlist bookkeeping, plaintext
 * vs encrypted evaluation equivalence (exhaustive for small widths,
 * randomized for larger circuits), the standard builders, and workload
 * compilation.
 */

#include <gtest/gtest.h>

#include "apps/circuit.h"
#include "common/rng.h"
#include "tfhe/params.h"

namespace morphling::apps {
namespace {

using tfhe::KeySet;
using tfhe::LweCiphertext;

class CircuitFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xC1AC);
        keys_ = new KeySet(KeySet::generate(tfhe::paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0x90125};

    std::vector<LweCiphertext>
    encryptBits(const std::vector<bool> &bits)
    {
        std::vector<LweCiphertext> out;
        for (bool b : bits)
            out.push_back(tfhe::encryptBit(keys(), b, rng));
        return out;
    }

    std::vector<bool>
    decryptBits(const std::vector<LweCiphertext> &cts)
    {
        std::vector<bool> out;
        for (const auto &ct : cts)
            out.push_back(tfhe::decryptBit(keys(), ct));
        return out;
    }

    static KeySet *keys_;
};

KeySet *CircuitFixture::keys_ = nullptr;

TEST_F(CircuitFixture, CountsAndDepth)
{
    Circuit c;
    const auto a = c.input();
    const auto b = c.input();
    const auto x = c.gate(GateOp::Xor, a, b); // level 1
    const auto y = c.gate(GateOp::And, x, b); // level 2
    const auto n = c.gate(GateOp::Not, y);    // linear, stays level 2
    c.markOutput(n);
    EXPECT_EQ(c.numInputs(), 2u);
    EXPECT_EQ(c.bootstrapCount(), 2u);
    EXPECT_EQ(c.bootstrapDepth(), 2u);
}

TEST_F(CircuitFixture, PlainEvaluationTruthTable)
{
    Circuit c;
    const auto a = c.input();
    const auto b = c.input();
    c.markOutput(c.gate(GateOp::Nand, a, b));
    c.markOutput(c.mux(a, b, c.constant(true)));
    for (int ia = 0; ia <= 1; ++ia) {
        for (int ib = 0; ib <= 1; ++ib) {
            const auto out = c.evaluatePlain({ia != 0, ib != 0});
            EXPECT_EQ(out[0], !(ia && ib));
            EXPECT_EQ(out[1], ia ? (ib != 0) : true);
        }
    }
}

TEST_F(CircuitFixture, EncryptedMatchesPlainExhaustive3Bits)
{
    // A small mixed circuit over 3 inputs, checked on all 8 input
    // combinations.
    Circuit c;
    const auto a = c.input();
    const auto b = c.input();
    const auto s = c.input();
    const auto x = c.gate(GateOp::Xor, a, b);
    const auto m = c.mux(s, x, c.gate(GateOp::Nor, a, b));
    c.markOutput(m);
    c.markOutput(c.gate(GateOp::And, m, a));

    for (unsigned v = 0; v < 8; ++v) {
        const std::vector<bool> in = {(v & 1) != 0, (v & 2) != 0,
                                      (v & 4) != 0};
        const auto plain = c.evaluatePlain(in);
        const auto enc =
            decryptBits(c.evaluateEncrypted(keys(), encryptBits(in)));
        EXPECT_EQ(enc, plain) << "v=" << v;
    }
}

TEST_F(CircuitFixture, RippleAdderEncrypted)
{
    Circuit c;
    std::vector<Circuit::Wire> a, b, sum;
    for (int i = 0; i < 4; ++i)
        a.push_back(c.input());
    for (int i = 0; i < 4; ++i)
        b.push_back(c.input());
    const auto carry = buildRippleAdder(c, a, b, sum);
    for (auto w : sum)
        c.markOutput(w);
    c.markOutput(carry);

    const unsigned x = 13, y = 11;
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i)
        in.push_back((x >> i) & 1);
    for (int i = 0; i < 4; ++i)
        in.push_back((y >> i) & 1);

    const auto bits =
        decryptBits(c.evaluateEncrypted(keys(), encryptBits(in)));
    unsigned result = 0;
    for (int i = 0; i < 5; ++i)
        result |= static_cast<unsigned>(bits[i]) << i;
    EXPECT_EQ(result, x + y);
}

TEST_F(CircuitFixture, ComparatorMatchesPlainRandomized)
{
    Circuit c;
    std::vector<Circuit::Wire> a, b;
    for (int i = 0; i < 4; ++i)
        a.push_back(c.input());
    for (int i = 0; i < 4; ++i)
        b.push_back(c.input());
    c.markOutput(buildGreaterEqual(c, a, b));
    c.markOutput(buildEqual(c, a, b));

    Rng values(777);
    for (int rep = 0; rep < 4; ++rep) {
        const unsigned x = static_cast<unsigned>(values.nextBelow(16));
        const unsigned y = static_cast<unsigned>(values.nextBelow(16));
        std::vector<bool> in;
        for (int i = 0; i < 4; ++i)
            in.push_back((x >> i) & 1);
        for (int i = 0; i < 4; ++i)
            in.push_back((y >> i) & 1);
        const auto bits =
            decryptBits(c.evaluateEncrypted(keys(), encryptBits(in)));
        EXPECT_EQ(bits[0], x >= y) << x << " vs " << y;
        EXPECT_EQ(bits[1], x == y) << x << " vs " << y;
    }
}

TEST_F(CircuitFixture, WorkloadCompilation)
{
    Circuit c;
    std::vector<Circuit::Wire> a, b, sum;
    for (int i = 0; i < 8; ++i)
        a.push_back(c.input());
    for (int i = 0; i < 8; ++i)
        b.push_back(c.input());
    c.markOutput(buildRippleAdder(c, a, b, sum));

    const auto w = c.toWorkload("adder8", 64);
    // Conservation: workload bootstraps = circuit cost x evaluations.
    EXPECT_EQ(w.totalBootstraps(), c.bootstrapCount() * 64);
    // The adder has a genuine critical path: multiple stages.
    EXPECT_EQ(w.stages.size(), c.bootstrapDepth());
    EXPECT_GT(c.bootstrapDepth(), 4u);
}

TEST_F(CircuitFixture, DanglingWireDies)
{
    Circuit c;
    const auto a = c.input();
    EXPECT_DEATH(c.gate(GateOp::And, a, 99), "dangling");
}

} // namespace
} // namespace morphling::apps
