/**
 * @file
 * Tests of the circuit IR: netlist bookkeeping, plaintext vs encrypted
 * evaluation equivalence (exhaustive for small widths, randomized for
 * larger circuits), the standard builders, multi-bit LUT nodes,
 * workload compilation, and the text format (round-trip plus
 * malformed-input diagnostics).
 */

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "tfhe/params.h"

namespace morphling::circuit {
namespace {

using tfhe::BoolGate;
using tfhe::KeySet;
using tfhe::LweCiphertext;

class CircuitFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xC1AC);
        keys_ = new KeySet(KeySet::generate(tfhe::paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0x90125};

    std::vector<LweCiphertext>
    encryptBits(const std::vector<std::uint32_t> &bits)
    {
        std::vector<LweCiphertext> out;
        for (std::uint32_t b : bits)
            out.push_back(tfhe::encryptBit(keys(), b != 0, rng));
        return out;
    }

    std::vector<std::uint32_t>
    decryptBits(const std::vector<LweCiphertext> &cts)
    {
        std::vector<std::uint32_t> out;
        for (const auto &ct : cts)
            out.push_back(tfhe::decryptBit(keys(), ct) ? 1 : 0);
        return out;
    }

    static KeySet *keys_;
};

KeySet *CircuitFixture::keys_ = nullptr;

TEST_F(CircuitFixture, CountsAndDepth)
{
    Circuit c;
    const auto a = c.bitInput();
    const auto b = c.bitInput();
    const auto x = c.gate(BoolGate::Xor, a, b); // level 1
    const auto y = c.gate(BoolGate::And, x, b); // level 2
    const auto n = c.invert(y);                 // linear, stays level 2
    c.markOutput(n);
    EXPECT_EQ(c.numInputs(), 2u);
    EXPECT_EQ(c.bootstrapCount(), 2u);
    EXPECT_EQ(c.bootstrapDepth(), 2u);
    const auto lv = c.levels();
    EXPECT_EQ(lv[static_cast<std::size_t>(x)], 1u);
    EXPECT_EQ(lv[static_cast<std::size_t>(y)], 2u);
    EXPECT_EQ(lv[static_cast<std::size_t>(n)], 2u);
}

TEST_F(CircuitFixture, MuxDesugarsToGateMuxDecomposition)
{
    Circuit c;
    const auto s = c.bitInput();
    const auto t = c.bitInput();
    const auto f = c.bitInput();
    c.markOutput(c.mux(s, t, f));
    // not/and/and/or: three bootstraps over two levels, four wires.
    EXPECT_EQ(c.numNodes(), 7u);
    EXPECT_EQ(c.bootstrapCount(), 3u);
    EXPECT_EQ(c.bootstrapDepth(), 2u);
}

TEST_F(CircuitFixture, PlainEvaluationTruthTable)
{
    Circuit c;
    const auto a = c.bitInput();
    const auto b = c.bitInput();
    c.markOutput(c.gate(BoolGate::Nand, a, b));
    c.markOutput(c.mux(a, b, c.constant(true)));
    for (std::uint32_t ia = 0; ia <= 1; ++ia) {
        for (std::uint32_t ib = 0; ib <= 1; ++ib) {
            const auto out = c.evaluatePlain({ia, ib});
            EXPECT_EQ(out[0], !(ia && ib) ? 1u : 0u);
            EXPECT_EQ(out[1], ia ? ib : 1u);
        }
    }
}

TEST_F(CircuitFixture, EncryptedMatchesPlainExhaustive3Bits)
{
    // A small mixed circuit over 3 inputs, checked on all 8 input
    // combinations.
    Circuit c;
    const auto a = c.bitInput();
    const auto b = c.bitInput();
    const auto s = c.bitInput();
    const auto x = c.gate(BoolGate::Xor, a, b);
    const auto m = c.mux(s, x, c.gate(BoolGate::Nor, a, b));
    c.markOutput(m);
    c.markOutput(c.gate(BoolGate::And, m, a));

    for (unsigned v = 0; v < 8; ++v) {
        const std::vector<std::uint32_t> in = {v & 1, (v >> 1) & 1,
                                               (v >> 2) & 1};
        const auto plain = c.evaluatePlain(in);
        const auto enc =
            decryptBits(c.evaluateEncrypted(keys(), encryptBits(in)));
        EXPECT_EQ(enc, plain) << "v=" << v;
    }
}

TEST_F(CircuitFixture, RippleAdderGolden)
{
    Circuit c;
    std::vector<Wire> a, b, sum;
    for (int i = 0; i < 4; ++i)
        a.push_back(c.bitInput());
    for (int i = 0; i < 4; ++i)
        b.push_back(c.bitInput());
    const auto carry = buildRippleAdder(c, a, b, sum);
    for (auto w : sum)
        c.markOutput(w);
    c.markOutput(carry);

    // Plaintext golden sweep over a sample of operand pairs, then one
    // encrypted spot check.
    for (unsigned x : {0u, 5u, 13u, 15u}) {
        for (unsigned y : {0u, 2u, 11u, 15u}) {
            std::vector<std::uint32_t> in;
            for (int i = 0; i < 4; ++i)
                in.push_back((x >> i) & 1);
            for (int i = 0; i < 4; ++i)
                in.push_back((y >> i) & 1);
            const auto bits = c.evaluatePlain(in);
            unsigned result = 0;
            for (int i = 0; i < 5; ++i)
                result |= bits[static_cast<std::size_t>(i)] << i;
            EXPECT_EQ(result, x + y) << x << " + " << y;
        }
    }

    const unsigned x = 13, y = 11;
    std::vector<std::uint32_t> in;
    for (int i = 0; i < 4; ++i)
        in.push_back((x >> i) & 1);
    for (int i = 0; i < 4; ++i)
        in.push_back((y >> i) & 1);
    const auto bits =
        decryptBits(c.evaluateEncrypted(keys(), encryptBits(in)));
    unsigned result = 0;
    for (int i = 0; i < 5; ++i)
        result |= bits[static_cast<std::size_t>(i)] << i;
    EXPECT_EQ(result, x + y);
}

TEST_F(CircuitFixture, ComparatorMatchesPlainRandomized)
{
    Circuit c;
    std::vector<Wire> a, b;
    for (int i = 0; i < 4; ++i)
        a.push_back(c.bitInput());
    for (int i = 0; i < 4; ++i)
        b.push_back(c.bitInput());
    c.markOutput(buildGreaterEqual(c, a, b));
    c.markOutput(buildEqual(c, a, b));

    Rng values(777);
    for (int rep = 0; rep < 4; ++rep) {
        const unsigned x = static_cast<unsigned>(values.nextBelow(16));
        const unsigned y = static_cast<unsigned>(values.nextBelow(16));
        std::vector<std::uint32_t> in;
        for (int i = 0; i < 4; ++i)
            in.push_back((x >> i) & 1);
        for (int i = 0; i < 4; ++i)
            in.push_back((y >> i) & 1);
        const auto bits =
            decryptBits(c.evaluateEncrypted(keys(), encryptBits(in)));
        EXPECT_EQ(bits[0], x >= y ? 1u : 0u) << x << " vs " << y;
        EXPECT_EQ(bits[1], x == y ? 1u : 0u) << x << " vs " << y;
    }
}

TEST_F(CircuitFixture, LutWordCircuit)
{
    // A 4-value word squared mod 4 through a multi-bit LUT node,
    // chained into a second table (negation mod 4).
    Circuit c;
    const auto in = c.wordInput(4);
    const auto square = c.registerLut(4, {0, 1, 0, 1});
    const auto negate = c.registerLut(4, {0, 3, 2, 1});
    const auto sq = c.applyLut(square, in);
    c.markOutput(sq);
    c.markOutput(c.applyLut(negate, sq));
    EXPECT_EQ(c.bootstrapCount(), 2u);
    EXPECT_EQ(c.bootstrapDepth(), 2u);

    for (std::uint32_t m = 0; m < 4; ++m) {
        const auto plain = c.evaluatePlain({m});
        EXPECT_EQ(plain[0], (m * m) % 4);
        EXPECT_EQ(plain[1], (4 - (m * m) % 4) % 4);

        const std::vector<LweCiphertext> enc_in = {
            tfhe::encryptPadded(keys(), m, 4, rng)};
        const auto enc = c.evaluateEncrypted(keys(), enc_in);
        EXPECT_EQ(tfhe::decryptPadded(keys(), enc[0], 4), plain[0]);
        EXPECT_EQ(tfhe::decryptPadded(keys(), enc[1], 4), plain[1]);
    }
}

TEST_F(CircuitFixture, WorkloadCompilation)
{
    Circuit c;
    std::vector<Wire> a, b, sum;
    for (int i = 0; i < 8; ++i)
        a.push_back(c.bitInput());
    for (int i = 0; i < 8; ++i)
        b.push_back(c.bitInput());
    c.markOutput(buildRippleAdder(c, a, b, sum));

    const auto w = c.toWorkload("adder8", 64);
    // Conservation: workload bootstraps = circuit cost x evaluations.
    EXPECT_EQ(w.totalBootstraps(), c.bootstrapCount() * 64);
    // The adder has a genuine critical path: multiple stages.
    EXPECT_EQ(w.stages.size(), c.bootstrapDepth());
    EXPECT_GT(c.bootstrapDepth(), 4u);
}

TEST_F(CircuitFixture, DanglingWireDies)
{
    Circuit c;
    const auto a = c.bitInput();
    EXPECT_DEATH(c.gate(BoolGate::And, a, 99), "dangling");
}

TEST_F(CircuitFixture, TextRoundTrip)
{
    Circuit c;
    const auto a = c.bitInput();
    const auto b = c.bitInput();
    const auto word = c.wordInput(4);
    const auto table = c.registerLut(4, {1, 2, 3, 0});
    const auto x = c.gate(BoolGate::Xor, a, b);
    const auto m = c.mux(x, a, c.constant(false));
    c.markOutput(m);
    c.markOutput(c.invert(x));
    c.markOutput(c.applyLut(table, word));

    const std::string text = c.toText();
    const Circuit back = Circuit::fromText(text);
    EXPECT_EQ(back.toText(), text); // exact round-trip
    EXPECT_EQ(back.numInputs(), c.numInputs());
    EXPECT_EQ(back.numNodes(), c.numNodes());
    EXPECT_EQ(back.bootstrapCount(), c.bootstrapCount());
    EXPECT_EQ(back.outputs(), c.outputs());

    // Same function, not just the same shape.
    for (std::uint32_t v = 0; v < 4; ++v) {
        const std::vector<std::uint32_t> in = {v & 1, (v >> 1) & 1, v};
        EXPECT_EQ(back.evaluatePlain(in), c.evaluatePlain(in));
    }
}

TEST_F(CircuitFixture, TextLoaderMuxSugar)
{
    // `mux` in text form desugars exactly like Circuit::mux.
    const std::string text = "morphling-circuit v1\n"
                             "in\nin\nin\n"
                             "mux 0 1 2\n"
                             "out 6\n";
    const Circuit c = Circuit::fromText(text);
    EXPECT_EQ(c.numNodes(), 7u);
    EXPECT_EQ(c.bootstrapCount(), 3u);
    EXPECT_EQ(c.evaluatePlain({1, 1, 0})[0], 1u);
    EXPECT_EQ(c.evaluatePlain({0, 1, 0})[0], 0u);
}

TEST_F(CircuitFixture, TextLoaderCommentsAndBlankLines)
{
    const std::string text = "# boolean majority-ish demo\n"
                             "morphling-circuit v1\n"
                             "\n"
                             "in\nin # second input\n"
                             "and 0 1\n"
                             "out 2\n";
    const Circuit c = Circuit::fromText(text);
    EXPECT_EQ(c.numInputs(), 2u);
    EXPECT_EQ(c.evaluatePlain({1, 1})[0], 1u);
}

TEST_F(CircuitFixture, TextLoaderRejectsMalformedInput)
{
    const struct
    {
        const char *text;
        const char *expect; //!< substring of the diagnostic
    } cases[] = {
        {"", "missing header"},
        {"not-a-circuit v9\n", "expected header"},
        {"morphling-circuit v1\nin\nand 0 5\n", "existing bit"},
        {"morphling-circuit v1\nfrob 1 2\n", "unknown directive"},
        {"morphling-circuit v1\nin\nnot 0 0\n", "not needs"},
        {"morphling-circuit v1\nconst 2\n", "const needs 0 or 1"},
        {"morphling-circuit v1\ntable 4 0 1 2\n", "table needs"},
        {"morphling-circuit v1\ntable 4 0 1 2 9\n", "out of range"},
        {"morphling-circuit v1\nin\nlut 0 0\n", "lut needs"},
        {"morphling-circuit v1\nin\nout 3\n", "out needs"},
        {"morphling-circuit v1\nin\nin\nand 0 x\n",
         "malformed operand"},
        // Bit wire where a word is required and vice versa.
        {"morphling-circuit v1\nwin 4\nin\nand 0 1\n", "existing bit"},
        {"morphling-circuit v1\ntable 2 0 1\nin\nlut 0 0\n",
         "lut needs"},
    };
    for (const auto &tc : cases) {
        std::string error;
        const auto c = Circuit::tryFromText(tc.text, &error);
        EXPECT_FALSE(c.has_value()) << tc.text;
        EXPECT_NE(error.find(tc.expect), std::string::npos)
            << "diagnostic for \"" << tc.text << "\" was: " << error;
    }
}

TEST_F(CircuitFixture, TextLoaderSpaceMismatchRejected)
{
    // A space-4 table applied to a space-2 word.
    const std::string text = "morphling-circuit v1\n"
                             "table 4 0 1 2 3\n"
                             "win 2\n"
                             "lut 0 0\n";
    std::string error;
    EXPECT_FALSE(Circuit::tryFromText(text, &error).has_value());
    EXPECT_NE(error.find("space mismatch"), std::string::npos)
        << error;
}

} // namespace
} // namespace morphling::circuit
