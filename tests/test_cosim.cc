/**
 * @file
 * Tests of the lockstep co-simulator: a clean FunctionalBackend /
 * TimingBackend pair passes all cross-checks (including the bit-exact
 * end-of-program ciphertext comparison), and scripted stub backends
 * prove each class of divergence — reordered retirement, missed
 * coverage, mismatched instructions — is actually caught and reported
 * rather than silently accepted.
 */

#include <algorithm>
#include <utility>

#include <gtest/gtest.h>

#include "arch/config.h"
#include "arch/functional/functional_xpu.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/cosim.h"
#include "exec/functional_backend.h"
#include "exec/timing_backend.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

namespace morphling::exec {
namespace {

class CosimFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xC0517);
        keys_ = new tfhe::KeySet(
            tfhe::KeySet::generate(tfhe::paramsTest(), rng));
        evalKeys_ = new tfhe::EvaluationKeys(
            tfhe::EvaluationKeys::fromKeySet(*keys_));
    }
    static void
    TearDownTestSuite()
    {
        delete evalKeys_;
        delete keys_;
        keys_ = nullptr;
        evalKeys_ = nullptr;
    }

    const tfhe::KeySet &keys() { return *keys_; }
    const tfhe::EvaluationKeys &evalKeys() { return *evalKeys_; }

    Rng rng{0xC051};

    static tfhe::KeySet *keys_;
    static tfhe::EvaluationKeys *evalKeys_;
};

tfhe::KeySet *CosimFixture::keys_ = nullptr;
tfhe::EvaluationKeys *CosimFixture::evalKeys_ = nullptr;

TEST_F(CosimFixture, SuperbatchPassesAllChecks)
{
    std::vector<tfhe::LweCiphertext> inputs;
    for (unsigned i = 0; i < 64; ++i)
        inputs.push_back(tfhe::encryptPadded(keys(), i % 4, 4, rng));
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);

    FunctionalBackend functional(evalKeys());
    TimingBackend timing(arch::ArchConfig::morphlingDefault(),
                         keys().params);
    CosimOptions options;
    options.referenceKeys = &evalKeys();
    LockstepCosim cosim(functional, timing, options);

    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    const auto report = cosim.run(program, job);

    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.instructions, program.size());
    EXPECT_EQ(report.lockstepComparisons, program.size());
    EXPECT_TRUE(report.functional.hasOutputs);
    EXPECT_TRUE(report.timing.hasReport);
    EXPECT_GT(report.timing.report.cycles, 0u);
}

TEST_F(CosimFixture, MultiStageBarrierProgramPasses)
{
    compiler::Workload w;
    w.name = "layers";
    w.stages.push_back({16, 500});
    w.stages.push_back({16, 0});
    const auto program =
        compiler::SwScheduler(keys().params).schedule(w);

    std::vector<tfhe::LweCiphertext> inputs;
    for (unsigned i = 0; i < 32; ++i)
        inputs.push_back(tfhe::encryptPadded(keys(), i % 4, 4, rng));
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return 3 - m;
    });

    FunctionalBackend functional(evalKeys());
    TimingBackend timing(arch::ArchConfig::morphlingDefault(),
                         keys().params);
    CosimOptions options;
    options.referenceKeys = &evalKeys();
    LockstepCosim cosim(functional, timing, options);

    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    const auto report = cosim.run(program, job);
    EXPECT_TRUE(report.ok()) << report.summary();
}

/**
 * The decrypt-level equivalence mode admits the merge-split FFT
 * datapath engine: its rotations differ from the library path by
 * sub-noise rounding, so the bit-exact oracle would reject it, but
 * every output must still decrypt to the same padded message as the
 * tfhe::batchBootstrap reference.
 */
TEST_F(CosimFixture, DatapathEnginePassesDecryptLevelCheck)
{
    std::vector<tfhe::LweCiphertext> inputs;
    for (unsigned i = 0; i < 16; ++i)
        inputs.push_back(tfhe::encryptPadded(keys(), i % 4, 4, rng));
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (3 * m + 1) % 4;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(16);

    Rng bskRng(0xDA7A);
    const auto rawBsk = arch::functional::generateRawBsk(
        keys().lweKey, keys().glweKey, bskRng);
    FunctionalConfig fconfig;
    fconfig.xpuEngine = XpuEngine::kDatapath;
    fconfig.rawBsk = &rawBsk;
    FunctionalBackend functional(evalKeys(), fconfig);
    TimingBackend timing(arch::ArchConfig::morphlingDefault(),
                         keys().params);

    CosimOptions options;
    options.referenceKeys = &evalKeys();
    options.decryptKeys = &keys();
    options.messageSpace = 4;
    LockstepCosim cosim(functional, timing, options);

    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    const auto report = cosim.run(program, job);
    EXPECT_TRUE(report.ok()) << report.summary();
    ASSERT_TRUE(report.functional.hasOutputs);
    for (std::size_t i = 0; i < report.functional.outputs.size(); ++i) {
        EXPECT_EQ(tfhe::decryptPadded(keys(),
                                      report.functional.outputs[i], 4),
                  (3 * (i % 4) + 1) % 4);
    }
}

/** The complement of the test above: against the bit-exact oracle the
 *  datapath engine is (correctly) rejected, which is exactly why the
 *  decrypt-level mode exists. */
TEST_F(CosimFixture, DatapathEngineFailsBitExactCheck)
{
    std::vector<tfhe::LweCiphertext> inputs;
    for (unsigned i = 0; i < 16; ++i)
        inputs.push_back(tfhe::encryptPadded(keys(), i % 4, 4, rng));
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (3 * m + 1) % 4;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(16);

    Rng bskRng(0xDA7A);
    const auto rawBsk = arch::functional::generateRawBsk(
        keys().lweKey, keys().glweKey, bskRng);
    FunctionalConfig fconfig;
    fconfig.xpuEngine = XpuEngine::kDatapath;
    fconfig.rawBsk = &rawBsk;
    FunctionalBackend functional(evalKeys(), fconfig);
    TimingBackend timing(arch::ArchConfig::morphlingDefault(),
                         keys().params);

    CosimOptions options;
    options.referenceKeys = &evalKeys(); // bit-exact mode
    LockstepCosim cosim(functional, timing, options);

    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    EXPECT_FALSE(cosim.run(program, job).ok());
}

/**
 * A backend that replays a pre-scripted retirement log verbatim —
 * the adversarial half of the co-sim tests: by scripting a defect we
 * prove the oracle actually fires.
 */
class ScriptedBackend final : public ExecutionBackend
{
  public:
    ScriptedBackend(std::string name,
                    std::vector<RetiredInstruction> script)
        : name_(std::move(name)), script_(std::move(script))
    {
    }

    std::string_view name() const override { return name_; }

    void
    load(const compiler::Program &, const Job &) override
    {
        cursor_ = 0;
    }

    std::optional<RetiredInstruction>
    step() override
    {
        if (cursor_ >= script_.size())
            return std::nullopt;
        return script_[cursor_++];
    }

    bool done() const override { return cursor_ >= script_.size(); }

    ExecutionResult
    finish() override
    {
        ExecutionResult result;
        result.backend = name_;
        result.retired = script_;
        return result;
    }

  private:
    std::string name_;
    std::vector<RetiredInstruction> script_;
    std::size_t cursor_ = 0;
};

/** A small two-group program and its in-order retirement script. */
compiler::Program
tinyProgram()
{
    compiler::Program prog("tiny");
    prog.add({compiler::Opcode::VpuModSwitch, 0, 1, 0});
    prog.add({compiler::Opcode::VpuSampleExtract, 0, 1, 0});
    prog.add({compiler::Opcode::VpuModSwitch, 1, 1, 0});
    prog.add({compiler::Opcode::VpuSampleExtract, 1, 1, 0});
    return prog;
}

std::vector<RetiredInstruction>
scriptInProgramOrder(const compiler::Program &prog)
{
    std::vector<RetiredInstruction> script;
    for (std::size_t i = 0; i < prog.size(); ++i)
        script.push_back({i, prog.at(i), i, 0});
    return script;
}

TEST(CosimStub, IdenticalScriptsPass)
{
    const auto prog = tinyProgram();
    ScriptedBackend a("stub-a", scriptInProgramOrder(prog));
    ScriptedBackend b("stub-b", scriptInProgramOrder(prog));
    LockstepCosim cosim(a, b);
    const auto report = cosim.run(prog, Job{});
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.lockstepComparisons, prog.size());
}

TEST(CosimStub, SameGroupReorderIsCaught)
{
    const auto prog = tinyProgram();
    auto reordered = scriptInProgramOrder(prog);
    std::swap(reordered[0], reordered[1]); // group 0 out of order
    ScriptedBackend good("good", scriptInProgramOrder(prog));
    ScriptedBackend bad("bad", reordered);
    LockstepCosim cosim(good, bad);
    const auto report = cosim.run(prog, Job{});
    EXPECT_FALSE(report.ok());
}

TEST(CosimStub, MissingRetirementIsCaught)
{
    const auto prog = tinyProgram();
    auto partial = scriptInProgramOrder(prog);
    partial.pop_back();
    ScriptedBackend good("good", scriptInProgramOrder(prog));
    ScriptedBackend bad("bad", partial);
    LockstepCosim cosim(good, bad);
    const auto report = cosim.run(prog, Job{});
    EXPECT_FALSE(report.ok());
}

TEST(CosimStub, DoubleRetirementIsCaught)
{
    const auto prog = tinyProgram();
    auto doubled = scriptInProgramOrder(prog);
    doubled.back() = doubled.front(); // index 0 retires twice
    ScriptedBackend good("good", scriptInProgramOrder(prog));
    ScriptedBackend bad("bad", doubled);
    LockstepCosim cosim(good, bad);
    const auto report = cosim.run(prog, Job{});
    EXPECT_FALSE(report.ok());
}

TEST(CosimStub, ForeignInstructionIsCaught)
{
    const auto prog = tinyProgram();
    auto tampered = scriptInProgramOrder(prog);
    tampered[2].inst.count = 99; // not what the program says
    ScriptedBackend good("good", scriptInProgramOrder(prog));
    ScriptedBackend bad("bad", tampered);
    LockstepCosim cosim(good, bad);
    const auto report = cosim.run(prog, Job{});
    EXPECT_FALSE(report.ok());
}

TEST(CosimStub, ErrorListIsBounded)
{
    const auto prog = tinyProgram();
    auto reversed = scriptInProgramOrder(prog);
    std::reverse(reversed.begin(), reversed.end());
    ScriptedBackend good("good", scriptInProgramOrder(prog));
    ScriptedBackend bad("bad", reversed);
    CosimOptions options;
    options.maxErrors = 2;
    LockstepCosim cosim(good, bad, options);
    const auto report = cosim.run(prog, Job{});
    EXPECT_FALSE(report.ok());
    // maxErrors diagnostics plus at most one suppression notice.
    EXPECT_LE(report.errors.size(), options.maxErrors + 1);
}

} // namespace
} // namespace morphling::exec
