/**
 * @file
 * Unit tests for GLWE ciphertexts: encryption round-trips, homomorphic
 * rotation, sample extraction and the extracted-key correspondence.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/glwe.h"
#include "tfhe/params.h"

namespace morphling::tfhe {
namespace {

class GlweFixture : public ::testing::Test
{
  protected:
    const TfheParams &params = paramsTest();
    Rng rng{54321};
    GlweKey key = GlweKey::generate(params, rng);

    TorusPolynomial
    randomMessage(std::uint32_t space)
    {
        TorusPolynomial m(params.polyDegree);
        for (unsigned i = 0; i < m.degree(); ++i)
            m[i] = encodeMessage(
                static_cast<std::uint32_t>(rng.nextBelow(space)), space);
        return m;
    }
};

TEST_F(GlweFixture, KeyShape)
{
    EXPECT_EQ(key.dimension(), params.glweDimension);
    for (unsigned i = 0; i < key.dimension(); ++i) {
        EXPECT_EQ(key.poly(i).degree(), params.polyDegree);
        for (unsigned j = 0; j < params.polyDegree; ++j) {
            const auto bit = key.poly(i)[j];
            EXPECT_TRUE(bit == 0 || bit == 1);
        }
    }
}

TEST_F(GlweFixture, EncryptDecryptRoundTrip)
{
    const std::uint32_t space = 8;
    const auto message = randomMessage(space);
    const auto ct =
        GlweCiphertext::encrypt(key, message, params.glweNoiseStd, rng);
    const auto phase = ct.phase(key);
    for (unsigned i = 0; i < message.degree(); ++i)
        EXPECT_EQ(decodeMessage(phase[i], space),
                  decodeMessage(message[i], space));
}

TEST_F(GlweFixture, PhaseNoiseIsSmall)
{
    const auto message = randomMessage(4);
    const auto ct =
        GlweCiphertext::encrypt(key, message, params.glweNoiseStd, rng);
    const auto phase = ct.phase(key);
    for (unsigned i = 0; i < message.degree(); ++i)
        EXPECT_LT(torusDistance(phase[i], message[i]),
                  20 * params.glweNoiseStd + 1e-6);
}

TEST_F(GlweFixture, TrivialEncryptionHasExactPhase)
{
    const auto message = randomMessage(16);
    const auto ct =
        GlweCiphertext::trivial(params.glweDimension, message);
    EXPECT_EQ(ct.phase(key), message);
}

TEST_F(GlweFixture, HomomorphicAddition)
{
    const auto m1 = randomMessage(4);
    const auto m2 = randomMessage(4);
    auto c1 =
        GlweCiphertext::encrypt(key, m1, params.glweNoiseStd, rng);
    const auto c2 =
        GlweCiphertext::encrypt(key, m2, params.glweNoiseStd, rng);
    c1.addAssign(c2);
    const auto phase = c1.phase(key);
    for (unsigned i = 0; i < m1.degree(); ++i) {
        const Torus32 expected = m1[i] + m2[i];
        EXPECT_EQ(decodeMessage(phase[i], 4), decodeMessage(expected, 4));
    }
}

TEST_F(GlweFixture, RotationCommutesWithDecryption)
{
    // phase(X^a * C) == X^a * phase(C): rotating every component
    // rotates the plaintext.
    const auto message = randomMessage(4);
    const auto ct =
        GlweCiphertext::encrypt(key, message, params.glweNoiseStd, rng);
    for (unsigned power : {1u, 77u, params.polyDegree,
                           2 * params.polyDegree - 1}) {
        const auto rotated = ct.mulByXPower(power);
        const auto phase = rotated.phase(key);
        const auto expected = message.mulByXPower(power);
        for (unsigned i = 0; i < message.degree(); ++i)
            EXPECT_EQ(decodeMessage(phase[i], 4),
                      decodeMessage(expected[i], 4))
                << "power=" << power << " i=" << i;
    }
}

TEST_F(GlweFixture, SampleExtractRecoversConstantCoefficient)
{
    const auto extracted_key = key.extractLweKey();
    EXPECT_EQ(extracted_key.dimension(),
              params.glweDimension * params.polyDegree);

    for (int rep = 0; rep < 5; ++rep) {
        const auto message = randomMessage(8);
        const auto ct = GlweCiphertext::encrypt(
            key, message, params.glweNoiseStd, rng);
        const auto lwe = ct.sampleExtract();
        EXPECT_EQ(lwe.dimension(), extracted_key.dimension());
        EXPECT_EQ(lweDecrypt(extracted_key, lwe, 8),
                  decodeMessage(message[0], 8));
    }
}

TEST_F(GlweFixture, SampleExtractOfRotatedCiphertext)
{
    // Rotating by X^{2N-j} brings coefficient j to position 0; the
    // composition with sample extraction is how bootstrapping reads the
    // test polynomial.
    const auto extracted_key = key.extractLweKey();
    const auto message = randomMessage(8);
    const auto ct =
        GlweCiphertext::encrypt(key, message, params.glweNoiseStd, rng);
    const unsigned j = 13;
    const auto rotated =
        ct.mulByXPower(2 * params.polyDegree - j);
    EXPECT_EQ(lweDecrypt(extracted_key, rotated.sampleExtract(), 8),
              decodeMessage(message[j], 8));
}

} // namespace
} // namespace morphling::tfhe
