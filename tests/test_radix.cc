/**
 * @file
 * Tests of the multi-ciphertext radix integers: round trips, digit-wise
 * arithmetic, carry propagation (the multi-bootstrap workload pattern),
 * and the headroom/overflow bookkeeping.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/radix.h"

namespace morphling::tfhe {
namespace {

class RadixFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xAD1);
        keys_ = new KeySet(KeySet::generate(paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0xFACADE};

    static KeySet *keys_;
};

KeySet *RadixFixture::keys_ = nullptr;

TEST_F(RadixFixture, EncryptDecryptRoundTrip)
{
    for (std::uint64_t value : {0ull, 1ull, 42ull, 255ull, 123ull}) {
        const auto ct =
            RadixCiphertext::encrypt(keys(), value, 4, 4, rng);
        EXPECT_EQ(ct.decrypt(keys()), value) << value;
        EXPECT_EQ(ct.numDigits(), 4u);
        EXPECT_EQ(ct.base(), 4u);
    }
}

TEST_F(RadixFixture, AdditionWithoutCarriesIsFree)
{
    // 21 + 10 = 31: base-4 digits (1,1,1) + (2,2,0) = (3,3,1), no
    // carry needed, no bootstraps.
    auto a = RadixCiphertext::encrypt(keys(), 21, 3, 4, rng);
    const auto b = RadixCiphertext::encrypt(keys(), 10, 3, 4, rng);
    a.addAssign(b);
    EXPECT_EQ(a.decrypt(keys()), 31u);
}

TEST_F(RadixFixture, CarryPropagationNormalizes)
{
    // 23 + 27 = 50: digits overflow base 4 and must be carried.
    auto a = RadixCiphertext::encrypt(keys(), 23, 3, 4, rng);
    const auto b = RadixCiphertext::encrypt(keys(), 27, 3, 4, rng);
    a.addAssign(b);
    const unsigned bootstraps = a.propagateCarries(keys());
    // Two bootstraps per digit except the last (no carry out).
    EXPECT_EQ(bootstraps, 2u * 3 - 1);
    EXPECT_EQ(a.decrypt(keys()), 50u);
    EXPECT_EQ(a.digitMagnitude(), 3u);
}

TEST_F(RadixFixture, RepeatedAccumulationWithinHeadroom)
{
    // base 4, space 16: headroom allows several adds before carrying.
    auto acc = RadixCiphertext::encrypt(keys(), 5, 4, 4, rng);
    const unsigned budget = acc.additionsBeforeOverflow();
    EXPECT_GE(budget, 2u);

    std::uint64_t expected = 5;
    for (unsigned i = 0; i < budget; ++i) {
        const auto term =
            RadixCiphertext::encrypt(keys(), 7 + i, 4, 4, rng);
        acc.addAssign(term);
        expected += 7 + i;
    }
    acc.propagateCarries(keys());
    EXPECT_EQ(acc.decrypt(keys()), expected);
}

TEST_F(RadixFixture, AddPlainConstant)
{
    auto a = RadixCiphertext::encrypt(keys(), 30, 4, 4, rng);
    a.addPlain(17);
    a.propagateCarries(keys());
    EXPECT_EQ(a.decrypt(keys()), 47u);
}

TEST_F(RadixFixture, ScalarMultiplication)
{
    auto a = RadixCiphertext::encrypt(keys(), 13, 4, 4, rng);
    a.scalarMulAssign(3);
    a.propagateCarries(keys());
    EXPECT_EQ(a.decrypt(keys()), 39u);
}

TEST_F(RadixFixture, ModularWrapAtTopDigit)
{
    // 3 digits base 4 hold values mod 64: 60 + 10 = 70 -> 6.
    auto a = RadixCiphertext::encrypt(keys(), 60, 3, 4, rng);
    const auto b = RadixCiphertext::encrypt(keys(), 10, 3, 4, rng);
    a.addAssign(b);
    a.propagateCarries(keys());
    EXPECT_EQ(a.decrypt(keys()), 70u % 64);
}

TEST_F(RadixFixture, HeadroomAccountingBlocksOverflow)
{
    auto a = RadixCiphertext::encrypt(keys(), 1, 2, 4, rng);
    // Drain the addition budget exactly.
    while (a.additionsBeforeOverflow() > 0) {
        const auto one = RadixCiphertext::encrypt(keys(), 1, 2, 4, rng);
        a.addAssign(one);
    }
    EXPECT_EQ(a.additionsBeforeOverflow(), 0u);
    // After propagation the budget is restored.
    a.propagateCarries(keys());
    EXPECT_GT(a.additionsBeforeOverflow(), 0u);
}

TEST_F(RadixFixture, RandomizedAccumulationProperty)
{
    // Property test: sums of random values tracked against plaintext,
    // propagating whenever the budget runs out.
    Rng values(31415);
    auto acc = RadixCiphertext::encrypt(keys(), 0, 5, 4, rng);
    std::uint64_t expected = 0;
    const std::uint64_t modulus = 1ull << 10; // 5 digits base 4
    for (int i = 0; i < 10; ++i) {
        const std::uint64_t v = values.nextBelow(500);
        if (acc.additionsBeforeOverflow() == 0)
            acc.propagateCarries(keys());
        const auto term =
            RadixCiphertext::encrypt(keys(), v, 5, 4, rng);
        acc.addAssign(term);
        expected = (expected + v) % modulus;
    }
    acc.propagateCarries(keys());
    EXPECT_EQ(acc.decrypt(keys()), expected);
}

} // namespace
} // namespace morphling::tfhe
