/**
 * @file
 * Integration tests of the event-driven accelerator simulation: Table V
 * reproduction brackets, reuse-variant ordering (Figure 7-b), the
 * Private-A1 knee (Figure 8-a), the XPU-count sweep (Figure 8-b), and
 * end-to-end multi-stage programs with barriers.
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "compiler/sw_scheduler.h"

namespace morphling::arch {
namespace {

const ArchConfig kDefault = ArchConfig::morphlingDefault();

SimReport
simulate(const ArchConfig &config, const tfhe::TfheParams &params,
         std::uint64_t count = 1024)
{
    Accelerator acc(config, params);
    return acc.runBootstrapBatch(count);
}

struct TableVRow
{
    const char *set;
    double paperThroughput;
};

constexpr TableVRow kTableV[] = {
    {"I", 147615},
    {"II", 78692},
    {"III", 41850},
    {"IV", 98933},
};

class TableVSim : public ::testing::TestWithParam<int>
{
};

TEST_P(TableVSim, ThroughputWithinFivePercentOfPaper)
{
    const auto &row = kTableV[GetParam()];
    const auto r = simulate(kDefault, tfhe::paramsByName(row.set));
    EXPECT_GT(r.throughputBs, row.paperThroughput * 0.95) << row.set;
    EXPECT_LT(r.throughputBs, row.paperThroughput * 1.05) << row.set;
    EXPECT_EQ(r.bootstraps, 1024u);
    EXPECT_EQ(r.streamSets, 4u);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, TableVSim, ::testing::Range(0, 4),
                         [](const auto &info) {
                             return std::string("Set") +
                                    kTableV[info.param].set;
                         });

TEST(AcceleratorSim, XpuDominatesRuntime)
{
    // Figure 7-a: blind rotation is 88-93% of the bootstrap.
    const auto r = simulate(kDefault, tfhe::paramsSetI());
    EXPECT_GT(r.xpuBusyFrac, 0.9);
    double br = r.latencyBreakdown.at("XPU (blind rotation)");
    double total = 0;
    for (const auto &[stage, cycles] : r.latencyBreakdown)
        total += cycles;
    EXPECT_GT(br / total, 0.85);
    EXPECT_LT(br / total, 0.97);
}

TEST(AcceleratorSim, ReuseVariantOrdering)
{
    // Figure 7-b: throughput(No) < throughput(Input) <= throughput(IO)
    // < throughput(IO + merge-split) on every ablation set.
    for (const char *name : {"A", "B", "C"}) {
        const auto &p = tfhe::paramsByName(name);
        const double no =
            simulate(kDefault.withReuse(ReuseMode::None, false), p, 256)
                .throughputBs;
        const double in =
            simulate(kDefault.withReuse(ReuseMode::Input, false), p, 256)
                .throughputBs;
        const double io =
            simulate(kDefault.withReuse(ReuseMode::InputOutput, false),
                     p, 256)
                .throughputBs;
        const double ms =
            simulate(kDefault.withReuse(ReuseMode::InputOutput, true),
                     p, 256)
                .throughputBs;
        EXPECT_GT(in, no * 1.2) << name;
        EXPECT_GE(io, in * 0.99) << name;
        EXPECT_GT(ms, io * 1.1) << name;
    }
}

TEST(AcceleratorSim, SetCReuseSpeedupNearPaper)
{
    // Paper: input+output reuse speeds up set C by 3.9x over no-reuse.
    const auto &p = tfhe::paramsSetC();
    const double no =
        simulate(kDefault.withReuse(ReuseMode::None, false), p, 256)
            .throughputBs;
    const double io =
        simulate(kDefault.withReuse(ReuseMode::InputOutput, false), p,
                 256)
            .throughputBs;
    EXPECT_NEAR(io / no, 3.9, 0.4);
}

TEST(AcceleratorSim, PrivateA1KneeAt4096KiB)
{
    // Figure 8-a: performance degrades below 4096 KiB and stabilizes
    // above.
    const auto &p = tfhe::paramsSetIII();
    auto at = [&](unsigned kib) {
        auto cfg = kDefault;
        cfg.privateA1KiB = kib;
        return simulate(cfg, p, 512).throughputBs;
    };
    const double full = at(4096);
    EXPECT_NEAR(at(8192), full, full * 0.02);   // stable above
    EXPECT_NEAR(at(16384), full, full * 0.02);
    EXPECT_LT(at(2048), full * 0.95); // degraded below
    EXPECT_LT(at(1024), full * 0.60); // strongly degraded
}

TEST(AcceleratorSim, XpuCountSweepPeaksAtFour)
{
    // Figure 8-b: linear scaling to 4 XPUs, degradation beyond (the
    // fixed Private-A1 and HBM bandwidth stop feeding more arrays).
    const auto &p = tfhe::paramsSetIII();
    auto at = [&](unsigned xpus) {
        auto cfg = kDefault;
        cfg.numXpus = xpus;
        return simulate(cfg, p, 512).throughputBs;
    };
    const double one = at(1), two = at(2), four = at(4), eight = at(8);
    EXPECT_NEAR(two / one, 2.0, 0.2);
    EXPECT_NEAR(four / one, 4.0, 0.4);
    EXPECT_LT(eight, four); // beyond four: slower, not faster
}

TEST(AcceleratorSim, MultiStageProgramRespectsBarriers)
{
    compiler::Workload w;
    w.name = "layers";
    w.stages.push_back({64, 10000});
    w.stages.push_back({64, 0});
    w.stages.push_back({32, 5000});

    const auto &p = tfhe::paramsSetI();
    compiler::SwScheduler sw(p);
    Accelerator acc(kDefault, p);
    const auto r = acc.run(sw.schedule(w));
    EXPECT_EQ(r.bootstraps, 160u);
    EXPECT_GT(r.vpuPaluCycles, 0u);
    // Staged program must take longer than the same bootstraps run
    // flat (barriers drain the pipeline).
    const auto flat = acc.runBootstrapBatch(160);
    EXPECT_GT(r.cycles, flat.cycles);
}

TEST(AcceleratorSim, TinyBatchCompletes)
{
    const auto r = simulate(kDefault, tfhe::paramsSetI(), 3);
    EXPECT_EQ(r.bootstraps, 3u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(AcceleratorSim, SingleGroupLatencyIsBskAndKsBound)
{
    // A solo 16-ciphertext group cannot amortize BSK fetches across
    // stream sets (every iteration waits on the 2-channel BSK path)
    // and key-switches all 16 ciphertexts on a single lane-group, so
    // its chunk latency sits well above the pipeline latency — but
    // bounded by the model pieces.
    const auto r = simulate(kDefault, tfhe::paramsSetI(), 16);
    EXPECT_GT(r.meanChunkLatencyMs, r.pipelineLatencyMs);
    EXPECT_LT(r.meanChunkLatencyMs, r.pipelineLatencyMs * 8);
}

TEST(AcceleratorSim, HbmTrafficAccountsBskAmortization)
{
    // With 4 stream sets, each iteration's BSK serves 64 ciphertexts:
    // BSK traffic = n * bskBytesPerIteration per 64 bootstraps (plus
    // cold-start waves).
    const auto &p = tfhe::paramsSetI();
    const auto r = simulate(kDefault, p, 1024);
    const double waves = 1024.0 / 64.0;
    const double expected =
        waves * p.lweDimension * bskBytesPerIteration(p);
    EXPECT_NEAR(static_cast<double>(r.bskBytes), expected,
                expected * 0.05);
}

TEST(AcceleratorSim, NocIsProvisionedWithHeadroom)
{
    // Section V-D: the fixed-topology NoC provides 4.8 TB/s chip-wide;
    // the streaming dataflow must load every link well below
    // saturation (that is the point of the 2D systolic array: data
    // moves VPE-to-VPE, not through the NoC).
    const auto r = simulate(kDefault, tfhe::paramsSetI(), 512);
    EXPECT_NEAR(r.nocAggregateTBs, 4.8, 1e-9);
    ASSERT_EQ(r.nocUtilization.size(), 4u);
    for (const auto &[link, util] : r.nocUtilization) {
        EXPECT_GT(util, 0.0) << link;
        EXPECT_LT(util, 0.9) << link;
    }
    // The ACC stream (rotator reads + writeback) is the busiest link.
    EXPECT_GT(r.nocUtilization.at("a1_to_xpu_xbar"),
              r.nocUtilization.at("xpu_to_shared_xbar"));
}

TEST(AcceleratorSim, BskPrefetchHidesStreamWithoutChangingTraffic)
{
    // Same program with the double buffer off (depth 1) and on
    // (depth 2): the BSK bytes moved are identical — prefetch changes
    // *when* slices are fetched, never *how much* — while the XPU
    // stall fraction and makespan strictly shrink with the buffer on.
    ArchConfig serial = kDefault;
    serial.bskPrefetchDepth = 1;
    const auto off = simulate(serial, tfhe::paramsSetI());
    const auto on = simulate(kDefault, tfhe::paramsSetI());

    EXPECT_EQ(off.bskBytes, on.bskBytes);
    EXPECT_EQ(off.bootstraps, on.bootstraps);
    EXPECT_GT(off.xpuStallFrac, on.xpuStallFrac);
    EXPECT_GT(off.cycles, on.cycles);
    // With the double buffer, the stream is essentially hidden.
    EXPECT_LT(on.xpuStallFrac, 0.01);
    EXPECT_GT(off.xpuStallFrac, 0.05);
}

TEST(AcceleratorSim, DeeperPrefetchNeverSlowsDown)
{
    ArchConfig deep = kDefault;
    deep.bskPrefetchDepth = 3;
    const auto d2 = simulate(kDefault, tfhe::paramsSetI());
    const auto d3 = simulate(deep, tfhe::paramsSetI());
    EXPECT_EQ(d2.bskBytes, d3.bskBytes);
    EXPECT_LE(d3.cycles, d2.cycles);
}

TEST(AcceleratorSim, ThroughputScalesDownWithoutKskReuse)
{
    // Ablation: disabling KSK reuse floods the VPU DMA path.
    const auto &p = tfhe::paramsSetI();
    compiler::SchedulerConfig cfg;
    cfg.kskReuse = 1;
    compiler::SwScheduler sw(p, cfg);
    Accelerator acc(kDefault, p);
    const auto no_reuse = acc.run(sw.scheduleBootstrapBatch(512));
    const auto with_reuse = acc.runBootstrapBatch(512);
    EXPECT_GT(no_reuse.vpuDmaBytes, with_reuse.vpuDmaBytes * 10);
    EXPECT_LT(no_reuse.throughputBs, with_reuse.throughputBs);
}

} // namespace
} // namespace morphling::arch
