/**
 * @file
 * Tests for the closed-form op/memory accounting: the paper's headline
 * numbers (Section I / III / Figure 1) must fall out of the formulas.
 */

#include <gtest/gtest.h>

#include "tfhe/opcount.h"
#include "tfhe/params.h"

namespace morphling::tfhe {
namespace {

TEST(OpCount, FftMultsFormula)
{
    // M/2 * log2(M) butterflies, 4 real mults each.
    EXPECT_EQ(fftMultsPerTransform(8), 8u / 2 * 3 * 4);
    EXPECT_EQ(fftMultsPerTransform(1024), 1024u / 2 * 10 * 4);
}

TEST(OpCount, MoreThanTenThousandPolyMultsAt128Bit)
{
    // Section I: "performing a single bootstrapping at the 128-bit
    // security level requires more than 10,000 polynomial
    // multiplications."
    EXPECT_GT(polyMultsPerBootstrap(paramsFig1()), 10000u);
    // (k+1)^2 * l_b * n = 9 * 4 * 481.
    EXPECT_EQ(polyMultsPerBootstrap(paramsFig1()), 9u * 4 * 481);
}

TEST(OpCount, TransformsPerExternalProduct)
{
    // CPU reference: (k+1) l_b forward + (k+1)^2 l_b inverse.
    const auto &f128 = paramsFig1(); // k=2, l_b=4
    EXPECT_EQ(transformsPerExternalProduct(f128, CostModel::CpuReference),
              12u + 36u);
    // Hardware with output reuse: (k+1) l_b forward + (k+1) inverse.
    EXPECT_EQ(
        transformsPerExternalProduct(f128, CostModel::FoldedHardware),
        12u + 3u);
}

TEST(OpCount, Figure1FftDominates)
{
    // Figure 1: I/FFT is ~88% of bootstrap operations, key switching
    // ~1.9%, other ~1%. Our counting reproduces the shape; assert
    // generous brackets around the paper's percentages.
    const auto ops = bootstrapOps(paramsFig1(), CostModel::CpuReference);
    const double fft_frac = ops.fftFraction();
    EXPECT_GT(fft_frac, 0.80);
    EXPECT_LT(fft_frac, 0.95);

    const double ks_frac = static_cast<double>(ops.keySwitchMults) /
                           static_cast<double>(ops.total());
    EXPECT_GT(ks_frac, 0.005);
    EXPECT_LT(ks_frac, 0.04);

    const double other_frac =
        static_cast<double>(ops.decompOps + ops.modSwitchOps +
                            ops.sampleExtractOps) /
        static_cast<double>(ops.total());
    EXPECT_LT(other_frac, 0.03);
}

TEST(OpCount, Figure1MemoryShape)
{
    // Figure 1: BSK dominates blind-rotation memory (~101 MB), KSK
    // dominates key-switching memory (~34 MB).
    const auto mem = bootstrapMem(paramsFig1());
    EXPECT_GT(mem.bskTransformBytes, 100ull << 20);
    EXPECT_LT(mem.bskTransformBytes, 150ull << 20);
    EXPECT_GT(mem.kskBytes, 30ull << 20);
    EXPECT_LT(mem.kskBytes, 40ull << 20);
    EXPECT_GT(mem.bskTransformBytes, mem.kskBytes);
    EXPECT_LT(mem.accBytes, 1ull << 20);
}

TEST(OpCount, HardwareModelNeedsFewerTransformOps)
{
    for (const auto &params : allParamSets()) {
        const auto cpu = bootstrapOps(params, CostModel::CpuReference);
        const auto hw = bootstrapOps(params, CostModel::FoldedHardware);
        EXPECT_LT(hw.fftMults, cpu.fftMults) << params.name;
        EXPECT_EQ(hw.keySwitchMults, cpu.keySwitchMults) << params.name;
    }
}

TEST(OpCount, ScalesWithLweDimension)
{
    // Blind-rotation counts are linear in n.
    auto p1 = paramsSetI();
    auto p2 = p1;
    p2.lweDimension *= 2;
    const auto o1 = bootstrapOps(p1, CostModel::CpuReference);
    const auto o2 = bootstrapOps(p2, CostModel::CpuReference);
    EXPECT_EQ(o2.fftMults, 2 * o1.fftMults);
    EXPECT_EQ(o2.pointwiseMults, 2 * o1.pointwiseMults);
}

TEST(OpCount, ParamSetsValidateAndSummarize)
{
    for (const auto &params : allParamSets()) {
        params.validate();
        EXPECT_FALSE(params.summary().empty());
        EXPECT_EQ(&paramsByName(params.name), &params);
    }
}

TEST(OpCount, KeySizesMatchClosedForms)
{
    const auto &p = paramsSetI(); // N=1024, n=500, k=1, l_b=2
    // BSK: n * (k+1)*l_b*(k+1) polys * N * 4B = 500 * 8 * 4096B.
    EXPECT_EQ(p.bskBytes(), 500ull * 8 * 1024 * 4);
    // KSK: kN * l_k * (n+1) * 4B.
    EXPECT_EQ(p.kskBytes(), 1024ull * p.kskLevels * 501 * 4);
    EXPECT_EQ(p.accBytes(), 2048ull * 4);
    EXPECT_EQ(p.extractedLweDimension(), 1024u);
}

} // namespace
} // namespace morphling::tfhe
