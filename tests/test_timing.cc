/**
 * @file
 * Tests of the closed-form architecture models: the EP round timing
 * that underlies Table V, the transform-count analysis behind Figure 3,
 * the VPU task costs, and the reuse-opportunity accounting.
 */

#include <gtest/gtest.h>

#include "arch/analysis.h"
#include "arch/timing.h"
#include "tfhe/params.h"

namespace morphling::arch {
namespace {

const ArchConfig kDefault = ArchConfig::morphlingDefault();

TEST(Analysis, TransformCountFormulas)
{
    // (k, l_b) = (3, 3): the paper's 46,752 headline at set C.
    EXPECT_EQ(transformsPerExternalProduct(3, 3, ReuseMode::None),
              2u * 16 * 3);
    EXPECT_EQ(transformsPerBootstrap(tfhe::paramsSetC(),
                                     ReuseMode::None),
              46752u);
}

TEST(Analysis, Figure3Reductions)
{
    // Input reuse: 25% at (1,1), 37.5% at (3,3).
    EXPECT_NEAR(transformReduction(1, 1, ReuseMode::Input), 0.25, 1e-9);
    EXPECT_NEAR(transformReduction(3, 3, ReuseMode::Input), 0.375,
                1e-9);
    // Input+output reuse: up to 83.3% at (3,3).
    EXPECT_NEAR(transformReduction(3, 3, ReuseMode::InputOutput),
                1.0 - 16.0 / 96.0, 1e-9);
    EXPECT_NEAR(transformReduction(3, 3, ReuseMode::InputOutput), 0.833,
                0.001);
}

TEST(Analysis, ReductionGrowsWithParameters)
{
    double prev = 0;
    for (unsigned k = 1; k <= 3; ++k) {
        const double red =
            transformReduction(k, k, ReuseMode::InputOutput);
        EXPECT_GT(red, prev);
        prev = red;
    }
}

TEST(Analysis, ReuseOpportunityCounts)
{
    const auto r = reuseOpportunity(tfhe::paramsSetB()); // k=2, l_b=2
    EXPECT_EQ(r.accInputReuse, 3u);
    EXPECT_EQ(r.bskReuse, 1u);
    EXPECT_EQ(r.accOutputReuse, 6u);
}

TEST(Timing, PassCyclesAreHalfDegreeOverLanes)
{
    const auto t = epRoundTiming(tfhe::paramsSetI(), kDefault, 4);
    EXPECT_EQ(t.passCycles, 1024u / 2 / 8);
}

TEST(Timing, SetIRoundIs256Cycles)
{
    // 4 rows x (k+1) l_b = 16 input polys over 2 FFTs x 2 (merge-split)
    // -> 4 passes x 64 cycles; VPE occupancy 4 x 64. Round = 256.
    const auto t = epRoundTiming(tfhe::paramsSetI(), kDefault, 4);
    EXPECT_EQ(t.fwdCycles, 256u);
    EXPECT_EQ(t.vpeCycles, 256u);
    EXPECT_LE(t.invCycles, 64u);
    EXPECT_EQ(t.roundCycles(), 256u);
}

struct TableVRow
{
    const char *set;
    double paperLatencyMs;
    double paperThroughput;
};

// Paper Table V, Morphling rows.
constexpr TableVRow kTableV[] = {
    {"I", 0.11, 147615},
    {"II", 0.20, 78692},
    {"III", 0.38, 41850},
    {"IV", 0.16, 98933},
};

class TableVEstimate : public ::testing::TestWithParam<int>
{
};

TEST_P(TableVEstimate, LatencyWithinTenPercent)
{
    const auto &row = kTableV[GetParam()];
    const auto est =
        estimateBootstrap(tfhe::paramsByName(row.set), kDefault);
    EXPECT_NEAR(est.latencyMs, row.paperLatencyMs,
                row.paperLatencyMs * 0.10)
        << "set " << row.set;
}

TEST_P(TableVEstimate, ThroughputCeilingWithinFivePercent)
{
    const auto &row = kTableV[GetParam()];
    const auto est =
        estimateBootstrap(tfhe::paramsByName(row.set), kDefault);
    // The compute-side ceiling should sit just above the paper's
    // measured throughput.
    EXPECT_GT(est.throughputBs, row.paperThroughput * 0.97)
        << "set " << row.set;
    EXPECT_LT(est.throughputBs, row.paperThroughput * 1.05)
        << "set " << row.set;
}

INSTANTIATE_TEST_SUITE_P(PaperRows, TableVEstimate,
                         ::testing::Range(0, 4),
                         [](const auto &info) {
                             return std::string("Set") +
                                    kTableV[info.param].set;
                         });

TEST(Timing, ReuseModeOrdering)
{
    // For every parameter set: No-Reuse >= Input-Reuse >=
    // Input+Output-Reuse round time.
    for (const auto &params : tfhe::allParamSets()) {
        const auto no = epRoundTiming(
            params, kDefault.withReuse(ReuseMode::None, false), 4);
        const auto in = epRoundTiming(
            params, kDefault.withReuse(ReuseMode::Input, false), 4);
        const auto io = epRoundTiming(
            params, kDefault.withReuse(ReuseMode::InputOutput, false),
            4);
        EXPECT_GE(no.roundCycles(), in.roundCycles()) << params.name;
        EXPECT_GE(in.roundCycles(), io.roundCycles()) << params.name;
    }
}

TEST(Timing, MergeSplitNeverSlower)
{
    for (const auto &params : tfhe::allParamSets()) {
        const auto off = epRoundTiming(
            params, kDefault.withReuse(ReuseMode::InputOutput, false),
            4);
        const auto on = epRoundTiming(params, kDefault, 4);
        EXPECT_LE(on.roundCycles(), off.roundCycles()) << params.name;
    }
}

TEST(Timing, FewerRowsNeverSlowerPerRound)
{
    for (unsigned rows = 1; rows <= 4; ++rows) {
        const auto t = epRoundTiming(tfhe::paramsSetI(), kDefault, rows);
        const auto t4 = epRoundTiming(tfhe::paramsSetI(), kDefault, 4);
        EXPECT_LE(t.roundCycles(), t4.roundCycles()) << rows;
        EXPECT_EQ(t.rowsActive, rows);
    }
}

TEST(Timing, BskBytesPerIteration)
{
    // Set I: 8 polys x 512 complex x 8 B = 32 KiB.
    EXPECT_EQ(bskBytesPerIteration(tfhe::paramsSetI()), 32768u);
}

TEST(Timing, VpuKeySwitchDominatesOtherTasks)
{
    for (const auto &params : tfhe::allParamSets()) {
        const auto c = vpuTaskCycles(params, kDefault);
        EXPECT_GT(c.keySwitch, c.modSwitch) << params.name;
        EXPECT_GT(c.keySwitch, c.sampleExtract) << params.name;
    }
}

TEST(Timing, VpuThroughputKeepsUpWithXpu)
{
    // The design constraint that fixed the KS gadget: the VPU ceiling
    // must sit at or above ~97% of the XPU ceiling for the Table V
    // sets.
    for (const char *name : {"I", "II", "III", "IV"}) {
        const auto est =
            estimateBootstrap(tfhe::paramsByName(name), kDefault);
        EXPECT_GE(est.vpuThroughputBs, est.xpuThroughputBs * 0.97)
            << name;
    }
}

TEST(Timing, PAluCyclesScaleWithMacsAndDimension)
{
    const auto &p = tfhe::paramsSetI();
    const auto c1 = vpuPAluCycles(p, kDefault, 1000);
    const auto c2 = vpuPAluCycles(p, kDefault, 2000);
    EXPECT_NEAR(static_cast<double>(c2) / c1, 2.0, 0.01);
    EXPECT_EQ(c1, (1000ull * 501 + 127) / 128);
}

TEST(Config, StreamSetsShrinkWithA1)
{
    auto cfg = kDefault;
    const auto &p = tfhe::paramsSetIII();
    cfg.privateA1KiB = 4096;
    EXPECT_EQ(cfg.streamSetsFor(p), 4u);
    cfg.privateA1KiB = 2048;
    EXPECT_EQ(cfg.streamSetsFor(p), 2u);
    cfg.privateA1KiB = 512;
    EXPECT_EQ(cfg.streamSetsFor(p), 1u);
}

TEST(Config, VariantBuilderPreservesResources)
{
    const auto v = kDefault.withReuse(ReuseMode::None, false);
    EXPECT_EQ(v.numXpus, kDefault.numXpus);
    EXPECT_EQ(v.fftUnitsPerXpu, kDefault.fftUnitsPerXpu);
    EXPECT_EQ(v.reuse, ReuseMode::None);
    EXPECT_FALSE(v.mergeSplitFft);
    EXPECT_EQ(reuseModeName(v.reuse), "No-Reuse");
}

} // namespace
} // namespace morphling::arch
