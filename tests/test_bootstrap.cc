/**
 * @file
 * End-to-end bootstrapping tests: modulus switching, test-polynomial
 * construction, blind rotation, programmable bootstrapping round-trips
 * and noise-refresh behaviour. Runs on the reduced TEST parameter set
 * plus one spot check on paper set I.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/params.h"

namespace morphling::tfhe {
namespace {

class BootstrapFixture : public ::testing::Test
{
  protected:
    // Key generation is the slow part; share it across tests.
    static void
    SetUpTestSuite()
    {
        Rng rng(20240704);
        keys_ = new KeySet(KeySet::generate(paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{987654321};

    static KeySet *keys_;
};

KeySet *BootstrapFixture::keys_ = nullptr;

TEST_F(BootstrapFixture, ModSwitchShape)
{
    const auto ct = LweCiphertext::encrypt(
        keys().lweKey, encodeMessage(1, 4),
        keys().params.lweNoiseStd, rng);
    const auto switched = modSwitch(ct, keys().params.polyDegree);
    EXPECT_EQ(switched.size(), keys().params.lweDimension + 1);
    for (auto v : switched)
        EXPECT_LT(v, 2 * keys().params.polyDegree);
}

TEST_F(BootstrapFixture, ModSwitchPreservesPhaseApproximately)
{
    const Torus32 mu = encodeMessage(1, 4);
    const auto ct = LweCiphertext::encrypt(
        keys().lweKey, mu, keys().params.lweNoiseStd, rng);
    const auto switched = modSwitch(ct, keys().params.polyDegree);

    // Reconstruct the phase in the 2N domain.
    const unsigned two_n = 2 * keys().params.polyDegree;
    std::uint64_t acc = switched[keys().params.lweDimension];
    for (unsigned i = 0; i < keys().params.lweDimension; ++i) {
        if (keys().lweKey.bits()[i])
            acc += two_n - switched[i];
    }
    const double phase = static_cast<double>(acc % two_n) / two_n;
    // Within a generous bound of the original 1/4 (mod-switch adds
    // rounding noise of roughly sqrt(n)/2N).
    EXPECT_NEAR(phase, 0.25, 0.05);
}

TEST_F(BootstrapFixture, TestPolynomialLayout)
{
    const unsigned n_poly = 64;
    const std::vector<Torus32> lut = {10, 20, 30, 40};
    const auto tp = buildTestPolynomial(n_poly, lut);
    // Slot m spans [m*N/p - N/2p, m*N/p + N/2p); probe slot centers.
    EXPECT_EQ(tp[0], 10u);
    EXPECT_EQ(tp[16], 20u);
    EXPECT_EQ(tp[32], 30u);
    EXPECT_EQ(tp[48], 40u);
    // Top half-slot holds -lut[0] for the negacyclic wrap of message 0
    // with negative noise.
    EXPECT_EQ(tp[n_poly - 1], static_cast<Torus32>(-10));
    EXPECT_EQ(tp[n_poly - 8], static_cast<Torus32>(-10));
}

TEST_F(BootstrapFixture, IdentityBootstrapRoundTrip)
{
    const std::uint32_t space = 4;
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return m;
    });
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = encryptPadded(keys(), m, space, rng);
        const auto out = programmableBootstrap(keys(), ct, lut);
        EXPECT_EQ(decryptPadded(keys(), out, space), m) << "m=" << m;
    }
}

TEST_F(BootstrapFixture, FunctionEvaluationViaLut)
{
    const std::uint32_t space = 4;
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return (3 * m + 1) % 4;
    });
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = encryptPadded(keys(), m, space, rng);
        const auto out = programmableBootstrap(keys(), ct, lut);
        EXPECT_EQ(decryptPadded(keys(), out, space), (3 * m + 1) % 4)
            << "m=" << m;
    }
}

TEST_F(BootstrapFixture, ReluLutClampsUpperHalf)
{
    const std::uint32_t space = 8;
    const auto lut = makeReluLut(space);
    const std::uint32_t expected[] = {0, 1, 2, 3, 0, 0, 0, 0};
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = encryptPadded(keys(), m, space, rng);
        const auto out = programmableBootstrap(keys(), ct, lut);
        EXPECT_EQ(decryptPadded(keys(), out, space), expected[m])
            << "m=" << m;
    }
}

TEST_F(BootstrapFixture, BootstrapResetsAccumulatedNoise)
{
    // Add several fresh ciphertexts of 0 to build up noise, then check
    // the bootstrap output's noise is back near the fresh level.
    const std::uint32_t space = 4;
    auto noisy = encryptPadded(keys(), 1, space, rng);
    for (int i = 0; i < 8; ++i) {
        auto zero = encryptPadded(keys(), 0, space, rng);
        noisy.addAssign(zero);
    }
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return m;
    });
    const auto refreshed = programmableBootstrap(keys(), noisy, lut);

    const Torus32 expected = encodePadded(1, space);
    const double noise_after =
        torusDistance(refreshed.phase(keys().lweKey), expected);
    EXPECT_LT(noise_after, 0.01);
    EXPECT_EQ(decryptPadded(keys(), refreshed, space), 1u);
}

TEST_F(BootstrapFixture, SignBootstrapSeparatesHalves)
{
    const Torus32 mu = boolMu();
    // Phase in (0, 1/2) -> +mu.
    const auto pos = LweCiphertext::encrypt(
        keys().lweKey, doubleToTorus32(0.2),
        keys().params.lweNoiseStd, rng);
    const auto out_pos = signBootstrap(keys(), pos, mu);
    EXPECT_LT(torusDistance(out_pos.phase(keys().lweKey), mu), 0.05);

    // Phase in (-1/2, 0) -> -mu.
    const auto neg = LweCiphertext::encrypt(
        keys().lweKey, doubleToTorus32(-0.2),
        keys().params.lweNoiseStd, rng);
    const auto out_neg = signBootstrap(keys(), neg, mu);
    EXPECT_LT(torusDistance(out_neg.phase(keys().lweKey), 0 - mu), 0.05);
}

TEST_F(BootstrapFixture, BlindRotateOnTrivialInputReadsLut)
{
    // With a noiseless (trivial) input ciphertext the blind rotation
    // must hit the exact LUT slot.
    const std::uint32_t space = 8;
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return (m * m) % 8;
    });
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = LweCiphertext::trivial(
            keys().params.lweDimension, encodePadded(m, space));
        const auto out = programmableBootstrap(keys(), ct, lut);
        EXPECT_EQ(decryptPadded(keys(), out, space), (m * m) % 8)
            << "m=" << m;
    }
}

TEST_F(BootstrapFixture, ChainedBootstrapsStayCorrect)
{
    // Bootstrap output must be a valid input for further bootstraps
    // (the property every multi-layer workload relies on).
    const std::uint32_t space = 4;
    const auto inc = makePaddedLut(space, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    auto ct = encryptPadded(keys(), 0, space, rng);
    for (int round = 1; round <= 4; ++round) {
        ct = programmableBootstrap(keys(), ct, inc);
        EXPECT_EQ(decryptPadded(keys(), ct, space),
                  static_cast<std::uint32_t>(round % 4))
            << "round " << round;
    }
}

// Full-size paper parameter sets: one complete programmable bootstrap
// round-trip per message on EVERY set of Table III (including the
// k = 2 and k = 3 sets and the single-level sets IV/A, which exercise
// quite different gadget and FFT regimes).
class BootstrapPaperParams : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BootstrapPaperParams, IdentityBootstrapRoundTrip)
{
    Rng rng(5150);
    const KeySet keys = KeySet::generate(paramsByName(GetParam()), rng);
    const std::uint32_t space = 4;
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return m;
    });
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = encryptPadded(keys, m, space, rng);
        const auto out = programmableBootstrap(keys, ct, lut);
        EXPECT_EQ(decryptPadded(keys, out, space), m) << "m=" << m;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSets, BootstrapPaperParams,
                         ::testing::Values("I", "II", "III", "IV", "A",
                                           "B", "C", "F128"),
                         [](const auto &info) {
                             return std::string("Set") + info.param;
                         });

} // namespace
} // namespace morphling::tfhe
