/**
 * @file
 * Tests for the negacyclic FFT engine: agreement with the schoolbook
 * negacyclic product across ring degrees and magnitudes, linearity of
 * the transform domain, and round-off bounds for the large single-level
 * gadgets (set IV / A style digits).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.h"
#include "tfhe/fft.h"
#include "tfhe/polynomial.h"

namespace morphling::tfhe {
namespace {

TorusPolynomial
randomTorusPoly(unsigned n, Rng &rng)
{
    TorusPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = rng.nextU32();
    return p;
}

IntPolynomial
randomDigits(unsigned n, std::int32_t half_range, Rng &rng)
{
    IntPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = static_cast<std::int32_t>(
                   rng.nextBelow(2 * static_cast<std::uint64_t>(
                                         half_range))) -
               half_range;
    return p;
}

TorusPolynomial
fourierProduct(const IntPolynomial &a, const TorusPolynomial &b)
{
    const unsigned n = a.degree();
    const auto &fft = NegacyclicFft::forDegree(n);
    FourierPolynomial fa(n), fb(n), fc(n);
    fft.forward(a, fa);
    fft.forward(b, fb);
    fc.mulAddAssign(fa, fb);
    TorusPolynomial out(n);
    fft.inverse(fc, out);
    return out;
}

double
maxTorusError(const TorusPolynomial &a, const TorusPolynomial &b)
{
    double max_err = 0;
    for (unsigned i = 0; i < a.degree(); ++i)
        max_err = std::max(max_err, torusDistance(a[i], b[i]));
    return max_err;
}

class FftDegrees : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FftDegrees, SmallDigitProductIsExact)
{
    // With small digits the products stay far inside the 53-bit
    // mantissa and the rounded result is bit-exact.
    const unsigned n = GetParam();
    Rng rng(1000 + n);
    for (int rep = 0; rep < 3; ++rep) {
        const auto a = randomDigits(n, 8, rng);
        const auto b = randomTorusPoly(n, rng);
        TorusPolynomial expected(n);
        negacyclicMulAddSchoolbook(expected, a, b);
        EXPECT_EQ(fourierProduct(a, b), expected) << "N=" << n;
    }
}

TEST_P(FftDegrees, GadgetDigitProductWithinNoiseBudget)
{
    // Digits as a (base 2^10) gadget produces: |a| <= 2^9. FFT
    // round-off must stay orders of magnitude below the decryption
    // margin (the tightest margin across parameter sets is 2^-6).
    const unsigned n = GetParam();
    Rng rng(2000 + n);
    for (int rep = 0; rep < 3; ++rep) {
        const auto a = randomDigits(n, 512, rng);
        const auto b = randomTorusPoly(n, rng);
        TorusPolynomial expected(n);
        negacyclicMulAddSchoolbook(expected, a, b);
        EXPECT_LT(maxTorusError(fourierProduct(a, b), expected),
                  1.0 / (1 << 24))
            << "N=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(AllRingDegrees, FftDegrees,
                         ::testing::Values(16u, 64u, 256u, 512u, 1024u,
                                           2048u));

TEST(Fft, MonomialProductIsRotation)
{
    const unsigned n = 256;
    Rng rng(17);
    const auto b = randomTorusPoly(n, rng);
    for (unsigned power : {0u, 1u, 100u, 255u}) {
        IntPolynomial mono(n);
        mono[power] = 1;
        EXPECT_EQ(fourierProduct(mono, b), b.mulByXPower(power))
            << "power=" << power;
    }
}

TEST(Fft, ForwardIsLinear)
{
    const unsigned n = 128;
    Rng rng(23);
    const auto &fft = NegacyclicFft::forDegree(n);
    const auto a = randomDigits(n, 100, rng);
    const auto b = randomDigits(n, 100, rng);
    IntPolynomial sum(n);
    for (unsigned i = 0; i < n; ++i)
        sum[i] = a[i] + b[i];

    FourierPolynomial fa(n), fb(n), fsum(n);
    fft.forward(a, fa);
    fft.forward(b, fb);
    fft.forward(sum, fsum);
    for (unsigned i = 0; i < fa.size(); ++i) {
        EXPECT_NEAR(fsum.re(i), fa.re(i) + fb.re(i),
                    1e-6 * (1.0 + std::abs(fsum.re(i))));
        EXPECT_NEAR(fsum.im(i), fa.im(i) + fb.im(i),
                    1e-6 * (1.0 + std::abs(fsum.im(i))));
    }
}

TEST(Fft, AccumulationInTransformDomainMatchesCoefficientDomain)
{
    // The core of output transform-domain reuse: IFFT(sum of products)
    // equals sum of IFFT(products).
    const unsigned n = 256;
    Rng rng(29);
    const auto &fft = NegacyclicFft::forDegree(n);

    const int terms = 6;
    FourierPolynomial acc(n);
    TorusPolynomial expected(n);
    for (int t = 0; t < terms; ++t) {
        const auto a = randomDigits(n, 128, rng);
        const auto b = randomTorusPoly(n, rng);
        FourierPolynomial fa(n), fb(n);
        fft.forward(a, fa);
        fft.forward(b, fb);
        acc.mulAddAssign(fa, fb);
        negacyclicMulAddSchoolbook(expected, a, b);
    }
    TorusPolynomial out(n);
    fft.inverse(acc, out);
    EXPECT_LT(maxTorusError(out, expected), 1.0 / (1 << 24));
}

TEST(Fft, LargeSingleLevelDigitsStayWithinNoiseBudget)
{
    // Set IV-style gadget: l_b = 1, base 2^23 -> digit magnitudes up to
    // 2^22. Products overflow exact double range, so the result is only
    // required to be correct to well below the bootstrap margin
    // (2^-6 of the torus), with several bits to spare.
    const unsigned n = 2048;
    Rng rng(31);
    const auto a = randomDigits(n, 1 << 22, rng);
    const auto b = randomTorusPoly(n, rng);

    TorusPolynomial expected(n);
    negacyclicMulAddSchoolbook(expected, a, b);
    const auto got = fourierProduct(a, b);

    double max_err = 0;
    for (unsigned i = 0; i < n; ++i)
        max_err = std::max(max_err, torusDistance(got[i], expected[i]));
    EXPECT_LT(max_err, 1.0 / (1 << 14));
}

TEST(Fft, InverseOfZeroIsZero)
{
    const unsigned n = 64;
    const auto &fft = NegacyclicFft::forDegree(n);
    FourierPolynomial zero(n);
    TorusPolynomial out(n);
    fft.inverse(zero, out);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(out[i], 0u);
}

TEST(Fft, EngineCacheReturnsSameInstancePerThread)
{
    const auto &a = NegacyclicFft::forDegree(512);
    const auto &b = NegacyclicFft::forDegree(512);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.ringDegree(), 512u);
}

} // namespace
} // namespace morphling::tfhe
