/**
 * @file
 * Edge-case tests of the HW scheduler and configuration validation:
 * degenerate programs, oversized chunks, group skew, and the fatal()
 * paths for inconsistent configurations (death tests).
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "compiler/sw_scheduler.h"

namespace morphling::arch {
namespace {

using compiler::Instruction;
using compiler::Opcode;
using compiler::Program;

const ArchConfig kDefault = ArchConfig::morphlingDefault();

SimReport
runProgram(const Program &program,
           const tfhe::TfheParams &params = tfhe::paramsSetI())
{
    Accelerator acc(kDefault, params);
    return acc.run(program);
}

TEST(HwSchedulerEdge, SingleInstructionProgram)
{
    Program prog("tiny");
    prog.add({Opcode::VpuModSwitch, 0, 4, 0});
    const auto r = runProgram(prog);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.bootstraps, 0u);
}

TEST(HwSchedulerEdge, DmaOnlyProgram)
{
    Program prog("dma");
    prog.add({Opcode::DmaLoadLwe, 0, 16, 32 * 1024});
    prog.add({Opcode::DmaStoreLwe, 0, 16, 32 * 1024});
    const auto r = runProgram(prog);
    EXPECT_GT(r.vpuDmaBytes, 0u);
}

TEST(HwSchedulerEdge, BlindRotateWithoutStagingStillCompletes)
{
    // A bare XPU instruction (no DMA/VPU head) is a legal chain.
    Program prog("bare-br");
    prog.add({Opcode::XpuBlindRotate, 0, 16, 100});
    const auto r = runProgram(prog);
    EXPECT_EQ(r.bootstraps, 16u);
}

TEST(HwSchedulerEdge, OversizedChunkMultiplexesRows)
{
    // 40 ciphertexts in one chunk exceed the 16 rows: the complex
    // serves them in extra passes, and all complete.
    Program prog("big-chunk");
    prog.add({Opcode::XpuBlindRotate, 0, 40, 200});
    const auto r = runProgram(prog);
    EXPECT_EQ(r.bootstraps, 40u);

    Program small("small-chunk");
    small.add({Opcode::XpuBlindRotate, 0, 16, 200});
    const auto r_small = runProgram(small);
    EXPECT_GT(r.cycles, r_small.cycles);
}

TEST(HwSchedulerEdge, SkewedGroupsStillRendezvousAtBarrier)
{
    // Group 0 carries far more work than group 1 before the barrier.
    Program prog("skew");
    for (int i = 0; i < 4; ++i)
        prog.add({Opcode::XpuBlindRotate, 0, 16, 100});
    prog.add({Opcode::VpuModSwitch, 1, 1, 0});
    prog.add({Opcode::Barrier, 0, 0, 0});
    prog.add({Opcode::Barrier, 1, 0, 0});
    prog.add({Opcode::XpuBlindRotate, 1, 16, 100});
    const auto r = runProgram(prog);
    EXPECT_EQ(r.bootstraps, 5u * 16);
}

TEST(HwSchedulerEdge, ManySmallChunksDrainCompletely)
{
    compiler::SchedulerConfig cfg;
    cfg.groupSize = 1;
    compiler::SwScheduler sw(tfhe::paramsSetI(), cfg);
    const auto prog = sw.scheduleBootstrapBatch(37);
    const auto r = runProgram(prog);
    EXPECT_EQ(r.bootstraps, 37u);
}

TEST(HwSchedulerEdge, ZeroCountBlindRotateDies)
{
    Program prog("zero");
    prog.add({Opcode::XpuBlindRotate, 0, 0, 100});
    EXPECT_DEATH(runProgram(prog), "empty blind rotation");
}

TEST(ConfigValidation, ChannelPartitionMustFit)
{
    ArchConfig cfg = kDefault;
    cfg.xpuHbmChannels = 4;
    cfg.vpuHbmChannels = 6; // 10 > 8
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "channel partition");
}

TEST(ConfigValidation, ZeroGeometryDies)
{
    ArchConfig cfg = kDefault;
    cfg.numXpus = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "geometry");
}

TEST(ConfigValidation, TransformUnitsRequired)
{
    ArchConfig cfg = kDefault;
    cfg.fftUnitsPerXpu = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "transform unit");
}

TEST(ConfigValidation, ParamGadgetOverflowDies)
{
    EXPECT_EXIT(
        {
            tfhe::TfheParams p = tfhe::paramsSetI();
            p.bskLevels = 4;
            p.bskBaseBits = 10; // 40 bits > 32
            p.validate();
        },
        ::testing::ExitedWithCode(1), "exceeds 32-bit torus");
}

TEST(ConfigValidation, UnknownParamSetDies)
{
    EXPECT_EXIT(tfhe::paramsByName("XXI"),
                ::testing::ExitedWithCode(1), "unknown TFHE parameter");
}

} // namespace
} // namespace morphling::arch
