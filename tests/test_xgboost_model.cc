/**
 * @file
 * Tests of the functional tree-ensemble model: plaintext prediction,
 * circuit compilation, and encrypted oblivious inference matching the
 * plaintext reference end to end.
 */

#include <gtest/gtest.h>

#include "apps/xgboost_model.h"
#include "tfhe/params.h"

namespace morphling::apps {
namespace {

using tfhe::KeySet;

TEST(XgboostModel, PlaintextPredictionDescendsCorrectly)
{
    Tree tree;
    tree.depth = 2;
    // Root: f0 >= 4; children: f1 >= 2, f1 >= 6.
    tree.featureIndex = {0, 1, 1};
    tree.threshold = {4, 2, 6};
    tree.leafScore = {10, 20, 30, 40};

    // f0=5 (right), f1=7 (right) -> leaf 3.
    EXPECT_EQ(tree.predict({5, 7}), 40);
    // f0=3 (left), f1=1 (left) -> leaf 0.
    EXPECT_EQ(tree.predict({3, 1}), 10);
    // f0=3 (left), f1=2 (right) -> leaf 1.
    EXPECT_EQ(tree.predict({3, 2}), 20);
    // f0=4 (right boundary), f1=5 (left) -> leaf 2.
    EXPECT_EQ(tree.predict({4, 5}), 30);
}

TEST(XgboostModel, EnsembleSumsTrees)
{
    Rng rng(7);
    const auto model = XgboostModel::random(5, 2, 3, 3, rng);
    const std::vector<std::uint32_t> features = {1, 5, 3};
    std::int32_t expected = 0;
    for (const auto &tree : model.trees)
        expected += tree.predict(features);
    EXPECT_EQ(model.predict(features), expected);
}

TEST(XgboostModel, CircuitShape)
{
    Rng rng(8);
    const auto model = XgboostModel::random(4, 2, 3, 3, rng);
    const auto circuit = model.buildCircuit(6);
    EXPECT_EQ(circuit.numInputs(), 3u * 3);
    EXPECT_EQ(circuit.outputs().size(), 6u);
    EXPECT_GT(circuit.bootstrapCount(), 0u);

    const auto w = model.workload(6, 16);
    EXPECT_EQ(w.totalBootstraps(), circuit.bootstrapCount() * 16);
}

TEST(XgboostModel, ObliviousInferenceMatchesPlaintext)
{
    Rng rng(9);
    // Small model to keep the encrypted run quick: 2 trees, depth 2,
    // 2 features of 3 bits.
    const auto model = XgboostModel::random(2, 2, 2, 3, rng);
    const unsigned score_bits = 6;
    const auto circuit = model.buildCircuit(score_bits);

    Rng key_rng(0x9B0057);
    const KeySet keys = KeySet::generate(tfhe::paramsTest(), key_rng);

    const std::vector<std::vector<std::uint32_t>> feature_sets = {
        {3, 6}, {0, 1}, {7, 7}};
    for (const auto &features : feature_sets) {
        // Encrypt the feature bits.
        std::vector<tfhe::LweCiphertext> enc;
        for (auto f : features) {
            for (unsigned i = 0; i < model.featureBits; ++i) {
                enc.push_back(tfhe::encryptBit(
                    keys, ((f >> i) & 1) != 0, key_rng));
            }
        }
        const auto out = circuit.evaluateEncrypted(keys, enc);

        // Decode two's complement.
        std::int32_t score = 0;
        for (unsigned i = 0; i < score_bits; ++i) {
            score |= static_cast<std::int32_t>(
                         tfhe::decryptBit(keys, out[i]))
                     << i;
        }
        if (score >= (1 << (score_bits - 1)))
            score -= 1 << score_bits;

        EXPECT_EQ(score, model.predict(features))
            << "features " << features[0] << "," << features[1];
    }
}

} // namespace
} // namespace morphling::apps
