/**
 * @file
 * Unit tests for discretized-torus arithmetic: encode/decode
 * round-trips, modulus switching, and noise sampling.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/torus.h"

namespace morphling::tfhe {
namespace {

TEST(Torus, DoubleRoundTrip)
{
    EXPECT_EQ(doubleToTorus32(0.0), 0u);
    EXPECT_EQ(doubleToTorus32(0.5), 0x80000000u);
    EXPECT_EQ(doubleToTorus32(0.25), 0x40000000u);
    // Values outside [0,1) reduce mod 1.
    EXPECT_EQ(doubleToTorus32(1.25), 0x40000000u);
    EXPECT_EQ(doubleToTorus32(-0.75), 0x40000000u);
}

TEST(Torus, ToDoubleIsCentered)
{
    EXPECT_DOUBLE_EQ(torus32ToDouble(0), 0.0);
    EXPECT_DOUBLE_EQ(torus32ToDouble(0x40000000u), 0.25);
    // 0.75 is represented by the centered value -0.25.
    EXPECT_DOUBLE_EQ(torus32ToDouble(0xC0000000u), -0.25);
}

TEST(Torus, EncodeDecodeRoundTripAllSpaces)
{
    for (std::uint32_t space : {2u, 3u, 4u, 8u, 16u, 100u, 255u}) {
        for (std::uint32_t m = 0; m < space; ++m) {
            EXPECT_EQ(decodeMessage(encodeMessage(m, space), space), m)
                << "space=" << space << " m=" << m;
        }
    }
}

TEST(Torus, DecodeToleratesNoiseBelowHalfSlot)
{
    const std::uint32_t space = 8;
    const Torus32 slot = 1u << 29; // 1/8 of the torus
    for (std::uint32_t m = 0; m < space; ++m) {
        const Torus32 center = encodeMessage(m, space);
        EXPECT_EQ(decodeMessage(center + slot / 4, space), m);
        EXPECT_EQ(decodeMessage(center - slot / 4, space), m);
    }
}

TEST(Torus, DecodeWrapsAcrossSeam)
{
    // A slightly negative encoding of 0 must still decode to 0.
    EXPECT_EQ(decodeMessage(static_cast<Torus32>(-1000), 4), 0u);
}

TEST(Torus, ModSwitchRoundsToNearest)
{
    const unsigned log2_two_n = 11; // 2N = 2048
    EXPECT_EQ(modSwitchTorus32(0, log2_two_n), 0u);
    // Exactly one slot: 2^32 / 2048 = 2^21.
    EXPECT_EQ(modSwitchTorus32(1u << 21, log2_two_n), 1u);
    // Half a slot rounds up.
    EXPECT_EQ(modSwitchTorus32(1u << 20, log2_two_n), 1u);
    EXPECT_EQ(modSwitchTorus32((1u << 20) - 1, log2_two_n), 0u);
}

TEST(Torus, ModSwitchErrorBounded)
{
    Rng rng(99);
    const unsigned log2_two_n = 11;
    const double slot = 1.0 / 2048.0;
    for (int i = 0; i < 10000; ++i) {
        const Torus32 x = rng.nextU32();
        const std::uint32_t switched =
            modSwitchTorus32(x, log2_two_n) % 2048;
        const double reconstructed = switched * slot;
        EXPECT_LE(torusDistance(x, doubleToTorus32(reconstructed)),
                  slot / 2 + 1e-9);
    }
}

TEST(Torus, GaussianNoiseScale)
{
    Rng rng(7);
    const double stddev = 1e-3;
    double sum_sq = 0;
    const int count = 100000;
    for (int i = 0; i < count; ++i) {
        const double e = torus32ToDouble(gaussianTorus32(rng, stddev));
        sum_sq += e * e;
    }
    const double measured = std::sqrt(sum_sq / count);
    EXPECT_NEAR(measured, stddev, stddev * 0.05);
}

TEST(Torus, DistanceIsSymmetricAndBounded)
{
    Rng rng(21);
    for (int i = 0; i < 1000; ++i) {
        const Torus32 a = rng.nextU32(), b = rng.nextU32();
        EXPECT_DOUBLE_EQ(torusDistance(a, b), torusDistance(b, a));
        EXPECT_LE(torusDistance(a, b), 0.5);
        EXPECT_GE(torusDistance(a, b), 0.0);
    }
    EXPECT_DOUBLE_EQ(torusDistance(123u, 123u), 0.0);
}

} // namespace
} // namespace morphling::tfhe
