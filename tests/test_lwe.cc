/**
 * @file
 * Unit tests for LWE keys, encryption, decryption and the homomorphic
 * linear operations.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/lwe.h"
#include "tfhe/params.h"

namespace morphling::tfhe {
namespace {

class LweFixture : public ::testing::Test
{
  protected:
    const TfheParams &params = paramsTest();
    Rng rng{12345};
    LweKey key = LweKey::generate(params, rng);
};

TEST_F(LweFixture, KeyIsBinaryAndRightSize)
{
    EXPECT_EQ(key.dimension(), params.lweDimension);
    int ones = 0;
    for (auto b : key.bits()) {
        EXPECT_TRUE(b == 0 || b == 1);
        ones += b;
    }
    // A uniform binary key is almost surely not degenerate.
    EXPECT_GT(ones, 0);
    EXPECT_LT(ones, static_cast<int>(key.dimension()));
}

TEST_F(LweFixture, EncryptDecryptRoundTrip)
{
    const std::uint32_t space = 8;
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = LweCiphertext::encrypt(
            key, encodeMessage(m, space), params.lweNoiseStd, rng);
        EXPECT_EQ(lweDecrypt(key, ct, space), m);
    }
}

TEST_F(LweFixture, PhaseNoiseIsSmall)
{
    const Torus32 mu = encodeMessage(3, 16);
    for (int i = 0; i < 50; ++i) {
        const auto ct =
            LweCiphertext::encrypt(key, mu, params.lweNoiseStd, rng);
        EXPECT_LT(torusDistance(ct.phase(key), mu),
                  20 * params.lweNoiseStd);
    }
}

TEST_F(LweFixture, TrivialCiphertextDecryptsWithoutKeyMaterial)
{
    const Torus32 mu = encodeMessage(5, 8);
    const auto ct = LweCiphertext::trivial(key.dimension(), mu);
    EXPECT_EQ(ct.phase(key), mu); // exact: no noise, no mask
}

TEST_F(LweFixture, HomomorphicAddition)
{
    const std::uint32_t space = 16;
    const auto c1 = LweCiphertext::encrypt(key, encodeMessage(3, space),
                                           params.lweNoiseStd, rng);
    const auto c2 = LweCiphertext::encrypt(key, encodeMessage(5, space),
                                           params.lweNoiseStd, rng);
    auto sum = c1;
    sum.addAssign(c2);
    EXPECT_EQ(lweDecrypt(key, sum, space), 8u);
}

TEST_F(LweFixture, HomomorphicSubtractionWraps)
{
    const std::uint32_t space = 16;
    const auto c1 = LweCiphertext::encrypt(key, encodeMessage(3, space),
                                           params.lweNoiseStd, rng);
    const auto c2 = LweCiphertext::encrypt(key, encodeMessage(5, space),
                                           params.lweNoiseStd, rng);
    auto diff = c1;
    diff.subAssign(c2);
    EXPECT_EQ(lweDecrypt(key, diff, space), 14u); // 3 - 5 mod 16
}

TEST_F(LweFixture, HomomorphicNegation)
{
    const std::uint32_t space = 16;
    const auto ct = LweCiphertext::encrypt(key, encodeMessage(3, space),
                                           params.lweNoiseStd, rng);
    auto neg = ct;
    neg.negate();
    EXPECT_EQ(lweDecrypt(key, neg, space), 13u);
}

TEST_F(LweFixture, ScalarMultiplication)
{
    const std::uint32_t space = 16;
    const auto ct = LweCiphertext::encrypt(key, encodeMessage(3, space),
                                           params.lweNoiseStd, rng);
    auto scaled = ct;
    scaled.scaleAssign(4);
    EXPECT_EQ(lweDecrypt(key, scaled, space), 12u);
    scaled = ct;
    scaled.scaleAssign(-2);
    EXPECT_EQ(lweDecrypt(key, scaled, space), 10u); // -6 mod 16
}

TEST_F(LweFixture, AddPlainShiftsMessage)
{
    const std::uint32_t space = 8;
    auto ct = LweCiphertext::encrypt(key, encodeMessage(2, space),
                                     params.lweNoiseStd, rng);
    ct.addPlain(encodeMessage(3, space));
    EXPECT_EQ(lweDecrypt(key, ct, space), 5u);
}

TEST(Lwe, MasksLookUniform)
{
    // Chi-squared-ish sanity check on the top mask bits.
    const auto &params = paramsTest();
    Rng rng(777);
    const auto key = LweKey::generate(params, rng);
    int buckets[4] = {0, 0, 0, 0};
    const int samples = 200;
    for (int i = 0; i < samples; ++i) {
        const auto ct =
            LweCiphertext::encrypt(key, 0, params.lweNoiseStd, rng);
        for (unsigned j = 0; j < ct.dimension(); ++j)
            ++buckets[ct.mask(j) >> 30];
    }
    const double expect = samples * params.lweDimension / 4.0;
    for (int b = 0; b < 4; ++b)
        EXPECT_NEAR(buckets[b], expect, expect * 0.1);
}

} // namespace
} // namespace morphling::tfhe
