/**
 * @file
 * Tests of the shared-memory-fabric fleet (arch::AcceleratorFleet via
 * exec::ShardedBackend::fleetTiming): one-shard equivalence with the
 * private-memory timing backend, broadcast byte conservation, the
 * makespan speedup over the BSK-streaming bound, retirement parity
 * with private-memory shards, and more-shards-than-groups coverage.
 */

#include <gtest/gtest.h>

#include "arch/config.h"
#include "compiler/sw_scheduler.h"
#include "exec/sharded_backend.h"
#include "exec/timing_backend.h"

namespace morphling::exec {
namespace {

const arch::ArchConfig kDefault = arch::ArchConfig::morphlingDefault();

/** 16 groups of 16, rounds phase-aligned across groups — the schedule
 *  that lets fleet shards coalesce their BSK fetches. */
compiler::Program
interleavedProgram(const tfhe::TfheParams &params, std::uint64_t batch)
{
    compiler::SchedulerConfig sc;
    sc.numGroups = 16;
    sc.groupSize = 16;
    sc.interleave = compiler::InterleaveMode::kGroupInterleaved;
    return compiler::SwScheduler(params, sc)
        .scheduleBootstrapBatch(batch);
}

TEST(FleetTiming, OneShardMatchesPrivateTiming)
{
    // A one-consumer fleet is the private memory system: same channel
    // layout, every "broadcast" serves exactly one shard. The shared
    // clock must agree cycle-for-cycle with TimingBackend.
    const auto &params = tfhe::paramsSetI();
    const auto program =
        compiler::SwScheduler(params).scheduleBootstrapBatch(64);

    TimingBackend mono(kDefault, params);
    const auto whole = mono.run(program, Job{});

    auto fleet = ShardedBackend::fleetTiming(kDefault, params, 1);
    const auto result = fleet.run(program, Job{});

    EXPECT_EQ(result.report.cycles, whole.report.cycles);
    EXPECT_EQ(result.report.bskBytes, whole.report.bskBytes);
    EXPECT_EQ(result.report.bootstraps, whole.report.bootstraps);
    EXPECT_DOUBLE_EQ(fleet.fleetReport().broadcastAmortization, 1.0);
}

TEST(FleetTiming, BroadcastByteConservation)
{
    // Phase-aligned shards coalesce on every BSK slice: the fabric
    // reads each slice once and delivers it N times, so delivered
    // bytes are exactly N x fetched bytes and every shard sees the
    // same BSK traffic it would have streamed privately.
    const auto &params = tfhe::paramsSetI();
    const auto program = interleavedProgram(params, 256);
    const unsigned n = 4;

    auto priv = ShardedBackend::timing(kDefault, params, n);
    const auto priv_result = priv.run(program, Job{});

    auto fleet = ShardedBackend::fleetTiming(kDefault, params, n);
    const auto result = fleet.run(program, Job{});
    const auto &fr = fleet.fleetReport();

    EXPECT_EQ(fr.bskDeliveredBytes, n * fr.bskFetchedBytes);
    EXPECT_DOUBLE_EQ(fr.broadcastAmortization, double(n));
    ASSERT_EQ(fr.shards.size(), n);
    // Per-shard delivered traffic matches the private-memory stream
    // (the broadcast changes who pays for the read, not who gets it).
    std::uint64_t delivered = 0;
    for (const auto &shard : fr.shards)
        delivered += shard.bskBytes;
    EXPECT_EQ(delivered, fr.bskDeliveredBytes);
    EXPECT_EQ(delivered, priv_result.report.bskBytes);
    // The fabric itself only paid 1/N of that.
    EXPECT_EQ(fr.bskFetchedBytes * n, priv_result.report.bskBytes);
    (void)result;
}

TEST(FleetTiming, FourShardFleetBreaksTheStreamingBound)
{
    // The headline: four shards on one fabric with broadcast and
    // prefetch finish the superbatch in well under half the mono
    // makespan (the private-memory split was stuck near 1.2x).
    const auto &params = tfhe::paramsSetI();
    const auto mono_program =
        compiler::SwScheduler(params).scheduleBootstrapBatch(1024);
    const auto fleet_program = interleavedProgram(params, 1024);

    auto mono = ShardedBackend::fleetTiming(kDefault, params, 1);
    const std::uint64_t mono_cycles =
        mono.run(mono_program, Job{}).report.cycles;

    auto fleet = ShardedBackend::fleetTiming(kDefault, params, 4);
    const auto result = fleet.run(fleet_program, Job{});
    ASSERT_TRUE(result.hasReport);
    EXPECT_GE(static_cast<double>(mono_cycles) /
                  static_cast<double>(result.report.cycles),
              2.0);
    // The stream is hidden, not merely amortized.
    EXPECT_LT(result.report.xpuStallFrac, 0.01);
}

TEST(FleetTiming, RetirementParityWithPrivateShards)
{
    // The merged retirement sequence is a deterministic function of
    // the program's barrier structure, not of who owns the memory:
    // fleet-timing and private-timing shards must emit the same
    // instruction order.
    const auto &params = tfhe::paramsSetI();
    const auto program = interleavedProgram(params, 64);

    auto priv = ShardedBackend::timing(kDefault, params, 4);
    const auto a = priv.run(program, Job{});
    auto fleet = ShardedBackend::fleetTiming(kDefault, params, 4);
    const auto b = fleet.run(program, Job{});

    ASSERT_EQ(a.retired.size(), program.size());
    ASSERT_EQ(b.retired.size(), program.size());
    for (std::size_t i = 0; i < a.retired.size(); ++i) {
        EXPECT_EQ(a.retired[i].index, b.retired[i].index) << i;
        EXPECT_EQ(a.retired[i].inst, b.retired[i].inst) << i;
        EXPECT_EQ(b.retired[i].seq, i);
    }
}

TEST(FleetTiming, MoreShardsThanGroupsLeavesIdleShardsEmpty)
{
    const auto &params = tfhe::paramsSetI();
    // 4 groups, 6 shards: shards 4 and 5 own no groups.
    const auto program =
        compiler::SwScheduler(params).scheduleBootstrapBatch(64);
    auto fleet = ShardedBackend::fleetTiming(kDefault, params, 6);
    const auto result = fleet.run(program, Job{});
    ASSERT_TRUE(result.hasReport);
    EXPECT_EQ(result.report.bootstraps, 64u);
    const auto &stats = fleet.shardStats();
    ASSERT_EQ(stats.size(), 6u);
    EXPECT_FALSE(stats[4].hasReport);
    EXPECT_FALSE(stats[5].hasReport);
    EXPECT_EQ(stats[4].instructions, 0u);
}

TEST(FleetTiming, DeterministicAcrossRuns)
{
    const auto &params = tfhe::paramsSetI();
    const auto program = interleavedProgram(params, 64);
    auto a = ShardedBackend::fleetTiming(kDefault, params, 4);
    auto b = ShardedBackend::fleetTiming(kDefault, params, 4);
    const auto ra = a.run(program, Job{});
    const auto rb = b.run(program, Job{});
    EXPECT_EQ(ra.report.cycles, rb.report.cycles);
    ASSERT_EQ(ra.retired.size(), rb.retired.size());
    for (std::size_t i = 0; i < ra.retired.size(); ++i) {
        EXPECT_EQ(ra.retired[i].index, rb.retired[i].index);
        EXPECT_EQ(ra.retired[i].tick, rb.retired[i].tick);
    }
}

} // namespace
} // namespace morphling::exec
