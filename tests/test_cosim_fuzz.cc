/**
 * @file
 * Randomized co-simulation fuzz (the ROADMAP's "cosim in CI at
 * scale" item): generate random multi-stage workloads, compile them,
 * and cross-check the functional backend against the cycle model in
 * lockstep plus a randomly-sharded run against the monolithic
 * reference. The seed comes from MORPHLING_FUZZ_SEED when set and is
 * echoed in the log either way, so any CI failure reproduces locally
 * with one env var.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "arch/config.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/cosim.h"
#include "exec/functional_backend.h"
#include "exec/sharded_backend.h"
#include "exec/timing_backend.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

namespace morphling::exec {
namespace {

std::uint64_t
fuzzSeed()
{
    if (const char *env = std::getenv("MORPHLING_FUZZ_SEED"))
        return std::strtoull(env, nullptr, 0);
    return 0xF022EDull;
}

class CosimFuzz : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xF0CC);
        keys_ = new tfhe::KeySet(
            tfhe::KeySet::generate(tfhe::paramsTest(), rng));
        evalKeys_ = new tfhe::EvaluationKeys(
            tfhe::EvaluationKeys::fromKeySet(*keys_));
    }
    static void
    TearDownTestSuite()
    {
        delete evalKeys_;
        delete keys_;
        keys_ = nullptr;
        evalKeys_ = nullptr;
    }

    const tfhe::KeySet &keys() { return *keys_; }
    const tfhe::EvaluationKeys &evalKeys() { return *evalKeys_; }

    /** Random workload: 1-3 dependent stages of 1-20 bootstraps each,
     *  some with a linear-MAC prologue. */
    compiler::Workload
    randomWorkload(Rng &rng, unsigned iteration)
    {
        compiler::Workload w;
        w.name = "fuzz-" + std::to_string(iteration);
        const unsigned stages = 1 + static_cast<unsigned>(rng.nextBelow(3));
        for (unsigned s = 0; s < stages; ++s) {
            compiler::WorkloadStage stage;
            stage.bootstraps = 1 + rng.nextBelow(20);
            stage.linearMacs = rng.nextBit() ? rng.nextBelow(600) : 0;
            w.stages.push_back(stage);
        }
        return w;
    }

    static tfhe::KeySet *keys_;
    static tfhe::EvaluationKeys *evalKeys_;
};

tfhe::KeySet *CosimFuzz::keys_ = nullptr;
tfhe::EvaluationKeys *CosimFuzz::evalKeys_ = nullptr;

TEST_F(CosimFuzz, RandomWorkloadsPassLockstepAndShardedChecks)
{
    const std::uint64_t seed = fuzzSeed();
    // The one line a CI log must carry to reproduce a red run:
    //   MORPHLING_FUZZ_SEED=<seed> ctest -R CosimFuzz
    std::printf("MORPHLING_FUZZ_SEED=%llu\n",
                static_cast<unsigned long long>(seed));
    Rng rng(seed);

    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const compiler::SwScheduler scheduler(keys().params);
    const auto arch_cfg = arch::ArchConfig::morphlingDefault();

    for (unsigned iteration = 0; iteration < 2; ++iteration) {
        const auto workload = randomWorkload(rng, iteration);
        const auto program = scheduler.schedule(workload);
        SCOPED_TRACE("iteration " + std::to_string(iteration) + ": " +
                     std::to_string(workload.stages.size()) +
                     " stages, " +
                     std::to_string(workload.totalBootstraps()) +
                     " bootstraps");

        std::vector<tfhe::LweCiphertext> inputs;
        const auto slots = program.totalBlindRotations();
        inputs.reserve(slots);
        for (std::uint64_t i = 0; i < slots; ++i) {
            inputs.push_back(tfhe::encryptPadded(
                keys(), static_cast<std::uint32_t>(rng.nextBelow(4)), 4,
                rng));
        }
        Job job;
        job.inputs = &inputs;
        job.lut = &lut;

        // Lockstep functional vs. cycle model, with the bit-exact
        // end-of-program reference enabled.
        FunctionalBackend functional(evalKeys());
        TimingBackend timing(arch_cfg, keys().params);
        CosimOptions options;
        options.referenceKeys = &evalKeys();
        LockstepCosim cosim(functional, timing, options);
        const auto report = cosim.run(program, job);
        EXPECT_TRUE(report.ok()) << report.summary();

        // A random shard count against the monolithic group-parallel
        // run: outputs bit-identical, merged order identical.
        const unsigned n_shards = 1 + static_cast<unsigned>(rng.nextBelow(5));
        Job par_job = job;
        par_job.options.threads = 4;
        FunctionalBackend mono(evalKeys());
        const auto reference = mono.run(program, par_job);
        auto sharded = ShardedBackend::functional(evalKeys(), n_shards);
        const auto result = sharded.run(program, job);
        ASSERT_TRUE(result.hasOutputs);
        ASSERT_EQ(result.outputs.size(), reference.outputs.size());
        for (std::size_t i = 0; i < result.outputs.size(); ++i) {
            EXPECT_EQ(result.outputs[i].raw(),
                      reference.outputs[i].raw())
                << "slot " << i << " with " << n_shards << " shards";
        }
        ASSERT_EQ(result.retired.size(), reference.retired.size());
        for (std::size_t i = 0; i < result.retired.size(); ++i)
            EXPECT_EQ(result.retired[i].index,
                      reference.retired[i].index);
    }
}

} // namespace
} // namespace morphling::exec
