/**
 * @file
 * Tests for the zero-allocation bootstrap hot path: workspace vs.
 * legacy entry-point equivalence (exact integer equality), the radix-4
 * FFT engine against the radix-2 reference, the planned gadget
 * decomposition and in-place rotations against their scalar originals,
 * and an operator-new hook asserting that a warmed-up bootstrap through
 * the workspace performs zero heap allocations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/fft.h"
#include "tfhe/fft_dispatch.h"
#include "tfhe/ggsw.h"
#include "tfhe/workspace.h"

// ---------------------------------------------------------------------
// Allocation-count hook: every path through global operator new bumps
// the counter while tracking is enabled. Deletes are left uncounted (a
// zero-allocation region is trivially a zero-deallocation region for
// warm buffers, and freeing is harmless anyway). The aligned overloads
// must honor the requested alignment: the SIMD buffers (AlignedVector)
// allocate through them and assert 64-byte alignment below.
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_track{false};
std::atomic<std::uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t size)
{
    if (g_track.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::align_val_t align)
{
    if (g_track.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    std::size_t a = static_cast<std::size_t>(align);
    if (a < sizeof(void *))
        a = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, a, size ? size : a) != 0)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, align);
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, align);
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace morphling::tfhe {
namespace {

TorusPolynomial
randomTorusPoly(unsigned n, Rng &rng)
{
    TorusPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = rng.nextU32();
    return p;
}

// ---------------------------------------------------------------------
// Radix-4 engine vs. the radix-2 reference.
//
// The radix-4 engine emits its spectrum in digit-reversed order; the
// permutation is recovered numerically (a complex exponential of
// frequency k transforms to a single peak at whatever index the engine
// stores bin k at), asserted to be a bijection, and then used to
// compare against the natural-order radix-2 reference.
// ---------------------------------------------------------------------

std::vector<unsigned>
probePermutation(const Radix4Fft &fft)
{
    const unsigned m = fft.size();
    std::vector<unsigned> perm(m, m);
    std::vector<bool> hit(m, false);
    std::vector<double> re(m), im(m);
    for (unsigned k = 0; k < m; ++k) {
        for (unsigned j = 0; j < m; ++j) {
            const double angle = 2.0 * M_PI * static_cast<double>(k) *
                                 static_cast<double>(j) /
                                 static_cast<double>(m);
            re[j] = std::cos(angle);
            im[j] = std::sin(angle);
        }
        fft.forwardPermuted(re.data(), im.data());
        unsigned peak = m;
        for (unsigned t = 0; t < m; ++t) {
            if (std::abs(re[t]) > m / 2.0) {
                EXPECT_EQ(peak, m) << "two peaks for frequency " << k;
                peak = t;
            }
        }
        EXPECT_LT(peak, m) << "no peak for frequency " << k;
        perm[k] = peak;
        EXPECT_FALSE(hit[peak]) << "permutation not injective at " << k;
        hit[peak] = true;
    }
    return perm;
}

class Radix4Sizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Radix4Sizes, ForwardMatchesRadix2UpToPermutation)
{
    const unsigned m = GetParam();
    const Radix4Fft r4(m);
    const ComplexFft r2(m);
    const auto perm = probePermutation(r4);

    Rng rng(100 + m);
    std::vector<double> re(m), im(m), re4(m), im4(m);
    for (unsigned j = 0; j < m; ++j) {
        re[j] = rng.nextDouble() * 2.0 - 1.0;
        im[j] = rng.nextDouble() * 2.0 - 1.0;
        re4[j] = re[j];
        im4[j] = im[j];
    }
    r2.forward(re.data(), im.data());
    r4.forwardPermuted(re4.data(), im4.data());
    for (unsigned k = 0; k < m; ++k) {
        EXPECT_NEAR(re4[perm[k]], re[k], 1e-9 * m) << "bin " << k;
        EXPECT_NEAR(im4[perm[k]], im[k], 1e-9 * m) << "bin " << k;
    }
}

TEST_P(Radix4Sizes, InverseMatchesRadix2UpToPermutation)
{
    const unsigned m = GetParam();
    const Radix4Fft r4(m);
    const ComplexFft r2(m);
    const auto perm = probePermutation(r4);

    Rng rng(200 + m);
    std::vector<double> re(m), im(m), re4(m), im4(m);
    for (unsigned k = 0; k < m; ++k) {
        re[k] = rng.nextDouble() * 2.0 - 1.0;
        im[k] = rng.nextDouble() * 2.0 - 1.0;
    }
    for (unsigned k = 0; k < m; ++k) {
        re4[perm[k]] = re[k];
        im4[perm[k]] = im[k];
    }
    r2.inverse(re.data(), im.data());
    r4.inversePermuted(re4.data(), im4.data());
    for (unsigned j = 0; j < m; ++j) {
        EXPECT_NEAR(re4[j], re[j], 1e-9 * m) << "index " << j;
        EXPECT_NEAR(im4[j], im[j], 1e-9 * m) << "index " << j;
    }
}

TEST_P(Radix4Sizes, RoundtripIsScaledIdentity)
{
    const unsigned m = GetParam();
    const Radix4Fft r4(m);
    Rng rng(300 + m);
    std::vector<double> re(m), im(m), orig_re(m), orig_im(m);
    for (unsigned j = 0; j < m; ++j) {
        re[j] = orig_re[j] = rng.nextDouble() * 1e3;
        im[j] = orig_im[j] = rng.nextDouble() * 1e3;
    }
    r4.forwardPermuted(re.data(), im.data());
    r4.inversePermuted(re.data(), im.data());
    for (unsigned j = 0; j < m; ++j) {
        EXPECT_NEAR(re[j], m * orig_re[j], 1e-6 * m);
        EXPECT_NEAR(im[j], m * orig_im[j], 1e-6 * m);
    }
}

TEST_P(Radix4Sizes, ImpulseTransformsToFlatSpectrum)
{
    const unsigned m = GetParam();
    const Radix4Fft r4(m);
    std::vector<double> re(m, 0.0), im(m, 0.0);
    re[0] = 1.0;
    r4.forwardPermuted(re.data(), im.data());
    for (unsigned t = 0; t < m; ++t) {
        EXPECT_NEAR(re[t], 1.0, 1e-12);
        EXPECT_NEAR(im[t], 0.0, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Radix4Sizes,
                         ::testing::Values(8u, 16u, 64u, 128u, 256u));

TEST(Radix4, SchoolbookVsFourierExternalProduct)
{
    // End-to-end cross-check through the negacyclic wrapper: the
    // Fourier external product (radix-4 underneath) against the exact
    // O(N^2) schoolbook product.
    const auto &params = paramsTest();
    Rng rng(0xAB12);
    const auto key = GlweKey::generate(params, rng);
    const auto ggsw =
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng);
    const auto fggsw = FourierGgsw::fromGgsw(ggsw);

    GlweCiphertext input(params.glweDimension, params.polyDegree);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        input.component(c) = randomTorusPoly(params.polyDegree, rng);

    const auto exact = externalProductSchoolbook(ggsw, input);
    const auto viaFft = externalProductFourier(fggsw, input);
    for (unsigned c = 0; c <= params.glweDimension; ++c) {
        for (unsigned i = 0; i < params.polyDegree; ++i) {
            EXPECT_LT(torusDistance(viaFft.component(c)[i],
                                    exact.component(c)[i]),
                      1.0 / (1 << 20))
                << "component " << c << " coeff " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Workspace vs. legacy equivalence (exact integer equality).
// ---------------------------------------------------------------------

TEST(Workspace, PlannedDecompositionMatchesScalar)
{
    Rng rng(0xD1517);
    for (const unsigned base_bits : {2u, 7u, 10u, 16u}) {
        const unsigned levels = 32 / base_bits >= 3 ? 3 : 1;
        const auto plan = makeGadgetPlan(base_bits, levels);
        const auto poly = randomTorusPoly(256, rng);

        std::vector<IntPolynomial> planned;
        gadgetDecomposePlanned(poly, plan, planned);

        std::vector<std::int32_t> digits(levels);
        for (unsigned c = 0; c < poly.degree(); ++c) {
            gadgetDecomposeScalar(poly[c], base_bits, levels,
                                  digits.data());
            for (unsigned j = 0; j < levels; ++j)
                EXPECT_EQ(planned[j][c], digits[j])
                    << "base 2^" << base_bits << " level " << j
                    << " coeff " << c;
        }
    }
}

TEST(Workspace, InPlaceRotationsMatchAllocatingOnes)
{
    Rng rng(0xB0B);
    const unsigned n = 128;
    const auto poly = randomTorusPoly(n, rng);
    TorusPolynomial out(n), scratch(n);
    for (unsigned power : {0u, 1u, 127u, 128u, 129u, 255u}) {
        poly.mulByXPowerInto(power, out);
        EXPECT_EQ(out, poly.mulByXPower(power)) << "power " << power;

        TorusPolynomial in_place = poly;
        in_place.mulByXPowerInPlace(power, scratch);
        EXPECT_EQ(in_place, out) << "power " << power;

        poly.rotateDiffInto(power, out);
        EXPECT_EQ(out, poly.rotateDiff(power)) << "power " << power;
    }
}

TEST(Workspace, ExternalProductAndCmuxMatchLegacy)
{
    const auto &params = paramsTest();
    Rng rng(0xE4E4);
    const auto key = GlweKey::generate(params, rng);
    const auto fggsw = FourierGgsw::fromGgsw(
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng));

    GlweCiphertext input(params.glweDimension, params.polyDegree);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        input.component(c) = randomTorusPoly(params.polyDegree, rng);

    BootstrapWorkspace ws;
    GlweCiphertext result;
    externalProductFourier(fggsw, input, result, ws);
    const auto legacy = externalProductFourier(fggsw, input);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        EXPECT_EQ(result.component(c), legacy.component(c));

    GlweCiphertext acc = input;
    cmuxRotateInPlace(fggsw, acc, 37, ws);
    const auto legacy_cmux = cmuxRotate(fggsw, input, 37);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        EXPECT_EQ(acc.component(c), legacy_cmux.component(c));
}

TEST(Workspace, BootstrapMatchesLegacyAcrossParameterSets)
{
    // One shared workspace reshaped across three geometries (k=1 N=512,
    // k=3 N=512, k=2 N=1024): every explicit-workspace bootstrap must
    // equal the legacy entry point bit for bit.
    BootstrapWorkspace ws;
    for (const char *name : {"TEST", "C", "B"}) {
        const auto &params = paramsByName(name);
        Rng rng(0x5EED);
        const auto keys = KeySet::generate(params, rng);
        const auto lut = makePaddedLut(4, [](std::uint32_t m) {
            return 3 - m;
        });

        for (std::uint32_t msg = 0; msg < 4; ++msg) {
            const auto ct = encryptPadded(keys, msg, 4, rng);
            const auto legacy = programmableBootstrap(keys, ct, lut);

            TorusPolynomial tp;
            buildTestPolynomialInto(params.polyDegree, lut, tp);
            LweCiphertext out;
            bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);

            EXPECT_EQ(out.raw(), legacy.raw())
                << "set " << name << " message " << msg;
            EXPECT_EQ(decryptPadded(keys, out, 4), 3 - msg)
                << "set " << name << " message " << msg;
        }
    }
}

// ---------------------------------------------------------------------
// The tentpole guarantee: a warmed-up bootstrap allocates nothing.
// ---------------------------------------------------------------------

TEST(AllocationGuard, WarmedUpBootstrapPerformsZeroAllocations)
{
    const auto &params = paramsTest();
    Rng rng(0xA110C);
    const auto keys = KeySet::generate(params, rng);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto tp = buildTestPolynomial(params.polyDegree, lut);
    const auto ct = encryptPadded(keys, 2, 4, rng);

    BootstrapWorkspace ws;
    LweCiphertext out;
    // Two warm-up rounds: the first shapes the workspace and `out`, the
    // second confirms steady state before counting.
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);

    g_allocs.store(0);
    g_track.store(true);
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);
    g_track.store(false);

    EXPECT_EQ(g_allocs.load(), 0u)
        << "warmed-up workspace bootstrap must not touch the heap";
    EXPECT_EQ(decryptPadded(keys, out, 4), 2u);
}

TEST(AllocationGuard, HookCountsAllocations)
{
    // Sanity-check the hook itself so a broken counter cannot silently
    // pass the zero-allocation test.
    g_allocs.store(0);
    g_track.store(true);
    auto *v = new std::vector<double>(1024);
    g_track.store(false);
    EXPECT_GE(g_allocs.load(), 1u);
    delete v;
}

// ---------------------------------------------------------------------
// SIMD buffer alignment: every structure-of-arrays buffer the batched
// kernels stream must be 64-byte aligned (common/aligned.h contract).
// ---------------------------------------------------------------------

static_assert(kSimdAlignment == 64, "SIMD buffers are cache-line sized");
static_assert((kSimdAlignment & (kSimdAlignment - 1)) == 0,
              "SIMD alignment must be a power of two");
static_assert(kSimdAlignment >= tfhe::detail::kMaxFftLanes * sizeof(double),
              "widest kernel tier must fit one aligned line");

TEST(Alignment, AlignedVectorDataIsAligned)
{
    // Odd sizes included: alignment must hold regardless of length.
    for (const std::size_t size : {1u, 7u, 64u, 513u, 4096u}) {
        AlignedVector<double> v(size);
        EXPECT_TRUE(isSimdAligned(v.data())) << "size " << size;
    }
}

TEST(Alignment, FourierPolynomialStorageIsAligned)
{
    for (const unsigned n : {8u, 64u, 1024u, 4096u}) {
        FourierPolynomial fp(n);
        EXPECT_TRUE(isSimdAligned(fp.reData())) << "N " << n;
        EXPECT_TRUE(isSimdAligned(fp.imData())) << "N " << n;
    }
}

TEST(Alignment, WorkspaceScratchBuffersAreAligned)
{
    BootstrapWorkspace ws;
    ws.ensure(/*glwe_dim=*/2, /*poly_degree=*/512, /*levels=*/3,
              /*base_bits=*/6);
    for (const auto &fp : ws.digitsF) {
        EXPECT_TRUE(isSimdAligned(fp.reData()));
        EXPECT_TRUE(isSimdAligned(fp.imData()));
    }
    for (const auto &fp : ws.accF) {
        EXPECT_TRUE(isSimdAligned(fp.reData()));
        EXPECT_TRUE(isSimdAligned(fp.imData()));
    }
}

// ---------------------------------------------------------------------
// Runtime dispatch: tier names, the supported set and the force hook.
// ---------------------------------------------------------------------

/** Force a tier for one scope, then drop back to the env/auto choice. */
struct DispatchGuard
{
    explicit DispatchGuard(FftDispatchTier t) { forceFftDispatchTier(t); }
    ~DispatchGuard() { resetFftDispatchTier(); }
};

TEST(FftDispatch, TierNames)
{
    EXPECT_STREQ(fftDispatchTierName(FftDispatchTier::kScalar), "scalar");
    EXPECT_STREQ(fftDispatchTierName(FftDispatchTier::kAvx2), "avx2");
    EXPECT_STREQ(fftDispatchTierName(FftDispatchTier::kAvx512), "avx512");
    EXPECT_STREQ(fftDispatchTierName(FftDispatchTier::kNeon), "neon");
}

TEST(FftDispatch, ScalarAlwaysSupportedAndListedFirst)
{
    EXPECT_TRUE(fftDispatchTierSupported(FftDispatchTier::kScalar));
    const auto tiers = supportedFftDispatchTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), FftDispatchTier::kScalar);
    for (const auto t : tiers)
        EXPECT_TRUE(fftDispatchTierSupported(t));
}

TEST(FftDispatch, ForceSelectsEachSupportedTier)
{
    for (const auto t : supportedFftDispatchTiers()) {
        DispatchGuard guard(t);
        EXPECT_EQ(activeFftDispatchTier(), t)
            << fftDispatchTierName(t);
    }
}

// ---------------------------------------------------------------------
// The batched FFT engine: for every supported tier, batched transforms
// must be bit-identical to the scalar single-polynomial engine, match
// the radix-2 reference up to the engine permutation, round-trip, and
// agree with the schoolbook negacyclic product.
// ---------------------------------------------------------------------

IntPolynomial
randomIntPoly(unsigned n, Rng &rng)
{
    IntPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = static_cast<std::int32_t>(rng.nextU32());
    return p;
}

TEST(BatchFftTiers, ForwardBitIdenticalToScalarEngine)
{
    // Randomized ring degrees (with and without the radix-2 tail, and
    // small enough to force the scalar fallback under wide tiers) and
    // randomized batch counts around the lane-width boundaries.
    for (const auto tier : supportedFftDispatchTiers()) {
        DispatchGuard guard(tier);
        Rng rng(0xF0F0 + static_cast<unsigned>(tier));
        for (const unsigned n : {8u, 16u, 32u, 128u, 512u, 1024u, 2048u}) {
            const BatchFft bfft(n);
            for (const unsigned count : {1u, 2u, 5u, 8u, 9u, 17u}) {
                std::vector<IntPolynomial> polys;
                std::vector<const IntPolynomial *> in;
                std::vector<FourierPolynomial> batched(
                    count, FourierPolynomial(n));
                std::vector<FourierPolynomial *> out;
                for (unsigned i = 0; i < count; ++i) {
                    polys.push_back(randomIntPoly(n, rng));
                    out.push_back(&batched[i]);
                }
                for (unsigned i = 0; i < count; ++i)
                    in.push_back(&polys[i]);
                bfft.forward(in.data(), out.data(), count);

                FourierPolynomial ref(n);
                for (unsigned i = 0; i < count; ++i) {
                    bfft.engine().forward(polys[i], ref);
                    for (unsigned j = 0; j < ref.size(); ++j) {
                        ASSERT_EQ(batched[i].re(j), ref.re(j))
                            << fftDispatchTierName(tier) << " N " << n
                            << " count " << count << " poly " << i
                            << " bin " << j;
                        ASSERT_EQ(batched[i].im(j), ref.im(j))
                            << fftDispatchTierName(tier) << " N " << n
                            << " count " << count << " poly " << i
                            << " bin " << j;
                    }
                }
            }
        }
    }
}

TEST(BatchFftTiers, InverseBitIdenticalToScalarEngine)
{
    for (const auto tier : supportedFftDispatchTiers()) {
        DispatchGuard guard(tier);
        Rng rng(0x1D1D + static_cast<unsigned>(tier));
        for (const unsigned n : {8u, 32u, 256u, 1024u}) {
            const BatchFft bfft(n);
            for (const unsigned count : {1u, 4u, 8u, 11u}) {
                // Realistic spectra: forward transforms of random torus
                // polynomials, scaled up as an accumulated dot product
                // would be.
                std::vector<FourierPolynomial> spectra(
                    count, FourierPolynomial(n));
                for (unsigned i = 0; i < count; ++i) {
                    const auto tp = randomTorusPoly(n, rng);
                    bfft.engine().forward(tp, spectra[i]);
                }

                std::vector<TorusPolynomial> ref(count,
                                                 TorusPolynomial(n));
                for (unsigned i = 0; i < count; ++i)
                    bfft.engine().inverse(spectra[i], ref[i]);

                std::vector<FourierPolynomial *> in;
                std::vector<TorusPolynomial> got(count,
                                                 TorusPolynomial(n));
                std::vector<TorusPolynomial *> out;
                for (unsigned i = 0; i < count; ++i) {
                    in.push_back(&spectra[i]);
                    out.push_back(&got[i]);
                }
                bfft.inverseInPlace(in.data(), out.data(), count);
                for (unsigned i = 0; i < count; ++i)
                    EXPECT_EQ(got[i], ref[i])
                        << fftDispatchTierName(tier) << " N " << n
                        << " count " << count << " poly " << i;
            }
        }
    }
}

TEST(BatchFftTiers, RoundtripRecoversTorusPolynomials)
{
    for (const auto tier : supportedFftDispatchTiers()) {
        DispatchGuard guard(tier);
        Rng rng(0x707 + static_cast<unsigned>(tier));
        for (const unsigned n : {16u, 128u, 1024u}) {
            const BatchFft bfft(n);
            const unsigned count = 9;
            std::vector<TorusPolynomial> orig;
            std::vector<const std::int32_t *> in;
            std::vector<FourierPolynomial> spectra(count,
                                                   FourierPolynomial(n));
            std::vector<FourierPolynomial *> spectraP;
            for (unsigned i = 0; i < count; ++i) {
                orig.push_back(randomTorusPoly(n, rng));
                spectraP.push_back(&spectra[i]);
            }
            for (unsigned i = 0; i < count; ++i)
                in.push_back(reinterpret_cast<const std::int32_t *>(
                    orig[i].data()));
            bfft.forward(in.data(), spectraP.data(), count);

            std::vector<TorusPolynomial> back(count, TorusPolynomial(n));
            std::vector<TorusPolynomial *> backP;
            for (unsigned i = 0; i < count; ++i)
                backP.push_back(&back[i]);
            bfft.inverseInPlace(spectraP.data(), backP.data(), count);
            // The FFT roundtrip error is orders of magnitude below the
            // rounding step, so recovery is exact.
            for (unsigned i = 0; i < count; ++i)
                EXPECT_EQ(back[i], orig[i])
                    << fftDispatchTierName(tier) << " N " << n
                    << " poly " << i;
        }
    }
}

TEST(BatchFftTiers, ProductMatchesSchoolbookNegacyclic)
{
    for (const auto tier : supportedFftDispatchTiers()) {
        DispatchGuard guard(tier);
        Rng rng(0x5B5B + static_cast<unsigned>(tier));
        const unsigned n = 512;
        const BatchFft bfft(n);

        // Small multiplier digits (the gadget decomposition range) keep
        // the schoolbook accumulation exactly representable.
        IntPolynomial a(n);
        for (unsigned i = 0; i < n; ++i)
            a[i] = static_cast<std::int32_t>(rng.nextU32() & 0xFF) - 128;
        const auto b = randomTorusPoly(n, rng);

        FourierPolynomial fa(n), fb(n), acc(n);
        const IntPolynomial *ap = &a;
        FourierPolynomial *fap = &fa;
        bfft.forward(&ap, &fap, 1);
        bfft.engine().forward(b, fb);
        acc.clear();
        acc.mulAddAssign(fa, fb);

        TorusPolynomial viaFft(n);
        FourierPolynomial *accp = &acc;
        TorusPolynomial *outp = &viaFft;
        bfft.inverseInPlace(&accp, &outp, 1);

        TorusPolynomial exact(n);
        negacyclicMulAddSchoolbook(exact, a, b);
        for (unsigned i = 0; i < n; ++i)
            EXPECT_LT(torusDistance(viaFft[i], exact[i]), 1.0 / (1 << 20))
                << fftDispatchTierName(tier) << " coeff " << i;
    }
}

TEST(BatchFftTiers, ForwardMatchesComplexFftUpToPermutation)
{
    // The batched negacyclic forward against the ground-truth radix-2
    // reference: fold + twist by hand, reference transform in natural
    // order, then compare through the engine's recovered permutation.
    for (const auto tier : supportedFftDispatchTiers()) {
        DispatchGuard guard(tier);
        Rng rng(0xC0C0 + static_cast<unsigned>(tier));
        const unsigned n = 256, half = n / 2;
        const BatchFft bfft(n);
        const ComplexFft reference(half);
        const auto perm = probePermutation(Radix4Fft(half));

        const auto poly = randomIntPoly(n, rng);
        const IntPolynomial *in = &poly;
        FourierPolynomial spectrum(n);
        FourierPolynomial *out = &spectrum;
        bfft.forward(&in, &out, 1);

        std::vector<double> re(half), im(half);
        for (unsigned j = 0; j < half; ++j) {
            const double angle = M_PI * static_cast<double>(j) /
                                 static_cast<double>(n);
            const double lo = poly[j], hi = poly[j + half];
            re[j] = lo * std::cos(angle) - hi * std::sin(angle);
            im[j] = lo * std::sin(angle) + hi * std::cos(angle);
        }
        reference.forward(re.data(), im.data());
        for (unsigned k = 0; k < half; ++k) {
            // Relative tolerance: bins of full-range int32 inputs reach
            // ~2^35, where a handful of ulps of engine-order difference
            // against the radix-2 reference is expected.
            const double tol =
                1e-12 * (std::abs(re[k]) + std::abs(im[k]) + 1.0);
            EXPECT_NEAR(spectrum.re(perm[k]), re[k], tol)
                << fftDispatchTierName(tier) << " bin " << k;
            EXPECT_NEAR(spectrum.im(perm[k]), im[k], tol)
                << fftDispatchTierName(tier) << " bin " << k;
        }
    }
}

TEST(BatchFftTiers, ExternalProductBitIdenticalAcrossTiers)
{
    // The full workspace external product must give byte-identical
    // ciphertexts whichever tier computed it: run once per tier and
    // compare against the scalar tier's output.
    const auto &params = paramsTest();
    Rng rng(0xACE5);
    const auto key = GlweKey::generate(params, rng);
    const auto fggsw = FourierGgsw::fromGgsw(
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng));
    GlweCiphertext input(params.glweDimension, params.polyDegree);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        input.component(c) = randomTorusPoly(params.polyDegree, rng);

    GlweCiphertext scalarResult;
    {
        DispatchGuard guard(FftDispatchTier::kScalar);
        BootstrapWorkspace ws;
        externalProductFourier(fggsw, input, scalarResult, ws);
    }
    for (const auto tier : supportedFftDispatchTiers()) {
        DispatchGuard guard(tier);
        BootstrapWorkspace ws;
        GlweCiphertext result;
        externalProductFourier(fggsw, input, result, ws);
        for (unsigned c = 0; c <= params.glweDimension; ++c)
            EXPECT_EQ(result.component(c), scalarResult.component(c))
                << fftDispatchTierName(tier) << " component " << c;
    }
}

} // namespace
} // namespace morphling::tfhe
