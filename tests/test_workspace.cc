/**
 * @file
 * Tests for the zero-allocation bootstrap hot path: workspace vs.
 * legacy entry-point equivalence (exact integer equality), the radix-4
 * FFT engine against the radix-2 reference, the planned gadget
 * decomposition and in-place rotations against their scalar originals,
 * and an operator-new hook asserting that a warmed-up bootstrap through
 * the workspace performs zero heap allocations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/fft.h"
#include "tfhe/ggsw.h"
#include "tfhe/workspace.h"

// ---------------------------------------------------------------------
// Allocation-count hook: every path through global operator new bumps
// the counter while tracking is enabled. Deletes are left uncounted (a
// zero-allocation region is trivially a zero-deallocation region for
// warm buffers, and freeing is harmless anyway).
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_track{false};
std::atomic<std::uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t size)
{
    if (g_track.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new(std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace morphling::tfhe {
namespace {

TorusPolynomial
randomTorusPoly(unsigned n, Rng &rng)
{
    TorusPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = rng.nextU32();
    return p;
}

// ---------------------------------------------------------------------
// Radix-4 engine vs. the radix-2 reference.
//
// The radix-4 engine emits its spectrum in digit-reversed order; the
// permutation is recovered numerically (a complex exponential of
// frequency k transforms to a single peak at whatever index the engine
// stores bin k at), asserted to be a bijection, and then used to
// compare against the natural-order radix-2 reference.
// ---------------------------------------------------------------------

std::vector<unsigned>
probePermutation(const Radix4Fft &fft)
{
    const unsigned m = fft.size();
    std::vector<unsigned> perm(m, m);
    std::vector<bool> hit(m, false);
    std::vector<double> re(m), im(m);
    for (unsigned k = 0; k < m; ++k) {
        for (unsigned j = 0; j < m; ++j) {
            const double angle = 2.0 * M_PI * static_cast<double>(k) *
                                 static_cast<double>(j) /
                                 static_cast<double>(m);
            re[j] = std::cos(angle);
            im[j] = std::sin(angle);
        }
        fft.forwardPermuted(re.data(), im.data());
        unsigned peak = m;
        for (unsigned t = 0; t < m; ++t) {
            if (std::abs(re[t]) > m / 2.0) {
                EXPECT_EQ(peak, m) << "two peaks for frequency " << k;
                peak = t;
            }
        }
        EXPECT_LT(peak, m) << "no peak for frequency " << k;
        perm[k] = peak;
        EXPECT_FALSE(hit[peak]) << "permutation not injective at " << k;
        hit[peak] = true;
    }
    return perm;
}

class Radix4Sizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Radix4Sizes, ForwardMatchesRadix2UpToPermutation)
{
    const unsigned m = GetParam();
    const Radix4Fft r4(m);
    const ComplexFft r2(m);
    const auto perm = probePermutation(r4);

    Rng rng(100 + m);
    std::vector<double> re(m), im(m), re4(m), im4(m);
    for (unsigned j = 0; j < m; ++j) {
        re[j] = rng.nextDouble() * 2.0 - 1.0;
        im[j] = rng.nextDouble() * 2.0 - 1.0;
        re4[j] = re[j];
        im4[j] = im[j];
    }
    r2.forward(re.data(), im.data());
    r4.forwardPermuted(re4.data(), im4.data());
    for (unsigned k = 0; k < m; ++k) {
        EXPECT_NEAR(re4[perm[k]], re[k], 1e-9 * m) << "bin " << k;
        EXPECT_NEAR(im4[perm[k]], im[k], 1e-9 * m) << "bin " << k;
    }
}

TEST_P(Radix4Sizes, InverseMatchesRadix2UpToPermutation)
{
    const unsigned m = GetParam();
    const Radix4Fft r4(m);
    const ComplexFft r2(m);
    const auto perm = probePermutation(r4);

    Rng rng(200 + m);
    std::vector<double> re(m), im(m), re4(m), im4(m);
    for (unsigned k = 0; k < m; ++k) {
        re[k] = rng.nextDouble() * 2.0 - 1.0;
        im[k] = rng.nextDouble() * 2.0 - 1.0;
    }
    for (unsigned k = 0; k < m; ++k) {
        re4[perm[k]] = re[k];
        im4[perm[k]] = im[k];
    }
    r2.inverse(re.data(), im.data());
    r4.inversePermuted(re4.data(), im4.data());
    for (unsigned j = 0; j < m; ++j) {
        EXPECT_NEAR(re4[j], re[j], 1e-9 * m) << "index " << j;
        EXPECT_NEAR(im4[j], im[j], 1e-9 * m) << "index " << j;
    }
}

TEST_P(Radix4Sizes, RoundtripIsScaledIdentity)
{
    const unsigned m = GetParam();
    const Radix4Fft r4(m);
    Rng rng(300 + m);
    std::vector<double> re(m), im(m), orig_re(m), orig_im(m);
    for (unsigned j = 0; j < m; ++j) {
        re[j] = orig_re[j] = rng.nextDouble() * 1e3;
        im[j] = orig_im[j] = rng.nextDouble() * 1e3;
    }
    r4.forwardPermuted(re.data(), im.data());
    r4.inversePermuted(re.data(), im.data());
    for (unsigned j = 0; j < m; ++j) {
        EXPECT_NEAR(re[j], m * orig_re[j], 1e-6 * m);
        EXPECT_NEAR(im[j], m * orig_im[j], 1e-6 * m);
    }
}

TEST_P(Radix4Sizes, ImpulseTransformsToFlatSpectrum)
{
    const unsigned m = GetParam();
    const Radix4Fft r4(m);
    std::vector<double> re(m, 0.0), im(m, 0.0);
    re[0] = 1.0;
    r4.forwardPermuted(re.data(), im.data());
    for (unsigned t = 0; t < m; ++t) {
        EXPECT_NEAR(re[t], 1.0, 1e-12);
        EXPECT_NEAR(im[t], 0.0, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Radix4Sizes,
                         ::testing::Values(8u, 16u, 64u, 128u, 256u));

TEST(Radix4, SchoolbookVsFourierExternalProduct)
{
    // End-to-end cross-check through the negacyclic wrapper: the
    // Fourier external product (radix-4 underneath) against the exact
    // O(N^2) schoolbook product.
    const auto &params = paramsTest();
    Rng rng(0xAB12);
    const auto key = GlweKey::generate(params, rng);
    const auto ggsw =
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng);
    const auto fggsw = FourierGgsw::fromGgsw(ggsw);

    GlweCiphertext input(params.glweDimension, params.polyDegree);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        input.component(c) = randomTorusPoly(params.polyDegree, rng);

    const auto exact = externalProductSchoolbook(ggsw, input);
    const auto viaFft = externalProductFourier(fggsw, input);
    for (unsigned c = 0; c <= params.glweDimension; ++c) {
        for (unsigned i = 0; i < params.polyDegree; ++i) {
            EXPECT_LT(torusDistance(viaFft.component(c)[i],
                                    exact.component(c)[i]),
                      1.0 / (1 << 20))
                << "component " << c << " coeff " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Workspace vs. legacy equivalence (exact integer equality).
// ---------------------------------------------------------------------

TEST(Workspace, PlannedDecompositionMatchesScalar)
{
    Rng rng(0xD1517);
    for (const unsigned base_bits : {2u, 7u, 10u, 16u}) {
        const unsigned levels = 32 / base_bits >= 3 ? 3 : 1;
        const auto plan = makeGadgetPlan(base_bits, levels);
        const auto poly = randomTorusPoly(256, rng);

        std::vector<IntPolynomial> planned;
        gadgetDecomposePlanned(poly, plan, planned);

        std::vector<std::int32_t> digits(levels);
        for (unsigned c = 0; c < poly.degree(); ++c) {
            gadgetDecomposeScalar(poly[c], base_bits, levels,
                                  digits.data());
            for (unsigned j = 0; j < levels; ++j)
                EXPECT_EQ(planned[j][c], digits[j])
                    << "base 2^" << base_bits << " level " << j
                    << " coeff " << c;
        }
    }
}

TEST(Workspace, InPlaceRotationsMatchAllocatingOnes)
{
    Rng rng(0xB0B);
    const unsigned n = 128;
    const auto poly = randomTorusPoly(n, rng);
    TorusPolynomial out(n), scratch(n);
    for (unsigned power : {0u, 1u, 127u, 128u, 129u, 255u}) {
        poly.mulByXPowerInto(power, out);
        EXPECT_EQ(out, poly.mulByXPower(power)) << "power " << power;

        TorusPolynomial in_place = poly;
        in_place.mulByXPowerInPlace(power, scratch);
        EXPECT_EQ(in_place, out) << "power " << power;

        poly.rotateDiffInto(power, out);
        EXPECT_EQ(out, poly.rotateDiff(power)) << "power " << power;
    }
}

TEST(Workspace, ExternalProductAndCmuxMatchLegacy)
{
    const auto &params = paramsTest();
    Rng rng(0xE4E4);
    const auto key = GlweKey::generate(params, rng);
    const auto fggsw = FourierGgsw::fromGgsw(
        GgswCiphertext::encrypt(key, 1, params.glweNoiseStd, rng));

    GlweCiphertext input(params.glweDimension, params.polyDegree);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        input.component(c) = randomTorusPoly(params.polyDegree, rng);

    BootstrapWorkspace ws;
    GlweCiphertext result;
    externalProductFourier(fggsw, input, result, ws);
    const auto legacy = externalProductFourier(fggsw, input);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        EXPECT_EQ(result.component(c), legacy.component(c));

    GlweCiphertext acc = input;
    cmuxRotateInPlace(fggsw, acc, 37, ws);
    const auto legacy_cmux = cmuxRotate(fggsw, input, 37);
    for (unsigned c = 0; c <= params.glweDimension; ++c)
        EXPECT_EQ(acc.component(c), legacy_cmux.component(c));
}

TEST(Workspace, BootstrapMatchesLegacyAcrossParameterSets)
{
    // One shared workspace reshaped across three geometries (k=1 N=512,
    // k=3 N=512, k=2 N=1024): every explicit-workspace bootstrap must
    // equal the legacy entry point bit for bit.
    BootstrapWorkspace ws;
    for (const char *name : {"TEST", "C", "B"}) {
        const auto &params = paramsByName(name);
        Rng rng(0x5EED);
        const auto keys = KeySet::generate(params, rng);
        const auto lut = makePaddedLut(4, [](std::uint32_t m) {
            return 3 - m;
        });

        for (std::uint32_t msg = 0; msg < 4; ++msg) {
            const auto ct = encryptPadded(keys, msg, 4, rng);
            const auto legacy = programmableBootstrap(keys, ct, lut);

            TorusPolynomial tp;
            buildTestPolynomialInto(params.polyDegree, lut, tp);
            LweCiphertext out;
            bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);

            EXPECT_EQ(out.raw(), legacy.raw())
                << "set " << name << " message " << msg;
            EXPECT_EQ(decryptPadded(keys, out, 4), 3 - msg)
                << "set " << name << " message " << msg;
        }
    }
}

// ---------------------------------------------------------------------
// The tentpole guarantee: a warmed-up bootstrap allocates nothing.
// ---------------------------------------------------------------------

TEST(AllocationGuard, WarmedUpBootstrapPerformsZeroAllocations)
{
    const auto &params = paramsTest();
    Rng rng(0xA110C);
    const auto keys = KeySet::generate(params, rng);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto tp = buildTestPolynomial(params.polyDegree, lut);
    const auto ct = encryptPadded(keys, 2, 4, rng);

    BootstrapWorkspace ws;
    LweCiphertext out;
    // Two warm-up rounds: the first shapes the workspace and `out`, the
    // second confirms steady state before counting.
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);

    g_allocs.store(0);
    g_track.store(true);
    bootstrapInto(keys.bsk, keys.ksk, tp, ct, out, ws);
    g_track.store(false);

    EXPECT_EQ(g_allocs.load(), 0u)
        << "warmed-up workspace bootstrap must not touch the heap";
    EXPECT_EQ(decryptPadded(keys, out, 4), 2u);
}

TEST(AllocationGuard, HookCountsAllocations)
{
    // Sanity-check the hook itself so a broken counter cannot silently
    // pass the zero-allocation test.
    g_allocs.store(0);
    g_track.store(true);
    auto *v = new std::vector<double>(1024);
    g_track.store(false);
    EXPECT_GE(g_allocs.load(), 1u);
    delete v;
}

} // namespace
} // namespace morphling::tfhe
