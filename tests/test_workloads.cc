/**
 * @file
 * Tests of the application workload builders (Section VI-A models) and
 * the CPU cost model.
 */

#include <gtest/gtest.h>

#include "apps/cpu_cost_model.h"
#include "apps/workloads.h"
#include "tfhe/params.h"

namespace morphling::apps {
namespace {

TEST(LayerSpec, ShapeCalculator)
{
    // 8x8 input, 3x3 kernel, stride 1 -> 6x6.
    LayerSpec l{8, 8, 1, 3, 2, 1, true};
    EXPECT_EQ(l.outHeight(), 6u);
    EXPECT_EQ(l.outWidth(), 6u);
    EXPECT_EQ(l.outputs(), 72u);
    EXPECT_EQ(l.macs(), 72u * 9);

    // 6x6 input, 3x3 kernel, stride 2 -> 2x2 (the paper's 368 ReLUs
    // come from 2x2x92).
    LayerSpec l2{6, 6, 2, 3, 92, 2, true};
    EXPECT_EQ(l2.outHeight(), 2u);
    EXPECT_EQ(l2.outputs(), 368u);
}

TEST(Workloads, XgboostNodeCount)
{
    // 100 estimators, depth 6: 100 * (2^6 - 1) = 6300 comparisons.
    const auto w = xgboostWorkload(100, 6);
    EXPECT_EQ(w.totalBootstraps(), 6300u);
    ASSERT_EQ(w.stages.size(), 2u);
    EXPECT_EQ(w.stages[1].linearMacs, 6400u); // leaf aggregation
}

TEST(Workloads, DeepCnnMatchesPaperDescription)
{
    const auto w = deepCnnWorkload(20);
    // Layers: conv1, conv2, 20 x 1x1, last conv, FC.
    ASSERT_EQ(w.stages.size(), 24u);
    // conv1: 6x6x2 = 72 ReLUs.
    EXPECT_EQ(w.stages[0].bootstraps, 72u);
    // conv2 and every 1x1 layer: the paper's 368 ReLUs.
    for (std::size_t i = 1; i <= 21; ++i)
        EXPECT_EQ(w.stages[i].bootstraps, 368u) << "stage " << i;
    // final conv: 1x1x16.
    EXPECT_EQ(w.stages[22].bootstraps, 16u);
    // FC logits: no activation.
    EXPECT_EQ(w.stages[23].bootstraps, 0u);
    EXPECT_EQ(w.stages[23].linearMacs, 160u);
}

TEST(Workloads, DeepCnnScalesWithDepth)
{
    const auto w20 = deepCnnWorkload(20);
    const auto w50 = deepCnnWorkload(50);
    const auto w100 = deepCnnWorkload(100);
    EXPECT_EQ(w50.totalBootstraps() - w20.totalBootstraps(),
              30u * 368);
    EXPECT_EQ(w100.totalBootstraps() - w50.totalBootstraps(),
              50u * 368);
}

TEST(Workloads, Vgg9Structure)
{
    const auto w = vgg9Workload();
    // 6 convs + 2 pools + 3 FCs = 11 stages.
    ASSERT_EQ(w.stages.size(), 11u);
    // conv1: 32x32x64 ReLUs.
    EXPECT_EQ(w.stages[0].bootstraps, 32u * 32 * 64);
    // pools have no bootstraps.
    EXPECT_EQ(w.stages[2].bootstraps, 0u);
    EXPECT_EQ(w.stages[5].bootstraps, 0u);
    // conv2 MACs: 32*32*64 outputs x 3*3*64 fan-in.
    EXPECT_EQ(w.stages[1].linearMacs, 32ull * 32 * 64 * 9 * 64);
    // last FC: 10 logits, no ReLU.
    EXPECT_EQ(w.stages[10].bootstraps, 0u);
    EXPECT_GT(w.totalBootstraps(), 200000u);
}

TEST(CpuModel, PaperNumbersForPublishedSets)
{
    EXPECT_DOUBLE_EQ(paperConcreteCpu(tfhe::paramsSetI()).perPbsMs,
                     15.65);
    EXPECT_DOUBLE_EQ(paperConcreteCpu(tfhe::paramsSetII()).perPbsMs,
                     27.26);
    EXPECT_DOUBLE_EQ(paperConcreteCpu(tfhe::paramsSetIII()).perPbsMs,
                     82.19);
}

TEST(CpuModel, ExtrapolationIsMonotoneInWork)
{
    // Set IV (N=2048, l_b=1) does less work than set III (l_b=3): its
    // extrapolated per-bootstrap time must be smaller.
    const auto iv = paperConcreteCpu(tfhe::paramsSetIV());
    EXPECT_LT(iv.perPbsMs, 82.19);
    EXPECT_GT(iv.perPbsMs, 10.0);
    EXPECT_NE(iv.source.find("extrapolated"), std::string::npos);
}

TEST(CpuModel, ParallelismDividesTime)
{
    CpuCostModel cpu;
    cpu.perPbsMs = 10.0;
    cpu.cores = 64;
    cpu.parallelEff = 0.5;
    // 3200 bootstraps at 10ms over 32 effective cores = 1s.
    EXPECT_NEAR(cpu.pbsSeconds(3200), 1.0, 1e-9);
}

TEST(CpuModel, WorkloadSecondsSumsStages)
{
    CpuCostModel cpu;
    cpu.perPbsMs = 10.0;
    cpu.cores = 1;
    cpu.parallelEff = 1.0;
    cpu.macGops = 1.0;

    compiler::Workload w;
    w.stages.push_back({100, 0});
    w.stages.push_back({0, 1'000'000});
    const double seconds = cpu.workloadSeconds(w, 499);
    EXPECT_NEAR(seconds, 1.0 + 1e6 * 500 / 1e9, 1e-6);
}

TEST(CpuModel, MeasuredModelRunsOnTestParams)
{
    const auto cpu = measuredCpu(tfhe::paramsTest(), 2);
    EXPECT_GT(cpu.perPbsMs, 0.0);
    EXPECT_LT(cpu.perPbsMs, 5000.0);
    EXPECT_EQ(cpu.source, "measured");
}

} // namespace
} // namespace morphling::apps
