/**
 * @file
 * Tests of the Table IV area/power model: component values, chip
 * totals, and scaling behaviour for architecture sweeps.
 */

#include <gtest/gtest.h>

#include "arch/area_power.h"
#include "arch/buffers.h"
#include "tfhe/params.h"

namespace morphling::arch {
namespace {

const ArchConfig kDefault = ArchConfig::morphlingDefault();

TEST(AreaPower, XpuMatchesTableIV)
{
    const auto xpu = xpuAreaPower(kDefault);
    // Paper: one XPU is 9.23 mm^2 / 6.23 W.
    EXPECT_NEAR(xpu.total().areaMm2, 9.23, 0.05);
    EXPECT_NEAR(xpu.total().powerW, 6.23, 0.05);

    EXPECT_NEAR(xpu.entry("FFT units").areaMm2, 1.22, 0.01);
    EXPECT_NEAR(xpu.entry("IFFT units").areaMm2, 2.45, 0.01);
    EXPECT_NEAR(xpu.entry("VPE array").areaMm2, 4.71, 0.01);
    EXPECT_NEAR(xpu.entry("twiddle buffer").areaMm2, 0.75, 0.001);
}

TEST(AreaPower, ChipMatchesTableIV)
{
    const auto chip = chipAreaPower(kDefault);
    // Paper totals: 74.79 mm^2, 53.00 W.
    EXPECT_NEAR(chip.total().areaMm2, 74.79, 0.5);
    EXPECT_NEAR(chip.total().powerW, 53.00, 0.5);

    EXPECT_NEAR(chip.entry("XPUs").areaMm2, 36.95, 0.2);
    EXPECT_NEAR(chip.entry("Private-A1").areaMm2, 8.31, 0.01);
    EXPECT_NEAR(chip.entry("Private-A2").areaMm2, 8.10, 0.01);
    EXPECT_NEAR(chip.entry("Private-B").areaMm2, 4.05, 0.01);
    EXPECT_NEAR(chip.entry("Shared").areaMm2, 2.02, 0.01);
    EXPECT_NEAR(chip.entry("HBM2e PHY").areaMm2, 14.90, 0.01);
    EXPECT_NEAR(chip.entry("HBM2e PHY").powerW, 15.90, 0.01);
    EXPECT_NEAR(chip.entry("VPU").areaMm2, 0.22, 0.01);
    EXPECT_NEAR(chip.entry("NoC").areaMm2, 0.21, 0.01);
}

TEST(AreaPower, ScalesWithXpuCount)
{
    auto cfg = kDefault;
    cfg.numXpus = 8;
    const auto big = chipAreaPower(cfg);
    const auto base = chipAreaPower(kDefault);
    EXPECT_NEAR(big.entry("XPUs").areaMm2,
                2 * base.entry("XPUs").areaMm2, 0.01);
    // Buffers and PHY unchanged.
    EXPECT_NEAR(big.entry("HBM2e PHY").areaMm2,
                base.entry("HBM2e PHY").areaMm2, 1e-9);
}

TEST(AreaPower, ScalesWithBufferSize)
{
    auto cfg = kDefault;
    cfg.privateA1KiB = 8192;
    const auto chip = chipAreaPower(cfg);
    EXPECT_NEAR(chip.entry("Private-A1").areaMm2, 2 * 8.31, 0.01);
}

TEST(Buffers, CapacityAccounting)
{
    OnChipBuffer buf("test", 1024, 4);
    EXPECT_TRUE(buf.canFit(1024));
    buf.allocate(600);
    EXPECT_FALSE(buf.canFit(500));
    EXPECT_NEAR(buf.occupancy(), 600.0 / 1024, 1e-9);
    buf.release(100);
    EXPECT_EQ(buf.freeBytes(), 524u);
    EXPECT_EQ(buf.peakBytes(), 600u);
}

TEST(Buffers, DefaultComplementMatchesPaper)
{
    BufferSet buffers(kDefault);
    EXPECT_EQ(buffers.privateA1.capacityBytes(), 4096u * 1024);
    EXPECT_EQ(buffers.privateA1.banks(), 16u);
    EXPECT_EQ(buffers.privateA2.capacityBytes(), 4096u * 1024);
    EXPECT_EQ(buffers.privateB.capacityBytes(), 2048u * 1024);
    EXPECT_EQ(buffers.shared.capacityBytes(), 1024u * 1024);
}

TEST(Buffers, A2DoubleBuffersEveryParamSet)
{
    BufferSet buffers(kDefault);
    for (const auto &params : tfhe::allParamSets())
        EXPECT_TRUE(buffers.a2FitsDoubleBuffer(params)) << params.name;
}

} // namespace
} // namespace morphling::arch
