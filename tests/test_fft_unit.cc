/**
 * @file
 * Tests of the pipelined FFT-unit model: issue intervals, pipeline
 * overlap, fill latency, and agreement with the pass-slot abstraction
 * used by the round-timing model.
 */

#include <gtest/gtest.h>

#include "arch/fft_unit.h"
#include "arch/timing.h"
#include "tfhe/params.h"

namespace morphling::arch {
namespace {

TEST(PipelinedFftUnit, Geometry)
{
    PipelinedFftUnit unit(1024, 8);
    EXPECT_EQ(unit.stages(), 9u); // log2(512)
    EXPECT_EQ(unit.issueInterval(), 64u);
    EXPECT_EQ(unit.fillLatency(), 9u + 63u);
}

TEST(PipelinedFftUnit, BackToBackPassesSustainIssueInterval)
{
    PipelinedFftUnit unit(1024, 8);
    sim::Tick prev_start = 0;
    for (int p = 0; p < 10; ++p) {
        const auto t = unit.issuePass(0);
        if (p > 0)
            EXPECT_EQ(t.issueStart - prev_start, 64u);
        prev_start = t.issueStart;
    }
    EXPECT_EQ(unit.passes(), 10u);
    // Total streaming occupancy equals the pass-slot model.
    EXPECT_EQ(unit.inputFreeAt(),
              PipelinedFftUnit::throughputCycles(1024, 8, 10));
}

TEST(PipelinedFftUnit, PipelineOverlapsDrainWithNextIssue)
{
    PipelinedFftUnit unit(2048, 8);
    const auto first = unit.issuePass(0);
    const auto second = unit.issuePass(0);
    // The second pass starts issuing while the first still drains.
    EXPECT_LT(second.issueStart, first.lastOutput);
    // Outputs keep streaming one pass per interval.
    EXPECT_EQ(second.firstOutput - first.firstOutput,
              unit.issueInterval());
}

TEST(PipelinedFftUnit, IdleUnitStartsImmediately)
{
    PipelinedFftUnit unit(512, 8);
    const auto t = unit.issuePass(100);
    EXPECT_EQ(t.issueStart, 100u);
    EXPECT_EQ(t.firstOutput, 100 + unit.fillLatency());
}

TEST(PipelinedFftUnit, MatchesRoundTimingPassCycles)
{
    // The round model's passCycles must equal this unit's issue
    // interval for every parameter set.
    const auto cfg = ArchConfig::morphlingDefault();
    for (const auto &params : tfhe::allParamSets()) {
        PipelinedFftUnit unit(params.polyDegree, cfg.vectorLanes);
        const auto round = epRoundTiming(params, cfg, 4);
        EXPECT_EQ(round.passCycles, unit.issueInterval())
            << params.name;
    }
}

TEST(PipelinedFftUnit, FillLatencyNegligibleAgainstBlindRotation)
{
    // The pipeline fill is paid once per wave, not per pass: it must
    // be orders of magnitude below a bootstrap's cycle count.
    for (const auto &params : tfhe::allParamSets()) {
        PipelinedFftUnit unit(params.polyDegree, 8);
        const auto est = estimateBootstrap(
            params, ArchConfig::morphlingDefault());
        EXPECT_LT(unit.fillLatency() * 100.0,
                  static_cast<double>(est.latencyCycles))
            << params.name;
    }
}

} // namespace
} // namespace morphling::arch
