/**
 * @file
 * Tests of the remote execution backend (src/exec/remote_*): loopback
 * bit-identity against the local FunctionalBackend (outputs AND
 * retirement log) for superbatches and circuits, idempotent retry
 * after a forced mid-stream disconnect, transport failure paths
 * (truncated payload, version mismatch, silent server, refused
 * connect), over-the-wire key enrollment, and the service layer
 * running over BackendKind::kRemote.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/backend.h"
#include "exec/circuit_executor.h"
#include "exec/functional_backend.h"
#include "exec/remote_backend.h"
#include "exec/remote_protocol.h"
#include "exec/remote_server.h"
#include "exec/sharded_backend.h"
#include "service/bootstrap_service.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

namespace morphling::exec {
namespace {

using remote::FrameType;
using remote::RemoteError;
using remote::RemoteErrorKind;

class RemoteFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0x4E307E);
        keys_ = new tfhe::KeySet(
            tfhe::KeySet::generate(tfhe::paramsTest(), rng));
        evalKeys_ = new tfhe::EvaluationKeys(
            tfhe::EvaluationKeys::fromKeySet(*keys_));
    }
    static void
    TearDownTestSuite()
    {
        delete evalKeys_;
        delete keys_;
        keys_ = nullptr;
        evalKeys_ = nullptr;
    }

    const tfhe::KeySet &keys() { return *keys_; }
    const tfhe::EvaluationKeys &evalKeys() { return *evalKeys_; }

    Rng rng{0x5EED7};

    std::vector<tfhe::LweCiphertext>
    encryptBatch(std::size_t count)
    {
        std::vector<tfhe::LweCiphertext> out;
        out.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            out.push_back(tfhe::encryptPadded(
                keys(), static_cast<std::uint32_t>(i % 4), 4, rng));
        }
        return out;
    }

    std::vector<tfhe::LweCiphertext>
    encryptBits(unsigned value, unsigned bits)
    {
        std::vector<tfhe::LweCiphertext> out;
        for (unsigned i = 0; i < bits; ++i)
            out.push_back(
                tfhe::encryptBit(keys(), (value >> i) & 1, rng));
        return out;
    }

    static circuit::Circuit
    adder(unsigned bits)
    {
        circuit::Circuit c;
        std::vector<circuit::Wire> a, b, sum;
        for (unsigned i = 0; i < bits; ++i)
            a.push_back(c.bitInput());
        for (unsigned i = 0; i < bits; ++i)
            b.push_back(c.bitInput());
        const auto carry = circuit::buildRippleAdder(c, a, b, sum);
        for (auto w : sum)
            c.markOutput(w);
        c.markOutput(carry);
        return c;
    }

    /** Server pre-loaded with the suite's keys. */
    std::unique_ptr<RemoteServer>
    startServer(RemoteServerConfig config = {})
    {
        auto server = std::make_unique<RemoteServer>(std::move(config));
        server->addKeys(evalKeys());
        server->start();
        return server;
    }

    /** Client config with test-friendly timeouts. */
    static RemoteClientConfig
    clientConfig(std::uint16_t port)
    {
        RemoteClientConfig config;
        config.port = port;
        config.requestTimeout = std::chrono::seconds(120);
        config.connectTimeout = std::chrono::milliseconds(500);
        config.backoffBase = std::chrono::milliseconds(20);
        return config;
    }

    /** Full bit-identity of two execution results: outputs and the
     *  complete retirement log (index, instruction, seq, tick). */
    static void
    expectIdentical(const ExecutionResult &got,
                    const ExecutionResult &want)
    {
        ASSERT_EQ(got.hasOutputs, want.hasOutputs);
        ASSERT_EQ(got.outputs.size(), want.outputs.size());
        for (std::size_t i = 0; i < got.outputs.size(); ++i)
            EXPECT_EQ(got.outputs[i].raw(), want.outputs[i].raw())
                << "output " << i << " differs";
        ASSERT_EQ(got.retired.size(), want.retired.size());
        for (std::size_t i = 0; i < got.retired.size(); ++i) {
            EXPECT_EQ(got.retired[i].index, want.retired[i].index)
                << "retirement " << i;
            EXPECT_EQ(got.retired[i].inst, want.retired[i].inst)
                << "retirement " << i;
            EXPECT_EQ(got.retired[i].seq, want.retired[i].seq)
                << "retirement " << i;
            EXPECT_EQ(got.retired[i].tick, want.retired[i].tick)
                << "retirement " << i;
        }
    }

    static tfhe::KeySet *keys_;
    static tfhe::EvaluationKeys *evalKeys_;
};

tfhe::KeySet *RemoteFixture::keys_ = nullptr;
tfhe::EvaluationKeys *RemoteFixture::evalKeys_ = nullptr;

TEST_F(RemoteFixture, SuperbatchBitIdenticalToLocalFunctional)
{
    auto server = startServer();
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    const Job job = Job::batch(inputs, lut);

    FunctionalBackend local(evalKeys());
    const auto reference = local.run(program, job);

    RemoteBackend remote(evalKeys(), clientConfig(server->port()));
    const auto result = remote.run(program, job);

    EXPECT_EQ(result.backend, "remote");
    expectIdentical(result, reference);
    EXPECT_EQ(remote.lastServerExecutions(), 1u);
    EXPECT_EQ(server->stats().executions, 1u);
    for (std::size_t i = 0; i < result.outputs.size(); ++i)
        EXPECT_EQ(tfhe::decryptPadded(keys(), result.outputs[i], 4),
                  (i % 4 + 1) % 4);
}

TEST_F(RemoteFixture, SignLutJobMatchesLocal)
{
    auto server = startServer();
    const auto inputs = encryptBatch(16);
    const std::vector<tfhe::Torus32> mu = {tfhe::boolMu()};
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(16);
    const Job job = Job::sign(inputs, mu);

    FunctionalBackend local(evalKeys());
    const auto reference = local.run(program, job);
    RemoteBackend remote(evalKeys(), clientConfig(server->port()));
    expectIdentical(remote.run(program, job), reference);
}

TEST_F(RemoteFixture, AdderCircuitBitIdenticalOverTheWire)
{
    // The 8-bit adder rides submitCircuit's machinery: an
    // exec::CircuitExecutor drives the backend level by level. A
    // mid-stream disconnect is injected into one of the level
    // programs' retirement streams; the retry must leave the final
    // sums bit-identical to the all-local run.
    RemoteServerConfig sconfig;
    sconfig.retireChunk = 4;
    sconfig.dropAfterRetireFrames = 1;
    auto server = startServer(sconfig);

    const auto c = adder(8);
    const unsigned x = 200, y = 88;
    auto inputs = encryptBits(x, 8);
    for (const auto &ct : encryptBits(y, 8))
        inputs.push_back(ct);

    FunctionalBackend local(evalKeys());
    CircuitExecutor localExec(keys().params, local);
    const auto reference = localExec.run(c, inputs);

    RemoteBackend remote(evalKeys(), clientConfig(server->port()));
    CircuitExecutor remoteExec(keys().params, remote);
    const auto result = remoteExec.run(c, inputs);

    ASSERT_EQ(result.outputs.size(), reference.outputs.size());
    for (std::size_t i = 0; i < result.outputs.size(); ++i)
        EXPECT_EQ(result.outputs[i].raw(), reference.outputs[i].raw())
            << "output " << i;
    EXPECT_GE(server->stats().dropped, 1u) << "injected drop not hit";

    unsigned sum = 0;
    for (std::size_t i = 0; i + 1 < result.outputs.size(); ++i)
        sum |= tfhe::decryptBit(keys(), result.outputs[i]) << i;
    sum |= tfhe::decryptBit(keys(),
                            result.outputs[result.outputs.size() - 1])
           << (result.outputs.size() - 1);
    EXPECT_EQ(sum, x + y);
}

TEST_F(RemoteFixture, MidStreamDisconnectRetriesWithoutReexecution)
{
    RemoteServerConfig sconfig;
    sconfig.retireChunk = 8; // several frames per superbatch
    sconfig.dropAfterRetireFrames = 2;
    auto server = startServer(sconfig);

    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return 3 - m;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    const Job job = Job::batch(inputs, lut);

    FunctionalBackend local(evalKeys());
    const auto reference = local.run(program, job);

    RemoteBackend remote(evalKeys(), clientConfig(server->port()));
    const auto result = remote.run(program, job);

    expectIdentical(result, reference);
    EXPECT_GE(remote.lastAttempts(), 2u)
        << "the injected drop should have forced a retry";
    EXPECT_EQ(remote.lastServerExecutions(), 1u)
        << "retry must replay the cached result, not re-execute";
    EXPECT_EQ(server->executionsFor(remote.lastRequestId()), 1u);
    EXPECT_GE(server->stats().replays, 1u);
}

TEST_F(RemoteFixture, TruncatedPayloadRejectedAndServerKeepsServing)
{
    auto server = startServer();
    const auto deadline =
        remote::deadlineAfter(std::chrono::seconds(10));

    // Handshake by hand, then send an execute payload that lies about
    // its ciphertext dimension and stops mid-ciphertext.
    remote::Socket raw = remote::connectTcp(
        "127.0.0.1", server->port(), std::chrono::seconds(5));
    remote::sendHello(raw, FrameType::kHello, deadline);
    remote::checkHello(remote::recvFrame(raw, deadline),
                       FrameType::kHelloAck);

    remote::WireWriter w;
    w.u64(1);                  // request id
    w.u64(0);                  // fingerprint (never reached)
    w.u8(0);                   // signLut
    w.u32(1);                  // threads
    w.u8(0);                   // checkNoise
    w.f64(4.0);                // minSlotSigmas
    w.u32(1);                  // LUT entries
    w.u32(0x12345678);         // the entry
    w.u64(4);                  // program words
    for (int i = 0; i < 4; ++i)
        w.u64(0);
    w.u32(3);                  // claims 3 input ciphertexts...
    w.u32(600);                // ...first claims dim 600...
    w.u32(0xDEAD);             // ...but the frame ends here
    remote::sendFrame(raw, FrameType::kExecute, w.take(), deadline);

    const auto reply = remote::recvFrame(raw, deadline);
    ASSERT_EQ(reply.type, FrameType::kError);
    EXPECT_EQ(remote::decodeError(reply).kind(),
              RemoteErrorKind::kMalformedFrame);

    // Same server, same connection stream position: a well-formed
    // request from a real client still succeeds.
    const auto inputs = encryptBatch(8);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(8);
    RemoteBackend remote(evalKeys(), clientConfig(server->port()));
    const auto result = remote.run(program, Job::batch(inputs, lut));
    EXPECT_TRUE(result.hasOutputs);
    EXPECT_GE(server->stats().rejected, 1u);
}

TEST_F(RemoteFixture, BadProgramRejectedTyped)
{
    auto server = startServer();
    const auto fp = tfhe::fingerprintEvaluationKeys(evalKeys());
    const auto deadline =
        remote::deadlineAfter(std::chrono::seconds(10));

    remote::Socket raw = remote::connectTcp(
        "127.0.0.1", server->port(), std::chrono::seconds(5));
    remote::sendHello(raw, FrameType::kHello, deadline);
    remote::checkHello(remote::recvFrame(raw, deadline),
                       FrameType::kHelloAck);

    remote::WireWriter w;
    w.u64(2);
    w.u64(fp);
    w.u8(0);
    w.u32(1);
    w.u8(0);
    w.f64(4.0);
    w.u32(1);
    w.u32(0x12345678);
    w.u64(4); // four garbage words: not a framed program
    for (int i = 0; i < 4; ++i)
        w.u64(0xFFFFFFFFFFFFFFFFull);
    w.u32(0); // no inputs
    remote::sendFrame(raw, FrameType::kExecute, w.take(), deadline);

    const auto reply = remote::recvFrame(raw, deadline);
    ASSERT_EQ(reply.type, FrameType::kError);
    EXPECT_EQ(remote::decodeError(reply).kind(),
              RemoteErrorKind::kBadProgram)
        << remote::decodeError(reply).what();
    // The rejection must not poison the idempotency cache.
    EXPECT_EQ(server->executionsFor(2), 0u);
}

TEST_F(RemoteFixture, VersionMismatchRejectedAtHandshake)
{
    auto server = startServer();
    const auto deadline =
        remote::deadlineAfter(std::chrono::seconds(10));

    remote::Socket raw = remote::connectTcp(
        "127.0.0.1", server->port(), std::chrono::seconds(5));
    remote::WireWriter w;
    w.u32(remote::kProtocolMagic);
    w.u32(remote::kProtocolVersion + 7);
    remote::sendFrame(raw, FrameType::kHello, w.take(), deadline);

    const auto reply = remote::recvFrame(raw, deadline);
    ASSERT_EQ(reply.type, FrameType::kError);
    EXPECT_EQ(remote::decodeError(reply).kind(),
              RemoteErrorKind::kVersionMismatch);
}

TEST_F(RemoteFixture, SilentServerSurfacesTypedTimeout)
{
    // A hand-rolled listener that accepts, completes the handshake,
    // then never answers: the simplest stalled peer.
    std::promise<std::uint16_t> portPromise;
    auto portFuture = portPromise.get_future();
    std::thread silent([&portPromise] {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ASSERT_EQ(::listen(fd, 1), 0);
        socklen_t len = sizeof(addr);
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
        portPromise.set_value(ntohs(addr.sin_port));
        const int client = ::accept(fd, nullptr, nullptr);
        if (client >= 0) {
            remote::Socket sock(client);
            const auto deadline =
                remote::deadlineAfter(std::chrono::seconds(10));
            try {
                remote::recvFrame(sock, deadline); // their Hello
                remote::sendHello(sock, FrameType::kHelloAck, deadline);
                // Keep reading (and answering nothing) until the
                // client gives up and closes.
                for (;;) {
                    remote::recvFrame(
                        sock,
                        remote::deadlineAfter(std::chrono::seconds(30)));
                }
            } catch (const RemoteError &) {
            }
        }
        ::close(fd);
    });
    RemoteClientConfig config = clientConfig(portFuture.get());
    config.requestTimeout = std::chrono::milliseconds(400);
    config.maxAttempts = 1;

    const auto inputs = encryptBatch(4);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(4);
    RemoteBackend remote(evalKeys(), config);
    try {
        remote.run(program, Job::batch(inputs, lut));
        FAIL() << "silent server should have produced kTimeout";
    } catch (const RemoteError &e) {
        EXPECT_EQ(e.kind(), RemoteErrorKind::kTimeout) << e.what();
    }
    silent.join();
}

TEST_F(RemoteFixture, ReconnectBackoffReachesLateServer)
{
    // Reserve a port, free it, point the client at it, and only start
    // the real server after the client has begun retrying.
    std::uint16_t port = 0;
    {
        auto probe = startServer();
        port = probe->port();
        probe->stop();
    }

    RemoteClientConfig config = clientConfig(port);
    config.maxAttempts = 20;
    config.backoffBase = std::chrono::milliseconds(30);

    const auto inputs = encryptBatch(4);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(4);

    RemoteBackend remote(evalKeys(), config);
    std::future<ExecutionResult> pending =
        std::async(std::launch::async, [&] {
            return remote.run(program, Job::batch(inputs, lut));
        });

    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    RemoteServerConfig sconfig;
    sconfig.port = port;
    auto server = std::make_unique<RemoteServer>(sconfig);
    server->addKeys(evalKeys());
    server->start();

    const auto result = pending.get();
    EXPECT_TRUE(result.hasOutputs);
    EXPECT_GE(remote.lastAttempts(), 2u)
        << "the client should have burned attempts on refused "
           "connects before the server came up";
}

TEST_F(RemoteFixture, AutoEnrollsKeysOverTheWire)
{
    RemoteServerConfig sconfig;
    auto server = std::make_unique<RemoteServer>(sconfig);
    server->start(); // no keys pre-provisioned

    const auto inputs = encryptBatch(8);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(8);

    FunctionalBackend local(evalKeys());
    const Job job = Job::batch(inputs, lut);
    const auto reference = local.run(program, job);

    RemoteBackend remote(evalKeys(), clientConfig(server->port()));
    expectIdentical(remote.run(program, job), reference);
    EXPECT_EQ(server->stats().enrollments, 1u);
    // Second run reuses the enrolled keys: no new enrollment.
    RemoteBackend second(evalKeys(), clientConfig(server->port()));
    second.run(program, job);
    EXPECT_EQ(server->stats().enrollments, 1u);
    server->stop();
}

TEST_F(RemoteFixture, UnknownKeyWithoutAutoEnrollIsTyped)
{
    RemoteServerConfig sconfig;
    auto server = std::make_unique<RemoteServer>(sconfig);
    server->start(); // no keys

    RemoteClientConfig config = clientConfig(server->port());
    config.autoEnroll = false;

    const auto inputs = encryptBatch(4);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(4);
    RemoteBackend remote(evalKeys(), config);
    try {
        remote.run(program, Job::batch(inputs, lut));
        FAIL() << "unenrolled key should be rejected";
    } catch (const RemoteError &e) {
        EXPECT_EQ(e.kind(), RemoteErrorKind::kUnknownKey) << e.what();
    }
    server->stop();
}

TEST_F(RemoteFixture, ShardedInnerBackendMatchesLocalSharded)
{
    RemoteServerConfig sconfig;
    sconfig.inner.kind = BackendKind::kShardedFunctional;
    sconfig.inner.numShards = 4;
    auto server = startServer(sconfig);

    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 2) % 4;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);
    const Job job = Job::batch(inputs, lut);

    ShardedBackend local = ShardedBackend::functional(evalKeys(), 4);
    const auto reference = local.run(program, job);

    RemoteBackend remote(evalKeys(), clientConfig(server->port()));
    const auto result = remote.run(program, job);
    expectIdentical(result, reference);
}

TEST_F(RemoteFixture, BackendSpecBuildsRemote)
{
    auto server = startServer();
    BackendSpec spec;
    spec.kind = BackendKind::kRemote;
    spec.remote = clientConfig(server->port());
    auto backend = makeBackend(evalKeys(), spec);
    EXPECT_EQ(backend->name(), "remote");
    EXPECT_STREQ(backendKindName(BackendKind::kRemote), "remote");

    const auto inputs = encryptBatch(8);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return 3 - m;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(8);
    const auto result = backend->run(program, Job::batch(inputs, lut));
    ASSERT_TRUE(result.hasOutputs);
    for (std::size_t i = 0; i < result.outputs.size(); ++i)
        EXPECT_EQ(tfhe::decryptPadded(keys(), result.outputs[i], 4),
                  3 - (i % 4));
}

TEST_F(RemoteFixture, ServiceRunsOverRemoteBackend)
{
    auto server = startServer();

    service::ServiceConfig config;
    config.backend = BackendKind::kRemote;
    config.remote = clientConfig(server->port());
    config.numWorkers = 2;
    config.maxWait = std::chrono::milliseconds(5);
    service::BootstrapService svc(evalKeys(), config);

    const auto lut = svc.registerLut(
        tfhe::makePaddedLut(4, [](std::uint32_t m) {
            return (m + 1) % 4;
        }));
    std::vector<std::future<tfhe::LweCiphertext>> futures;
    for (unsigned i = 0; i < 16; ++i)
        futures.push_back(svc.submit(
            tfhe::encryptPadded(keys(), i % 4, 4, rng), lut));
    for (unsigned i = 0; i < 16; ++i) {
        const auto ct = futures[i].get();
        EXPECT_EQ(tfhe::decryptPadded(keys(), ct, 4), (i % 4 + 1) % 4);
    }
    svc.shutdown();
    EXPECT_GE(server->stats().executions, 1u);
}

TEST_F(RemoteFixture, ServiceConfigValidatesRemote)
{
    service::ServiceConfig config;
    config.backend = BackendKind::kRemote;
    config.remote.port = 0;
    EXPECT_TRUE(config.validate().has_value());
    config.remote.port = 1234;
    EXPECT_FALSE(config.validate().has_value());
    config.remote.maxAttempts = 0;
    EXPECT_TRUE(config.validate().has_value());
}

} // namespace
} // namespace morphling::exec
