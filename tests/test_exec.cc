/**
 * @file
 * Tests of the execution backends (src/exec): the FunctionalBackend's
 * bit-exactness against the tfhe reference batch path, its retirement
 * contract (coverage, per-group program order) in both stepped and
 * parallel modes, the TimingBackend's cycle parity with a bare
 * arch::Accelerator run, and the malformed-program diagnostics.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "exec/backend.h"
#include "exec/functional_backend.h"
#include "exec/timing_backend.h"
#include "tfhe/batch.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

namespace morphling::exec {
namespace {

class ExecFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xE8EC);
        keys_ = new tfhe::KeySet(
            tfhe::KeySet::generate(tfhe::paramsTest(), rng));
        evalKeys_ = new tfhe::EvaluationKeys(
            tfhe::EvaluationKeys::fromKeySet(*keys_));
    }
    static void
    TearDownTestSuite()
    {
        delete evalKeys_;
        delete keys_;
        keys_ = nullptr;
        evalKeys_ = nullptr;
    }

    const tfhe::KeySet &keys() { return *keys_; }
    const tfhe::EvaluationKeys &evalKeys() { return *evalKeys_; }

    Rng rng{0x5EED5};

    std::vector<tfhe::LweCiphertext>
    encryptBatch(std::size_t count)
    {
        std::vector<tfhe::LweCiphertext> out;
        out.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            out.push_back(tfhe::encryptPadded(
                keys(), static_cast<std::uint32_t>(i % 4), 4, rng));
        }
        return out;
    }

    /** Exactly-once coverage + per-group program order over one
     *  backend's retirement log. */
    static void
    checkRetirementContract(const compiler::Program &program,
                            const std::vector<RetiredInstruction> &log)
    {
        ASSERT_EQ(log.size(), program.size());
        std::set<std::size_t> seen;
        std::map<unsigned, std::size_t> last_index;
        for (const auto &r : log) {
            EXPECT_TRUE(seen.insert(r.index).second)
                << "instruction " << r.index << " retired twice";
            EXPECT_EQ(r.inst, program.at(r.index));
            const unsigned g = r.inst.group;
            if (last_index.count(g)) {
                EXPECT_LT(last_index[g], r.index)
                    << "group " << g << " retired out of program order";
            }
            last_index[g] = r.index;
        }
    }

    static tfhe::KeySet *keys_;
    static tfhe::EvaluationKeys *evalKeys_;
};

tfhe::KeySet *ExecFixture::keys_ = nullptr;
tfhe::EvaluationKeys *ExecFixture::evalKeys_ = nullptr;

TEST_F(ExecFixture, FunctionalSuperbatchIsBitExact)
{
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);

    FunctionalBackend backend(evalKeys());
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    const auto result = backend.run(program, job);

    ASSERT_TRUE(result.hasOutputs);
    ASSERT_EQ(result.outputs.size(), 64u);
    const auto reference = tfhe::batchBootstrap(keys(), inputs, lut);
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(result.outputs[i].raw(), reference[i].raw())
            << "slot " << i << " differs from tfhe::bootstrapInto";
        EXPECT_EQ(tfhe::decryptPadded(keys(), result.outputs[i], 4),
                  (i % 4 + 1) % 4);
    }
    checkRetirementContract(program, result.retired);
}

TEST_F(ExecFixture, ParallelRunMatchesSequential)
{
    const auto inputs = encryptBatch(64);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return 3 - m;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(64);

    Job job;
    job.inputs = &inputs;
    job.lut = &lut;

    FunctionalBackend seq(evalKeys());
    const auto sequential = seq.run(program, job);

    job.options.threads = 4;
    FunctionalBackend par(evalKeys());
    const auto parallel = par.run(program, job);

    ASSERT_EQ(sequential.outputs.size(), parallel.outputs.size());
    for (std::size_t i = 0; i < sequential.outputs.size(); ++i)
        EXPECT_EQ(sequential.outputs[i].raw(), parallel.outputs[i].raw());
    checkRetirementContract(program, parallel.retired);
}

TEST_F(ExecFixture, SingleSteppedRetirementHonoursContract)
{
    const auto inputs = encryptBatch(16);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(16);

    FunctionalBackend backend(evalKeys());
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    backend.load(program, job);
    std::vector<RetiredInstruction> log;
    while (auto r = backend.step())
        log.push_back(*r);
    EXPECT_TRUE(backend.done());
    checkRetirementContract(program, log);
    const auto result = backend.finish();
    ASSERT_TRUE(result.hasOutputs);
    const auto reference = tfhe::batchBootstrap(keys(), inputs, lut);
    for (std::size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(result.outputs[i].raw(), reference[i].raw());
}

TEST_F(ExecFixture, MultiStageBarrierProgramExecutes)
{
    // Two barrier-separated stages of 8 bootstraps. The Program
    // carries no inter-stage dataflow: each stage reads its own slots
    // of the flat input array (stage chaining is the runner's job).
    compiler::Workload w;
    w.name = "two-stage";
    w.stages.push_back({8, 0});
    w.stages.push_back({8, 0});
    const auto program =
        compiler::SwScheduler(keys().params).schedule(w);
    ASSERT_EQ(program.totalBlindRotations(), 16u);

    const auto inputs = encryptBatch(16);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return (m + 2) % 4;
    });
    FunctionalBackend backend(evalKeys());
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    const auto result = backend.run(program, job);

    const auto reference = tfhe::batchBootstrap(keys(), inputs, lut);
    ASSERT_EQ(result.outputs.size(), 16u);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(result.outputs[i].raw(), reference[i].raw());
    checkRetirementContract(program, result.retired);
}

TEST_F(ExecFixture, TimingBackendKeepsAcceleratorCycles)
{
    const auto &params = tfhe::paramsSetI();
    const auto cfg = arch::ArchConfig::morphlingDefault();
    const auto program =
        compiler::SwScheduler(params).scheduleBootstrapBatch(64);

    // The bare accelerator run is the pre-backend reference; wrapping
    // it (and installing the retire hook) must not move a single cycle.
    const auto bare = arch::Accelerator(cfg, params).run(program);

    TimingBackend backend(cfg, params);
    const auto result = backend.run(program, Job{});
    ASSERT_TRUE(result.hasReport);
    EXPECT_EQ(result.report.cycles, bare.cycles);
    EXPECT_EQ(result.report.bootstraps, bare.bootstraps);
    EXPECT_EQ(result.report.hbmBytes, bare.hbmBytes);

    checkRetirementContract(program, result.retired);
    // Architectural retirement ticks never decrease.
    std::uint64_t last = 0;
    for (const auto &r : result.retired) {
        EXPECT_GE(r.tick, last);
        last = r.tick;
    }
}

TEST_F(ExecFixture, TimingCompletionLogCoversProgram)
{
    const auto &params = tfhe::paramsSetI();
    TimingBackend backend(arch::ArchConfig::morphlingDefault(), params);
    const auto program =
        compiler::SwScheduler(params).scheduleBootstrapBatch(32);
    backend.load(program, Job{});
    const auto &completions = backend.completionOrder();
    ASSERT_EQ(completions.size(), program.size());
    std::set<std::size_t> seen;
    for (const auto &c : completions)
        EXPECT_TRUE(seen.insert(c.index).second);
    while (backend.step()) {
    }
    (void)backend.finish();
}

TEST_F(ExecFixture, BackendKindNamesAreStable)
{
    EXPECT_STREQ(backendKindName(BackendKind::kFunctional),
                 "functional");
    EXPECT_STREQ(backendKindName(BackendKind::kTiming), "timing");
    EXPECT_STREQ(backendKindName(BackendKind::kCosim), "cosim");
    EXPECT_STREQ(backendKindName(BackendKind::kShardedFunctional),
                 "sharded-functional");
}

using ExecDeathTest = ExecFixture;

TEST_F(ExecDeathTest, MalformedStreamIsRejected)
{
    // An XPU.BR with no chunk staged: the functional backend is an IR
    // validity checker, not a garbage generator.
    compiler::Program program("broken");
    program.add({compiler::Opcode::XpuBlindRotate, 0, 4,
                 keys().params.lweDimension});
    const auto inputs = encryptBatch(4);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    FunctionalBackend backend(evalKeys());
    EXPECT_DEATH(backend.load(program, job), "");
}

TEST_F(ExecDeathTest, InputCountMismatchIsRejected)
{
    const auto program =
        compiler::SwScheduler(keys().params).scheduleBootstrapBatch(8);
    const auto inputs = encryptBatch(4); // program wants 8
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    FunctionalBackend backend(evalKeys());
    EXPECT_DEATH(backend.load(program, job), "");
}

} // namespace
} // namespace morphling::exec
