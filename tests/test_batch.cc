/**
 * @file
 * Tests of batched/parallel bootstrapping: order preservation,
 * sequential-parallel equivalence of decrypted results, thread-count
 * edge cases and the efficiency probe.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/batch.h"
#include "tfhe/encoding.h"

namespace morphling::tfhe {
namespace {

class BatchFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xBA7C4);
        keys_ = new KeySet(KeySet::generate(paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0x600D};

    std::vector<LweCiphertext>
    encryptBatch(const std::vector<std::uint32_t> &messages)
    {
        std::vector<LweCiphertext> out;
        for (auto m : messages)
            out.push_back(encryptPadded(keys(), m, 4, rng));
        return out;
    }

    static KeySet *keys_;
};

KeySet *BatchFixture::keys_ = nullptr;

TEST_F(BatchFixture, SequentialBatchPreservesOrder)
{
    const std::vector<std::uint32_t> messages = {3, 1, 0, 2, 1, 3};
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return (m + 2) % 4;
    });
    const auto outputs =
        batchBootstrap(keys(), encryptBatch(messages), lut);
    ASSERT_EQ(outputs.size(), messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i)
        EXPECT_EQ(decryptPadded(keys(), outputs[i], 4),
                  (messages[i] + 2) % 4)
            << i;
}

TEST_F(BatchFixture, ParallelMatchesSequentialResults)
{
    std::vector<std::uint32_t> messages;
    for (int i = 0; i < 24; ++i)
        messages.push_back(static_cast<std::uint32_t>(i % 4));
    const auto inputs = encryptBatch(messages);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return (3 * m) % 4;
    });

    const auto seq = batchBootstrap(keys(), inputs, lut);
    const auto par = parallelBatchBootstrap(keys(), inputs, lut, 4);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        // Identical inputs and key material: identical decryptions.
        EXPECT_EQ(decryptPadded(keys(), par[i], 4),
                  decryptPadded(keys(), seq[i], 4))
            << i;
        EXPECT_EQ(decryptPadded(keys(), par[i], 4),
                  (3 * messages[i]) % 4)
            << i;
    }
}

TEST_F(BatchFixture, SingleThreadAndSingleElementEdgeCases)
{
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto one = encryptBatch({2});
    const auto out1 = parallelBatchBootstrap(keys(), one, lut, 8);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(decryptPadded(keys(), out1[0], 4), 2u);

    const auto empty = parallelBatchBootstrap(keys(), {}, lut, 4);
    EXPECT_TRUE(empty.empty());
}

TEST_F(BatchFixture, EfficiencyProbeProducesSaneNumbers)
{
    const auto probe = measureParallelEfficiency(keys(), 8, 2);
    EXPECT_EQ(probe.threads, 2u);
    EXPECT_GT(probe.sequentialSeconds, 0.0);
    EXPECT_GT(probe.parallelSeconds, 0.0);
    EXPECT_GT(probe.efficiency(), 0.1);
    EXPECT_LE(probe.efficiency(), 1.25); // allow measurement jitter
}

} // namespace
} // namespace morphling::tfhe
