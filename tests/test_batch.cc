/**
 * @file
 * Tests of batched/parallel bootstrapping: order preservation,
 * sequential-parallel equivalence of decrypted results, thread-count
 * edge cases, BatchOptions (noise audit), the batched sign bootstrap
 * and the efficiency probe.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "tfhe/batch.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

namespace morphling::tfhe {
namespace {

class BatchFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xBA7C4);
        keys_ = new KeySet(KeySet::generate(paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0x600D};

    std::vector<LweCiphertext>
    encryptBatch(const std::vector<std::uint32_t> &messages)
    {
        std::vector<LweCiphertext> out;
        for (auto m : messages)
            out.push_back(encryptPadded(keys(), m, 4, rng));
        return out;
    }

    static KeySet *keys_;
};

KeySet *BatchFixture::keys_ = nullptr;

TEST_F(BatchFixture, SequentialBatchPreservesOrder)
{
    const std::vector<std::uint32_t> messages = {3, 1, 0, 2, 1, 3};
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return (m + 2) % 4;
    });
    const auto outputs =
        batchBootstrap(keys(), encryptBatch(messages), lut);
    ASSERT_EQ(outputs.size(), messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i)
        EXPECT_EQ(decryptPadded(keys(), outputs[i], 4),
                  (messages[i] + 2) % 4)
            << i;
}

TEST_F(BatchFixture, ParallelMatchesSequentialResults)
{
    std::vector<std::uint32_t> messages;
    for (int i = 0; i < 24; ++i)
        messages.push_back(static_cast<std::uint32_t>(i % 4));
    const auto inputs = encryptBatch(messages);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return (3 * m) % 4;
    });

    BatchOptions parallel;
    parallel.threads = 4;
    const auto seq = batchBootstrap(keys(), inputs, lut);
    const auto par = batchBootstrap(keys(), inputs, lut, parallel);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        // Identical inputs and key material: identical decryptions.
        EXPECT_EQ(decryptPadded(keys(), par[i], 4),
                  decryptPadded(keys(), seq[i], 4))
            << i;
        EXPECT_EQ(decryptPadded(keys(), par[i], 4),
                  (3 * messages[i]) % 4)
            << i;
    }
}

TEST_F(BatchFixture, SingleThreadAndSingleElementEdgeCases)
{
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    BatchOptions wide;
    wide.threads = 8;
    const auto one = encryptBatch({2});
    const auto out1 = batchBootstrap(keys(), one, lut, wide);
    ASSERT_EQ(out1.size(), 1u);
    EXPECT_EQ(decryptPadded(keys(), out1[0], 4), 2u);

    wide.threads = 4;
    const auto empty = batchBootstrap(keys(), {}, lut, wide);
    EXPECT_TRUE(empty.empty());
}

TEST_F(BatchFixture, EvaluationKeysOverloadMatchesKeySetPath)
{
    const std::vector<std::uint32_t> messages = {1, 3, 0, 2};
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto inputs = encryptBatch(messages);
    const auto eval = EvaluationKeys::fromKeySet(keys());
    const auto out = batchBootstrap(eval, inputs, lut);
    ASSERT_EQ(out.size(), messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i)
        EXPECT_EQ(decryptPadded(keys(), out[i], 4),
                  (messages[i] + 1) % 4)
            << i;
}

TEST_F(BatchFixture, NoiseAuditWarnsOnlyBelowThreshold)
{
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto inputs = encryptBatch({0, 1});

    // The test parameters have ample margin at a 2-bit space: the
    // audit stays silent.
    BatchOptions audited;
    audited.checkNoise = true;
    const std::size_t before = warnCount();
    const auto out = batchBootstrap(keys(), inputs, lut, audited);
    EXPECT_EQ(warnCount(), before);
    EXPECT_EQ(decryptPadded(keys(), out[0], 4), 0u);
    EXPECT_EQ(decryptPadded(keys(), out[1], 4), 1u);

    // An absurd threshold trips the audit exactly once per batch.
    audited.minSlotSigmas = 1e9;
    batchBootstrap(keys(), inputs, lut, audited);
    EXPECT_EQ(warnCount(), before + 1);
}

TEST_F(BatchFixture, SignBootstrapMatchesGateConvention)
{
    // batchSignBootstrap is the batched form of signBootstrap: every
    // boolean ciphertext refreshes to exactly +-mu by phase sign, and
    // it must be bit-identical to the single-ciphertext reference.
    const std::vector<bool> bits = {true, false, false, true, true};
    std::vector<LweCiphertext> inputs;
    for (bool b : bits)
        inputs.push_back(encryptBit(keys(), b, rng));

    const auto eval_keys = EvaluationKeys::fromKeySet(keys());
    const auto out = batchSignBootstrap(eval_keys, inputs, boolMu());
    ASSERT_EQ(out.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        EXPECT_EQ(decryptBit(keys(), out[i]), bits[i]) << i;
        const auto ref = signBootstrap(keys(), inputs[i], boolMu());
        EXPECT_EQ(out[i].raw(), ref.raw()) << i;
    }

    // Threaded run is bit-identical to the sequential one.
    BatchOptions two;
    two.threads = 2;
    const auto par = batchSignBootstrap(eval_keys, inputs, boolMu(), two);
    ASSERT_EQ(par.size(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(par[i].raw(), out[i].raw()) << i;
}

TEST_F(BatchFixture, EfficiencyProbeProducesSaneNumbers)
{
    const auto probe = measureParallelEfficiency(keys(), 8, 2);
    EXPECT_EQ(probe.threads, 2u);
    EXPECT_GT(probe.sequentialSeconds, 0.0);
    EXPECT_GT(probe.parallelSeconds, 0.0);
    EXPECT_GT(probe.efficiency(), 0.1);
    EXPECT_LE(probe.efficiency(), 1.25); // allow measurement jitter
}

} // namespace
} // namespace morphling::tfhe
