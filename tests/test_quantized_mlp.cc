/**
 * @file
 * Tests of the quantized-MLP inference layer: plaintext/encrypted
 * equivalence (including deliberate accumulator wraps, which both
 * sides must handle identically), shape validation, and workload
 * compilation.
 */

#include <gtest/gtest.h>

#include "apps/quantized_mlp.h"
#include "tfhe/params.h"

namespace morphling::apps {
namespace {

using tfhe::KeySet;

class MlpFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0x1117);
        keys_ = new KeySet(KeySet::generate(tfhe::paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0xACE};

    static KeySet *keys_;
};

KeySet *MlpFixture::keys_ = nullptr;

TEST_F(MlpFixture, SignedCodecRoundTrip)
{
    QuantizedMlp mlp(16);
    for (int v = -8; v < 8; ++v)
        EXPECT_EQ(mlp.decodeSigned(mlp.encodeSigned(v)), v) << v;

    const auto ct = mlp.encryptSigned(keys(), -3, rng);
    EXPECT_EQ(mlp.decryptSigned(keys(), ct), -3);
}

TEST_F(MlpFixture, PlainInferenceMatchesManualComputation)
{
    QuantizedMlp mlp(16);
    DenseLayer l1;
    l1.weights = {{1, -1}, {2, 1}};
    l1.shift = 1;
    l1.reluAfter = true;
    mlp.addLayer(l1);

    // inputs (3, 1): pre-act = (2, 7) -> relu+shift1 -> (1, 3).
    const auto out = mlp.inferPlain({3, 1});
    EXPECT_EQ(out, (std::vector<int>{1, 3}));

    // inputs (1, 3): pre-act = (-2, 5) -> (0, 2).
    EXPECT_EQ(mlp.inferPlain({1, 3}), (std::vector<int>{0, 2}));
}

TEST_F(MlpFixture, EncryptedMatchesPlainOnRandomModel)
{
    Rng model_rng(2024);
    const auto mlp =
        QuantizedMlp::random(16, {4, 4, 2}, 2, /*shift=*/1, model_rng);
    EXPECT_EQ(mlp.bootstrapCount(), 4u); // hidden layer only

    const std::vector<std::vector<int>> input_sets = {
        {1, 2, 0, 1}, {-1, 1, 2, 0}, {2, -2, 1, -1}};
    for (const auto &inputs : input_sets) {
        const auto plain = mlp.inferPlain(inputs);

        std::vector<tfhe::LweCiphertext> enc;
        for (int v : inputs)
            enc.push_back(mlp.encryptSigned(keys(), v, rng));
        const auto out = mlp.inferEncrypted(keys(), enc);
        ASSERT_EQ(out.size(), plain.size());
        for (std::size_t j = 0; j < out.size(); ++j)
            EXPECT_EQ(mlp.decryptSigned(keys(), out[j]), plain[j])
                << "output " << j;
    }
}

TEST_F(MlpFixture, WrapSemanticsAgree)
{
    // Drive the accumulator past p/2: the torus wraps, and the
    // plaintext reference must wrap the same way.
    QuantizedMlp mlp(16);
    DenseLayer l;
    l.weights = {{3, 3}};
    l.shift = 0;
    l.reluAfter = true;
    mlp.addLayer(l);

    // 3*3 + 3*2 = 15 -> wraps to -1 in [-8, 8) -> ReLU -> 0.
    const auto plain = mlp.inferPlain({3, 2});
    EXPECT_EQ(plain[0], 0);

    std::vector<tfhe::LweCiphertext> enc = {
        mlp.encryptSigned(keys(), 3, rng),
        mlp.encryptSigned(keys(), 2, rng)};
    const auto out = mlp.inferEncrypted(keys(), enc);
    EXPECT_EQ(mlp.decryptSigned(keys(), out[0]), 0);
}

TEST_F(MlpFixture, WorkloadCompilation)
{
    Rng model_rng(5);
    const auto mlp =
        QuantizedMlp::random(16, {8, 16, 16, 4}, 2, 1, model_rng);
    const auto w = mlp.workload("mlp", 32);
    ASSERT_EQ(w.stages.size(), 3u);
    EXPECT_EQ(w.totalBootstraps(), (16u + 16u) * 32);
    EXPECT_EQ(w.stages[0].linearMacs, 8ull * 16 * 32);
    EXPECT_EQ(w.stages[2].bootstraps, 0u); // logits: no activation
}

TEST_F(MlpFixture, ShapeValidationDies)
{
    QuantizedMlp mlp(16);
    DenseLayer l1;
    l1.weights = {{1, 1}};
    mlp.addLayer(l1);
    DenseLayer l2;
    l2.weights = {{1, 1, 1}}; // expects width 1
    EXPECT_EXIT(mlp.addLayer(l2), ::testing::ExitedWithCode(1),
                "width mismatch");
}

} // namespace
} // namespace morphling::apps
