/**
 * @file
 * Tests of the concurrent bootstrap service: flush-on-timeout under
 * light load, deadline-driven flushes, backpressure (fail-fast and
 * drain), per-client result ordering, full-batch assembly and
 * shutdown semantics. All run under the TSan label (ctest -L tsan).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "service/bootstrap_service.h"
#include "tfhe/encoding.h"

namespace morphling::service {
namespace {

using namespace std::chrono_literals;
using tfhe::KeySet;
using tfhe::LweCiphertext;

constexpr std::uint32_t kSpace = 4;

class ServiceFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0x5E41CE);
        keys_ = new KeySet(KeySet::generate(tfhe::paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0x600D};

    LweCiphertext
    encrypt(std::uint32_t m)
    {
        return tfhe::encryptPadded(keys(), m, kSpace, rng);
    }

    std::uint32_t
    decrypt(const LweCiphertext &ct)
    {
        return tfhe::decryptPadded(keys(), ct, kSpace);
    }

    /** Wait with a generous timeout so a wedged service fails the
     *  test instead of hanging the suite. */
    static void
    expectReady(std::future<LweCiphertext> &future)
    {
        ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
    }

    static KeySet *keys_;
};

KeySet *ServiceFixture::keys_ = nullptr;

TEST_F(ServiceFixture, FlushOnTimeoutUnderLightLoad)
{
    ServiceConfig config;
    config.superbatchSize = 64; // never fills with 3 requests
    config.maxWait = 20ms;
    config.numWorkers = 1;
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(
        tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return (m + 1) % kSpace;
        }));

    std::vector<LweCiphertext> inputs;
    for (std::uint32_t m : {0u, 1u, 2u})
        inputs.push_back(encrypt(m));

    std::vector<std::future<LweCiphertext>> futures;
    for (auto &ct : inputs)
        futures.push_back(service.submit(std::move(ct), lut));

    for (std::size_t i = 0; i < futures.size(); ++i) {
        expectReady(futures[i]);
        EXPECT_EQ(decrypt(futures[i].get()),
                  (static_cast<std::uint32_t>(i) + 1) % kSpace)
            << i;
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_GE(stats.timerFlushes, 1u);
    EXPECT_EQ(stats.fullBatches, 0u);
    EXPECT_EQ(stats.requestLatencyUs.count(), 3u);
    // The flush timer held the batch for maxWait before shipping.
    EXPECT_GE(stats.queueLatencyUs.max(), 10'000.0);
}

TEST_F(ServiceFixture, DeadlineShipsAheadOfFlushTimer)
{
    ServiceConfig config;
    config.superbatchSize = 64;
    config.maxWait = 10s; // the timer alone would stall the test
    config.numWorkers = 1;
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(
        tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return m;
        }));

    auto future = service.submit(encrypt(2), lut,
                                 ServiceClock::now() + 30ms);
    expectReady(future);
    EXPECT_EQ(decrypt(future.get()), 2u);
    EXPECT_GE(service.stats().timerFlushes, 1u);
}

TEST_F(ServiceFixture, BackpressureFailsFastAndDrainCompletes)
{
    ServiceConfig config;
    config.superbatchSize = 64;
    config.maxOutstanding = 4;
    config.maxWait = 10s; // nothing ships until shutdown drains
    config.numWorkers = 1;
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(
        tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return (3 * m) % kSpace;
        }));

    std::vector<std::future<LweCiphertext>> futures;
    for (std::uint32_t m = 0; m < 4; ++m) {
        auto future = service.trySubmit(encrypt(m % kSpace), lut);
        ASSERT_TRUE(future.has_value()) << m;
        futures.push_back(std::move(*future));
    }
    // The queue is at maxOutstanding: fail-fast submission refuses.
    EXPECT_FALSE(service.trySubmit(encrypt(1), lut).has_value());
    EXPECT_EQ(service.stats().rejected, 1u);
    EXPECT_EQ(service.outstanding(), 4u);

    service.shutdown();
    EXPECT_TRUE(service.stopped());
    for (std::uint32_t m = 0; m < 4; ++m) {
        expectReady(futures[m]);
        EXPECT_EQ(decrypt(futures[m].get()), (3 * m) % kSpace) << m;
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_GE(stats.drainFlushes, 1u);
    EXPECT_EQ(stats.outstanding, 0u);
}

TEST_F(ServiceFixture, ResultOrderMatchesSubmissionOrderPerClient)
{
    ServiceConfig config;
    config.superbatchSize = 8;
    config.maxWait = 5ms;
    config.numWorkers = 2;
    BootstrapService service(keys(), config);
    const LutId inc = service.registerLut(
        tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return (m + 1) % kSpace;
        }));
    const LutId triple = service.registerLut(
        tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return (3 * m) % kSpace;
        }));

    // One "client" interleaving two LUTs; its futures, read in
    // submission order, must line up with its requests even though
    // batches are assembled per LUT and executed concurrently.
    constexpr unsigned kCount = 24;
    std::vector<LweCiphertext> inputs;
    for (unsigned i = 0; i < kCount; ++i)
        inputs.push_back(encrypt(i % kSpace));

    std::vector<std::future<LweCiphertext>> futures;
    for (unsigned i = 0; i < kCount; ++i) {
        futures.push_back(service.submit(std::move(inputs[i]),
                                         i % 2 ? triple : inc));
    }

    for (unsigned i = 0; i < kCount; ++i) {
        expectReady(futures[i]);
        const std::uint32_t m = i % kSpace;
        const std::uint32_t expected =
            i % 2 ? (3 * m) % kSpace : (m + 1) % kSpace;
        EXPECT_EQ(decrypt(futures[i].get()), expected) << i;
    }
    EXPECT_EQ(service.stats().completed, kCount);
}

TEST_F(ServiceFixture, FullBatchesAssembleWithoutTimer)
{
    ServiceConfig config;
    config.superbatchSize = 4;
    config.maxWait = 10s;
    config.numWorkers = 1;
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(
        tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return m;
        }));

    std::vector<LweCiphertext> inputs;
    for (unsigned i = 0; i < 8; ++i)
        inputs.push_back(encrypt(i % kSpace));
    std::vector<std::future<LweCiphertext>> futures;
    for (auto &ct : inputs)
        futures.push_back(service.submit(std::move(ct), lut));

    for (unsigned i = 0; i < 8; ++i) {
        expectReady(futures[i]);
        EXPECT_EQ(decrypt(futures[i].get()), i % kSpace) << i;
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.fullBatches, 2u);
    EXPECT_EQ(stats.timerFlushes, 0u);
    EXPECT_EQ(stats.occupancy.mean(), 4.0);
    EXPECT_EQ(stats.meanOccupancy(config.superbatchSize), 1.0);
}

TEST_F(ServiceFixture, ShutdownDrainsAllAcceptedRequests)
{
    ServiceConfig config;
    config.superbatchSize = 64;
    config.maxWait = 10s;
    config.numWorkers = 2;
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(
        tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return (m + 2) % kSpace;
        }));

    std::vector<std::future<LweCiphertext>> futures;
    for (std::uint32_t i = 0; i < 10; ++i)
        futures.push_back(service.submit(encrypt(i % kSpace), lut));

    service.shutdown();
    EXPECT_TRUE(service.stopped());
    EXPECT_EQ(service.outstanding(), 0u);
    // Every accepted request completed during the drain: the futures
    // are already ready, no waiting required.
    for (std::uint32_t i = 0; i < 10; ++i) {
        ASSERT_EQ(futures[i].wait_for(0s), std::future_status::ready)
            << i;
        EXPECT_EQ(decrypt(futures[i].get()),
                  (i % kSpace + 2) % kSpace)
            << i;
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.accepted, 10u);
    EXPECT_EQ(stats.completed, 10u);

    service.shutdown(); // idempotent
    EXPECT_TRUE(service.stopped());
}

TEST_F(ServiceFixture, CosimBackendServesCorrectResults)
{
    // The deep self-check path: every superbatch runs through the
    // lockstep co-simulator (functional + cycle model, cross-checked,
    // outputs verified against the tfhe reference). Results must be
    // indistinguishable from the functional path.
    ServiceConfig config;
    config.superbatchSize = 8;
    config.numWorkers = 1;
    config.backend = exec::BackendKind::kCosim;
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(tfhe::makePaddedLut(
        kSpace, [](std::uint32_t m) { return (m + 1) % kSpace; }));

    std::vector<std::future<LweCiphertext>> futures;
    for (std::uint32_t i = 0; i < 8; ++i)
        futures.push_back(service.submit(encrypt(i % kSpace), lut));
    for (std::uint32_t i = 0; i < 8; ++i) {
        expectReady(futures[i]);
        EXPECT_EQ(decrypt(futures[i].get()),
                  (i % kSpace + 1) % kSpace)
            << i;
    }
}

TEST_F(ServiceFixture, ProgramCacheCompilesEachSizeOnce)
{
    // Two full batches of the same size reuse one compiled Program; a
    // timer-flushed partial batch compiles its own. (Observable only
    // indirectly — correct results across mixed batch sizes.)
    ServiceConfig config;
    config.superbatchSize = 4;
    config.maxWait = 20ms;
    config.numWorkers = 2;
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(tfhe::makePaddedLut(
        kSpace, [](std::uint32_t m) { return m; }));

    std::vector<std::future<LweCiphertext>> futures;
    for (std::uint32_t i = 0; i < 11; ++i) // 2 full + 1 partial of 3
        futures.push_back(service.submit(encrypt(i % kSpace), lut));
    for (std::uint32_t i = 0; i < 11; ++i) {
        expectReady(futures[i]);
        EXPECT_EQ(decrypt(futures[i].get()), i % kSpace) << i;
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 11u);
}

TEST_F(ServiceFixture, ShardedFunctionalBackendEndToEnd)
{
    ServiceConfig config;
    config.superbatchSize = 16;
    config.numWorkers = 1;
    config.maxWait = 20ms;
    config.backend = exec::BackendKind::kShardedFunctional;
    config.numShards = 4;
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(tfhe::makePaddedLut(
        kSpace, [](std::uint32_t m) { return (m + 1) % kSpace; }));

    std::vector<std::future<LweCiphertext>> futures;
    for (std::uint32_t i = 0; i < 32; ++i)
        futures.push_back(service.submit(encrypt(i % kSpace), lut));
    for (std::uint32_t i = 0; i < 32; ++i) {
        expectReady(futures[i]);
        EXPECT_EQ(decrypt(futures[i].get()),
                  (i % kSpace + 1) % kSpace)
            << i;
    }
}

TEST(ServiceConfigValidate, AcceptsRunnableConfigs)
{
    EXPECT_EQ(ServiceConfig{}.validate(), std::nullopt);
    ServiceConfig sharded;
    sharded.backend = exec::BackendKind::kShardedFunctional;
    sharded.numShards = 2;
    EXPECT_EQ(sharded.validate(), std::nullopt);
    ServiceConfig cosim;
    cosim.backend = exec::BackendKind::kCosim;
    EXPECT_EQ(cosim.validate(), std::nullopt);
}

TEST(ServiceConfigValidate, ReportsEachMisconfiguration)
{
    ServiceConfig empty_batch;
    empty_batch.superbatchSize = 0;
    ASSERT_TRUE(empty_batch.validate().has_value());

    ServiceConfig no_capacity;
    no_capacity.maxOutstanding = 0;
    ASSERT_TRUE(no_capacity.validate().has_value());

    ServiceConfig timing;
    timing.backend = exec::BackendKind::kTiming;
    const auto error = timing.validate();
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("kTiming"), std::string::npos);

    ServiceConfig zero_shards;
    zero_shards.backend = exec::BackendKind::kShardedFunctional;
    zero_shards.numShards = 0;
    EXPECT_TRUE(zero_shards.validate().has_value());
}

TEST(ServiceConfigValidate, ConstructorThrowsInsteadOfAborting)
{
    // A misconfigured service must be reportable by the caller, not a
    // process abort (the old behaviour was fatal()).
    Rng rng(0x7E57);
    const KeySet keys = KeySet::generate(tfhe::paramsTest(), rng);
    ServiceConfig config;
    config.backend = exec::BackendKind::kTiming;
    try {
        BootstrapService service(keys, config);
        FAIL() << "construction accepted a kTiming backend";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("kTiming"),
                  std::string::npos);
    }
}

TEST(ServiceConfigValidate, RejectsEachDegenerateCombination)
{
    ServiceConfig negative_wait;
    negative_wait.maxWait = std::chrono::microseconds(-1);
    auto error = negative_wait.validate();
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("maxWait"), std::string::npos);

    // numShards == 0 is rejected regardless of backend kind: a config
    // that flips to kShardedFunctional at runtime must not have hidden
    // the zero until the flip.
    ServiceConfig zero_shards_functional;
    zero_shards_functional.backend = exec::BackendKind::kFunctional;
    zero_shards_functional.numShards = 0;
    error = zero_shards_functional.validate();
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("numShards"), std::string::npos);

    ServiceConfig zero_shards_cosim;
    zero_shards_cosim.backend = exec::BackendKind::kCosim;
    zero_shards_cosim.numShards = 0;
    EXPECT_TRUE(zero_shards_cosim.validate().has_value());

    ServiceConfig bad_noise_gate;
    bad_noise_gate.batch.checkNoise = true;
    bad_noise_gate.batch.minSlotSigmas = 0;
    error = bad_noise_gate.validate();
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("minSlotSigmas"), std::string::npos);
}

TEST(ServiceConfigValidate, NullSharedKeysThrow)
{
    std::shared_ptr<const tfhe::EvaluationKeys> null_keys;
    EXPECT_THROW(BootstrapService service(std::move(null_keys)),
                 std::invalid_argument);
}

TEST_F(ServiceFixture, CompletionObserverSeesEveryRequest)
{
    std::atomic<std::uint64_t> completions{0};
    std::atomic<std::uint64_t> weight{0};
    std::atomic<bool> saw_circuit{false};
    std::atomic<bool> saw_negative_latency{false};

    ServiceConfig config;
    config.superbatchSize = 4;
    config.numWorkers = 1;
    config.onComplete = [&](const CompletionInfo &info) {
        completions.fetch_add(1);
        weight.fetch_add(info.bootstraps);
        if (info.circuit)
            saw_circuit = true;
        if (info.latencyUs < 0)
            saw_negative_latency = true;
    };
    BootstrapService service(keys(), config);
    const LutId lut = service.registerLut(
        tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
            return (m + 1) % kSpace;
        }));

    std::vector<std::future<LweCiphertext>> futures;
    for (std::uint32_t m = 0; m < 4; ++m)
        futures.push_back(service.submit(encrypt(m), lut));
    for (auto &future : futures)
        expectReady(future);
    service.shutdown();

    EXPECT_EQ(completions.load(), 4u);
    EXPECT_EQ(weight.load(), 4u); // single-LUT requests weigh 1 each
    EXPECT_FALSE(saw_circuit.load());
    EXPECT_FALSE(saw_negative_latency.load());
}

TEST_F(ServiceFixture, ProgramDiskCacheSurvivesRestartAndCorruption)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "morphling_test_prog_cache";
    fs::remove_all(dir);

    ServiceConfig config;
    config.superbatchSize = 4;
    config.numWorkers = 1;
    config.maxWait = 5ms;
    config.programCacheDir = dir.string();

    const auto run_once = [&] {
        BootstrapService service(keys(), config);
        const LutId lut = service.registerLut(
            tfhe::makePaddedLut(kSpace, [](std::uint32_t m) {
                return (m + 2) % kSpace;
            }));
        std::vector<std::future<LweCiphertext>> futures;
        for (std::uint32_t m = 0; m < 4; ++m)
            futures.push_back(service.submit(encrypt(m), lut));
        for (std::uint32_t m = 0; m < 4; ++m) {
            expectReady(futures[m]);
            ASSERT_EQ(decrypt(futures[m].get()), (m + 2) % kSpace)
                << m;
        }
    };

    run_once(); // cold start: compiles and persists the batch shape
    std::size_t cached = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".mprog")
            ++cached;
    }
    ASSERT_GE(cached, 1u) << "no compiled program was persisted";

    run_once(); // warm start: loads the persisted program

    // Corrupt every cached entry; the service must fall back to
    // compilation and still produce correct results.
    for (const auto &entry : fs::directory_iterator(dir)) {
        std::ofstream os(entry.path(),
                         std::ios::binary | std::ios::trunc);
        os << "not a program";
    }
    run_once();

    fs::remove_all(dir);
}

} // namespace
} // namespace morphling::service
