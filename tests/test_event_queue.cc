/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * re-entrancy and the runaway guard interface.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace morphling::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(1); }, 0);
    eq.schedule(5, [&]() { order.push_back(2); }, 0);
    eq.schedule(5, [&]() { order.push_back(0); }, -1);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.scheduleIn(9, [&]() { ++fired; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.schedule(30, [&]() { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    eq.schedule(1, []() {});
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = 99;
    eq.schedule(5, [&]() {
        eq.scheduleIn(0, [&]() { seen = eq.now(); });
    });
    eq.runAll();
    EXPECT_EQ(seen, 5u);
}

TEST(EventQueue, DeterministicAcrossRuns)
{
    auto run = []() {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 100; ++i) {
            eq.schedule((i * 7) % 13, [&order, i]() {
                order.push_back(i);
            });
        }
        eq.runAll();
        return order;
    };
    EXPECT_EQ(run(), run());
}

TEST(EventQueue, ManyEventsDrainCompletely)
{
    EventQueue eq;
    std::uint64_t count = 0;
    for (int i = 0; i < 10000; ++i)
        eq.schedule(i, [&]() { ++count; });
    EXPECT_EQ(eq.runAll(), 10000u);
    EXPECT_EQ(count, 10000u);
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace morphling::sim
