/**
 * @file
 * Unit tests for negacyclic ring polynomials: rotations (including the
 * sign-flip wraparound), arithmetic, and the schoolbook negacyclic
 * product used as ground truth elsewhere.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/polynomial.h"

namespace morphling::tfhe {
namespace {

TorusPolynomial
randomTorusPoly(unsigned n, Rng &rng)
{
    TorusPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = rng.nextU32();
    return p;
}

TEST(Polynomial, ZeroConstruction)
{
    TorusPolynomial p(8);
    EXPECT_EQ(p.degree(), 8u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(p[i], 0u);
}

TEST(Polynomial, AddSubRoundTrip)
{
    Rng rng(1);
    auto a = randomTorusPoly(64, rng);
    auto b = randomTorusPoly(64, rng);
    auto c = a;
    c.addAssign(b);
    c.subAssign(b);
    EXPECT_EQ(c, a);
}

TEST(Polynomial, NegateTwiceIsIdentity)
{
    Rng rng(2);
    auto a = randomTorusPoly(32, rng);
    auto b = a;
    b.negate();
    b.negate();
    EXPECT_EQ(b, a);
}

TEST(Polynomial, RotateByZeroIsIdentity)
{
    Rng rng(3);
    auto a = randomTorusPoly(16, rng);
    EXPECT_EQ(a.mulByXPower(0), a);
}

TEST(Polynomial, RotateByNNegates)
{
    Rng rng(4);
    auto a = randomTorusPoly(16, rng);
    auto negated = a;
    negated.negate();
    EXPECT_EQ(a.mulByXPower(16), negated);
}

TEST(Polynomial, RotateByOneShiftsWithSignFlip)
{
    // X * (c0 + c1 X + ... + c_{N-1} X^{N-1})
    //   = -c_{N-1} + c0 X + ... + c_{N-2} X^{N-1}.
    TorusPolynomial a(4);
    a[0] = 1;
    a[1] = 2;
    a[2] = 3;
    a[3] = 4;
    const auto r = a.mulByXPower(1);
    EXPECT_EQ(r[0], static_cast<Torus32>(-4));
    EXPECT_EQ(r[1], 1u);
    EXPECT_EQ(r[2], 2u);
    EXPECT_EQ(r[3], 3u);
}

TEST(Polynomial, RotationComposes)
{
    Rng rng(5);
    const unsigned n = 32;
    auto a = randomTorusPoly(n, rng);
    for (unsigned p1 : {1u, 5u, 17u, 31u}) {
        for (unsigned p2 : {2u, 16u, 33u, 60u}) {
            const auto lhs =
                a.mulByXPower(p1).mulByXPower(p2 % (2 * n));
            const auto rhs = a.mulByXPower((p1 + p2) % (2 * n));
            EXPECT_EQ(lhs, rhs) << "p1=" << p1 << " p2=" << p2;
        }
    }
}

TEST(Polynomial, FullRotationCycleIsIdentity)
{
    Rng rng(6);
    const unsigned n = 16;
    auto a = randomTorusPoly(n, rng);
    auto r = a;
    for (unsigned i = 0; i < 2 * n; ++i)
        r = r.mulByXPower(1);
    EXPECT_EQ(r, a);
}

TEST(Polynomial, RotateDiffMatchesManual)
{
    Rng rng(7);
    auto a = randomTorusPoly(64, rng);
    auto expected = a.mulByXPower(9);
    expected.subAssign(a);
    EXPECT_EQ(a.rotateDiff(9), expected);
}

TEST(Polynomial, SchoolbookMultiplyByOne)
{
    Rng rng(8);
    const unsigned n = 32;
    auto b = randomTorusPoly(n, rng);
    IntPolynomial one(n);
    one[0] = 1;
    TorusPolynomial acc(n);
    negacyclicMulAddSchoolbook(acc, one, b);
    EXPECT_EQ(acc, b);
}

TEST(Polynomial, SchoolbookMultiplyByXMatchesRotation)
{
    Rng rng(9);
    const unsigned n = 32;
    auto b = randomTorusPoly(n, rng);
    IntPolynomial x(n);
    x[1] = 1;
    TorusPolynomial acc(n);
    negacyclicMulAddSchoolbook(acc, x, b);
    EXPECT_EQ(acc, b.mulByXPower(1));
}

TEST(Polynomial, SchoolbookIsBilinear)
{
    Rng rng(10);
    const unsigned n = 16;
    auto b = randomTorusPoly(n, rng);
    IntPolynomial a1(n), a2(n), sum(n);
    for (unsigned i = 0; i < n; ++i) {
        a1[i] = static_cast<std::int32_t>(rng.nextBelow(64)) - 32;
        a2[i] = static_cast<std::int32_t>(rng.nextBelow(64)) - 32;
        sum[i] = a1[i] + a2[i];
    }
    TorusPolynomial lhs(n), rhs(n);
    negacyclicMulAddSchoolbook(lhs, sum, b);
    negacyclicMulAddSchoolbook(rhs, a1, b);
    negacyclicMulAddSchoolbook(rhs, a2, b);
    EXPECT_EQ(lhs, rhs);
}

TEST(Polynomial, SchoolbookNegacyclicWrap)
{
    // (X^{N-1}) * (X) = X^N = -1.
    const unsigned n = 8;
    IntPolynomial a(n);
    a[n - 1] = 1;
    TorusPolynomial b(n);
    b[1] = 5;
    TorusPolynomial acc(n);
    negacyclicMulAddSchoolbook(acc, a, b);
    EXPECT_EQ(acc[0], static_cast<Torus32>(-5));
    for (unsigned i = 1; i < n; ++i)
        EXPECT_EQ(acc[i], 0u);
}

} // namespace
} // namespace morphling::tfhe
