/**
 * @file
 * Determinism and conservation properties of the full stack: identical
 * seeds give identical ciphertexts and identical simulations; random
 * workloads conserve their bootstrap counts through scheduling and
 * simulation.
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "common/rng.h"
#include "compiler/sw_scheduler.h"
#include "tfhe/encoding.h"

namespace morphling {
namespace {

TEST(Determinism, KeyGenerationIsSeedDeterministic)
{
    Rng rng_a(12345), rng_b(12345);
    const auto keys_a = tfhe::KeySet::generate(tfhe::paramsTest(), rng_a);
    const auto keys_b = tfhe::KeySet::generate(tfhe::paramsTest(), rng_b);
    EXPECT_EQ(keys_a.lweKey.bits(), keys_b.lweKey.bits());
    EXPECT_EQ(keys_a.extractedKey.bits(), keys_b.extractedKey.bits());
}

TEST(Determinism, BootstrapIsBitDeterministic)
{
    Rng rng(777);
    const auto keys = tfhe::KeySet::generate(tfhe::paramsTest(), rng);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto ct = tfhe::encryptPadded(keys, 2, 4, rng);
    const auto out1 = tfhe::programmableBootstrap(keys, ct, lut);
    const auto out2 = tfhe::programmableBootstrap(keys, ct, lut);
    EXPECT_EQ(out1.raw(), out2.raw());
}

TEST(Determinism, SimulationIsRunDeterministic)
{
    const auto cfg = arch::ArchConfig::morphlingDefault();
    arch::Accelerator acc(cfg, tfhe::paramsSetI());
    const auto r1 = acc.runBootstrapBatch(256);
    const auto r2 = acc.runBootstrapBatch(256);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.hbmBytes, r2.hbmBytes);
    EXPECT_DOUBLE_EQ(r1.throughputBs, r2.throughputBs);
    EXPECT_EQ(r1.xpuBusyCycles, r2.xpuBusyCycles);
}

TEST(Conservation, RandomWorkloadsBootstrapCountsSurviveTheStack)
{
    Rng rng(31337);
    const auto &params = tfhe::paramsSetI();
    const compiler::SwScheduler scheduler(params);
    const arch::Accelerator acc(
        arch::ArchConfig::morphlingDefault(), params);

    for (int rep = 0; rep < 3; ++rep) {
        compiler::Workload w;
        w.name = "random";
        const unsigned stages =
            1 + static_cast<unsigned>(rng.nextBelow(4));
        std::uint64_t expected = 0;
        for (unsigned s = 0; s < stages; ++s) {
            const std::uint64_t bs = rng.nextBelow(120);
            const std::uint64_t macs = rng.nextBelow(50000);
            if (bs == 0 && macs == 0)
                continue;
            w.stages.push_back({bs, macs});
            expected += bs;
        }
        if (w.stages.empty())
            w.stages.push_back({7, 0}), expected = 7;

        const auto program = scheduler.schedule(w);
        EXPECT_EQ(program.totalBlindRotations(), expected);
        const auto report = acc.run(program);
        EXPECT_EQ(report.bootstraps, expected) << "rep " << rep;
        EXPECT_GT(report.cycles, 0u);
    }
}

TEST(Conservation, MoreWorkNeverFinishesFaster)
{
    const arch::Accelerator acc(
        arch::ArchConfig::morphlingDefault(), tfhe::paramsSetI());
    std::uint64_t prev_cycles = 0;
    for (std::uint64_t count : {64ull, 128ull, 256ull, 512ull}) {
        const auto r = acc.runBootstrapBatch(count);
        EXPECT_GT(r.cycles, prev_cycles) << count;
        prev_cycles = r.cycles;
    }
}

} // namespace
} // namespace morphling
