/**
 * @file
 * Property tests of the noise model: measured noise of this
 * implementation must track the analytic prediction within a small
 * factor, margins must clear the failure threshold on every parameter
 * set, and noise must actually shrink across a bootstrap.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/encoding.h"
#include "tfhe/noise.h"

namespace morphling::tfhe {
namespace {

TEST(NoiseModel, FreshNoiseMeasurementMatchesConfiguredStd)
{
    Rng rng(101);
    const KeySet keys = KeySet::generate(paramsTest(), rng);
    const double measured = measureFreshNoiseStd(keys, 4000, rng);
    EXPECT_NEAR(measured, keys.params.lweNoiseStd,
                keys.params.lweNoiseStd * 0.1);
}

TEST(NoiseModel, BootstrapNoisePredictionWithinFactorOfMeasurement)
{
    Rng rng(102);
    const KeySet keys = KeySet::generate(paramsTest(), rng);
    const NoiseModel model(keys.params);

    const double predicted = std::sqrt(model.bootstrapOutputVariance());
    const double measured =
        measureBootstrapNoiseStd(keys, 4, 60, rng);

    // The analytic formula uses worst-case-ish digit variances; agree
    // within a factor of four in either direction.
    EXPECT_LT(measured, predicted * 4.0);
    EXPECT_GT(measured, predicted / 4.0);
}

TEST(NoiseModel, BootstrapRefreshesAccumulatedNoise)
{
    Rng rng(103);
    const KeySet keys = KeySet::generate(paramsTest(), rng);

    // Accumulate noise by summing 16 fresh encryptions of zero.
    auto noisy = encryptPadded(keys, 1, 4, rng);
    for (int i = 0; i < 16; ++i) {
        auto zero = encryptPadded(keys, 0, 4, rng);
        noisy.addAssign(zero);
    }
    const double before =
        torusDistance(noisy.phase(keys.lweKey), encodePadded(1, 4));

    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto refreshed = programmableBootstrap(keys, noisy, lut);
    const double after = torusDistance(refreshed.phase(keys.lweKey),
                                       encodePadded(1, 4));

    // 17 accumulated fresh noises vs one bootstrap output: the
    // bootstrap output level is independent of the input level.
    const double fresh_17 =
        std::sqrt(17.0) * keys.params.lweNoiseStd;
    EXPECT_GT(before, fresh_17 / 10); // sanity: noise did accumulate
    const NoiseModel model(keys.params);
    EXPECT_LT(after,
              10 * std::sqrt(model.bootstrapOutputVariance()) + 1e-9);
}

TEST(NoiseModel, EveryParamSetHasSafeMargins)
{
    // The functional guarantee behind all round-trip tests: at a
    // 2-bit padded message space, both the bootstrap input side
    // (mod-switch + fresh/bootstrap noise) and the output decode side
    // must sit many sigmas from the decision boundary.
    for (const auto &params : allParamSets()) {
        const NoiseModel model(params);
        const double input_sigmas =
            model.slotSigmas(4, model.bootstrapOutputVariance());
        EXPECT_GT(input_sigmas, 6.0) << params.name;

        const double decode_margin = 1.0 / 16.0; // half slot at 2p=8
        const double out_std =
            std::sqrt(model.bootstrapOutputVariance());
        EXPECT_GT(decode_margin / out_std, 6.0) << params.name;
    }
}

TEST(NoiseModel, ModSwitchVarianceScalesWithDimension)
{
    const NoiseModel small(paramsSetI());   // n=500, N=1024
    const NoiseModel large(paramsSetIV());  // n=742, N=2048
    // Larger N shrinks the rounding step faster than n grows.
    EXPECT_LT(large.modSwitchVariance(), small.modSwitchVariance());
}

TEST(NoiseModel, ExternalProductVarianceMonotoneInBase)
{
    // A larger decomposition base amplifies the BSK noise (bigger
    // digits) — the tradeoff the l_b/beta choice balances.
    auto p_small = paramsSetI();
    auto p_large = paramsSetI();
    p_large.bskBaseBits = 12;
    p_large.bskLevels = 2;
    const NoiseModel small(p_small), large(p_large);
    EXPECT_GT(large.externalProductVariance(),
              small.externalProductVariance());
}

TEST(NoiseModel, KeySwitchTermsArePositiveAndSmall)
{
    for (const auto &params : allParamSets()) {
        const NoiseModel model(params);
        EXPECT_GT(model.keySwitchVariance(), 0.0) << params.name;
        EXPECT_LT(std::sqrt(model.keySwitchVariance()), 1.0 / 32)
            << params.name;
    }
}

} // namespace
} // namespace morphling::tfhe
