/**
 * @file
 * Cross-parameter-set property tests: algebraic identities that must
 * hold on every Table III set, not just the small test set — LWE/GLWE
 * homomorphism, extract/key-switch composition, gadget-reconstruction
 * bounds, and blind-rotation phase arithmetic. These run on fresh keys
 * per set (LWE-only where possible to keep them fast).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/ggsw.h"

namespace morphling::tfhe {
namespace {

class ParamSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    const TfheParams &
    params() const
    {
        return paramsByName(GetParam());
    }
};

TEST_P(ParamSweep, LweLinearHomomorphism)
{
    Rng rng(100 + params().polyDegree);
    const LweKey key = LweKey::generate(params(), rng);
    const std::uint32_t space = 16;

    for (int rep = 0; rep < 5; ++rep) {
        const auto m1 =
            static_cast<std::uint32_t>(rng.nextBelow(space));
        const auto m2 =
            static_cast<std::uint32_t>(rng.nextBelow(space));
        const auto s =
            static_cast<std::int32_t>(rng.nextBelow(5)) + 1;

        auto c1 = LweCiphertext::encrypt(
            key, encodeMessage(m1, space), params().lweNoiseStd, rng);
        const auto c2 = LweCiphertext::encrypt(
            key, encodeMessage(m2, space), params().lweNoiseStd, rng);

        c1.scaleAssign(s);
        c1.addAssign(c2);
        EXPECT_EQ(lweDecrypt(key, c1, space),
                  (static_cast<std::uint32_t>(s) * m1 + m2) % space)
            << params().name;
    }
}

TEST_P(ParamSweep, ExtractThenSwitchPreservesMessage)
{
    Rng rng(200 + params().polyDegree);
    const GlweKey glwe_key = GlweKey::generate(params(), rng);
    const LweKey lwe_key = LweKey::generate(params(), rng);
    const LweKey extracted = glwe_key.extractLweKey();
    const auto ksk = KeySwitchKey::generate(extracted, lwe_key, rng);

    const std::uint32_t space = 8;
    TorusPolynomial message(params().polyDegree);
    const auto m0 = static_cast<std::uint32_t>(rng.nextBelow(space));
    message[0] = encodeMessage(m0, space);

    const auto glwe_ct = GlweCiphertext::encrypt(
        glwe_key, message, params().glweNoiseStd, rng);
    const auto lwe_under_extracted = glwe_ct.sampleExtract();
    EXPECT_EQ(lweDecrypt(extracted, lwe_under_extracted, space), m0)
        << params().name;

    const auto switched = ksk.apply(lwe_under_extracted);
    EXPECT_EQ(switched.dimension(), params().lweDimension);
    EXPECT_EQ(lweDecrypt(lwe_key, switched, space), m0)
        << params().name;
}

TEST_P(ParamSweep, GadgetReconstructionBound)
{
    Rng rng(300 + params().polyDegree);
    const unsigned bg = params().bskBaseBits;
    const unsigned lb = params().bskLevels;
    const double bound = 0x1.0p-1 / std::pow(2.0, bg * lb) + 1e-12;
    std::vector<std::int32_t> digits(lb);
    for (int rep = 0; rep < 500; ++rep) {
        const Torus32 v = rng.nextU32();
        gadgetDecomposeScalar(v, bg, lb, digits.data());
        Torus32 recon = 0;
        for (unsigned j = 0; j < lb; ++j) {
            recon += static_cast<Torus32>(
                static_cast<std::int64_t>(digits[j])
                << (32 - (j + 1) * bg));
        }
        EXPECT_LE(torusDistance(recon, v), bound) << params().name;
    }
}

TEST_P(ParamSweep, ModSwitchPhaseConsistency)
{
    // The switched ciphertext's phase in the 2N domain must match the
    // original torus phase to within the rounding bound — the
    // precondition for blind rotation landing in the right slot.
    Rng rng(400 + params().polyDegree);
    const LweKey key = LweKey::generate(params(), rng);
    const unsigned two_n = 2 * params().polyDegree;

    for (int rep = 0; rep < 10; ++rep) {
        const Torus32 mu = rng.nextU32();
        const auto ct = LweCiphertext::encrypt(
            key, mu, params().lweNoiseStd, rng);
        const auto switched = modSwitch(ct, params().polyDegree);

        std::uint64_t acc = switched[params().lweDimension];
        for (unsigned i = 0; i < params().lweDimension; ++i) {
            if (key.bits()[i])
                acc += two_n - switched[i];
        }
        const double phase_2n =
            static_cast<double>(acc % two_n) / two_n;
        // Bound: per-element rounding 1/(4N) accumulated over ~n/2 key
        // hits behaves like a random walk; 8 sigma covers it.
        const double sigma =
            std::sqrt((params().lweDimension / 2.0 + 1.0) / 12.0) /
            two_n;
        EXPECT_LT(torusDistance(doubleToTorus32(phase_2n), mu),
                  8 * sigma + 16.0 * params().lweNoiseStd + 1.0 / two_n)
            << params().name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSets, ParamSweep,
                         ::testing::Values("I", "II", "III", "IV", "A",
                                           "B", "C"),
                         [](const auto &info) {
                             return std::string("Set") + info.param;
                         });

} // namespace
} // namespace morphling::tfhe
