/**
 * @file
 * Tests of the trace infrastructure: flag scoping, stream capture, and
 * end-to-end traces from a small accelerator simulation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/accelerator.h"
#include "sim/trace.h"

namespace morphling::sim {
namespace {

/** RAII guard: captures trace output and restores global state. */
class TraceCapture
{
  public:
    TraceCapture()
    {
        Trace::instance().setStream(&stream_);
    }
    ~TraceCapture()
    {
        Trace::instance().disableAll();
        Trace::instance().setStream(nullptr);
    }
    std::string text() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

TEST(Trace, DisabledByDefault)
{
    TraceCapture capture;
    EventQueue eq;
    DTRACE(eq, "unit", "should not appear");
    EXPECT_TRUE(capture.text().empty());
}

TEST(Trace, FlagScoping)
{
    TraceCapture capture;
    Trace::instance().enable("alpha");
    EventQueue eq;
    eq.runUntil(5);
    DTRACE(eq, "alpha", "visible ", 42);
    DTRACE(eq, "beta", "invisible");
    const std::string out = capture.text();
    EXPECT_NE(out.find("5: alpha: visible 42"), std::string::npos);
    EXPECT_EQ(out.find("invisible"), std::string::npos);
}

TEST(Trace, AllFlagEnablesEverything)
{
    TraceCapture capture;
    Trace::instance().enable("all");
    EventQueue eq;
    DTRACE(eq, "anything", "shown");
    EXPECT_NE(capture.text().find("anything: shown"),
              std::string::npos);
}

TEST(Trace, SimulationEmitsComponentTraces)
{
    TraceCapture capture;
    Trace::instance().enable("xpu");
    Trace::instance().enable("sched");

    arch::Accelerator acc(arch::ArchConfig::morphlingDefault(),
                          tfhe::paramsSetI());
    acc.runBootstrapBatch(32);

    const std::string out = capture.text();
    EXPECT_NE(out.find("xpu: wave"), std::string::npos);
    EXPECT_NE(out.find("sched: g0 issue DMA.LD_LWE"),
              std::string::npos);
    EXPECT_NE(out.find("XPU.BR"), std::string::npos);
    // VPU flag was not enabled: no vpu lines.
    EXPECT_EQ(out.find("vpu: "), std::string::npos);
}

TEST(Trace, DisableRestoresSilence)
{
    TraceCapture capture;
    Trace::instance().enable("gamma");
    Trace::instance().disable("gamma");
    EventQueue eq;
    DTRACE(eq, "gamma", "nope");
    EXPECT_TRUE(capture.text().empty());
}

} // namespace
} // namespace morphling::sim
