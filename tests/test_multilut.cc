/**
 * @file
 * Tests of multi-LUT bootstrapping and coefficient-indexed sample
 * extraction: several functions from one blind rotation, consistency
 * with the single-LUT path, and the packing-limit checks.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"

namespace morphling::tfhe {
namespace {

class MultiLutFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0x171);
        keys_ = new KeySet(KeySet::generate(paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0x9999};

    static KeySet *keys_;
};

KeySet *MultiLutFixture::keys_ = nullptr;

TEST_F(MultiLutFixture, SampleExtractAtRecoversEveryCoefficient)
{
    const auto &params = keys().params;
    Rng local(55);
    TorusPolynomial message(params.polyDegree);
    for (unsigned i = 0; i < params.polyDegree; ++i)
        message[i] = encodeMessage(
            static_cast<std::uint32_t>(local.nextBelow(8)), 8);
    const auto ct = GlweCiphertext::encrypt(
        keys().glweKey, message, params.glweNoiseStd, local);
    const auto extracted_key = keys().glweKey.extractLweKey();

    for (unsigned index : {0u, 1u, 17u, params.polyDegree - 1}) {
        const auto lwe = ct.sampleExtractAt(index);
        EXPECT_EQ(lweDecrypt(extracted_key, lwe, 8),
                  decodeMessage(message[index], 8))
            << "index " << index;
    }
}

TEST_F(MultiLutFixture, MultiTestPolynomialLayout)
{
    // N = 64, p = 4, nu = 2: slot 16, spacing 8.
    const std::vector<std::vector<Torus32>> luts = {
        {10, 20, 30, 40}, {50, 60, 70, 80}};
    const auto tp = buildMultiTestPolynomial(64, luts);
    // Slot centers: f0 copies at m*16, f1 copies at m*16 + 8.
    EXPECT_EQ(tp[0], 10u);
    EXPECT_EQ(tp[8], 50u);
    EXPECT_EQ(tp[16], 20u);
    EXPECT_EQ(tp[24], 60u);
    EXPECT_EQ(tp[48], 40u);
    EXPECT_EQ(tp[56], 80u);
    // Top wrap region: -f(0) of the function whose copy lands there.
    EXPECT_EQ(tp[63], static_cast<Torus32>(-10));
}

TEST_F(MultiLutFixture, TwoFunctionsOneBlindRotation)
{
    const std::uint32_t space = 4;
    const std::vector<std::vector<Torus32>> luts = {
        makePaddedLut(space, [](std::uint32_t m) { return (m + 1) % 4; }),
        makePaddedLut(space, [](std::uint32_t m) { return (3 * m) % 4; }),
    };
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = encryptPadded(keys(), m, space, rng);
        const auto out = multiLutBootstrap(keys(), ct, luts);
        ASSERT_EQ(out.size(), 2u);
        EXPECT_EQ(decryptPadded(keys(), out[0], space), (m + 1) % 4)
            << "m=" << m;
        EXPECT_EQ(decryptPadded(keys(), out[1], space), (3 * m) % 4)
            << "m=" << m;
    }
}

TEST_F(MultiLutFixture, FourFunctionsStillWithinMargin)
{
    const std::uint32_t space = 4;
    std::vector<std::vector<Torus32>> luts;
    for (std::uint32_t k = 0; k < 4; ++k) {
        luts.push_back(makePaddedLut(space, [k](std::uint32_t m) {
            return (m + k) % 4;
        }));
    }
    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = encryptPadded(keys(), m, space, rng);
        const auto out = multiLutBootstrap(keys(), ct, luts);
        for (std::uint32_t k = 0; k < 4; ++k) {
            EXPECT_EQ(decryptPadded(keys(), out[k], space),
                      (m + k) % 4)
                << "m=" << m << " k=" << k;
        }
    }
}

TEST_F(MultiLutFixture, SingleLutMatchesClassicPath)
{
    const std::uint32_t space = 4;
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return (m * m) % 4;
    });
    const auto ct = encryptPadded(keys(), 3, space, rng);
    const auto classic = programmableBootstrap(keys(), ct, lut);
    const auto multi = multiLutBootstrap(keys(), ct, {lut});
    ASSERT_EQ(multi.size(), 1u);
    // Identical deterministic pipeline: bit-identical results.
    EXPECT_EQ(multi[0].raw(), classic.raw());
}

TEST_F(MultiLutFixture, OverPackingDies)
{
    // N = 512, p = 128, nu = 4 -> spacing 1 < 2: must be rejected.
    std::vector<std::vector<Torus32>> luts(
        4, std::vector<Torus32>(128, 0));
    EXPECT_EXIT(
        buildMultiTestPolynomial(keys().params.polyDegree, luts),
        ::testing::ExitedWithCode(1), "cannot pack");
}

} // namespace
} // namespace morphling::tfhe
