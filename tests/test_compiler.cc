/**
 * @file
 * Unit tests for the ISA encoding, program container and SW scheduler
 * (batching of 64 LWEs into 4 groups, dependent streams, barriers).
 */

#include <fstream>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "compiler/isa.h"
#include "compiler/program.h"
#include "compiler/sw_scheduler.h"
#include "tfhe/params.h"

namespace morphling::compiler {
namespace {

TEST(Isa, EncodeDecodeRoundTrip)
{
    const Instruction cases[] = {
        {Opcode::DmaLoadLwe, 0, 16, 32064},
        {Opcode::VpuModSwitch, 3, 16, 0},
        {Opcode::XpuBlindRotate, 2, 16, 500},
        {Opcode::VpuPAlu, 1, 0, 0xFFFFFFFF},
        {Opcode::Barrier, 0, 0, 7},
    };
    for (const auto &inst : cases)
        EXPECT_EQ(Instruction::decode(inst.encode()), inst)
            << inst.toString();
}

TEST(Isa, OpcodeClassesArePartition)
{
    const Opcode all[] = {
        Opcode::DmaLoadLwe,   Opcode::DmaLoadBsk,
        Opcode::DmaLoadKsk,   Opcode::DmaLoadData,
        Opcode::DmaStoreLwe,  Opcode::VpuModSwitch,
        Opcode::VpuSampleExtract, Opcode::VpuKeySwitch,
        Opcode::VpuPAlu,      Opcode::XpuBlindRotate,
        Opcode::Barrier,
    };
    for (auto op : all) {
        const int classes = isDmaOp(op) + isVpuOp(op) + isXpuOp(op);
        if (op == Opcode::Barrier)
            EXPECT_EQ(classes, 0);
        else
            EXPECT_EQ(classes, 1) << opcodeName(op);
        EXPECT_FALSE(opcodeName(op).empty());
    }
}

TEST(Isa, TryDecodeIsTotalOverRandomWords)
{
    // Property fuzz over the full 64-bit word space: every word either
    // decodes to an instruction that re-encodes to the identical word,
    // or is rejected — deterministically, never UB. The opcode byte is
    // drawn uniformly, so both outcomes are exercised heavily.
    std::mt19937_64 rng(0xD15A55E3B1Eull);
    std::size_t valid = 0, rejected = 0;
    for (int i = 0; i < 200000; ++i) {
        const std::uint64_t word = rng();
        const auto inst = Instruction::tryDecode(word);
        const auto op_byte =
            static_cast<std::uint8_t>((word >> 56) & 0xFF);
        ASSERT_EQ(inst.has_value(), isValidOpcodeByte(op_byte))
            << "word " << word;
        if (inst) {
            // Lossless: the four fields partition all 64 bits.
            EXPECT_EQ(inst->encode(), word);
            EXPECT_EQ(Instruction::decode(word), *inst);
            ++valid;
        } else {
            // Rejection is deterministic.
            EXPECT_FALSE(Instruction::tryDecode(word).has_value());
            ++rejected;
        }
    }
    EXPECT_GT(valid, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(Isa, ValidOpcodeBytesAreExactlyTheEnum)
{
    for (unsigned b = 0; b < 256; ++b)
        EXPECT_EQ(isValidOpcodeByte(static_cast<std::uint8_t>(b)),
                  b < kOpcodeCount)
            << "byte " << b;
}

TEST(IsaDeathTest, DecodeRejectsInvalidOpcodeByte)
{
    const std::uint64_t word = 0xFFull << 56;
    ASSERT_FALSE(Instruction::tryDecode(word).has_value());
    EXPECT_DEATH((void)Instruction::decode(word), "invalid opcode");
}

TEST(ProgramDeathTest, DeserializeRejectsInvalidOpcodeByte)
{
    Program prog("p");
    prog.add({Opcode::DmaLoadLwe, 0, 1, 4});
    auto words = prog.serialize();
    words.push_back(0xABull << 56);
    EXPECT_DEATH((void)Program::deserialize("p", words),
                 "invalid opcode");
}

TEST(Program, SerializeRoundTrip)
{
    Program prog("p");
    prog.add({Opcode::DmaLoadLwe, 1, 16, 123});
    prog.add({Opcode::XpuBlindRotate, 1, 16, 500});
    const Program back = Program::deserialize("p", prog.serialize());
    ASSERT_EQ(back.size(), prog.size());
    for (std::size_t i = 0; i < prog.size(); ++i)
        EXPECT_EQ(back.at(i), prog.at(i));
}

TEST(Program, FramedSerializeRoundTrip)
{
    Program prog("cacheable");
    prog.add({Opcode::DmaLoadLwe, 0, 16, 123});
    prog.add({Opcode::XpuBlindRotate, 0, 16, 500});
    prog.add({Opcode::VpuKeySwitch, 1, 16, 0});
    const auto words = prog.serializeFramed();
    ASSERT_EQ(words.size(), prog.size() + 3);
    EXPECT_EQ(words[0], Program::kFramedMagic);
    EXPECT_EQ(words[1], prog.size());
    EXPECT_EQ(words[2], prog.numGroups());

    std::string error;
    const auto back =
        Program::tryDeserializeFramed("cacheable", words, &error);
    ASSERT_TRUE(back.has_value()) << error;
    ASSERT_EQ(back->size(), prog.size());
    for (std::size_t i = 0; i < prog.size(); ++i)
        EXPECT_EQ(back->at(i), prog.at(i));
    EXPECT_EQ(back->numGroups(), prog.numGroups());
}

TEST(Program, FramedDecodeRejectsTruncatedBuffer)
{
    Program prog("p");
    prog.add({Opcode::DmaLoadLwe, 0, 4, 1});
    prog.add({Opcode::XpuBlindRotate, 0, 4, 500});
    auto words = prog.serializeFramed();

    // Shorter than the header itself.
    std::string error;
    EXPECT_FALSE(Program::tryDeserializeFramed(
                     "p", {words[0], words[1]}, &error)
                     .has_value());
    EXPECT_NE(error.find("header"), std::string::npos);

    // Header intact, instruction words cut off.
    auto truncated = words;
    truncated.pop_back();
    EXPECT_FALSE(
        Program::tryDeserializeFramed("p", truncated, &error)
            .has_value());
    EXPECT_NE(error.find("truncated"), std::string::npos);

    // Trailing garbage after the declared count.
    auto oversized = words;
    oversized.push_back(0);
    EXPECT_FALSE(
        Program::tryDeserializeFramed("p", oversized, &error)
            .has_value());
    EXPECT_NE(error.find("oversized"), std::string::npos);
}

TEST(Program, FramedDecodeRejectsBadMagicAndOpcode)
{
    Program prog("p");
    prog.add({Opcode::DmaLoadLwe, 0, 4, 1});
    const auto words = prog.serializeFramed();

    auto bad_magic = words;
    bad_magic[0] ^= 1;
    std::string error;
    EXPECT_FALSE(
        Program::tryDeserializeFramed("p", bad_magic, &error)
            .has_value());
    EXPECT_NE(error.find("magic"), std::string::npos);

    auto bad_opcode = words;
    bad_opcode[3] = 0xABull << 56;
    EXPECT_FALSE(
        Program::tryDeserializeFramed("p", bad_opcode, &error)
            .has_value());
    EXPECT_NE(error.find("invalid opcode"), std::string::npos);
}

TEST(Program, FramedDecodeRejectsGroupCountMismatch)
{
    Program prog("p");
    prog.add({Opcode::VpuModSwitch, 0, 1, 0});
    prog.add({Opcode::VpuModSwitch, 3, 1, 0});
    auto words = prog.serializeFramed();
    ASSERT_EQ(words[2], 4u);
    words[2] = 2; // header lies about the group count
    std::string error;
    EXPECT_FALSE(Program::tryDeserializeFramed("p", words, &error)
                     .has_value());
    EXPECT_NE(error.find("group count mismatch"), std::string::npos);
}

TEST(Program, SliceGroupsRemapsDensely)
{
    Program prog("p");
    prog.add({Opcode::VpuModSwitch, 0, 1, 0});
    prog.add({Opcode::VpuModSwitch, 2, 2, 0});
    prog.add({Opcode::VpuModSwitch, 3, 3, 0});
    prog.add({Opcode::VpuKeySwitch, 2, 4, 0});
    const auto slice = prog.sliceGroups("odd", {2, 3});
    ASSERT_EQ(slice.program.size(), 3u);
    EXPECT_EQ(slice.program.numGroups(), 2u);
    EXPECT_EQ(slice.program.at(0).group, 0u); // source group 2
    EXPECT_EQ(slice.program.at(1).group, 1u); // source group 3
    EXPECT_EQ(slice.program.at(2).group, 0u);
    EXPECT_EQ(slice.globalIndex,
              (std::vector<std::size_t>{1, 2, 3}));
}

TEST(Program, GroupStreamFilters)
{
    Program prog("p");
    prog.add({Opcode::VpuModSwitch, 0, 1, 0});
    prog.add({Opcode::VpuModSwitch, 1, 2, 0});
    prog.add({Opcode::VpuKeySwitch, 0, 3, 0});
    const auto g0 = prog.groupStream(0);
    ASSERT_EQ(g0.size(), 2u);
    EXPECT_EQ(g0[1].count, 3u);
}

class SchedulerFixture : public ::testing::Test
{
  protected:
    const tfhe::TfheParams &params = tfhe::paramsSetI();
    SwScheduler scheduler{params};
};

TEST_F(SchedulerFixture, BatchCoversAllCiphertexts)
{
    const Program prog = scheduler.scheduleBootstrapBatch(200);
    EXPECT_EQ(prog.totalBlindRotations(), 200u);
    // Every bootstrap chunk carries the full dependent stream.
    const auto hist = prog.histogram();
    EXPECT_EQ(hist.at(Opcode::VpuModSwitch),
              hist.at(Opcode::XpuBlindRotate));
    EXPECT_EQ(hist.at(Opcode::VpuSampleExtract),
              hist.at(Opcode::XpuBlindRotate));
    EXPECT_EQ(hist.at(Opcode::VpuKeySwitch),
              hist.at(Opcode::XpuBlindRotate));
}

TEST_F(SchedulerFixture, ChunksAreGroupSized)
{
    const Program prog = scheduler.scheduleBootstrapBatch(64);
    unsigned chunks = 0;
    for (const auto &inst : prog.instructions()) {
        if (inst.op == Opcode::XpuBlindRotate) {
            EXPECT_EQ(inst.count, 16u);
            EXPECT_EQ(inst.operand, params.lweDimension);
            ++chunks;
        }
    }
    EXPECT_EQ(chunks, 4u);
}

TEST_F(SchedulerFixture, GroupsRoundRobin)
{
    const Program prog = scheduler.scheduleBootstrapBatch(128);
    // 8 chunks of 16 -> two per group.
    for (std::uint8_t g = 0; g < 4; ++g) {
        unsigned brs = 0;
        for (const auto &inst : prog.groupStream(g))
            brs += inst.op == Opcode::XpuBlindRotate;
        EXPECT_EQ(brs, 2u) << "group " << int(g);
    }
}

TEST_F(SchedulerFixture, GroupInterleavedMatchesRoundRobinOnCanonical)
{
    // On the canonical superbatch (64 LWEs, 4 groups of 16) one round
    // of equal chunks IS the round-robin emission — the interleaved
    // mode must produce a byte-identical program, so everything
    // derived from the canonical schedule (goldens, Table V rows) is
    // unchanged.
    SchedulerConfig ileave;
    ileave.interleave = InterleaveMode::kGroupInterleaved;
    const Program rr = scheduler.scheduleBootstrapBatch(64);
    const Program gi =
        SwScheduler(params, ileave).scheduleBootstrapBatch(64);
    ASSERT_EQ(gi.size(), rr.size());
    for (std::size_t i = 0; i < rr.size(); ++i)
        EXPECT_EQ(gi.at(i), rr.at(i)) << i;
    EXPECT_EQ(gi.serialize(), rr.serialize());
}

TEST_F(SchedulerFixture, GroupInterleavedEmitsPhaseAlignedRounds)
{
    // 70 LWEs over 4 groups: the interleaved mode balances the tail
    // round (18,18,17,17 -> chunks 16+2/16+2/16+1/16+1 across two
    // rounds of 16,16,16,16 then 2,2,1,1) instead of round-robin's
    // 16,16,16,16,6 — every group stays within one chunk of the
    // others, so shards sliced from the groups stay phase-aligned.
    SchedulerConfig ileave;
    ileave.interleave = InterleaveMode::kGroupInterleaved;
    const Program prog =
        SwScheduler(params, ileave).scheduleBootstrapBatch(70);
    EXPECT_EQ(prog.totalBlindRotations(), 70u);
    std::vector<std::vector<unsigned>> rounds(4);
    for (const auto &inst : prog.instructions()) {
        if (inst.op == Opcode::XpuBlindRotate)
            rounds[inst.group].push_back(inst.count);
    }
    // Same number of chunks in every group's stream.
    for (std::uint8_t g = 1; g < 4; ++g)
        EXPECT_EQ(rounds[g].size(), rounds[0].size()) << int(g);
    ASSERT_EQ(rounds[0].size(), 2u);
    EXPECT_EQ(rounds[0][0], 16u);
    EXPECT_EQ(rounds[0][1], 2u);
    EXPECT_EQ(rounds[2][1], 1u);
    // Within a round, chunk sizes differ by at most one.
    for (std::size_t r = 0; r < 2; ++r) {
        unsigned lo = ~0u, hi = 0;
        for (std::uint8_t g = 0; g < 4; ++g) {
            lo = std::min(lo, rounds[g][r]);
            hi = std::max(hi, rounds[g][r]);
        }
        EXPECT_LE(hi - lo, 1u) << "round " << r;
    }
}

TEST_F(SchedulerFixture, PartialTailChunk)
{
    const Program prog = scheduler.scheduleBootstrapBatch(70);
    std::vector<unsigned> counts;
    for (const auto &inst : prog.instructions()) {
        if (inst.op == Opcode::XpuBlindRotate)
            counts.push_back(inst.count);
    }
    ASSERT_EQ(counts.size(), 5u);
    EXPECT_EQ(counts.back(), 6u); // 70 = 4*16 + 6
}

TEST_F(SchedulerFixture, KskTrafficIsAmortized)
{
    const Program prog = scheduler.scheduleBootstrapBatch(64);
    for (const auto &inst : prog.instructions()) {
        if (inst.op == Opcode::DmaLoadKsk) {
            // 16 ciphertexts amortized over 64 -> one quarter of the
            // KSK per chunk.
            EXPECT_EQ(inst.operand, params.kskBytes() * 16 / 64);
        }
    }
}

TEST_F(SchedulerFixture, StagesSeparatedByBarriers)
{
    Workload w;
    w.name = "two-layer";
    w.stages.push_back({64, 1000});
    w.stages.push_back({64, 0});
    const Program prog = scheduler.schedule(w);

    const auto hist = prog.histogram();
    // One barrier per group at the single stage boundary.
    EXPECT_EQ(hist.at(Opcode::Barrier), 4u);
    EXPECT_EQ(prog.totalBlindRotations(), 128u);
    EXPECT_GE(hist.at(Opcode::VpuPAlu), 1u);

    // Barriers must appear after every stage-1 blind rotate and before
    // every stage-2 one, per group.
    for (std::uint8_t g = 0; g < 4; ++g) {
        const auto stream = prog.groupStream(g);
        bool seen_barrier = false;
        unsigned before = 0, after = 0;
        for (const auto &inst : stream) {
            if (inst.op == Opcode::Barrier)
                seen_barrier = true;
            else if (inst.op == Opcode::XpuBlindRotate)
                (seen_barrier ? after : before) += 1;
        }
        EXPECT_TRUE(seen_barrier);
        EXPECT_GT(before, 0u);
        EXPECT_GT(after, 0u);
    }
}

TEST_F(SchedulerFixture, BskBytesMatchTransformFormat)
{
    // (k+1) l_b (k+1) polys of N/2 complex64 = 8 * 512 * 8 bytes.
    EXPECT_EQ(scheduler.bskBytesPerIteration(), 8ull * 512 * 8);
}

TEST_F(SchedulerFixture, SuperbatchDisassemblyMatchesGolden)
{
    // The canonical 64-LWE superbatch, disassembled group by group and
    // diffed against a checked-in golden file. A diff means either the
    // scheduler's emission or the disassembly format changed — both are
    // contracts other layers (backends, the co-simulator, humans
    // reading traces) depend on; regenerate the golden only for an
    // intentional change.
    const Program prog = scheduler.scheduleBootstrapBatch(64);
    EXPECT_EQ(prog.numGroups(), 4u);
    const std::string disasm = prog.disassembleByGroup();

    const std::string path =
        std::string(MORPHLING_TEST_DATA_DIR) + "/superbatch64.disasm";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(disasm, golden.str());
}

TEST(Program, NumGroups)
{
    Program prog("p");
    EXPECT_EQ(prog.numGroups(), 0u);
    prog.add({Opcode::VpuModSwitch, 0, 1, 0});
    EXPECT_EQ(prog.numGroups(), 1u);
    prog.add({Opcode::VpuModSwitch, 2, 1, 0});
    EXPECT_EQ(prog.numGroups(), 3u);
}

TEST(Workload, Totals)
{
    Workload w;
    w.stages.push_back({10, 100});
    w.stages.push_back({20, 200});
    EXPECT_EQ(w.totalBootstraps(), 30u);
    EXPECT_EQ(w.totalLinearMacs(), 300u);
}

} // namespace
} // namespace morphling::compiler
