/**
 * @file
 * Tests of binary serialization: round trips for parameters, keys and
 * ciphertexts; the client/server split (server bootstraps with
 * evaluation keys only); and strict rejection of malformed streams
 * (death tests).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "tfhe/encoding.h"
#include "tfhe/serialize.h"

namespace morphling::tfhe {
namespace {

class SerializeFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0x5E81A);
        keys_ = new KeySet(KeySet::generate(paramsTest(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        keys_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0xD15C};

    static KeySet *keys_;
};

KeySet *SerializeFixture::keys_ = nullptr;

TEST_F(SerializeFixture, ParamsRoundTrip)
{
    std::stringstream ss;
    saveParams(ss, keys().params);
    const TfheParams back = loadParams(ss);
    EXPECT_EQ(back.name, keys().params.name);
    EXPECT_EQ(back.polyDegree, keys().params.polyDegree);
    EXPECT_EQ(back.lweDimension, keys().params.lweDimension);
    EXPECT_EQ(back.bskLevels, keys().params.bskLevels);
    EXPECT_EQ(back.kskBaseBits, keys().params.kskBaseBits);
    EXPECT_DOUBLE_EQ(back.lweNoiseStd, keys().params.lweNoiseStd);
}

TEST_F(SerializeFixture, CiphertextRoundTripBitExact)
{
    const auto ct = encryptPadded(keys(), 3, 4, rng);
    std::stringstream ss;
    saveCiphertext(ss, ct);
    const auto back = loadCiphertext(ss);
    EXPECT_EQ(back.raw(), ct.raw());
}

TEST_F(SerializeFixture, LweKeyRoundTrip)
{
    std::stringstream ss;
    saveLweKey(ss, keys().lweKey);
    const auto back = loadLweKey(ss, keys().params);
    EXPECT_EQ(back.bits(), keys().lweKey.bits());

    // The reloaded key decrypts ciphertexts made with the original.
    const auto ct = encryptPadded(keys(), 2, 4, rng);
    EXPECT_EQ(lweDecrypt(back, ct, 8), lweDecrypt(keys().lweKey, ct, 8));
}

TEST_F(SerializeFixture, ClientServerSplit)
{
    // Client: keeps the secret key, ships evaluation keys + ciphertext.
    std::stringstream wire;
    saveEvaluationKeys(wire,
                       EvaluationKeys::fromKeySet(keys()));
    const auto ct = encryptPadded(keys(), 2, 4, rng);
    std::stringstream ct_wire;
    saveCiphertext(ct_wire, ct);

    // Server: reconstructs everything from the streams and bootstraps
    // without any secret material.
    const EvaluationKeys server_keys = loadEvaluationKeys(wire);
    const auto server_ct = loadCiphertext(ct_wire);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto result = serverBootstrap(server_keys, server_ct, lut);

    // Client: decrypts the response.
    EXPECT_EQ(decryptPadded(keys(), result, 4), 3u);
}

TEST_F(SerializeFixture, ServerBootstrapMatchesLocal)
{
    std::stringstream wire;
    saveEvaluationKeys(wire, EvaluationKeys::fromKeySet(keys()));
    const EvaluationKeys server_keys = loadEvaluationKeys(wire);

    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    for (std::uint32_t m = 0; m < 4; ++m) {
        const auto ct = encryptPadded(keys(), m, 4, rng);
        const auto remote = serverBootstrap(server_keys, ct, lut);
        const auto local = programmableBootstrap(keys(), ct, lut);
        // Same keys, same input: bit-identical outputs.
        EXPECT_EQ(remote.raw(), local.raw()) << m;
    }
}

TEST_F(SerializeFixture, FingerprintStableAcrossRoundTrip)
{
    // The fingerprint is derived from the canonical wire format, so a
    // second process that deserializes the same keys computes the same
    // value — the property the tenant registry's LRU keying relies on.
    const EvaluationKeys eval = EvaluationKeys::fromKeySet(keys());
    const KeyFingerprint fp = fingerprintEvaluationKeys(eval);
    EXPECT_EQ(fp, fingerprintEvaluationKeys(eval)); // deterministic

    std::stringstream wire;
    saveEvaluationKeys(wire, eval);
    const EvaluationKeys reloaded = loadEvaluationKeys(wire);
    EXPECT_EQ(fingerprintEvaluationKeys(reloaded), fp);

    // The hex rendering is 16 lowercase hex digits.
    const std::string hex = fingerprintHex(fp);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"),
              std::string::npos);

    // Wire size is the serialized length (what the registry budgets).
    EXPECT_EQ(evaluationKeysWireBytes(eval), wire.str().size());
}

TEST_F(SerializeFixture, FingerprintDistinguishesKeys)
{
    const EvaluationKeys eval = EvaluationKeys::fromKeySet(keys());
    const KeyFingerprint fp = fingerprintEvaluationKeys(eval);

    // A different tenant's key ceremony yields a different fingerprint.
    Rng other_rng(0x7E4A47);
    const KeySet other =
        KeySet::generate(paramsTest(), other_rng);
    EXPECT_NE(fingerprintEvaluationKeys(
                  EvaluationKeys::fromKeySet(other)),
              fp);

    // Even a single mutated KSK entry changes it: rebuild the keys
    // from a serialized stream with one flipped payload byte.
    std::stringstream wire;
    saveEvaluationKeys(wire, eval);
    std::string bytes = wire.str();
    bytes[bytes.size() - 5] ^= 0x01; // inside the last KSK ciphertext
    std::stringstream mutated(bytes);
    const EvaluationKeys reloaded = loadEvaluationKeys(mutated);
    EXPECT_NE(fingerprintEvaluationKeys(reloaded), fp);
}

TEST_F(SerializeFixture, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "JUNKJUNKJUNKJUNK";
    EXPECT_EXIT(loadParams(ss), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST_F(SerializeFixture, RejectsTruncatedStream)
{
    std::stringstream ss;
    saveCiphertext(ss, encryptPadded(keys(), 1, 4, rng));
    const std::string full = ss.str();
    std::stringstream cut;
    cut << full.substr(0, full.size() / 2);
    EXPECT_EXIT(loadCiphertext(cut), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST_F(SerializeFixture, RejectsWrongObjectType)
{
    std::stringstream ss;
    saveCiphertext(ss, encryptPadded(keys(), 1, 4, rng));
    EXPECT_EXIT(loadParams(ss), ::testing::ExitedWithCode(1),
                "type tag");
}

// --- tryLoadEvaluationKeys: the non-fatal decode surface a network
// --- server parses untrusted enrollment blobs through.

TEST_F(SerializeFixture, TryLoadRoundTripsGoodKeys)
{
    std::stringstream ss;
    saveEvaluationKeys(ss, EvaluationKeys::fromKeySet(keys()));
    std::string error;
    const auto back = tryLoadEvaluationKeys(ss, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(fingerprintEvaluationKeys(*back),
              fingerprintEvaluationKeys(
                  EvaluationKeys::fromKeySet(keys())));
}

TEST_F(SerializeFixture, TryLoadSurvivesTruncatedStream)
{
    std::stringstream ss;
    saveEvaluationKeys(ss, EvaluationKeys::fromKeySet(keys()));
    const std::string full = ss.str();
    // Cut at several depths: header, mid-BSK, just before the end.
    for (const std::size_t cut :
         {std::size_t{3}, full.size() / 2, full.size() - 5}) {
        std::stringstream truncated;
        truncated << full.substr(0, cut);
        std::string error;
        const auto back = tryLoadEvaluationKeys(truncated, &error);
        EXPECT_FALSE(back.has_value()) << "cut at " << cut;
        EXPECT_FALSE(error.empty()) << "cut at " << cut;
    }
}

TEST_F(SerializeFixture, TryLoadRejectsGarbageWithoutExiting)
{
    std::stringstream ss;
    ss << "JUNKJUNKJUNKJUNKJUNKJUNKJUNK";
    std::string error;
    const auto back = tryLoadEvaluationKeys(ss, &error);
    EXPECT_FALSE(back.has_value());
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(SerializeFixture, TryLoadRejectsCorruptedDimensions)
{
    std::stringstream ss;
    saveEvaluationKeys(ss, EvaluationKeys::fromKeySet(keys()));
    std::string wire = ss.str();
    // Stamp an implausible value over bytes early in the params
    // block; whatever field it lands on must be rejected, not
    // crashed on or allocated for.
    for (std::size_t at = 16; at < 64 && at + 4 <= wire.size();
         at += 8) {
        std::string corrupt = wire;
        corrupt[at] = '\xFF';
        corrupt[at + 1] = '\xFF';
        corrupt[at + 2] = '\xFF';
        corrupt[at + 3] = '\x7F';
        std::stringstream in(corrupt);
        std::string error;
        const auto back = tryLoadEvaluationKeys(in, &error);
        if (back.has_value())
            continue; // landed on a field where the value is legal
        EXPECT_FALSE(error.empty()) << "corruption at byte " << at;
    }
}

TEST_F(SerializeFixture, FatalLoadStillFatalsAfterTryLoad)
{
    // The thread-local try-parse mode must not leak: a tryLoad
    // followed by a trusting load keeps the fatal() behaviour.
    std::stringstream bad;
    bad << "JUNKJUNKJUNKJUNK";
    std::string error;
    EXPECT_FALSE(tryLoadEvaluationKeys(bad, &error).has_value());
    std::stringstream alsoBad;
    alsoBad << "JUNKJUNKJUNKJUNK";
    EXPECT_EXIT(loadParams(alsoBad), ::testing::ExitedWithCode(1),
                "bad magic");
}

} // namespace
} // namespace morphling::tfhe
