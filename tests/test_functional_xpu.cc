/**
 * @file
 * Tests of the functional XPU datapath: the merge-split FFT against
 * the schoolbook negacyclic product, the VPE accumulation registers,
 * and full blind rotations that must decrypt identically to the
 * reference library path. Also cross-checks the datapath counters
 * against the closed-form resource arithmetic the cycle model uses.
 */

#include <gtest/gtest.h>

#include "arch/functional/functional_xpu.h"
#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"

namespace morphling::arch::functional {
namespace {

using namespace morphling::tfhe;

TorusPolynomial
randomTorusPoly(unsigned n, Rng &rng)
{
    TorusPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = rng.nextU32();
    return p;
}

IntPolynomial
randomDigits(unsigned n, std::int32_t half_range, Rng &rng)
{
    IntPolynomial p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = static_cast<std::int32_t>(rng.nextBelow(
                   2 * static_cast<std::uint64_t>(half_range))) -
               half_range;
    return p;
}

double
maxTorusError(const TorusPolynomial &a, const TorusPolynomial &b)
{
    double max_err = 0;
    for (unsigned i = 0; i < a.degree(); ++i)
        max_err = std::max(max_err, torusDistance(a[i], b[i]));
    return max_err;
}

TEST(MergeSplitFft, PairProductMatchesSchoolbook)
{
    // Two independent products computed through ONE forward pass each
    // side and ONE inverse pass: the core merge-split claim.
    const unsigned n = 256;
    Rng rng(42);
    MergeSplitFft ms(n);

    const auto a1 = randomDigits(n, 128, rng);
    const auto a2 = randomDigits(n, 128, rng);
    const auto b1 = randomTorusPoly(n, rng);
    const auto b2 = randomTorusPoly(n, rng);

    FourierPolynomial fa1(n), fa2(n), fb1(n), fb2(n);
    ms.forwardPair(a1, a2, fa1, fa2);
    ms.forwardPair(b1, b2, fb1, fb2);

    FourierPolynomial acc1(n), acc2(n);
    acc1.mulAddAssign(fa1, fb1);
    acc2.mulAddAssign(fa2, fb2);

    TorusPolynomial c1(n), c2(n);
    ms.inversePair(acc1, acc2, c1, c2);

    TorusPolynomial ref1(n), ref2(n);
    negacyclicMulAddSchoolbook(ref1, a1, b1);
    negacyclicMulAddSchoolbook(ref2, a2, b2);

    EXPECT_LT(maxTorusError(c1, ref1), 1.0 / (1 << 24));
    EXPECT_LT(maxTorusError(c2, ref2), 1.0 / (1 << 24));
    EXPECT_EQ(ms.passes(), 3u); // 2 forward + 1 inverse
}

TEST(MergeSplitFft, SmallValuesAreExact)
{
    const unsigned n = 128;
    Rng rng(43);
    MergeSplitFft ms(n);
    const auto a1 = randomDigits(n, 4, rng);
    const auto a2 = randomDigits(n, 4, rng);
    const auto b1 = randomTorusPoly(n, rng);
    const auto b2 = randomTorusPoly(n, rng);

    FourierPolynomial fa1(n), fa2(n), fb1(n), fb2(n);
    ms.forwardPair(a1, a2, fa1, fa2);
    ms.forwardPair(b1, b2, fb1, fb2);
    FourierPolynomial acc1(n), acc2(n);
    acc1.mulAddAssign(fa1, fb1);
    acc2.mulAddAssign(fa2, fb2);
    TorusPolynomial c1(n), c2(n);
    ms.inversePair(acc1, acc2, c1, c2);

    TorusPolynomial ref1(n), ref2(n);
    negacyclicMulAddSchoolbook(ref1, a1, b1);
    negacyclicMulAddSchoolbook(ref2, a2, b2);
    EXPECT_EQ(c1, ref1);
    EXPECT_EQ(c2, ref2);
}

TEST(MergeSplitFft, SplitSeparatesIndependentSignals)
{
    // The split must not leak one polynomial into the other: transform
    // (a, 0) and (0, a) and compare spectra.
    const unsigned n = 64;
    Rng rng(44);
    const auto a = randomDigits(n, 100, rng);
    IntPolynomial zero(n);
    MergeSplitFft ms(n);

    FourierPolynomial a_first(n), z_first(n), a_second(n), z_second(n);
    ms.forwardPair(a, zero, a_first, z_first);
    ms.forwardPair(zero, a, z_second, a_second);

    for (unsigned k = 0; k < n / 2; ++k) {
        EXPECT_NEAR(a_first.re(k), a_second.re(k), 1e-6);
        EXPECT_NEAR(a_first.im(k), a_second.im(k), 1e-6);
        EXPECT_NEAR(z_first.re(k), 0.0, 1e-6);
        EXPECT_NEAR(z_second.im(k), 0.0, 1e-6);
    }
}

TEST(Vpe, AccumulatesAndRetires)
{
    const unsigned n = 64;
    Vpe vpe(n);
    Rng rng(45);
    MergeSplitFft ms(n);

    const auto a = randomDigits(n, 16, rng);
    const auto b = randomTorusPoly(n, rng);
    IntPolynomial zero_i(n);
    TorusPolynomial zero_t(n);
    FourierPolynomial fa(n), fb(n), sink(n);
    ms.forwardPair(a, zero_i, fa, sink);
    ms.forwardPair(b, zero_t, fb, sink);

    vpe.clearAccumulator();
    vpe.multiplyAccumulate(fa, fb);
    vpe.multiplyAccumulate(fa, fb); // accumulate twice
    EXPECT_EQ(vpe.macOps(), 2u * (n / 2));

    const auto &retired = vpe.retireForIfft();
    TorusPolynomial out(n), sink_t(n);
    FourierPolynomial zero_f(n);
    ms.inversePair(retired, zero_f, out, sink_t);

    TorusPolynomial ref(n);
    negacyclicMulAddSchoolbook(ref, a, b);
    negacyclicMulAddSchoolbook(ref, a, b);
    EXPECT_EQ(out, ref);

    // After retiring, the active register is clean.
    for (unsigned i = 0; i < vpe.accumulator().size(); ++i) {
        EXPECT_EQ(vpe.accumulator().re(i), 0.0);
        EXPECT_EQ(vpe.accumulator().im(i), 0.0);
    }
}

class FunctionalXpuFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xF00D);
        keys_ = new KeySet(KeySet::generate(paramsTest(), rng));
        Rng bsk_rng(0xF00D + 1);
        raw_bsk_ = new std::vector<GgswCiphertext>(generateRawBsk(
            keys_->lweKey, keys_->glweKey, bsk_rng));
    }
    static void
    TearDownTestSuite()
    {
        delete keys_;
        delete raw_bsk_;
        keys_ = nullptr;
        raw_bsk_ = nullptr;
    }

    const KeySet &keys() { return *keys_; }
    Rng rng{0xFEED};

    static KeySet *keys_;
    static std::vector<GgswCiphertext> *raw_bsk_;
};

KeySet *FunctionalXpuFixture::keys_ = nullptr;
std::vector<GgswCiphertext> *FunctionalXpuFixture::raw_bsk_ = nullptr;

TEST_F(FunctionalXpuFixture, BlindRotationDecryptsCorrectly)
{
    FunctionalXpu xpu(keys().params);
    xpu.loadBootstrapKey(*raw_bsk_);

    const std::uint32_t space = 4;
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return (m + 1) % 4;
    });
    const auto tp = buildTestPolynomial(keys().params.polyDegree, lut);

    for (std::uint32_t m = 0; m < space; ++m) {
        const auto ct = encryptPadded(keys(), m, space, rng);
        const auto switched =
            modSwitch(ct, keys().params.polyDegree);
        const auto acc = xpu.runBlindRotate(tp, switched);
        const auto out = keys().ksk.apply(acc.sampleExtract());
        EXPECT_EQ(decryptPadded(keys(), out, space), (m + 1) % 4)
            << "m=" << m;
    }
}

TEST_F(FunctionalXpuFixture, MatchesLibraryBlindRotation)
{
    // The XPU datapath and the library path use different FFT
    // conventions, so results differ only by sub-noise rounding.
    FunctionalXpu xpu(keys().params);
    xpu.loadBootstrapKey(*raw_bsk_);

    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto tp = buildTestPolynomial(keys().params.polyDegree, lut);
    const auto ct = encryptPadded(keys(), 2, 4, rng);
    const auto switched = modSwitch(ct, keys().params.polyDegree);

    // Reference library path needs the Fourier-domain BSK derived from
    // the SAME raw GGSWs.
    std::vector<FourierGgsw> lib_bsk;
    // (BootstrapKey regenerates; instead run blindRotate manually.)
    GlweCiphertext ref = GlweCiphertext::trivial(
        keys().params.glweDimension, tp);
    const unsigned two_n = 2 * keys().params.polyDegree;
    const unsigned n = keys().params.lweDimension;
    ref = ref.mulByXPower((two_n - switched[n] % two_n) % two_n);
    for (unsigned i = 0; i < n; ++i) {
        const unsigned a_tilde = switched[i] % two_n;
        if (a_tilde == 0)
            continue;
        ref = cmuxRotate(FourierGgsw::fromGgsw((*raw_bsk_)[i]), ref,
                         a_tilde);
    }

    const auto got = xpu.runBlindRotate(tp, switched);
    for (unsigned c = 0; c <= keys().params.glweDimension; ++c) {
        for (unsigned j = 0; j < keys().params.polyDegree; ++j) {
            EXPECT_LT(torusDistance(got.component(c)[j],
                                    ref.component(c)[j]),
                      1.0 / (1 << 20))
                << "c=" << c << " j=" << j;
        }
    }
}

TEST_F(FunctionalXpuFixture, BatchSharesBskAcrossRows)
{
    FunctionalXpu xpu(keys().params, /*rows=*/4);
    xpu.loadBootstrapKey(*raw_bsk_);

    const std::uint32_t space = 4;
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return m;
    });
    const auto tp = buildTestPolynomial(keys().params.polyDegree, lut);

    std::vector<std::vector<std::uint32_t>> batch;
    std::vector<std::uint32_t> messages = {0, 1, 2, 3};
    std::vector<LweCiphertext> cts;
    for (auto m : messages) {
        cts.push_back(encryptPadded(keys(), m, space, rng));
        batch.push_back(
            modSwitch(cts.back(), keys().params.polyDegree));
    }

    const auto accs = xpu.runBlindRotateBatch(tp, batch);
    ASSERT_EQ(accs.size(), 4u);
    for (std::size_t i = 0; i < accs.size(); ++i) {
        const auto out = keys().ksk.apply(accs[i].sampleExtract());
        EXPECT_EQ(decryptPadded(keys(), out, space), messages[i]);
    }
}

TEST_F(FunctionalXpuFixture, DatapathCountersMatchClosedForm)
{
    FunctionalXpu xpu(keys().params);
    xpu.loadBootstrapKey(*raw_bsk_);
    const auto before = xpu.stats();

    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    const auto tp = buildTestPolynomial(keys().params.polyDegree, lut);
    const auto ct = encryptPadded(keys(), 1, 4, rng);
    const auto switched = modSwitch(ct, keys().params.polyDegree);
    xpu.runBlindRotate(tp, switched);

    const auto after = xpu.stats();
    const auto iters = after.iterations - before.iterations;
    EXPECT_GT(iters, 0u);

    // Per iteration: (k+1) l_b digits through merge-split forward
    // passes, (k+1) outputs through inverse passes, (k+1)^2 l_b * N/2
    // MACs.
    const std::uint64_t kp1 = keys().params.glweDimension + 1;
    const std::uint64_t lb = keys().params.bskLevels;
    const std::uint64_t half = keys().params.polyDegree / 2;
    EXPECT_EQ(after.fftPasses - before.fftPasses,
              iters * ((kp1 * lb + 1) / 2));
    EXPECT_EQ(after.ifftPasses - before.ifftPasses,
              iters * ((kp1 + 1) / 2));
    EXPECT_EQ(after.vpeMacOps - before.vpeMacOps,
              iters * kp1 * kp1 * lb * half);
}

} // namespace
} // namespace morphling::arch::functional
