/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.h"

namespace morphling::sim {
namespace {

TEST(Stats, ScalarAccumulates)
{
    StatSet set("unit");
    auto &s = set.scalar("count", "things counted");
    s += 3;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.set(10);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
}

TEST(Stats, ScalarIsStableAcrossLookups)
{
    StatSet set("unit");
    set.scalar("x") += 1;
    set.scalar("x") += 2;
    EXPECT_DOUBLE_EQ(set.lookup("x").value(), 3.0);
    EXPECT_TRUE(set.has("x"));
    EXPECT_FALSE(set.has("y"));
}

TEST(Stats, ScalarPointerStability)
{
    StatSet set("unit");
    auto &a = set.scalar("a");
    for (int i = 0; i < 100; ++i)
        set.scalar("s" + std::to_string(i));
    a += 5;
    EXPECT_DOUBLE_EQ(set.lookup("a").value(), 5.0);
}

TEST(Stats, HistogramMoments)
{
    StatSet set("unit");
    auto &h = set.histogram("lat");
    h.sample(1);
    h.sample(2);
    h.sample(3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Stats, EmptyHistogramIsZero)
{
    StatSet set("unit");
    const auto &h = set.histogram("empty");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Stats, ResetClearsEverything)
{
    StatSet set("unit");
    set.scalar("a") += 7;
    set.histogram("h").sample(5);
    set.reset();
    EXPECT_DOUBLE_EQ(set.lookup("a").value(), 0.0);
    EXPECT_EQ(set.histogram("h").count(), 0u);
}

TEST(Stats, DumpContainsOwnerAndDescriptions)
{
    StatSet set("xpu");
    set.scalar("busy", "busy cycles") += 42;
    set.histogram("lat", "latencies").sample(2.5);
    std::ostringstream oss;
    set.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("xpu.busy = 42"), std::string::npos);
    EXPECT_NE(out.find("busy cycles"), std::string::npos);
    EXPECT_NE(out.find("xpu.lat"), std::string::npos);
}

TEST(Stats, PreservesCreationOrder)
{
    StatSet set("u");
    set.scalar("zeta");
    set.scalar("alpha");
    const auto scalars = set.scalars();
    ASSERT_EQ(scalars.size(), 2u);
    EXPECT_EQ(scalars[0]->name(), "zeta");
    EXPECT_EQ(scalars[1]->name(), "alpha");
}

} // namespace
} // namespace morphling::sim
