/**
 * @file
 * HBM2e external-memory model.
 *
 * One HBM2e stack with 8 channels. Following the paper's methodology we
 * model a moderate *sustained* average bandwidth (310 GB/s by default)
 * rather than pin peak numbers; each channel serializes its transfers
 * at bandwidth/channels and adds a fixed access latency. Channels are
 * partitioned by the accelerator configuration (6 for the VPU / KSK
 * path, 2 for the XPU / BSK path in the default Morphling config).
 */

#ifndef MORPHLING_SIM_HBM_H
#define MORPHLING_SIM_HBM_H

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/stats.h"

namespace morphling::sim {

/** Static configuration of the HBM stack. */
struct HbmConfig
{
    unsigned channels = 8;
    double bandwidthGBs = 310.0; //!< aggregate sustained bandwidth
    double clockGHz = 1.2;       //!< tick rate of the simulation clock
    Tick accessLatency = 100;    //!< fixed cycles added per transfer

    /** Sustained bytes per simulation cycle on one channel. */
    double
    bytesPerCyclePerChannel() const
    {
        return bandwidthGBs / channels / clockGHz;
    }
};

/**
 * The HBM device: per-channel busy tracking with completion callbacks.
 */
class Hbm
{
  public:
    Hbm(EventQueue &eq, HbmConfig config);

    const HbmConfig &config() const { return config_; }

    /**
     * Issue a transfer of `bytes` on one channel. The channel
     * serializes behind earlier transfers; `on_done` fires at
     * completion time.
     *
     * @return completion tick
     */
    Tick access(unsigned channel, std::uint64_t bytes,
                EventQueue::Callback on_done = nullptr);

    /**
     * Issue a transfer striped evenly across a contiguous channel
     * group; `on_done` fires when the last stripe lands.
     */
    Tick accessStriped(unsigned first_channel, unsigned num_channels,
                       std::uint64_t bytes,
                       EventQueue::Callback on_done = nullptr);

    /**
     * Multicast read: one striped transfer's worth of channel
     * occupancy delivering the same data to several consumers. The
     * bytes cross the HBM interface exactly once; every consumer
     * callback fires at the tick the last stripe lands. This is the
     * fabric primitive behind BSK broadcast — N accelerators fed by
     * one read instead of N copies of the same stream.
     *
     * @return completion tick
     */
    Tick accessStripedMulticast(unsigned first_channel,
                                unsigned num_channels,
                                std::uint64_t bytes,
                                std::vector<EventQueue::Callback> consumers);

    /** Earliest tick at which the given channel is free. */
    Tick channelFreeAt(unsigned channel) const;

    /** Total bytes moved so far (all channels). */
    std::uint64_t totalBytes() const;

    /** Achieved average bandwidth in GB/s over [0, now]. */
    double achievedBandwidthGBs() const;

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    EventQueue &eq_;
    HbmConfig config_;
    std::vector<Tick> busyUntil_;
    std::vector<std::uint64_t> channelBytes_;
    StatSet stats_{"hbm"};
};

} // namespace morphling::sim

#endif // MORPHLING_SIM_HBM_H
