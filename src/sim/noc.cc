#include "noc.h"

#include <cmath>

#include "common/logging.h"
#include "telemetry/sim_bridge.h"

namespace morphling::sim {

NocLink::NocLink(EventQueue *eq, std::string name,
                 unsigned width_bytes_per_cycle)
    : eq_(eq), name_(std::move(name)), width_(width_bytes_per_cycle)
{
    fatal_if(width_ == 0, "NoC link '", name_, "' needs nonzero width");
}

Tick
NocLink::transfer(std::uint64_t bytes, EventQueue::Callback on_done)
{
    panic_if(eq_ == nullptr, "transfer on default-constructed link");
    const Tick cycles = static_cast<Tick>(std::ceil(
        static_cast<double>(bytes) / static_cast<double>(width_)));
    const Tick start = std::max(eq_->now(), busyUntil_);
    const Tick done = start + cycles;
    busyUntil_ = done;
    busyCycles_ += cycles;
    totalBytes_ += bytes;
    MORPHLING_SIM_INTERVAL("noc." + name_, "xfer", start, done, bytes);
    if (on_done)
        eq_->schedule(done, std::move(on_done));
    return done;
}

double
NocLink::utilization() const
{
    if (eq_ == nullptr || eq_->now() == 0)
        return 0.0;
    return static_cast<double>(busyCycles_) /
           static_cast<double>(eq_->now());
}

NocLink &
Noc::addLink(const std::string &name, unsigned width_bytes_per_cycle)
{
    panic_if(links_.count(name), "duplicate NoC link '", name, "'");
    auto [it, inserted] =
        links_.emplace(name, NocLink(&eq_, name, width_bytes_per_cycle));
    return it->second;
}

NocLink &
Noc::link(const std::string &name)
{
    auto it = links_.find(name);
    panic_if(it == links_.end(), "no NoC link '", name, "'");
    return it->second;
}

double
Noc::aggregateBandwidthTBs(double clock_ghz) const
{
    double bytes_per_cycle = 0;
    for (const auto &[name, l] : links_)
        bytes_per_cycle += l.widthBytesPerCycle();
    return bytes_per_cycle * clock_ghz / 1000.0;
}

void
Noc::dumpStats(StatSet &stats) const
{
    for (const auto &[name, l] : links_) {
        stats.scalar(name + ".bytes").set(
            static_cast<double>(l.totalBytes()));
        stats.scalar(name + ".utilization").set(l.utilization());
    }
}

} // namespace morphling::sim
