#include "stats.h"

#include <ostream>

#include "common/logging.h"

namespace morphling::sim {

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Histogram::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0;
}

Scalar &
StatSet::scalar(const std::string &name, const std::string &desc)
{
    auto it = scalarMap_.find(name);
    if (it == scalarMap_.end()) {
        it = scalarMap_.emplace(name, Scalar(name, desc)).first;
        scalarOrder_.push_back(name);
    }
    return it->second;
}

Histogram &
StatSet::histogram(const std::string &name, const std::string &desc)
{
    auto it = histMap_.find(name);
    if (it == histMap_.end()) {
        it = histMap_.emplace(name, Histogram(name, desc)).first;
        histOrder_.push_back(name);
    }
    return it->second;
}

const Scalar &
StatSet::lookup(const std::string &name) const
{
    auto it = scalarMap_.find(name);
    panic_if(it == scalarMap_.end(), "no stat '", name, "' in set '",
             owner_, "'");
    return it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return scalarMap_.count(name) > 0;
}

std::vector<const Scalar *>
StatSet::scalars() const
{
    std::vector<const Scalar *> out;
    out.reserve(scalarOrder_.size());
    for (const auto &name : scalarOrder_)
        out.push_back(&scalarMap_.at(name));
    return out;
}

std::vector<const Histogram *>
StatSet::histograms() const
{
    std::vector<const Histogram *> out;
    out.reserve(histOrder_.size());
    for (const auto &name : histOrder_)
        out.push_back(&histMap_.at(name));
    return out;
}

void
StatSet::reset()
{
    for (auto &[name, s] : scalarMap_)
        s.reset();
    for (auto &[name, h] : histMap_)
        h.reset();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto *s : scalars()) {
        os << owner_ << '.' << s->name() << " = " << s->value();
        if (!s->desc().empty())
            os << "  # " << s->desc();
        os << '\n';
    }
    for (const auto *h : histograms()) {
        os << owner_ << '.' << h->name() << " = {count=" << h->count()
           << " mean=" << h->mean() << " min=" << h->min()
           << " max=" << h->max() << "}\n";
    }
}

} // namespace morphling::sim
