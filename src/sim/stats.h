/**
 * @file
 * A small statistics package in the spirit of gem5's Stats: named
 * scalar counters and histograms grouped per component, dumpable as a
 * table. Every model component owns a StatSet; benches and tests read
 * stats by name.
 *
 * Thread safety: none — a StatSet belongs to exactly one component and
 * is mutated from one thread at a time, like the simulator's event
 * loop. Components whose stats are updated from several threads must
 * serialize externally (service::BootstrapService guards its StatSet
 * with a mutex and hands out snapshots by value).
 */

#ifndef MORPHLING_SIM_STATS_H
#define MORPHLING_SIM_STATS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace morphling::sim {

/** One named scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;
    Scalar(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    double value() const { return value_; }

    Scalar &operator+=(double v)
    {
        value_ += v;
        return *this;
    }
    Scalar &operator++()
    {
        value_ += 1;
        return *this;
    }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0;
};

/** A named histogram with streaming mean/min/max. */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }

    void sample(double v);

    const std::string &name() const { return name_; }
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * The per-component collection of statistics.
 *
 * scalar()/histogram() create on first use and return a stable
 * reference afterwards (names are unique within the set).
 */
class StatSet
{
  public:
    explicit StatSet(std::string owner = "") : owner_(std::move(owner)) {}

    const std::string &owner() const { return owner_; }

    /** Get-or-create a scalar stat. */
    Scalar &scalar(const std::string &name, const std::string &desc = "");

    /** Get-or-create a histogram stat. */
    Histogram &histogram(const std::string &name,
                         const std::string &desc = "");

    /** Look up an existing scalar; panics if absent (tests use this to
     *  assert a stat was actually recorded). */
    const Scalar &lookup(const std::string &name) const;

    bool has(const std::string &name) const;

    /** All scalars in creation order. */
    std::vector<const Scalar *> scalars() const;
    std::vector<const Histogram *> histograms() const;

    /** Reset every stat to zero. */
    void reset();

    /** Render "owner.name = value  # desc" lines. */
    void dump(std::ostream &os) const;

  private:
    std::string owner_;
    // std::map keeps pointers stable across inserts; order_ preserves
    // creation order for dumps.
    std::map<std::string, Scalar> scalarMap_;
    std::map<std::string, Histogram> histMap_;
    std::vector<std::string> scalarOrder_;
    std::vector<std::string> histOrder_;
};

} // namespace morphling::sim

#endif // MORPHLING_SIM_STATS_H
