/**
 * @file
 * Component-scoped simulation tracing, in the spirit of gem5's debug
 * flags: each model component logs through DTRACE(eq, "flag", ...),
 * which is dropped unless the flag is enabled. Traces carry the
 * simulated tick, so interleavings can be inspected after the fact.
 *
 * Off by default and cheap when off (one relaxed atomic load guarded
 * by the any-enabled fast path).
 *
 * Thread safety: the singleton is shared by simulator code and the
 * service worker threads (service/bootstrap_service.h), so flag
 * lookup, emission and reconfiguration are all serialized internally.
 * Each log() emits its line atomically; concurrent lines never
 * interleave mid-line, though their relative order is scheduling-
 * dependent.
 *
 * Migration note (telemetry subsystem): DTRACE remains the tool for
 * free-form, human-readable debug lines gated by flags. Structured
 * timing data — component busy/stall intervals, per-transaction
 * byte counts, wall-clock spans — now belongs to src/telemetry:
 * use MORPHLING_SIM_INTERVAL / MORPHLING_SIM_INSTANT
 * (telemetry/sim_bridge.h) for virtual-time tracks, and
 * MORPHLING_SPAN (telemetry/telemetry.h) for wall-clock spans. Do
 * not add new DTRACE call sites whose only purpose is timing; those
 * belong on telemetry tracks where they export to Chrome trace JSON.
 * As a bridge, every emitted DTRACE line is mirrored as an instant
 * event on track "log.<flag>" when a SimTraceRecorder is installed,
 * so legacy flags show up on the same timeline during migration.
 */

#ifndef MORPHLING_SIM_TRACE_H
#define MORPHLING_SIM_TRACE_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <set>
#include <string>

#include "common/logging.h"
#include "sim/event_queue.h"

namespace morphling::sim {

/** Global trace controller (per process). */
class Trace
{
  public:
    static Trace &instance();

    /** Enable one flag, or "all". */
    void enable(const std::string &flag);
    void disable(const std::string &flag);
    void disableAll();

    /** Lock-free fast path: false the moment no flag is live. */
    bool anyEnabled() const
    {
        return anyEnabled_.load(std::memory_order_relaxed);
    }
    bool enabled(const std::string &flag) const;

    /** Redirect output (tests point this at a stringstream);
     *  nullptr restores the default std::cout. */
    void setStream(std::ostream *os);

    /** Emit one line: "<tick>: <flag>: <message>". */
    void log(Tick tick, const std::string &flag,
             const std::string &message);

    std::uint64_t linesEmitted() const
    {
        return lines_.load(std::memory_order_relaxed);
    }

  private:
    Trace() = default;

    mutable std::mutex mu_; //!< guards flags_, all_ and stream_
    bool all_ = false;
    std::set<std::string> flags_;
    std::ostream *stream_ = nullptr;
    std::atomic<bool> anyEnabled_{false};
    std::atomic<std::uint64_t> lines_{0};
};

} // namespace morphling::sim

/** Trace macro: evaluates its message arguments only when the flag is
 *  live. `eq` supplies the timestamp. */
#define DTRACE(eq, flag, ...)                                             \
    do {                                                                  \
        auto &trace_ = ::morphling::sim::Trace::instance();               \
        if (trace_.anyEnabled() && trace_.enabled(flag)) {                \
            trace_.log((eq).now(), flag,                                  \
                       ::morphling::detail::concat(__VA_ARGS__));         \
        }                                                                 \
    } while (0)

#endif // MORPHLING_SIM_TRACE_H
