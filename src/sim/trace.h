/**
 * @file
 * Component-scoped simulation tracing, in the spirit of gem5's debug
 * flags: each model component logs through DTRACE(eq, "flag", ...),
 * which is dropped unless the flag is enabled. Traces carry the
 * simulated tick, so interleavings can be inspected after the fact.
 *
 * Off by default and cheap when off (one hash lookup guarded by an
 * any-enabled flag check).
 */

#ifndef MORPHLING_SIM_TRACE_H
#define MORPHLING_SIM_TRACE_H

#include <iosfwd>
#include <set>
#include <string>

#include "common/logging.h"
#include "sim/event_queue.h"

namespace morphling::sim {

/** Global trace controller (per process). */
class Trace
{
  public:
    static Trace &instance();

    /** Enable one flag, or "all". */
    void enable(const std::string &flag);
    void disable(const std::string &flag);
    void disableAll();

    bool anyEnabled() const { return all_ || !flags_.empty(); }
    bool enabled(const std::string &flag) const;

    /** Redirect output (tests point this at a stringstream);
     *  nullptr restores the default std::cout. */
    void setStream(std::ostream *os);

    /** Emit one line: "<tick>: <flag>: <message>". */
    void log(Tick tick, const std::string &flag,
             const std::string &message);

    std::uint64_t linesEmitted() const { return lines_; }

  private:
    Trace() = default;

    bool all_ = false;
    std::set<std::string> flags_;
    std::ostream *stream_ = nullptr;
    std::uint64_t lines_ = 0;
};

} // namespace morphling::sim

/** Trace macro: evaluates its message arguments only when the flag is
 *  live. `eq` supplies the timestamp. */
#define DTRACE(eq, flag, ...)                                             \
    do {                                                                  \
        auto &trace_ = ::morphling::sim::Trace::instance();               \
        if (trace_.anyEnabled() && trace_.enabled(flag)) {                \
            trace_.log((eq).now(), flag,                                  \
                       ::morphling::detail::concat(__VA_ARGS__));         \
        }                                                                 \
    } while (0)

#endif // MORPHLING_SIM_TRACE_H
