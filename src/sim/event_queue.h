/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The cycle-accurate model of Morphling is built on a single global
 * event queue per simulation. A Tick is one accelerator clock cycle
 * (1.2 GHz in the default configuration). Events scheduled for the same
 * tick execute in (priority, insertion-order) order, which makes every
 * simulation bit-deterministic.
 */

#ifndef MORPHLING_SIM_EVENT_QUEUE_H
#define MORPHLING_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace morphling::sim {

/** Simulated time, in clock cycles of the modelled device. */
using Tick = std::uint64_t;

/**
 * The event queue: schedule callbacks at future ticks and run them in
 * deterministic order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback.
     *
     * @param when     absolute tick, must be >= now()
     * @param cb       action to run
     * @param priority lower runs first among same-tick events
     */
    void schedule(Tick when, Callback cb, int priority = 0);

    /** Convenience: schedule at now() + delta. */
    void scheduleIn(Tick delta, Callback cb, int priority = 0);

    bool empty() const { return events_.empty(); }
    std::size_t pending() const { return events_.size(); }

    /** Run the single earliest event; returns false if none pending. */
    bool runOne();

    /**
     * Run events until the queue drains or the time of the next event
     * exceeds `end`. Returns the number of events executed.
     */
    std::uint64_t runUntil(Tick end);

    /**
     * Drain the queue completely.
     *
     * @param max_events safety valve against runaway models; panics if
     *                   exceeded.
     */
    std::uint64_t runAll(std::uint64_t max_events = 500'000'000);

  private:
    struct Event
    {
        Tick when;
        int priority;
        std::uint64_t seq; //!< tie-breaker: insertion order
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace morphling::sim

#endif // MORPHLING_SIM_EVENT_QUEUE_H
