#include "dma.h"

#include "common/logging.h"
#include "sim/trace.h"
#include "telemetry/sim_bridge.h"

namespace morphling::sim {

DmaEngine::DmaEngine(EventQueue &eq, Hbm &hbm, std::string name,
                     unsigned first_channel, unsigned num_channels)
    : eq_(eq), hbm_(hbm), name_(std::move(name)),
      firstChannel_(first_channel), numChannels_(num_channels),
      stats_(name_)
{
    fatal_if(num_channels == 0, "DMA engine '", name_,
             "' needs channels");
    fatal_if(first_channel + num_channels > hbm.config().channels,
             "DMA engine '", name_, "' channel group out of range");
}

double
DmaEngine::bytesPerCycle() const
{
    return hbm_.config().bytesPerCyclePerChannel() * numChannels_;
}

Tick
DmaEngine::load(std::uint64_t bytes, EventQueue::Callback on_done)
{
    ++outstanding_;
    totalBytes_ += bytes;
    DTRACE(eq_, "dma", name_, " load ", bytes, " B (",
           outstanding_, " outstanding)");
    stats_.scalar("bytes", "bytes loaded from HBM") +=
        static_cast<double>(bytes);
    ++stats_.scalar("loads", "load operations issued");
    const Tick issued = eq_.now();
    const Tick done = hbm_.accessStriped(
        firstChannel_, numChannels_, bytes,
        [this, cb = std::move(on_done)]() {
            panic_if(outstanding_ == 0, "DMA completion underflow");
            --outstanding_;
            if (cb)
                cb();
        });
    MORPHLING_SIM_INTERVAL(name_, "load", issued, done, bytes);
    return done;
}

MulticastDma::MulticastDma(EventQueue &eq, Hbm &hbm, std::string name,
                           unsigned first_channel,
                           unsigned num_channels,
                           unsigned num_consumers,
                           unsigned residency_depth)
    : eq_(eq), hbm_(hbm), name_(std::move(name)),
      firstChannel_(first_channel), numChannels_(num_channels),
      numConsumers_(num_consumers), residencyDepth_(residency_depth),
      perConsumerBytes_(num_consumers, 0), stats_(name_)
{
    fatal_if(num_channels == 0, "multicast DMA '", name_,
             "' needs channels");
    fatal_if(first_channel + num_channels > hbm.config().channels,
             "multicast DMA '", name_, "' channel group out of range");
    fatal_if(num_consumers == 0, "multicast DMA '", name_,
             "' needs consumers");
}

double
MulticastDma::bytesPerCycle() const
{
    return hbm_.config().bytesPerCyclePerChannel() * numChannels_;
}

void
MulticastDma::recordDelivery(unsigned consumer, std::uint64_t bytes)
{
    panic_if(consumer >= numConsumers_, "multicast DMA '", name_,
             "' consumer ", consumer, " out of range");
    deliveredBytes_ += bytes;
    perConsumerBytes_[consumer] += bytes;
    stats_.scalar("delivered_bytes",
                  "bytes delivered across all consumers") +=
        static_cast<double>(bytes);
}

void
MulticastDma::request(unsigned consumer, std::uint64_t tag,
                      std::uint64_t bytes,
                      EventQueue::Callback on_done)
{
    recordDelivery(consumer, bytes);

    // Same tag already streaming: join the in-flight multicast.
    for (auto &f : inflight_) {
        if (f.tag == tag) {
            ++joins_;
            ++stats_.scalar("joins",
                            "requests merged into an in-flight read");
            f.waiters.push_back(std::move(on_done));
            DTRACE(eq_, "dma", name_, " tag ", tag, " join by consumer ",
                   consumer);
            return;
        }
    }

    // Tag still resident in the shared double buffer: free hit.
    for (const std::uint64_t r : resident_) {
        if (r == tag) {
            ++residencyHits_;
            ++stats_.scalar("residency_hits",
                            "requests served from resident slices");
            DTRACE(eq_, "dma", name_, " tag ", tag,
                   " residency hit by consumer ", consumer);
            if (on_done)
                eq_.schedule(eq_.now(), std::move(on_done));
            return;
        }
    }

    // Fresh fetch: one striped read, multicast to whoever joins
    // before it lands.
    ++fetches_;
    fetchedBytes_ += bytes;
    ++stats_.scalar("fetches", "fresh HBM reads issued");
    stats_.scalar("fetched_bytes", "bytes actually read from HBM") +=
        static_cast<double>(bytes);
    DTRACE(eq_, "dma", name_, " tag ", tag, " fetch ", bytes,
           " B by consumer ", consumer);
    inflight_.push_back(Inflight{tag, {}});
    inflight_.back().waiters.push_back(std::move(on_done));
    hbm_.accessStriped(
        firstChannel_, numChannels_, bytes, [this, tag]() {
            for (std::size_t i = 0; i < inflight_.size(); ++i) {
                if (inflight_[i].tag != tag)
                    continue;
                auto waiters = std::move(inflight_[i].waiters);
                inflight_.erase(inflight_.begin() +
                                static_cast<std::ptrdiff_t>(i));
                resident_.push_back(tag);
                while (resident_.size() > residencyDepth_)
                    resident_.pop_front();
                stats_.scalar("multicast_width",
                              "deliveries per fresh fetch") +=
                    static_cast<double>(waiters.size());
                for (auto &cb : waiters) {
                    if (cb)
                        cb();
                }
                return;
            }
            panic("multicast DMA '", name_,
                  "' completion for unknown tag ", tag);
        });
}

} // namespace morphling::sim
