#include "dma.h"

#include "common/logging.h"
#include "sim/trace.h"
#include "telemetry/sim_bridge.h"

namespace morphling::sim {

DmaEngine::DmaEngine(EventQueue &eq, Hbm &hbm, std::string name,
                     unsigned first_channel, unsigned num_channels)
    : eq_(eq), hbm_(hbm), name_(std::move(name)),
      firstChannel_(first_channel), numChannels_(num_channels),
      stats_(name_)
{
    fatal_if(num_channels == 0, "DMA engine '", name_,
             "' needs channels");
    fatal_if(first_channel + num_channels > hbm.config().channels,
             "DMA engine '", name_, "' channel group out of range");
}

double
DmaEngine::bytesPerCycle() const
{
    return hbm_.config().bytesPerCyclePerChannel() * numChannels_;
}

Tick
DmaEngine::load(std::uint64_t bytes, EventQueue::Callback on_done)
{
    ++outstanding_;
    totalBytes_ += bytes;
    DTRACE(eq_, "dma", name_, " load ", bytes, " B (",
           outstanding_, " outstanding)");
    stats_.scalar("bytes", "bytes loaded from HBM") +=
        static_cast<double>(bytes);
    ++stats_.scalar("loads", "load operations issued");
    const Tick issued = eq_.now();
    const Tick done = hbm_.accessStriped(
        firstChannel_, numChannels_, bytes,
        [this, cb = std::move(on_done)]() {
            panic_if(outstanding_ == 0, "DMA completion underflow");
            --outstanding_;
            if (cb)
                cb();
        });
    MORPHLING_SIM_INTERVAL(name_, "load", issued, done, bytes);
    return done;
}

} // namespace morphling::sim
