#include "hbm.h"

#include <cmath>
#include <string>

#include "common/bits.h"
#include "common/logging.h"
#include "telemetry/sim_bridge.h"

namespace morphling::sim {

Hbm::Hbm(EventQueue &eq, HbmConfig config)
    : eq_(eq), config_(config), busyUntil_(config.channels, 0),
      channelBytes_(config.channels, 0)
{
    fatal_if(config.channels == 0, "HBM needs at least one channel");
    fatal_if(config.bandwidthGBs <= 0 || config.clockGHz <= 0,
             "HBM bandwidth/clock must be positive");
}

Tick
Hbm::access(unsigned channel, std::uint64_t bytes,
            EventQueue::Callback on_done)
{
    panic_if(channel >= config_.channels, "channel ", channel,
             " out of range");
    const double bpc = config_.bytesPerCyclePerChannel();
    const Tick busy = static_cast<Tick>(
        std::ceil(static_cast<double>(bytes) / bpc));
    const Tick start = std::max(eq_.now(), busyUntil_[channel]);
    const Tick done = start + busy + config_.accessLatency;
    busyUntil_[channel] = start + busy; // latency is pipelined, not
                                        // channel-occupying
    channelBytes_[channel] += bytes;
    MORPHLING_SIM_INTERVAL("hbm.ch" + std::to_string(channel), "xfer",
                           start, start + busy, bytes);
    stats_.scalar("bytes", "total bytes transferred") +=
        static_cast<double>(bytes);
    ++stats_.scalar("transfers", "number of transfers");
    if (on_done)
        eq_.schedule(done, std::move(on_done));
    return done;
}

Tick
Hbm::accessStriped(unsigned first_channel, unsigned num_channels,
                   std::uint64_t bytes, EventQueue::Callback on_done)
{
    panic_if(num_channels == 0, "striped access over zero channels");
    panic_if(first_channel + num_channels > config_.channels,
             "channel group out of range");
    const std::uint64_t stripe = divCeil(bytes, std::uint64_t{num_channels});
    Tick last = 0;
    std::uint64_t remaining = bytes;
    for (unsigned c = 0; c < num_channels && remaining > 0; ++c) {
        const std::uint64_t chunk = std::min(stripe, remaining);
        last = std::max(last,
                        access(first_channel + c, chunk, nullptr));
        remaining -= chunk;
    }
    if (on_done)
        eq_.schedule(last, std::move(on_done));
    return last;
}

Tick
Hbm::accessStripedMulticast(unsigned first_channel,
                            unsigned num_channels, std::uint64_t bytes,
                            std::vector<EventQueue::Callback> consumers)
{
    const Tick last =
        accessStriped(first_channel, num_channels, bytes, nullptr);
    ++stats_.scalar("multicast_transfers",
                    "multicast reads (one occupancy, N deliveries)");
    stats_.scalar("multicast_deliveries",
                  "consumer callbacks served by multicast reads") +=
        static_cast<double>(consumers.size());
    if (consumers.size() > 1) {
        stats_.scalar("multicast_bytes_saved",
                      "bytes NOT re-read thanks to multicast") +=
            static_cast<double>(bytes) *
            static_cast<double>(consumers.size() - 1);
    }
    for (auto &cb : consumers) {
        if (cb)
            eq_.schedule(last, std::move(cb));
    }
    return last;
}

Tick
Hbm::channelFreeAt(unsigned channel) const
{
    panic_if(channel >= config_.channels, "channel out of range");
    return busyUntil_[channel];
}

std::uint64_t
Hbm::totalBytes() const
{
    std::uint64_t total = 0;
    for (auto b : channelBytes_)
        total += b;
    return total;
}

double
Hbm::achievedBandwidthGBs() const
{
    if (eq_.now() == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(eq_.now()) / (config_.clockGHz * 1e9);
    return static_cast<double>(totalBytes()) / seconds / 1e9;
}

} // namespace morphling::sim
