#include "event_queue.h"

#include "common/logging.h"

namespace morphling::sim {

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    panic_if(when < now_, "scheduling into the past: ", when, " < ",
             now_);
    events_.push(Event{when, priority, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleIn(Tick delta, Callback cb, int priority)
{
    schedule(now_ + delta, std::move(cb), priority);
}

bool
EventQueue::runOne()
{
    if (events_.empty())
        return false;
    // Copy out before pop so the callback may schedule new events.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.when;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick end)
{
    std::uint64_t count = 0;
    while (!events_.empty() && events_.top().when <= end) {
        runOne();
        ++count;
    }
    if (now_ < end)
        now_ = end;
    return count;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t count = 0;
    while (runOne()) {
        panic_if(++count > max_events,
                 "event queue did not drain after ", max_events,
                 " events; model is likely self-rescheduling forever");
    }
    return count;
}

} // namespace morphling::sim
