/**
 * @file
 * Network-on-Chip model (Section V-D).
 *
 * Morphling's NoC is a set of fixed-topology links: four-to-four
 * crossbars (Private-A1 <-> XPUs, XPUs <-> Shared, Shared <-> VPU,
 * Private-B <-> VPU) and a one-directional multicast from Private-A2 to
 * the XPUs. Because the dataflow is fixed and predictable, each link is
 * modelled as a dedicated channel with a configured width; the model
 * tracks occupancy so over-subscription shows up as transfer latency
 * and in the utilization stats.
 */

#ifndef MORPHLING_SIM_NOC_H
#define MORPHLING_SIM_NOC_H

#include <cstdint>
#include <map>
#include <string>

#include "sim/event_queue.h"
#include "sim/stats.h"

namespace morphling::sim {

/** One point-to-point (or multicast) on-chip link. */
class NocLink
{
  public:
    NocLink() = default;
    NocLink(EventQueue *eq, std::string name,
            unsigned width_bytes_per_cycle);

    const std::string &name() const { return name_; }
    unsigned widthBytesPerCycle() const { return width_; }

    /**
     * Occupy the link for `bytes`; returns the completion tick.
     * A multicast transfer occupies the link once regardless of the
     * number of destinations.
     */
    Tick transfer(std::uint64_t bytes,
                  EventQueue::Callback on_done = nullptr);

    std::uint64_t totalBytes() const { return totalBytes_; }

    /** Fraction of [0, now] this link was busy. */
    double utilization() const;

  private:
    EventQueue *eq_ = nullptr;
    std::string name_;
    unsigned width_ = 0;
    Tick busyUntil_ = 0;
    Tick busyCycles_ = 0;
    std::uint64_t totalBytes_ = 0;
};

/** The named collection of links forming the chip's NoC. */
class Noc
{
  public:
    explicit Noc(EventQueue &eq) : eq_(eq) {}

    /** Create a link; name must be unique. */
    NocLink &addLink(const std::string &name,
                     unsigned width_bytes_per_cycle);

    /** Look up an existing link; panics if absent. */
    NocLink &link(const std::string &name);

    /** Aggregate bandwidth of all links in TB/s at the given clock. */
    double aggregateBandwidthTBs(double clock_ghz) const;

    void dumpStats(StatSet &stats) const;

  private:
    EventQueue &eq_;
    std::map<std::string, NocLink> links_;
};

} // namespace morphling::sim

#endif // MORPHLING_SIM_NOC_H
