/**
 * @file
 * DMA engines: the bridge between HBM channels and the on-chip
 * buffers.
 *
 * Each engine owns a contiguous group of HBM channels (the paper
 * prioritizes 6 channels for the VPU/KSK path and 2 for the XPU/BSK
 * path) and issues striped transfers with completion callbacks. The
 * engine tracks outstanding transfers so models can implement
 * double-buffered prefetching ("Private-A2 mainly serves as a double
 * buffer, functioning as a pre-fetcher", Section V-C).
 */

#ifndef MORPHLING_SIM_DMA_H
#define MORPHLING_SIM_DMA_H

#include <cstdint>
#include <string>

#include "sim/event_queue.h"
#include "sim/hbm.h"
#include "sim/stats.h"

namespace morphling::sim {

/** A DMA engine bound to a fixed HBM channel group. */
class DmaEngine
{
  public:
    DmaEngine(EventQueue &eq, Hbm &hbm, std::string name,
              unsigned first_channel, unsigned num_channels);

    const std::string &name() const { return name_; }
    unsigned numChannels() const { return numChannels_; }

    /** Sustained bytes/cycle this engine can move. */
    double bytesPerCycle() const;

    /**
     * Start a load of `bytes` from HBM; `on_done` runs when the last
     * stripe arrives.
     *
     * @return completion tick
     */
    Tick load(std::uint64_t bytes, EventQueue::Callback on_done = nullptr);

    /** Number of loads issued but not yet completed. */
    unsigned outstanding() const { return outstanding_; }

    std::uint64_t totalBytes() const { return totalBytes_; }

    StatSet &stats() { return stats_; }

  private:
    EventQueue &eq_;
    Hbm &hbm_;
    std::string name_;
    unsigned firstChannel_;
    unsigned numChannels_;
    unsigned outstanding_ = 0;
    std::uint64_t totalBytes_ = 0;
    StatSet stats_;
};

} // namespace morphling::sim

#endif // MORPHLING_SIM_DMA_H
