/**
 * @file
 * DMA engines: the bridge between HBM channels and the on-chip
 * buffers.
 *
 * Each engine owns a contiguous group of HBM channels (the paper
 * prioritizes 6 channels for the VPU/KSK path and 2 for the XPU/BSK
 * path) and issues striped transfers with completion callbacks. The
 * engine tracks outstanding transfers so models can implement
 * double-buffered prefetching ("Private-A2 mainly serves as a double
 * buffer, functioning as a pre-fetcher", Section V-C).
 */

#ifndef MORPHLING_SIM_DMA_H
#define MORPHLING_SIM_DMA_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/hbm.h"
#include "sim/stats.h"

namespace morphling::sim {

/** A DMA engine bound to a fixed HBM channel group. */
class DmaEngine
{
  public:
    DmaEngine(EventQueue &eq, Hbm &hbm, std::string name,
              unsigned first_channel, unsigned num_channels);

    const std::string &name() const { return name_; }
    unsigned numChannels() const { return numChannels_; }

    /** Sustained bytes/cycle this engine can move. */
    double bytesPerCycle() const;

    /**
     * Start a load of `bytes` from HBM; `on_done` runs when the last
     * stripe arrives.
     *
     * @return completion tick
     */
    Tick load(std::uint64_t bytes, EventQueue::Callback on_done = nullptr);

    /** Number of loads issued but not yet completed. */
    unsigned outstanding() const { return outstanding_; }

    std::uint64_t totalBytes() const { return totalBytes_; }

    StatSet &stats() { return stats_; }

  private:
    EventQueue &eq_;
    Hbm &hbm_;
    std::string name_;
    unsigned firstChannel_;
    unsigned numChannels_;
    unsigned outstanding_ = 0;
    std::uint64_t totalBytes_ = 0;
    StatSet stats_;
};

/**
 * A broadcast DMA engine shared by several consumers.
 *
 * Consumers request *tagged* transfers (for the BSK path the tag is
 * the blind-rotation iteration index: BSK_i is the same data for
 * every shard). Requests for the same tag coalesce:
 *
 *  - if the tag is currently in flight, the consumer joins the
 *    in-flight multicast and shares its completion tick;
 *  - if the tag is among the last `residencyDepth` completed tags
 *    (the shared double-buffer), the request is a residency hit and
 *    completes next tick without touching HBM;
 *  - otherwise a fresh striped read is issued and delivered to every
 *    consumer that joins before it lands.
 *
 * `fetchedBytes()` is the actual HBM traffic; `deliveredBytes()` is
 * what the consumers collectively received. Their ratio is the
 * broadcast amortization factor.
 */
class MulticastDma
{
  public:
    MulticastDma(EventQueue &eq, Hbm &hbm, std::string name,
                 unsigned first_channel, unsigned num_channels,
                 unsigned num_consumers, unsigned residency_depth = 2);

    const std::string &name() const { return name_; }
    unsigned numChannels() const { return numChannels_; }
    unsigned numConsumers() const { return numConsumers_; }

    /** Sustained bytes/cycle this engine can move. */
    double bytesPerCycle() const;

    /**
     * Request delivery of the transfer identified by `tag` to
     * `consumer`; `on_done` runs when the data is available to that
     * consumer (shared completion for coalesced requests).
     */
    void request(unsigned consumer, std::uint64_t tag,
                 std::uint64_t bytes, EventQueue::Callback on_done);

    /** Bytes actually read from HBM. */
    std::uint64_t fetchedBytes() const { return fetchedBytes_; }

    /** Bytes delivered across all consumers (>= fetchedBytes). */
    std::uint64_t deliveredBytes() const { return deliveredBytes_; }

    /** Bytes delivered to one consumer. */
    std::uint64_t
    deliveredBytes(unsigned consumer) const
    {
        return perConsumerBytes_.at(consumer);
    }

    std::uint64_t fetches() const { return fetches_; }
    std::uint64_t joins() const { return joins_; }
    std::uint64_t residencyHits() const { return residencyHits_; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    struct Inflight
    {
        std::uint64_t tag;
        std::vector<EventQueue::Callback> waiters;
    };

    void recordDelivery(unsigned consumer, std::uint64_t bytes);

    EventQueue &eq_;
    Hbm &hbm_;
    std::string name_;
    unsigned firstChannel_;
    unsigned numChannels_;
    unsigned numConsumers_;
    unsigned residencyDepth_;
    std::vector<Inflight> inflight_;
    std::deque<std::uint64_t> resident_; //!< most-recent completed tags
    std::uint64_t fetchedBytes_ = 0;
    std::uint64_t deliveredBytes_ = 0;
    std::uint64_t fetches_ = 0;
    std::uint64_t joins_ = 0;
    std::uint64_t residencyHits_ = 0;
    std::vector<std::uint64_t> perConsumerBytes_;
    StatSet stats_;
};

} // namespace morphling::sim

#endif // MORPHLING_SIM_DMA_H
