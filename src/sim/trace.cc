#include "trace.h"

#include <iostream>

namespace morphling::sim {

Trace &
Trace::instance()
{
    static Trace trace;
    return trace;
}

void
Trace::enable(const std::string &flag)
{
    if (flag == "all")
        all_ = true;
    else
        flags_.insert(flag);
}

void
Trace::disable(const std::string &flag)
{
    if (flag == "all")
        all_ = false;
    else
        flags_.erase(flag);
}

void
Trace::disableAll()
{
    all_ = false;
    flags_.clear();
}

bool
Trace::enabled(const std::string &flag) const
{
    return all_ || flags_.count(flag) > 0;
}

void
Trace::setStream(std::ostream *os)
{
    stream_ = os;
}

void
Trace::log(Tick tick, const std::string &flag,
           const std::string &message)
{
    std::ostream &os = stream_ ? *stream_ : std::cout;
    os << tick << ": " << flag << ": " << message << '\n';
    ++lines_;
}

} // namespace morphling::sim
