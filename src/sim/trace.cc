#include "trace.h"

#include <iostream>
#include <sstream>

#include "telemetry/sim_bridge.h"

namespace morphling::sim {

Trace &
Trace::instance()
{
    static Trace trace;
    return trace;
}

void
Trace::enable(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (flag == "all")
        all_ = true;
    else
        flags_.insert(flag);
    anyEnabled_.store(all_ || !flags_.empty(),
                      std::memory_order_relaxed);
}

void
Trace::disable(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (flag == "all")
        all_ = false;
    else
        flags_.erase(flag);
    anyEnabled_.store(all_ || !flags_.empty(),
                      std::memory_order_relaxed);
}

void
Trace::disableAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    all_ = false;
    flags_.clear();
    anyEnabled_.store(false, std::memory_order_relaxed);
}

bool
Trace::enabled(const std::string &flag) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return all_ || flags_.count(flag) > 0;
}

void
Trace::setStream(std::ostream *os)
{
    std::lock_guard<std::mutex> lock(mu_);
    stream_ = os;
}

void
Trace::log(Tick tick, const std::string &flag,
           const std::string &message)
{
    // Format outside the lock; emit in one streaming call under it so
    // concurrent lines never interleave mid-line.
    std::ostringstream line;
    line << tick << ": " << flag << ": " << message << '\n';
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::ostream &os = stream_ ? *stream_ : std::cout;
        os << line.str();
    }
    lines_.fetch_add(1, std::memory_order_relaxed);
    // Mirror the line into an installed trace recorder so textual
    // DTRACE events land on the virtual-time timeline too.
    MORPHLING_SIM_INSTANT("log." + flag, message, tick);
}

} // namespace morphling::sim
