/**
 * @file
 * Low-overhead tracing spans: the core of the unified telemetry
 * subsystem (docs/observability.md).
 *
 * A Span is an RAII region recorded into the calling thread's
 * preallocated lock-free ring buffer; the TraceSession singleton owns
 * every ring and hands the recorded events to the Chrome trace-event
 * exporter (chrome_trace.h), so a live service run can be opened in
 * Perfetto / chrome://tracing next to the cycle simulator's
 * virtual-time tracks (sim_bridge.h).
 *
 * Cost model:
 *  - compiled out: with MORPHLING_TELEMETRY=OFF every MORPHLING_SPAN
 *    site expands to nothing — zero instructions, zero data.
 *  - compiled in, session inactive: one relaxed atomic load per site.
 *  - compiled in, session active: two steady_clock reads plus one slot
 *    write into a preallocated ring. No heap allocation after the
 *    first span a thread records (the warm-up), preserving the
 *    zero-allocation guarantee of the bootstrap hot path
 *    (tests/test_telemetry.cc asserts this with an operator-new hook).
 *
 * Threading contract: recording is wait-free and safe from any number
 * of threads concurrently (each thread owns its ring). start(), stop(),
 * clear() and the export helpers are control-plane calls: issue them
 * from a coordinating thread while no spans are in flight (e.g. before
 * submitting work / after joining or draining workers).
 */

#ifndef MORPHLING_TELEMETRY_TELEMETRY_H
#define MORPHLING_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#ifndef MORPHLING_TELEMETRY_ENABLED
#define MORPHLING_TELEMETRY_ENABLED 1
#endif

namespace morphling::telemetry {

/** Verbosity of a recording session. Stage-level spans (bootstrap
 *  stages, service lifecycle) are cheap; fine spans (one per CMux of a
 *  blind rotation) multiply the event count by the LWE dimension. */
enum class Level : int
{
    kOff = 0,
    kStage = 1,
    kFine = 2
};

/** One completed span. `category` and `name` must point at string
 *  literals (they are stored, not copied). */
struct SpanEvent
{
    const char *category = nullptr;
    const char *name = nullptr;
    std::uint64_t startNs = 0; //!< since the session epoch
    std::uint64_t endNs = 0;
    std::uint32_t depth = 0; //!< nesting depth within the thread
};

/**
 * A single-producer span ring: the owning thread pushes, any thread
 * may read the published prefix. When full, new events are dropped
 * (and counted) rather than overwriting — an exported trace is never
 * torn.
 */
class SpanRing
{
  public:
    SpanRing(std::size_t capacity, std::uint32_t tid);

    /** Record one event (producer thread only). Returns false and
     *  counts a drop when the ring is full. */
    bool push(const SpanEvent &ev);

    /** Events published so far (any thread; acquire). */
    std::size_t size() const;

    /** Read one published event (index < size()). */
    const SpanEvent &at(std::size_t i) const { return slots_[i]; }

    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return slots_.size(); }
    std::uint32_t tid() const { return tid_; }

    /** Forget every recorded event. Control-plane only: the owning
     *  thread must not be pushing concurrently. */
    void clear();

  private:
    std::vector<SpanEvent> slots_;
    std::atomic<std::uint64_t> written_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::uint32_t tid_;
};

/**
 * The process-wide span aggregator: owns one ring per recording
 * thread, the session epoch and the recording level.
 */
class TraceSession
{
  public:
    static TraceSession &instance();

    /** Begin recording: clears previously recorded spans, re-arms the
     *  epoch and enables span sites at or below `level`. */
    void start(Level level = Level::kStage);

    /** Stop recording (the recorded events stay exportable). */
    void stop();

    /** True when spans of the given level record. */
    bool active(Level level = Level::kStage) const
    {
        return level_.load(std::memory_order_relaxed) >=
               static_cast<int>(level);
    }

    Level level() const
    {
        return static_cast<Level>(level_.load(std::memory_order_relaxed));
    }

    /** Nanoseconds since the session epoch (steady clock). */
    std::uint64_t nowNs() const;

    /** The calling thread's ring (created and registered on first
     *  use; preallocated thereafter). */
    SpanRing &ringForThisThread();

    /** Ring capacity (events) used for rings created after this call. */
    void setRingCapacity(std::size_t events);

    /** Stable snapshot of every registered ring. */
    std::vector<const SpanRing *> rings() const;

    /** Recorded (published) spans across all rings. */
    std::uint64_t totalSpans() const;

    /** Spans dropped because a ring was full. */
    std::uint64_t totalDropped() const;

    /** Forget all recorded spans (control-plane only). */
    void clear();

  private:
    TraceSession() = default;

    std::atomic<int> level_{0};
    std::atomic<std::int64_t> epochNs_{0};
    mutable std::mutex mu_; //!< guards rings_ and ringCapacity_
    std::vector<std::shared_ptr<SpanRing>> rings_;
    std::size_t ringCapacity_ = 1u << 15;
    std::atomic<std::uint32_t> nextTid_{1};
};

/**
 * RAII span: measures construction to destruction and records into the
 * thread's ring. Does nothing (and touches no ring) when the session
 * is inactive at its level. Use via the MORPHLING_SPAN macros so the
 * site compiles out entirely under MORPHLING_TELEMETRY=OFF.
 */
class Span
{
  public:
    Span(const char *category, const char *name,
         Level level = Level::kStage)
    {
        TraceSession &session = TraceSession::instance();
        if (!session.active(level))
            return;
        category_ = category;
        name_ = name;
        startNs_ = session.nowNs();
        depth_ = threadDepth()++;
        armed_ = true;
    }

    ~Span()
    {
        if (!armed_)
            return;
        --threadDepth();
        TraceSession &session = TraceSession::instance();
        session.ringForThisThread().push(
            SpanEvent{category_, name_, startNs_, session.nowNs(),
                      depth_});
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    static std::uint32_t &threadDepth();

    const char *category_ = nullptr;
    const char *name_ = nullptr;
    std::uint64_t startNs_ = 0;
    std::uint32_t depth_ = 0;
    bool armed_ = false;
};

} // namespace morphling::telemetry

#if MORPHLING_TELEMETRY_ENABLED

#define MORPHLING_TELEM_CONCAT_(a, b) a##b
#define MORPHLING_TELEM_CONCAT(a, b) MORPHLING_TELEM_CONCAT_(a, b)

/** Stage-level RAII span covering the rest of the enclosing scope. */
#define MORPHLING_SPAN(category, name)                                    \
    ::morphling::telemetry::Span MORPHLING_TELEM_CONCAT(                  \
        morphlingSpan_, __COUNTER__)(category, name)

/** Fine-grained span (per-CMux class): records only at Level::kFine. */
#define MORPHLING_SPAN_FINE(category, name)                               \
    ::morphling::telemetry::Span MORPHLING_TELEM_CONCAT(                  \
        morphlingSpan_, __COUNTER__)(                                     \
        category, name, ::morphling::telemetry::Level::kFine)

/** Wrap a statement that should vanish when telemetry is compiled
 *  out (metric updates, recorder hooks). */
#define MORPHLING_TELEMETRY_ONLY(...) __VA_ARGS__

#else

#define MORPHLING_SPAN(category, name) static_cast<void>(0)
#define MORPHLING_SPAN_FINE(category, name) static_cast<void>(0)
#define MORPHLING_TELEMETRY_ONLY(...)

#endif // MORPHLING_TELEMETRY_ENABLED

#endif // MORPHLING_TELEMETRY_TELEMETRY_H
