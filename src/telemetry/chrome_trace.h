/**
 * @file
 * Chrome trace-event JSON exporter: renders the TraceSession's
 * wall-clock CPU spans and a SimTraceRecorder's virtual-time tracks
 * into one file loadable in Perfetto (https://ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Layout of the exported trace:
 *  - pid 1 "cpu (wall clock)": one row per recording thread, "X"
 *    complete events from the span rings; nesting falls out of the
 *    timestamps.
 *  - pid 2 "sim (virtual time)": one row per simulated component
 *    track ("xpu", "vpu.lane0", "hbm.ch3", ...), simulated ticks
 *    rescaled to microseconds at the configured model clock so
 *    Perfetto's time axis reads as device time.
 *
 * The two timelines share a file but not a clock; compare shapes and
 * per-stage proportions (Figure 7-a), not absolute positions.
 */

#ifndef MORPHLING_TELEMETRY_CHROME_TRACE_H
#define MORPHLING_TELEMETRY_CHROME_TRACE_H

#include <iosfwd>
#include <string>

#include "telemetry/sim_bridge.h"
#include "telemetry/telemetry.h"

namespace morphling::telemetry {

struct ChromeTraceOptions
{
    /** Clock used to map simulated ticks to trace microseconds. */
    double simClockGHz = 1.2;
};

/**
 * Write a complete trace-event JSON document. Either source may be
 * omitted (`sim == nullptr` exports only CPU spans; an inactive,
 * empty session contributes nothing).
 */
void writeChromeTrace(std::ostream &os, const TraceSession &session,
                      const SimTraceRecorder *sim = nullptr,
                      const ChromeTraceOptions &options = {});

/** Convenience: writeChromeTrace into a file; returns false (and
 *  warns) when the file cannot be opened. */
bool writeChromeTraceFile(const std::string &path,
                          const TraceSession &session,
                          const SimTraceRecorder *sim = nullptr,
                          const ChromeTraceOptions &options = {});

} // namespace morphling::telemetry

#endif // MORPHLING_TELEMETRY_CHROME_TRACE_H
