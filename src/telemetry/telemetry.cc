#include "telemetry.h"

#include <chrono>

namespace morphling::telemetry {

namespace {

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

SpanRing::SpanRing(std::size_t capacity, std::uint32_t tid)
    : slots_(capacity), tid_(tid)
{
}

bool
SpanRing::push(const SpanEvent &ev)
{
    const std::uint64_t w = written_.load(std::memory_order_relaxed);
    if (w >= slots_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    slots_[w] = ev;
    written_.store(w + 1, std::memory_order_release);
    return true;
}

std::size_t
SpanRing::size() const
{
    return static_cast<std::size_t>(
        written_.load(std::memory_order_acquire));
}

void
SpanRing::clear()
{
    written_.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
}

TraceSession &
TraceSession::instance()
{
    static TraceSession session;
    return session;
}

void
TraceSession::start(Level level)
{
    clear();
    epochNs_.store(steadyNowNs(), std::memory_order_relaxed);
    level_.store(static_cast<int>(level), std::memory_order_release);
}

void
TraceSession::stop()
{
    level_.store(static_cast<int>(Level::kOff),
                 std::memory_order_release);
}

std::uint64_t
TraceSession::nowNs() const
{
    const std::int64_t delta =
        steadyNowNs() - epochNs_.load(std::memory_order_relaxed);
    return delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
}

SpanRing &
TraceSession::ringForThisThread()
{
    thread_local SpanRing *ring = nullptr;
    if (!ring) {
        std::lock_guard<std::mutex> lock(mu_);
        rings_.push_back(std::make_shared<SpanRing>(
            ringCapacity_,
            nextTid_.fetch_add(1, std::memory_order_relaxed)));
        ring = rings_.back().get();
    }
    return *ring;
}

void
TraceSession::setRingCapacity(std::size_t events)
{
    std::lock_guard<std::mutex> lock(mu_);
    ringCapacity_ = events ? events : 1;
}

std::vector<const SpanRing *>
TraceSession::rings() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const SpanRing *> out;
    out.reserve(rings_.size());
    for (const auto &ring : rings_)
        out.push_back(ring.get());
    return out;
}

std::uint64_t
TraceSession::totalSpans() const
{
    std::uint64_t total = 0;
    for (const auto *ring : rings())
        total += ring->size();
    return total;
}

std::uint64_t
TraceSession::totalDropped() const
{
    std::uint64_t total = 0;
    for (const auto *ring : rings())
        total += ring->dropped();
    return total;
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &ring : rings_)
        ring->clear();
}

std::uint32_t &
Span::threadDepth()
{
    thread_local std::uint32_t depth = 0;
    return depth;
}

} // namespace morphling::telemetry
