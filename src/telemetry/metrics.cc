#include "metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace morphling::telemetry {

namespace {

/** CAS-accumulate onto an atomic double (fetch_add on floating
 *  atomics is C++20 but not universally lowered; the loop is). */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (v < cur && !target.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (v > cur && !target.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

/** Deterministic number rendering shared by both exporters: integers
 *  print without a fractional part, everything else with enough
 *  digits to round-trip. */
std::string
fmtNumber(double v)
{
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        std::ostringstream oss;
        oss << static_cast<long long>(v);
        return oss.str();
    }
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    return oss.str();
}

/** Prometheus metric name: prefixed and sanitized. */
std::string
promName(const std::string &name)
{
    std::string out = "morphling_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

void
Gauge::add(double delta)
{
    atomicAdd(value_, delta);
}

unsigned
Histogram::bucketIndex(double v)
{
    if (!(v > 1.0)) // NaN and everything <= 1 land in the first bucket
        return 0;
    if (v > 4.611686018427388e18) // 2^62
        return kBuckets - 1;
    const auto u = static_cast<std::uint64_t>(std::ceil(v));
    unsigned idx = 0;
    while ((std::uint64_t{1} << idx) < u)
        ++idx;
    return idx < kBuckets ? idx : kBuckets - 1;
}

double
Histogram::bucketUpperBound(unsigned i)
{
    if (i >= kBuckets - 1)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(std::uint64_t{1} << i);
}

void
Histogram::observe(double v)
{
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seen =
        count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    if (seen == 0) {
        // First observation seeds min/max; racing observers correct
        // via the CAS loops below.
        min_.store(v, std::memory_order_relaxed);
        max_.store(v, std::memory_order_relaxed);
    }
    atomicMin(min_, v);
    atomicMax(max_, v);
}

double
Histogram::min() const
{
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double
Histogram::max() const
{
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(name, std::make_unique<Counter>(name, help))
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(name, std::make_unique<Gauge>(name, help))
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name,
                          std::make_unique<Histogram>(name, help))
                 .first;
    }
    return *it->second;
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_) {
        const std::string p = promName(name);
        if (!c->help().empty())
            os << "# HELP " << p << " " << c->help() << "\n";
        os << "# TYPE " << p << " counter\n";
        os << p << " " << c->value() << "\n";
    }
    for (const auto &[name, g] : gauges_) {
        const std::string p = promName(name);
        if (!g->help().empty())
            os << "# HELP " << p << " " << g->help() << "\n";
        os << "# TYPE " << p << " gauge\n";
        os << p << " " << fmtNumber(g->value()) << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        const std::string p = promName(name);
        if (!h->help().empty())
            os << "# HELP " << p << " " << h->help() << "\n";
        os << "# TYPE " << p << " histogram\n";
        // Cumulative buckets up to the highest occupied one, then
        // +Inf (always present, equal to the total count).
        unsigned last = 0;
        for (unsigned i = 0; i < Histogram::kBuckets - 1; ++i) {
            if (h->bucketCount(i))
                last = i;
        }
        std::uint64_t cumulative = 0;
        for (unsigned i = 0; i <= last; ++i) {
            cumulative += h->bucketCount(i);
            os << p << "_bucket{le=\""
               << fmtNumber(Histogram::bucketUpperBound(i)) << "\"} "
               << cumulative << "\n";
        }
        os << p << "_bucket{le=\"+Inf\"} " << h->count() << "\n";
        os << p << "_sum " << fmtNumber(h->sum()) << "\n";
        os << p << "_count " << h->count() << "\n";
    }
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << fmtNumber(g->value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << h->count()
           << ", \"sum\": " << fmtNumber(h->sum())
           << ", \"min\": " << fmtNumber(h->min())
           << ", \"max\": " << fmtNumber(h->max())
           << ", \"buckets\": [";
        bool firstBucket = true;
        for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
            if (!h->bucketCount(i))
                continue;
            os << (firstBucket ? "" : ", ") << "{\"le\": ";
            if (i == Histogram::kBuckets - 1)
                os << "\"+Inf\"";
            else
                os << fmtNumber(Histogram::bucketUpperBound(i));
            os << ", \"count\": " << h->bucketCount(i) << "}";
            firstBucket = false;
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace morphling::telemetry
