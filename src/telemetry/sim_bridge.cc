#include "sim_bridge.h"

#include <atomic>

namespace morphling::telemetry {

namespace {

std::atomic<SimTraceRecorder *> g_current{nullptr};

} // namespace

SimTraceRecorder::SimTraceRecorder(std::size_t max_events)
    : maxEvents_(max_events ? max_events : 1)
{
}

SimTraceRecorder::~SimTraceRecorder()
{
    uninstall();
}

void
SimTraceRecorder::install()
{
    g_current.store(this, std::memory_order_release);
}

void
SimTraceRecorder::uninstall()
{
    SimTraceRecorder *expected = this;
    g_current.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel);
}

SimTraceRecorder *
SimTraceRecorder::current()
{
    return g_current.load(std::memory_order_acquire);
}

bool
SimTraceRecorder::roomLocked()
{
    if (intervals_.size() + instants_.size() < maxEvents_)
        return true;
    ++dropped_;
    return false;
}

void
SimTraceRecorder::interval(std::string track, std::string name,
                           std::uint64_t start_tick,
                           std::uint64_t end_tick, std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!roomLocked())
        return;
    intervals_.push_back(Interval{std::move(track), std::move(name),
                                  start_tick, end_tick, bytes});
}

void
SimTraceRecorder::instant(std::string track, std::string name,
                          std::uint64_t tick)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!roomLocked())
        return;
    instants_.push_back(
        Instant{std::move(track), std::move(name), tick});
}

std::vector<SimTraceRecorder::Interval>
SimTraceRecorder::intervals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return intervals_;
}

std::vector<SimTraceRecorder::Instant>
SimTraceRecorder::instants() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return instants_;
}

std::uint64_t
SimTraceRecorder::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

} // namespace morphling::telemetry
