#include "chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace morphling::telemetry {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/** Microseconds with sub-ns resolution kept (Perfetto accepts
 *  fractional ts). */
std::string
fmtUs(double us)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(3);
    oss << us;
    return oss.str();
}

struct Emitter
{
    std::ostream &os;
    bool first = true;

    void
    event(const std::string &body)
    {
        os << (first ? "\n  " : ",\n  ") << body;
        first = false;
    }

    void
    metadata(int pid, int tid, const char *what,
             const std::string &name)
    {
        std::ostringstream oss;
        oss << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
            << jsonEscape(name) << "\"}}";
        event(oss.str());
    }
};

constexpr int kCpuPid = 1;
constexpr int kSimPid = 2;

} // namespace

void
writeChromeTrace(std::ostream &os, const TraceSession &session,
                 const SimTraceRecorder *sim,
                 const ChromeTraceOptions &options)
{
    Emitter emit{os};
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

    // --- wall-clock CPU spans ----------------------------------------
    const auto rings = session.rings();
    if (!rings.empty())
        emit.metadata(kCpuPid, 0, "process_name", "cpu (wall clock)");
    for (const auto *ring : rings) {
        const std::size_t n = ring->size();
        if (n == 0)
            continue;
        emit.metadata(kCpuPid, static_cast<int>(ring->tid()),
                      "thread_name",
                      "thread " + std::to_string(ring->tid()));
        for (std::size_t i = 0; i < n; ++i) {
            const SpanEvent &ev = ring->at(i);
            std::ostringstream oss;
            oss << "{\"ph\":\"X\",\"pid\":" << kCpuPid
                << ",\"tid\":" << ring->tid() << ",\"ts\":"
                << fmtUs(static_cast<double>(ev.startNs) / 1e3)
                << ",\"dur\":"
                << fmtUs(static_cast<double>(ev.endNs - ev.startNs) /
                         1e3)
                << ",\"cat\":\"" << jsonEscape(ev.category)
                << "\",\"name\":\"" << jsonEscape(ev.name) << "\"}";
            emit.event(oss.str());
        }
    }

    // --- virtual-time sim tracks -------------------------------------
    if (sim) {
        const auto intervals = sim->intervals();
        const auto instants = sim->instants();
        const double ticks_to_us = 1.0 / (options.simClockGHz * 1e3);

        // Stable track -> row mapping, alphabetical.
        std::map<std::string, int> track_tid;
        for (const auto &iv : intervals)
            track_tid.emplace(iv.track, 0);
        for (const auto &in : instants)
            track_tid.emplace(in.track, 0);
        if (!track_tid.empty()) {
            emit.metadata(kSimPid, 0, "process_name",
                          "sim (virtual time)");
        }
        int next_tid = 1;
        for (auto &[track, tid] : track_tid) {
            tid = next_tid++;
            emit.metadata(kSimPid, tid, "thread_name", track);
        }

        for (const auto &iv : intervals) {
            std::ostringstream oss;
            oss << "{\"ph\":\"X\",\"pid\":" << kSimPid
                << ",\"tid\":" << track_tid[iv.track] << ",\"ts\":"
                << fmtUs(static_cast<double>(iv.startTick) *
                         ticks_to_us)
                << ",\"dur\":"
                << fmtUs(static_cast<double>(iv.endTick -
                                             iv.startTick) *
                         ticks_to_us)
                << ",\"cat\":\"sim\",\"name\":\""
                << jsonEscape(iv.name) << "\"";
            if (iv.bytes) {
                oss << ",\"args\":{\"bytes\":" << iv.bytes
                    << ",\"start_tick\":" << iv.startTick
                    << ",\"end_tick\":" << iv.endTick << "}";
            } else {
                oss << ",\"args\":{\"start_tick\":" << iv.startTick
                    << ",\"end_tick\":" << iv.endTick << "}";
            }
            oss << "}";
            emit.event(oss.str());
        }
        for (const auto &in : instants) {
            std::ostringstream oss;
            oss << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kSimPid
                << ",\"tid\":" << track_tid[in.track] << ",\"ts\":"
                << fmtUs(static_cast<double>(in.tick) * ticks_to_us)
                << ",\"cat\":\"sim\",\"name\":\""
                << jsonEscape(in.name) << "\"}";
            emit.event(oss.str());
        }
    }

    os << "\n]}\n";
}

bool
writeChromeTraceFile(const std::string &path,
                     const TraceSession &session,
                     const SimTraceRecorder *sim,
                     const ChromeTraceOptions &options)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open trace file '", path, "' for writing");
        return false;
    }
    writeChromeTrace(out, session, sim, options);
    return true;
}

} // namespace morphling::telemetry
