/**
 * @file
 * The metrics half of the telemetry subsystem: named counters, gauges
 * and log-bucketed histograms collected in a process-wide registry,
 * exportable as Prometheus text exposition or a JSON snapshot.
 *
 * All update paths are lock-free (relaxed atomics / CAS loops) so the
 * service hot path can bump counters from any worker thread; the
 * registry mutex is taken only when a metric is first created and
 * during export. Handles returned by counter()/gauge()/histogram()
 * stay valid for the registry's lifetime — resolve them once and keep
 * the reference.
 *
 * Relation to sim::StatSet: StatSet remains the single-threaded
 * per-component bookkeeping of the cycle simulator; this registry is
 * the concurrent, scrapeable, process-wide view for live service runs
 * (docs/observability.md).
 */

#ifndef MORPHLING_TELEMETRY_METRICS_H
#define MORPHLING_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace morphling::telemetry {

/** Monotonically increasing event count. */
class Counter
{
  public:
    Counter(std::string name, std::string help)
        : name_(std::move(name)), help_(std::move(help))
    {
    }

    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::string help_;
    std::atomic<std::uint64_t> value_{0};
};

/** A value that can go up and down (queue depth, outstanding work). */
class Gauge
{
  public:
    Gauge(std::string name, std::string help)
        : name_(std::move(name)), help_(std::move(help))
    {
    }

    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double delta);

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::string help_;
    std::atomic<double> value_{0};
};

/**
 * Log-bucketed histogram: bucket i counts observations with
 * value <= 2^i (i in [0, 62]), the last bucket is +Inf. Powers of two
 * give full range at 64 fixed slots — the right shape for latencies
 * spanning nanoseconds to seconds — and make bucket boundaries exact
 * in both export formats.
 */
class Histogram
{
  public:
    /** Buckets: le 2^0 .. 2^62, then +Inf. */
    static constexpr unsigned kBuckets = 64;

    Histogram(std::string name, std::string help)
        : name_(std::move(name)), help_(std::move(help))
    {
    }

    void observe(double v);

    /** Index of the bucket a value lands in. */
    static unsigned bucketIndex(double v);

    /** Inclusive upper bound of bucket i (+Inf for the last). */
    static double bucketUpperBound(unsigned i);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const
    {
        const auto c = count();
        return c ? sum() / static_cast<double>(c) : 0.0;
    }
    double min() const;
    double max() const;

    std::uint64_t bucketCount(unsigned i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }
    void reset();

  private:
    std::string name_;
    std::string help_;
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0};
    std::atomic<double> min_{0};
    std::atomic<double> max_{0};
};

/**
 * Name-keyed collection of metrics. instance() is the process-wide
 * registry the instrumented layers share; separate instances exist
 * only for tests.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    static MetricsRegistry &instance();

    /** Get-or-create; the reference is stable forever after. */
    Counter &counter(const std::string &name,
                     const std::string &help = "");
    Gauge &gauge(const std::string &name, const std::string &help = "");
    Histogram &histogram(const std::string &name,
                         const std::string &help = "");

    /** Prometheus text exposition format, version 0.0.4. Metric names
     *  are prefixed "morphling_" with '.' mapped to '_'. */
    void writePrometheus(std::ostream &os) const;

    /** One JSON object: {"counters":{...},"gauges":{...},
     *  "histograms":{...}} with dotted names kept verbatim. */
    void writeJson(std::ostream &os) const;

    /** Zero every metric, keeping registrations (tests, restarts). */
    void reset();

  private:
    mutable std::mutex mu_; //!< guards map structure only
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace morphling::telemetry

#endif // MORPHLING_TELEMETRY_METRICS_H
