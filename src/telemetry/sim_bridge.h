/**
 * @file
 * Bridge from the cycle simulator to the telemetry trace: while a
 * SimTraceRecorder is installed, the sim/arch component models
 * (XpuComplex busy/stall, VpuModel tasks, Hbm channel transfers,
 * DmaEngine loads, NoC link transfers, DTRACE log lines) report their
 * busy/stall intervals and transactions here in *simulated ticks*.
 * The Chrome exporter (chrome_trace.h) then renders them as
 * virtual-time tracks in the same trace file as the wall-clock CPU
 * spans, so a simulated Morphling pipeline and the real service path
 * are inspectable with one tool.
 *
 * The recorder is an explicit, scoped opt-in: construct one, call
 * install(), run the simulation, uninstall() (or let the destructor
 * do it). Nothing records while no recorder is installed, and with
 * MORPHLING_TELEMETRY=OFF the component hooks compile to nothing.
 *
 * Thread safety: recording is mutex-guarded (the simulator itself is
 * single-threaded; the guard exists for the DTRACE bridge, which the
 * service worker threads may drive through sim::Trace).
 */

#ifndef MORPHLING_TELEMETRY_SIM_BRIDGE_H
#define MORPHLING_TELEMETRY_SIM_BRIDGE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace morphling::telemetry {

/** Collects simulated-time intervals and instants for export. */
class SimTraceRecorder
{
  public:
    /** One busy/transfer interval on a named virtual track. */
    struct Interval
    {
        std::string track; //!< e.g. "xpu", "hbm.ch0", "vpu_dma"
        std::string name;  //!< e.g. "iteration", "xfer", "bsk_stall"
        std::uint64_t startTick = 0;
        std::uint64_t endTick = 0;
        std::uint64_t bytes = 0; //!< payload size, 0 when n/a
    };

    /** One point event (the DTRACE bridge). */
    struct Instant
    {
        std::string track;
        std::string name;
        std::uint64_t tick = 0;
    };

    explicit SimTraceRecorder(std::size_t max_events = 1u << 20);
    ~SimTraceRecorder(); //!< uninstalls if still installed

    SimTraceRecorder(const SimTraceRecorder &) = delete;
    SimTraceRecorder &operator=(const SimTraceRecorder &) = delete;

    /** Make this the process-wide recorder the component hooks see. */
    void install();
    void uninstall();

    /** The installed recorder, or nullptr. */
    static SimTraceRecorder *current();

    void interval(std::string track, std::string name,
                  std::uint64_t start_tick, std::uint64_t end_tick,
                  std::uint64_t bytes = 0);
    void instant(std::string track, std::string name,
                 std::uint64_t tick);

    /** Snapshots (copies) for the exporter. */
    std::vector<Interval> intervals() const;
    std::vector<Instant> instants() const;

    /** Events discarded after max_events was reached. */
    std::uint64_t droppedEvents() const;

  private:
    bool roomLocked();

    mutable std::mutex mu_;
    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
    std::vector<Interval> intervals_;
    std::vector<Instant> instants_;
};

} // namespace morphling::telemetry

#if MORPHLING_TELEMETRY_ENABLED

/** Component hook: record a virtual-time interval when a recorder is
 *  installed; compiles to nothing under MORPHLING_TELEMETRY=OFF. */
#define MORPHLING_SIM_INTERVAL(track, name, start, end, bytes)            \
    do {                                                                  \
        if (auto *morphlingSimRec_ =                                      \
                ::morphling::telemetry::SimTraceRecorder::current()) {    \
            morphlingSimRec_->interval((track), (name), (start), (end),   \
                                       (bytes));                          \
        }                                                                 \
    } while (0)

#define MORPHLING_SIM_INSTANT(track, name, tick)                          \
    do {                                                                  \
        if (auto *morphlingSimRec_ =                                      \
                ::morphling::telemetry::SimTraceRecorder::current()) {    \
            morphlingSimRec_->instant((track), (name), (tick));           \
        }                                                                 \
    } while (0)

#else

#define MORPHLING_SIM_INTERVAL(track, name, start, end, bytes)            \
    static_cast<void>(0)
#define MORPHLING_SIM_INSTANT(track, name, tick) static_cast<void>(0)

#endif // MORPHLING_TELEMETRY_ENABLED

#endif // MORPHLING_TELEMETRY_SIM_BRIDGE_H
