/**
 * @file
 * The circuit executor: schedules a lowered circuit's Program DAG over
 * one ExecutionBackend.
 *
 * Levels run strictly in order (inter-level ciphertext dependencies);
 * within a level, each LoweredStep is one backend run — the backend is
 * free to parallelize inside the batch (FunctionalBackend's
 * group-parallel path, ShardedBackend's fan-out). Between levels the
 * executor performs the linear plumbing the IR keeps free: input
 * binding, trivial constants, NOT negations, and each gate's
 * tfhe::gateLinear combination. Because that arithmetic is shared with
 * the tfhe gate API and the functional backend reproduces
 * tfhe::bootstrapInto exactly, the executor's outputs are
 * bit-identical to Circuit::evaluateEncrypted.
 *
 * Telemetry: one span per level under the "exec" category, and a
 * retirement log spanning levels (per-step RetiredInstructions with a
 * globally renumbered sequence).
 */

#ifndef MORPHLING_EXEC_CIRCUIT_EXECUTOR_H
#define MORPHLING_EXEC_CIRCUIT_EXECUTOR_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/lowering.h"
#include "compiler/sw_scheduler.h"
#include "exec/backend.h"

namespace morphling::exec {

/** Per-level outcome of one circuit run. */
struct CircuitLevelStats
{
    unsigned level = 0;
    std::size_t steps = 0;          //!< LUT-grouped batches run
    std::uint64_t bootstraps = 0;   //!< blind rotations retired
    std::uint64_t wallNanos = 0;    //!< wall time of the level
};

/** One retired instruction tagged with its position in the circuit:
 *  the cross-level retirement log entry. */
struct CircuitRetirement
{
    unsigned level = 0;
    std::size_t step = 0;   //!< step index within the level
    /** The backend's retirement record; seq renumbered to be globally
     *  monotone across every step and level of the run. */
    RetiredInstruction inst;
};

/** What one circuit execution produced. */
struct CircuitResult
{
    /** Output ciphertexts, one per Circuit::outputs() entry. */
    std::vector<tfhe::LweCiphertext> outputs;

    std::vector<CircuitLevelStats> levels;

    /** Retirement log spanning levels, in global retirement order. */
    std::vector<CircuitRetirement> retired;

    std::uint64_t totalBootstraps = 0;
};

/**
 * Runs lowered circuits over one backend. The backend must be
 * functional (produce ciphertext outputs): kFunctional, a sharded
 * functional fleet, or anything else whose ExecutionResult::hasOutputs
 * holds. Single-driver, like the backend it wraps.
 */
class CircuitExecutor
{
  public:
    CircuitExecutor(const tfhe::TfheParams &params,
                    ExecutionBackend &backend,
                    tfhe::BatchOptions options = {});

    /** Execute a lowered circuit on `inputs` (one ciphertext per
     *  circuit input, creation order). */
    CircuitResult run(const circuit::LoweredCircuit &lowered,
                      const std::vector<tfhe::LweCiphertext> &inputs);

    /** Convenience: lower with this executor's scheduler, then run. */
    CircuitResult run(const circuit::Circuit &circuit,
                      const std::vector<tfhe::LweCiphertext> &inputs);

  private:
    const tfhe::TfheParams &params_;
    ExecutionBackend &backend_;
    tfhe::BatchOptions options_;
    compiler::SwScheduler scheduler_;
};

} // namespace morphling::exec

#endif // MORPHLING_EXEC_CIRCUIT_EXECUTOR_H
