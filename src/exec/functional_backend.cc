#include "functional_backend.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace morphling::exec {

using compiler::Opcode;

namespace {

/** Span name per opcode: string literals, as the telemetry ring
 *  stores the pointer rather than copying. */
const char *
spanNameFor(Opcode op)
{
    switch (op) {
      case Opcode::DmaLoadLwe:
        return "DMA.LD_LWE";
      case Opcode::DmaLoadBsk:
        return "DMA.LD_BSK";
      case Opcode::DmaLoadKsk:
        return "DMA.LD_KSK";
      case Opcode::DmaLoadData:
        return "DMA.LD_DATA";
      case Opcode::DmaStoreLwe:
        return "DMA.ST_LWE";
      case Opcode::VpuModSwitch:
        return "VPU.MS";
      case Opcode::VpuSampleExtract:
        return "VPU.SE";
      case Opcode::VpuKeySwitch:
        return "VPU.KS";
      case Opcode::VpuPAlu:
        return "VPU.PALU";
      case Opcode::XpuBlindRotate:
        return "XPU.BR";
      case Opcode::Barrier:
        return "CTRL.BAR";
    }
    return "exec.unknown";
}

} // namespace

FunctionalBackend::FunctionalBackend(const tfhe::EvaluationKeys &keys,
                                     FunctionalConfig config)
    : params_(keys.params), bsk_(keys.bsk), ksk_(keys.ksk),
      config_(config)
{
    if (config_.xpuEngine == XpuEngine::kDatapath) {
        fatal_if(config_.rawBsk == nullptr,
                 "XpuEngine::kDatapath needs a coefficient-domain BSK "
                 "(arch::functional::generateRawBsk)");
        xpu_ = std::make_unique<arch::functional::FunctionalXpu>(
            params_, config_.datapathRows, config_.datapathCols);
        xpu_->loadBootstrapKey(*config_.rawBsk);
    }
}

FunctionalBackend::FunctionalBackend(const tfhe::KeySet &keys,
                                     FunctionalConfig config)
    : params_(keys.params), bsk_(keys.bsk), ksk_(keys.ksk),
      config_(config)
{
    if (config_.xpuEngine == XpuEngine::kDatapath) {
        fatal_if(config_.rawBsk == nullptr,
                 "XpuEngine::kDatapath needs a coefficient-domain BSK "
                 "(arch::functional::generateRawBsk)");
        xpu_ = std::make_unique<arch::functional::FunctionalXpu>(
            params_, config_.datapathRows, config_.datapathCols);
        xpu_->loadBootstrapKey(*config_.rawBsk);
    }
}

void
FunctionalBackend::reset()
{
    program_ = nullptr;
    inputs_ = nullptr;
    loaded_ = false;
    chunks_.clear();
    groups_.clear();
    outputs_.clear();
    log_.clear();
    pendingRetire_.clear();
    seq_ = 0;
    rr_ = 0;
}

void
FunctionalBackend::bindProgram(const compiler::Program &program,
                               const Job &job)
{
    groups_.resize(program.numGroups());

    // Walk the stream once, carving out chunks: each DMA.LD_LWE opens
    // a chunk covering the next `count` input slots (the SW scheduler
    // emits chunks in input order, so a flat cursor reproduces the
    // slot assignment); subsequent chunk-stage ops of the same group
    // bind to the open chunk until DMA.ST_LWE closes it.
    std::vector<int> open(groups_.size(), -1);
    std::size_t cursor = 0;
    const auto &instrs = program.instructions();
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const auto &inst = instrs[i];
        auto &gs = groups_[inst.group];
        InstrRef ref{i, -1};
        switch (inst.op) {
          case Opcode::DmaLoadLwe: {
            panic_if(open[inst.group] >= 0,
                     "DMA.LD_LWE while group ",
                     static_cast<unsigned>(inst.group),
                     " has an open chunk");
            Chunk chunk;
            chunk.slotBegin = cursor;
            chunk.count = inst.count;
            cursor += inst.count;
            open[inst.group] = static_cast<int>(chunks_.size());
            ref.chunk = open[inst.group];
            chunks_.push_back(std::move(chunk));
            break;
          }
          case Opcode::VpuModSwitch:
          case Opcode::DmaLoadBsk:
          case Opcode::XpuBlindRotate:
          case Opcode::VpuSampleExtract:
          case Opcode::DmaLoadKsk:
          case Opcode::VpuKeySwitch:
          case Opcode::DmaStoreLwe: {
            ref.chunk = open[inst.group];
            panic_if(ref.chunk < 0, inst.toString(),
                     " outside an open chunk");
            panic_if(
                inst.count != chunks_[ref.chunk].count,
                inst.toString(), ": count mismatch with chunk head");
            if (inst.op == Opcode::DmaStoreLwe)
                open[inst.group] = -1;
            break;
          }
          case Opcode::DmaLoadData:
          case Opcode::VpuPAlu:
          case Opcode::Barrier:
            // Carry no ciphertext data (the Program encodes byte/MAC
            // volumes, not operand bindings).
            break;
        }
        gs.stream.push_back(ref);
    }
    for (unsigned g = 0; g < groups_.size(); ++g) {
        panic_if(open[g] >= 0, "group ", g,
                 " ends with an unterminated chunk");
    }

    const std::uint64_t total_br = program.totalBlindRotations();
    panic_if(cursor != total_br,
             "DMA.LD_LWE covers ", cursor, " slots but XPU.BR covers ",
             total_br);

    if (total_br > 0) {
        panic_if(job.inputs == nullptr,
                 "program performs blind rotations but the job has no "
                 "inputs");
        panic_if(job.inputs->size() != total_br,
                 "job has ", job.inputs->size(),
                 " inputs for a program of ", total_br, " slots");
        panic_if(job.lut == nullptr || job.lut->empty(),
                 "program performs blind rotations but the job has no "
                 "LUT");
        if (job.signLut) {
            // Gate bootstrapping: the whole ring maps to one magnitude
            // (sign extraction). No staircase slot structure exists, so
            // the message-space noise audit does not apply.
            panic_if(job.lut->size() != 1,
                     "sign jobs carry exactly one LUT entry (mu), got ",
                     job.lut->size());
            testPoly_ = tfhe::constantTestPolynomial(params_.polyDegree,
                                                     (*job.lut)[0]);
        } else {
            tfhe::auditBatchLut(params_, *job.lut, job.options);
            tfhe::buildTestPolynomialInto(params_.polyDegree, *job.lut,
                                          testPoly_);
        }
        outputs_.assign(total_br,
                        tfhe::LweCiphertext(params_.lweDimension));
    }
}

void
FunctionalBackend::load(const compiler::Program &program, const Job &job)
{
    reset();
    bindProgram(program, job);
    // Keep pointers only after binding succeeded.
    program_ = &program;
    inputs_ = job.inputs;
    loaded_ = true;
}

bool
FunctionalBackend::allFinished() const
{
    for (const auto &gs : groups_) {
        if (gs.pc < gs.stream.size())
            return false;
    }
    return true;
}

bool
FunctionalBackend::done() const
{
    return loaded_ && pendingRetire_.empty() && allFinished();
}

RetiredInstruction
FunctionalBackend::makeRetired(std::size_t index)
{
    RetiredInstruction r;
    r.index = index;
    r.inst = program_->at(index);
    r.seq = seq_++;
    r.tick = 0;
    return r;
}

void
FunctionalBackend::releaseBarrier()
{
    // Mirrors the HW scheduler's rendezvous: every group must reach
    // the same barrier before any proceeds.
    std::uint32_t barrier_id = 0;
    bool first = true;
    for (unsigned g = 0; g < groups_.size(); ++g) {
        auto &gs = groups_[g];
        panic_if(gs.pc >= gs.stream.size(),
                 "group ", g, " finished before barrier rendezvous");
        const auto &inst = program_->at(gs.stream[gs.pc].index);
        panic_if(inst.op != Opcode::Barrier,
                 "group ", g, " blocked on a non-barrier");
        if (first) {
            barrier_id = inst.operand;
            first = false;
        } else {
            panic_if(inst.operand != barrier_id,
                     "barrier id mismatch: group ", g, " waits at ",
                     inst.operand, ", expected ", barrier_id);
        }
    }
    for (unsigned g = 0; g < groups_.size(); ++g) {
        auto &gs = groups_[g];
        pendingRetire_.push_back(makeRetired(gs.stream[gs.pc].index));
        ++gs.pc;
    }
}

std::optional<RetiredInstruction>
FunctionalBackend::step()
{
    panic_if(!loaded_, "step() before load()");
    if (!pendingRetire_.empty()) {
        auto r = pendingRetire_.front();
        pendingRetire_.pop_front();
        log_.push_back(r);
        return r;
    }

    const auto n_groups = static_cast<unsigned>(groups_.size());
    for (unsigned i = 0; i < n_groups; ++i) {
        const unsigned g = (rr_ + i) % n_groups;
        auto &gs = groups_[g];
        if (gs.pc >= gs.stream.size())
            continue;
        const auto &ref = gs.stream[gs.pc];
        if (program_->at(ref.index).op == Opcode::Barrier)
            continue; // waits for the rendezvous
        execute(ref, tfhe::BootstrapWorkspace::forThisThread());
        ++gs.pc;
        rr_ = (g + 1) % n_groups;
        auto r = makeRetired(ref.index);
        log_.push_back(r);
        return r;
    }

    if (allFinished())
        return std::nullopt;

    // Nothing runnable and work remains: every unfinished group sits
    // at a barrier (the only blocking instruction).
    releaseBarrier();
    auto r = pendingRetire_.front();
    pendingRetire_.pop_front();
    log_.push_back(r);
    return r;
}

void
FunctionalBackend::blindRotateChunk(Chunk &chunk,
                                    tfhe::BootstrapWorkspace &ws)
{
    chunk.accs.resize(chunk.count);
    if (config_.xpuEngine == XpuEngine::kWorkspace) {
        for (unsigned i = 0; i < chunk.count; ++i) {
            tfhe::blindRotate(bsk_, testPoly_, chunk.switched[i],
                              chunk.accs[i], ws);
        }
        return;
    }
    // Datapath engine: waves of up to `rows` ciphertexts share each
    // streamed BSK_i, as on the VPE array.
    for (unsigned base = 0; base < chunk.count;
         base += config_.datapathRows) {
        const unsigned wave = std::min<unsigned>(config_.datapathRows,
                                                 chunk.count - base);
        std::vector<std::vector<std::uint32_t>> batch(
            chunk.switched.begin() + base,
            chunk.switched.begin() + base + wave);
        auto rotated = xpu_->runBlindRotateBatch(testPoly_, batch);
        for (unsigned i = 0; i < wave; ++i)
            chunk.accs[base + i] = std::move(rotated[i]);
    }
}

void
FunctionalBackend::execute(const InstrRef &ref,
                           tfhe::BootstrapWorkspace &ws)
{
    const auto &inst = program_->at(ref.index);
    MORPHLING_TELEMETRY_ONLY(
        telemetry::Span span("exec", spanNameFor(inst.op));)

    switch (inst.op) {
      case Opcode::DmaLoadLwe: {
        Chunk &chunk = chunks_[ref.chunk];
        panic_if(chunk.staged, "chunk staged twice");
        chunk.staging.assign(
            inputs_->begin() + chunk.slotBegin,
            inputs_->begin() + chunk.slotBegin + chunk.count);
        for (const auto &ct : chunk.staging) {
            panic_if(ct.dimension() != params_.lweDimension,
                     "input dimension ", ct.dimension(),
                     " != n = ", params_.lweDimension);
        }
        chunk.staged = true;
        break;
      }
      case Opcode::VpuModSwitch: {
        Chunk &chunk = chunks_[ref.chunk];
        panic_if(!chunk.staged || chunk.modSwitched,
                 "VPU.MS out of order");
        chunk.switched.resize(chunk.count);
        for (unsigned i = 0; i < chunk.count; ++i) {
            tfhe::modSwitchInto(chunk.staging[i], params_.polyDegree,
                                chunk.switched[i]);
        }
        chunk.modSwitched = true;
        break;
      }
      case Opcode::DmaLoadBsk: {
        Chunk &chunk = chunks_[ref.chunk];
        panic_if(chunk.bskArmed, "DMA.LD_BSK out of order");
        chunk.bskArmed = true;
        break;
      }
      case Opcode::XpuBlindRotate: {
        Chunk &chunk = chunks_[ref.chunk];
        panic_if(!chunk.modSwitched || !chunk.bskArmed || chunk.rotated,
                 "XPU.BR out of order");
        blindRotateChunk(chunk, ws);
        chunk.rotated = true;
        break;
      }
      case Opcode::VpuSampleExtract: {
        Chunk &chunk = chunks_[ref.chunk];
        panic_if(!chunk.rotated || chunk.extracted,
                 "VPU.SE out of order");
        chunk.extractedCts.resize(chunk.count);
        for (unsigned i = 0; i < chunk.count; ++i)
            chunk.accs[i].sampleExtractAtInto(0, chunk.extractedCts[i]);
        chunk.accs.clear(); // the accumulators are drained
        chunk.extracted = true;
        break;
      }
      case Opcode::DmaLoadKsk: {
        Chunk &chunk = chunks_[ref.chunk];
        panic_if(chunk.kskLoaded, "DMA.LD_KSK out of order");
        chunk.kskLoaded = true;
        break;
      }
      case Opcode::VpuKeySwitch: {
        Chunk &chunk = chunks_[ref.chunk];
        panic_if(!chunk.extracted || !chunk.kskLoaded ||
                     chunk.keySwitched,
                 "VPU.KS out of order");
        chunk.results.resize(chunk.count);
        for (unsigned i = 0; i < chunk.count; ++i)
            ksk_.applyInto(chunk.extractedCts[i], chunk.results[i]);
        chunk.keySwitched = true;
        break;
      }
      case Opcode::DmaStoreLwe: {
        Chunk &chunk = chunks_[ref.chunk];
        panic_if(!chunk.keySwitched || chunk.stored,
                 "DMA.ST_LWE out of order");
        for (unsigned i = 0; i < chunk.count; ++i)
            outputs_[chunk.slotBegin + i] = std::move(chunk.results[i]);
        chunk.stored = true;
        // Release the chunk's staging memory; the chunk is drained.
        chunk.staging.clear();
        chunk.switched.clear();
        chunk.extractedCts.clear();
        chunk.results.clear();
        break;
      }
      case Opcode::DmaLoadData:
      case Opcode::VpuPAlu:
        // Linear (P-ALU) work carries no ciphertext operands in the
        // Program encoding (byte/MAC volumes only) — a timing-visible,
        // data-free stage.
        break;
      case Opcode::Barrier:
        panic("barrier reached execute()");
    }
}

void
FunctionalBackend::runParallel(unsigned threads)
{
    const auto n_groups = static_cast<unsigned>(groups_.size());
    while (!allFinished()) {
        // Groups with runnable (non-barrier) work form one
        // barrier-delimited segment; they are data-independent by
        // construction (disjoint chunks, disjoint output slots).
        std::vector<unsigned> active;
        for (unsigned g = 0; g < n_groups; ++g) {
            auto &gs = groups_[g];
            if (gs.pc < gs.stream.size() &&
                program_->at(gs.stream[gs.pc].index).op !=
                    Opcode::Barrier)
                active.push_back(g);
        }

        if (active.empty()) {
            releaseBarrier();
            while (!pendingRetire_.empty()) {
                log_.push_back(pendingRetire_.front());
                pendingRetire_.pop_front();
            }
            continue;
        }

        std::vector<std::vector<RetiredInstruction>> logs(n_groups);
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            auto &ws = tfhe::BootstrapWorkspace::forThisThread();
            for (std::size_t j =
                     next.fetch_add(1, std::memory_order_relaxed);
                 j < active.size();
                 j = next.fetch_add(1, std::memory_order_relaxed)) {
                const unsigned g = active[j];
                auto &gs = groups_[g];
                while (gs.pc < gs.stream.size()) {
                    const auto &ref = gs.stream[gs.pc];
                    if (program_->at(ref.index).op == Opcode::Barrier)
                        break;
                    execute(ref, ws);
                    RetiredInstruction r;
                    r.index = ref.index;
                    r.inst = program_->at(ref.index);
                    logs[g].push_back(r);
                    ++gs.pc;
                }
            }
        };

        const unsigned workers = std::min<unsigned>(
            threads, static_cast<unsigned>(active.size()));
        if (workers <= 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(workers - 1);
            for (unsigned t = 0; t + 1 < workers; ++t)
                pool.emplace_back(worker);
            worker();
            for (auto &t : pool)
                t.join();
        }

        // Deterministic merge: group order within the segment.
        for (unsigned g = 0; g < n_groups; ++g) {
            for (auto &r : logs[g]) {
                r.seq = seq_++;
                log_.push_back(r);
            }
        }
    }
}

ExecutionResult
FunctionalBackend::run(const compiler::Program &program, const Job &job)
{
    load(program, job);
    unsigned threads = job.options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    // The datapath engine is a single stateful instance — no
    // group-parallel path for it.
    if (threads <= 1 || config_.xpuEngine == XpuEngine::kDatapath) {
        while (step())
            ;
    } else {
        runParallel(threads);
    }
    return finish();
}

ExecutionResult
FunctionalBackend::finish()
{
    panic_if(!loaded_, "finish() before load()");
    panic_if(!done(), "finish() before the program fully retired");
    ExecutionResult result;
    result.backend = name();
    result.outputs = std::move(outputs_);
    result.hasOutputs = true;
    result.retired = std::move(log_);
    reset();
    return result;
}

} // namespace morphling::exec
