#include "exec/remote_server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "compiler/program.h"

namespace morphling::exec {

using remote::Frame;
using remote::FrameType;
using remote::RemoteError;
using remote::RemoteErrorKind;
using remote::WireErrorCode;
using remote::WireReader;
using remote::WireWriter;

namespace {

/** Per-frame header bytes, counted into the byte stats alongside the
 *  payload so the bench's wire accounting matches what TCP carries. */
constexpr std::size_t kFrameOverhead = 5;

/** Ciphertext count cap mirroring the per-ciphertext dimension cap in
 *  remote_protocol.cc — a lying count cannot force a huge reserve. */
constexpr std::uint32_t kMaxInputs = 1u << 24;

} // namespace

RemoteServer::RemoteServer(RemoteServerConfig config)
    : config_(std::move(config))
{
}

RemoteServer::~RemoteServer() { stop(); }

tfhe::KeyFingerprint RemoteServer::addKeys(tfhe::EvaluationKeys keys)
{
    const tfhe::KeyFingerprint fp = tfhe::fingerprintEvaluationKeys(keys);
    std::lock_guard<std::mutex> lock(keysMu_);
    keys_[fp] =
        std::make_shared<const tfhe::EvaluationKeys>(std::move(keys));
    return fp;
}

void RemoteServer::start()
{
    fatal_if(running_.load(), "RemoteServer::start: already running");
    fatal_if(config_.inner.kind == BackendKind::kTiming,
             "RemoteServer: inner backend must produce ciphertext "
             "outputs; kTiming cannot serve execution requests");
    fatal_if(config_.inner.kind == BackendKind::kRemote,
             "RemoteServer: inner backend cannot itself be kRemote");
    fatal_if(config_.retireChunk == 0,
             "RemoteServer: retireChunk must be positive");

    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    const std::string service = std::to_string(config_.port);
    struct addrinfo *res = nullptr;
    const int gai = ::getaddrinfo(config_.bindHost.c_str(),
                                  service.c_str(), &hints, &res);
    if (gai != 0 || res == nullptr)
        throw RemoteError(RemoteErrorKind::kConnectFailed,
                          morphling::detail::concat(
                              "cannot resolve bind address ",
                              config_.bindHost, ": ",
                              ::gai_strerror(gai)));

    int fd = -1;
    std::string lastError = "no usable address";
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            lastError = std::strerror(errno);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 16) == 0)
            break;
        lastError = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        throw RemoteError(
            RemoteErrorKind::kConnectFailed,
            morphling::detail::concat("cannot bind ", config_.bindHost,
                                      ":", config_.port, ": ",
                                      lastError));
    listener_ = remote::Socket(fd);

    struct sockaddr_storage addr;
    socklen_t addrLen = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &addrLen) == 0) {
        if (addr.ss_family == AF_INET)
            boundPort_ = ntohs(
                reinterpret_cast<struct sockaddr_in *>(&addr)->sin_port);
        else if (addr.ss_family == AF_INET6)
            boundPort_ = ntohs(
                reinterpret_cast<struct sockaddr_in6 *>(&addr)
                    ->sin6_port);
    }

    stopping_.store(false);
    running_.store(true);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void RemoteServer::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    cacheCv_.notify_all();
    // The accept loop polls with a 100ms timeout and re-checks
    // stopping_, so joining first is bounded — and the listener fd
    // must not be closed while that thread may still hand it to
    // poll()/accept() (close would race, and the fd number could be
    // reused under it).
    if (acceptor_.joinable())
        acceptor_.join();
    listener_.close();
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (Connection &conn : connections_)
            conn.socket.shutdownBoth();
    }
    // After the acceptor is gone no new connections appear, and the
    // connection threads never touch the list — joining without the
    // lock is safe.
    for (Connection &conn : connections_)
        if (conn.thread.joinable())
            conn.thread.join();
    connections_.clear();
    running_.store(false);
}

bool RemoteServer::running() const { return running_.load(); }

std::uint16_t RemoteServer::port() const { return boundPort_; }

RemoteServerStats RemoteServer::stats() const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return stats_;
}

std::uint64_t RemoteServer::executionsFor(std::uint64_t requestId) const
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    auto it = executionCounts_.find(requestId);
    return it == executionCounts_.end() ? 0 : it->second;
}

void RemoteServer::acceptLoop()
{
    while (!stopping_.load()) {
        struct pollfd pfd;
        pfd.fd = listener_.fd();
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int rc = ::poll(&pfd, 1, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0)
            continue;
        const int fd = ::accept(listener_.fd(), nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        std::lock_guard<std::mutex> lock(connMu_);
        // Reap connections whose threads already finished so a
        // long-lived server does not accumulate joinable threads.
        for (auto it = connections_.begin();
             it != connections_.end();) {
            if (it->finished && it->thread.joinable()) {
                it->thread.join();
                it = connections_.erase(it);
            } else {
                ++it;
            }
        }
        connections_.emplace_back();
        Connection *conn = &connections_.back();
        conn->socket = remote::Socket(fd);
        {
            std::lock_guard<std::mutex> slock(statsMu_);
            ++stats_.connections;
        }
        conn->thread =
            std::thread([this, conn] { serveConnection(conn); });
    }
}

void RemoteServer::serveConnection(Connection *conn)
{
    try {
        Frame hello =
            remote::recvFrame(conn->socket,
                              remote::deadlineAfter(config_.frameTimeout));
        try {
            remote::checkHello(hello, FrameType::kHello);
        } catch (const RemoteError &e) {
            sendErrorCounted(conn, WireErrorCode::kVersionMismatch,
                             e.what());
            conn->finished = true;
            return;
        }
        remote::sendHello(conn->socket, FrameType::kHelloAck,
                          remote::deadlineAfter(config_.frameTimeout));

        while (!stopping_.load()) {
            Frame frame;
            if (!remote::recvFrameOrClose(
                    conn->socket,
                    remote::deadlineAfter(config_.idleTimeout), frame))
                break; // clean goodbye
            {
                std::lock_guard<std::mutex> lock(statsMu_);
                stats_.bytesIn += frame.payload.size() + kFrameOverhead;
            }
            switch (frame.type) {
            case FrameType::kExecute:
                try {
                    handleExecute(conn, frame.payload);
                } catch (const RemoteError &e) {
                    // A malformed payload inside an intact frame does
                    // not desync the stream: reject it and keep
                    // serving the connection.
                    if (e.kind() != RemoteErrorKind::kMalformedFrame)
                        throw;
                    sendErrorCounted(
                        conn, WireErrorCode::kMalformedFrame, e.what());
                }
                break;
            case FrameType::kEnrollKeys:
                handleEnroll(conn, frame.payload);
                break;
            default:
                sendErrorCounted(
                    conn, WireErrorCode::kMalformedFrame,
                    "unexpected frame type in request position");
                break;
            }
        }
    } catch (const RemoteError &) {
        if (!stopping_.load()) {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++stats_.dropped;
        }
    } catch (const std::exception &e) {
        warn("remote server connection failed: ", e.what());
    }
    // Signal the peer EOF but do NOT close: stop() may concurrently
    // shutdownBoth() this socket, and close would race with that (and
    // free an fd number another thread could reuse). The fd closes
    // with the Connection, after its thread is joined.
    conn->socket.shutdownBoth();
    conn->finished = true;
}

void RemoteServer::handleEnroll(Connection *conn,
                                const std::vector<std::uint8_t> &payload)
{
    std::string blob(payload.begin(), payload.end());
    std::istringstream is(blob);
    std::string error;
    std::optional<tfhe::EvaluationKeys> keys =
        tfhe::tryLoadEvaluationKeys(is, &error);
    if (!keys.has_value()) {
        sendErrorCounted(conn, WireErrorCode::kMalformedFrame,
                         morphling::detail::concat(
                             "key enrollment rejected: ", error));
        return;
    }
    const tfhe::KeyFingerprint fp =
        tfhe::fingerprintEvaluationKeys(*keys);
    {
        std::lock_guard<std::mutex> lock(keysMu_);
        keys_[fp] = std::make_shared<const tfhe::EvaluationKeys>(
            std::move(*keys));
    }
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.enrollments;
    }
    WireWriter w;
    w.u64(fp);
    const std::vector<std::uint8_t> ack = w.take();
    remote::sendFrame(conn->socket, FrameType::kEnrollAck, ack,
                      remote::deadlineAfter(config_.frameTimeout));
    std::lock_guard<std::mutex> lock(statsMu_);
    stats_.bytesOut += ack.size() + kFrameOverhead;
}

bool RemoteServer::streamResult(Connection *conn,
                                std::uint64_t request_id,
                                const CachedResult &result)
{
    try {
        std::size_t sent = 0;
        while (sent < result.retired.size()) {
            const std::size_t count = std::min<std::size_t>(
                config_.retireChunk, result.retired.size() - sent);
            WireWriter w;
            w.u64(request_id);
            w.u32(static_cast<std::uint32_t>(count));
            for (std::size_t i = 0; i < count; ++i) {
                const CachedRetirement &e = result.retired[sent + i];
                w.u64(e.index);
                w.u64(e.seq);
                w.u64(e.tick);
            }
            const std::vector<std::uint8_t> payload = w.take();
            remote::sendFrame(conn->socket, FrameType::kRetire, payload,
                              remote::deadlineAfter(config_.frameTimeout));
            {
                std::lock_guard<std::mutex> lock(statsMu_);
                stats_.bytesOut += payload.size() + kFrameOverhead;
            }
            sent += count;
        }
        WireWriter w;
        w.u64(request_id);
        w.u64(result.executions);
        w.u8(result.hasOutputs ? 1 : 0);
        w.u32(static_cast<std::uint32_t>(result.outputs.size()));
        for (const tfhe::LweCiphertext &ct : result.outputs)
            remote::writeCiphertext(w, ct);
        const std::vector<std::uint8_t> payload = w.take();
        remote::sendFrame(conn->socket, FrameType::kResult, payload,
                          remote::deadlineAfter(config_.frameTimeout));
        std::lock_guard<std::mutex> lock(statsMu_);
        stats_.bytesOut += payload.size() + kFrameOverhead;
        return true;
    } catch (const RemoteError &) {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.dropped;
        return false;
    }
}

void RemoteServer::sendErrorCounted(Connection *conn,
                                    WireErrorCode code,
                                    const std::string &message)
{
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.rejected;
        stats_.bytesOut += message.size() + 8 + kFrameOverhead;
    }
    try {
        remote::sendError(conn->socket, code, message,
                          remote::deadlineAfter(config_.frameTimeout));
    } catch (const RemoteError &) {
        // Peer already gone; the connection loop notices next read.
    }
}

void RemoteServer::cacheInsertLocked(std::uint64_t request_id,
                                     CachedResult value)
{
    cache_[request_id] = std::move(value);
    cacheOrder_.push_back(request_id);
    while (cache_.size() > config_.maxCachedResults) {
        bool evicted = false;
        for (auto it = cacheOrder_.begin(); it != cacheOrder_.end();
             ++it) {
            auto entry = cache_.find(*it);
            if (entry == cache_.end()) {
                // Stale order entry (erased on an error path).
                it = cacheOrder_.erase(it);
                evicted = true;
                break;
            }
            if (entry->second.done) {
                cache_.erase(entry);
                cacheOrder_.erase(it);
                evicted = true;
                break;
            }
        }
        if (!evicted)
            break; // everything in flight; let the cache run long
    }
}

void RemoteServer::handleExecute(Connection *conn,
                                 const std::vector<std::uint8_t> &payload)
{
    WireReader r(payload);
    const std::uint64_t requestId = r.u64();
    const std::uint64_t fingerprint = r.u64();
    const bool signLut = r.u8() != 0;
    tfhe::BatchOptions options;
    options.threads = r.u32();
    options.checkNoise = r.u8() != 0;
    options.minSlotSigmas = r.f64();
    const std::vector<tfhe::Torus32> lut = remote::readTorusVector(r);
    const std::vector<std::uint64_t> words = remote::readWordVector(r);
    const std::uint32_t inputCount = r.u32();
    if (inputCount > kMaxInputs)
        throw RemoteError(RemoteErrorKind::kMalformedFrame,
                          "implausible input ciphertext count");
    std::vector<tfhe::LweCiphertext> inputs;
    inputs.reserve(inputCount);
    for (std::uint32_t i = 0; i < inputCount; ++i)
        inputs.push_back(remote::readCiphertext(r));
    r.expectEnd();
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.requests;
    }

    // Keys first: an unknown fingerprint is the one rejection the
    // client recovers from in-band (enroll, then resend the same
    // request id), so it must not leave any cache state behind.
    std::shared_ptr<const tfhe::EvaluationKeys> keys;
    {
        std::lock_guard<std::mutex> lock(keysMu_);
        auto it = keys_.find(fingerprint);
        if (it != keys_.end())
            keys = it->second;
    }
    if (!keys) {
        sendErrorCounted(conn, WireErrorCode::kUnknownKey,
                         morphling::detail::concat(
                             "no evaluation keys enrolled under "
                             "fingerprint ",
                             tfhe::fingerprintHex(fingerprint)));
        return;
    }

    // Decode and pre-validate before touching the idempotency cache:
    // a request the server will reject must be rejectable on every
    // retry, not remembered as in-flight.
    std::string error;
    std::optional<compiler::Program> program =
        compiler::Program::tryDeserializeFramed("remote", words, &error);
    if (!program.has_value()) {
        sendErrorCounted(conn, WireErrorCode::kBadProgram,
                         morphling::detail::concat(
                             "program rejected: ", error));
        return;
    }
    const std::uint64_t rotations = program->totalBlindRotations();
    if (rotations != inputs.size()) {
        sendErrorCounted(
            conn, WireErrorCode::kBadProgram,
            morphling::detail::concat(
                "program performs ", rotations,
                " blind rotations but the request carries ",
                inputs.size(), " input ciphertexts"));
        return;
    }
    if (signLut && lut.size() != 1) {
        sendErrorCounted(conn, WireErrorCode::kBadProgram,
                         "sign-mode requests carry exactly one LUT "
                         "entry (mu)");
        return;
    }
    if (rotations > 0 && lut.empty()) {
        sendErrorCounted(conn, WireErrorCode::kBadProgram,
                         "program performs blind rotations but the "
                         "request carries no LUT");
        return;
    }

    // Idempotency gate: a known id replays; an in-flight id waits for
    // the original execution, then replays.
    {
        std::unique_lock<std::mutex> lock(cacheMu_);
        auto it = cache_.find(requestId);
        if (it != cache_.end()) {
            cacheCv_.wait(lock, [&] {
                auto entry = cache_.find(requestId);
                return entry == cache_.end() || entry->second.done ||
                       stopping_.load();
            });
            if (stopping_.load())
                return;
            auto entry = cache_.find(requestId);
            if (entry != cache_.end()) {
                CachedResult copy = entry->second;
                lock.unlock();
                {
                    std::lock_guard<std::mutex> slock(statsMu_);
                    ++stats_.replays;
                }
                streamResult(conn, requestId, copy);
                return;
            }
            // Evicted between completion and wake-up (needs
            // maxCachedResults newer requests in the window) — fall
            // through and execute again.
        }
        CachedResult placeholder;
        placeholder.done = false;
        cacheInsertLocked(requestId, std::move(placeholder));
        ++executionCounts_[requestId];
    }
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.executions;
    }

    // Execute, streaming retirements as they land. A send failure (or
    // the injected drop) marks the connection broken but never aborts
    // the execution: the result still reaches the cache so the
    // client's retry replays instead of re-executing.
    bool connBroken = false;
    int retireFramesSent = 0;
    const bool injectDrop = config_.dropAfterRetireFrames >= 0 &&
                            !dropFired_.exchange(true);
    std::vector<CachedRetirement> retired;
    std::vector<CachedRetirement> pending;
    CachedResult final;
    try {
        Job job = signLut ? Job::sign(inputs, lut, options)
                          : Job::batch(inputs, lut, options);
        std::unique_ptr<ExecutionBackend> backend =
            makeBackend(*keys, config_.inner);
        backend->load(*program, job);

        auto flushPending = [&]() {
            if (pending.empty())
                return;
            if (injectDrop && !connBroken &&
                retireFramesSent == config_.dropAfterRetireFrames) {
                conn->socket.shutdownBoth();
                connBroken = true;
                std::lock_guard<std::mutex> lock(statsMu_);
                ++stats_.dropped;
            }
            if (!connBroken) {
                WireWriter w;
                w.u64(requestId);
                w.u32(static_cast<std::uint32_t>(pending.size()));
                for (const CachedRetirement &e : pending) {
                    w.u64(e.index);
                    w.u64(e.seq);
                    w.u64(e.tick);
                }
                const std::vector<std::uint8_t> frame = w.take();
                try {
                    remote::sendFrame(
                        conn->socket, FrameType::kRetire, frame,
                        remote::deadlineAfter(config_.frameTimeout));
                    ++retireFramesSent;
                    std::lock_guard<std::mutex> lock(statsMu_);
                    stats_.bytesOut += frame.size() + kFrameOverhead;
                } catch (const RemoteError &) {
                    connBroken = true;
                    std::lock_guard<std::mutex> lock(statsMu_);
                    ++stats_.dropped;
                }
            }
            pending.clear();
        };

        while (std::optional<RetiredInstruction> step = backend->step()) {
            CachedRetirement entry;
            entry.index = step->index;
            entry.seq = step->seq;
            entry.tick = step->tick;
            retired.push_back(entry);
            pending.push_back(entry);
            if (pending.size() >= config_.retireChunk)
                flushPending();
        }
        flushPending();

        ExecutionResult result = backend->finish();
        final.retired = std::move(retired);
        final.outputs = std::move(result.outputs);
        final.hasOutputs = result.hasOutputs;
        final.done = true;
    } catch (const std::exception &e) {
        // Execution failed: forget the in-flight entry (a retry gets
        // the same deterministic failure) and report it.
        {
            std::lock_guard<std::mutex> lock(cacheMu_);
            cache_.erase(requestId);
            cacheOrder_.remove(requestId);
        }
        cacheCv_.notify_all();
        if (!connBroken)
            sendErrorCounted(conn, WireErrorCode::kExecutionFailed,
                             e.what());
        return;
    }

    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        final.executions = executionCounts_[requestId];
        cache_[requestId] = final; // keep a copy to stream from
    }
    cacheCv_.notify_all();

    if (connBroken)
        return;
    WireWriter w;
    w.u64(requestId);
    w.u64(final.executions);
    w.u8(final.hasOutputs ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(final.outputs.size()));
    for (const tfhe::LweCiphertext &ct : final.outputs)
        remote::writeCiphertext(w, ct);
    const std::vector<std::uint8_t> resultPayload = w.take();
    try {
        remote::sendFrame(conn->socket, FrameType::kResult,
                          resultPayload,
                          remote::deadlineAfter(config_.frameTimeout));
        std::lock_guard<std::mutex> lock(statsMu_);
        stats_.bytesOut += resultPayload.size() + kFrameOverhead;
    } catch (const RemoteError &) {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.dropped;
    }
}

} // namespace morphling::exec
