/**
 * @file
 * The sharded execution backend: splits a Program's barrier-delimited
 * group streams across N inner backends and merges the per-shard
 * retirement logs back into global program order.
 *
 * The compiled Program's groups are data-independent between barriers
 * (each chunk reads and writes its own slots of the flat input/output
 * arrays; barriers only express stage ordering within a group's own
 * stream), so a superbatch shards across N simulated accelerators or N
 * functional workers by group id with no cross-shard communication.
 * Shard s owns groups {g : g % N == s}; each shard executes its
 * Program::sliceGroups sub-program on its own inner backend, on its
 * own thread, against its own slice of the input ciphertexts.
 *
 * Merge determinism (docs/execution_model.md): per-shard logs are
 * recombined segment by segment — within every barrier-delimited
 * segment, groups in ascending global id, each group's instructions in
 * program order, then the segment's barrier retirements, again in
 * group order. This is byte-for-byte the order FunctionalBackend's
 * group-parallel run() produces, and it is independent of shard count
 * and of how the inner backends interleaved their groups — so a
 * 1-shard, 2-shard and 4-shard run of the same Program emit identical
 * retirement logs and bit-identical outputs.
 *
 * Timing shards are independent accelerators with independent virtual
 * clocks: RetiredInstruction::tick stays shard-local, shardStats()
 * reports per-shard cycles, and the merged SimReport carries the
 * max-over-shards makespan (the fleet finishes when its slowest shard
 * does) with summed work counters — the projection of Table VI-style
 * numbers to N accelerators.
 */

#ifndef MORPHLING_EXEC_SHARDED_BACKEND_H
#define MORPHLING_EXEC_SHARDED_BACKEND_H

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/config.h"
#include "arch/fleet.h"
#include "exec/backend.h"
#include "exec/functional_backend.h"

namespace morphling::exec {

/** Per-shard outcome of the last load(); see
 *  ShardedBackend::shardStats(). */
struct ShardStats
{
    unsigned shard = 0;
    std::vector<std::uint8_t> groups; //!< global group ids owned
    std::size_t instructions = 0;     //!< slice stream length
    std::uint64_t blindRotations = 0; //!< ciphertexts the shard owns
    bool hasReport = false;           //!< timing shard
    std::uint64_t cycles = 0;         //!< shard-local makespan (timing)
    /** Wall time the shard's thread spent in its inner run(). */
    std::uint64_t wallNanos = 0;
    /** CPU time of the shard's thread over the same run — the shard's
     *  critical path if each shard ran on its own host, which is what
     *  bench_sharded_scaling projects throughput from. */
    std::uint64_t cpuNanos = 0;
};

/**
 * Fans a Program out over N inner backends (any mix of functional
 * workers and independent accelerator-backed timing instances), runs
 * the shards concurrently, and presents the merged execution through
 * the ordinary ExecutionBackend interface: load() executes everything
 * eagerly (like TimingBackend), step() replays the deterministically
 * merged retirement log, finish() returns merged outputs (when every
 * shard produced them) and the fleet SimReport (when any shard timed).
 */
class ShardedBackend final : public ExecutionBackend
{
  public:
    /** Take ownership of one inner backend per shard; at least one. */
    explicit ShardedBackend(
        std::vector<std::unique_ptr<ExecutionBackend>> shards);

    /** N functional workers sharing one set of evaluation keys (the
     *  service's kShardedFunctional fan-out). */
    static ShardedBackend functional(const tfhe::EvaluationKeys &keys,
                                     unsigned numShards,
                                     FunctionalConfig config = {});

    /** Same fan-out from a full KeySet (client-side runs and tests). */
    static ShardedBackend functional(const tfhe::KeySet &keys,
                                     unsigned numShards,
                                     FunctionalConfig config = {});

    /** N independent simulated accelerators of identical geometry. */
    static ShardedBackend timing(const arch::ArchConfig &config,
                                 const tfhe::TfheParams &params,
                                 unsigned numShards);

    /**
     * N accelerators on one shared memory fabric (arch::AcceleratorFleet):
     * BSK fetches broadcast across shards, all shards advance in one
     * event queue, and per-shard cycles are finish ticks on the shared
     * clock — the model that breaks the private-HBM BSK-streaming
     * bound. `params` must outlive the backend.
     */
    static ShardedBackend fleetTiming(const arch::ArchConfig &config,
                                      const tfhe::TfheParams &params,
                                      unsigned numShards);

    std::string_view name() const override { return "sharded"; }

    /** Slice, dispatch every shard on its own thread, join, merge. */
    void load(const compiler::Program &program, const Job &job) override;
    std::optional<RetiredInstruction> step() override;
    bool done() const override;
    ExecutionResult finish() override;

    unsigned numShards() const
    {
        return fleetMode_ ? fleetShards_
                          : static_cast<unsigned>(shards_.size());
    }

    /** True when this backend runs shards over the shared fabric. */
    bool fleetMode() const { return fleetMode_; }

    /** Fleet broadcast telemetry of the last load(); only valid in
     *  fleet mode after a load. */
    const arch::FleetReport &fleetReport() const { return fleetReport_; }

    /**
     * Raw per-shard completion logs (slice-local indices, shared-clock
     * ticks) of the last fleet-mode load(); the co-simulator checks
     * dependency order against these since fleet shards have no inner
     * TimingBackend. Empty outside fleet mode.
     */
    const std::vector<std::vector<RetiredInstruction>> &
    shardCompletions() const
    {
        return shardCompletions_;
    }

    /** Per-shard outcome of the last load(); valid until the next
     *  load(). */
    const std::vector<ShardStats> &shardStats() const { return stats_; }

    /** The sub-program shard `s` executed; valid until the next
     *  load(). */
    const compiler::ProgramSlice &slice(unsigned s) const;

    /** The inner backend of shard `s` (the co-simulator reaches
     *  through this for per-shard completion-order checks). */
    const ExecutionBackend &shardBackend(unsigned s) const;

    /** Max over timing shards' cycles; 0 when no shard reports. */
    std::uint64_t makespan() const { return makespan_; }

  private:
    ShardedBackend() = default; //!< fleet-mode factory path

    void reset();
    void runShardsThreaded(const compiler::Program &program,
                           const Job &job,
                           std::vector<ExecutionResult> &results);
    void runShardsFleet(std::vector<ExecutionResult> &results);
    void mergeRetirement(const compiler::Program &program,
                         std::vector<ExecutionResult> &results);
    void mergeOutputs(const compiler::Program &program,
                      std::vector<ExecutionResult> &results);
    void mergeReports(std::vector<ExecutionResult> &results);

    std::vector<std::unique_ptr<ExecutionBackend>> shards_;

    // Fleet mode (shared-fabric timing): no inner backends; the
    // AcceleratorFleet runs every shard in one event queue.
    bool fleetMode_ = false;
    unsigned fleetShards_ = 0;
    arch::ArchConfig fleetConfig_{};
    const tfhe::TfheParams *fleetParams_ = nullptr;
    arch::FleetReport fleetReport_{};
    std::vector<std::vector<RetiredInstruction>> shardCompletions_;

    // State of the last load(), cleared by the next one.
    std::vector<compiler::ProgramSlice> slices_;
    /** Global input/output slot of each shard-local slot. */
    std::vector<std::vector<std::size_t>> slotMap_;
    std::vector<std::vector<tfhe::LweCiphertext>> shardInputs_;
    std::vector<ShardStats> stats_;
    std::vector<RetiredInstruction> merged_;
    std::vector<tfhe::LweCiphertext> outputs_;
    bool hasOutputs_ = false;
    arch::SimReport report_;
    bool hasReport_ = false;
    std::uint64_t makespan_ = 0;
    std::size_t cursor_ = 0;
    bool loaded_ = false;
};

} // namespace morphling::exec

#endif // MORPHLING_EXEC_SHARDED_BACKEND_H
