/**
 * @file
 * Wire protocol shared by exec::RemoteBackend and exec::RemoteServer:
 * a length-framed TCP protocol carrying compiled Programs, ciphertext
 * batches and LUT tables to a server-hosted execution backend, with
 * retirements streamed back incrementally (docs/execution_model.md,
 * remote backend section).
 *
 * Framing: every message is [u32 payload bytes][u8 frame type][payload],
 * little-endian throughout. A connection opens with a Hello/HelloAck
 * exchange carrying the protocol magic and version, so an incompatible
 * peer is rejected with a typed error instead of misparsing frames.
 *
 * Hardening stance: the frame layer never trusts its peer. Payload
 * lengths are capped, every payload read is bounds-checked
 * (WireReader), Programs decode through the hardened
 * compiler::Program::tryDeserializeFramed, key blobs through
 * tfhe::tryLoadEvaluationKeys, and all failures surface as
 * RemoteError with a machine-readable kind — never a hang, a crash,
 * or undefined behaviour.
 */

#ifndef MORPHLING_EXEC_REMOTE_PROTOCOL_H
#define MORPHLING_EXEC_REMOTE_PROTOCOL_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tfhe/lwe.h"

namespace morphling::exec::remote {

/** First payload word of Hello/HelloAck ("MRPC": Morphling RPC). */
constexpr std::uint32_t kProtocolMagic = 0x4D525043;

/** Protocol version; bumped on any frame-layout change. A mismatch is
 *  rejected at the handshake, before any request bytes flow. */
constexpr std::uint32_t kProtocolVersion = 1;

/** Upper bound on one frame's payload. Generous enough for a full
 *  evaluation-key enrollment (BSK dominates, tens of MiB for
 *  production sets) while bounding what a hostile peer can make the
 *  receiver allocate. */
constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/** Frame types. */
enum class FrameType : std::uint8_t
{
    kHello = 1,      //!< client -> server: magic + version
    kHelloAck = 2,   //!< server -> client: magic + version
    kExecute = 3,    //!< client -> server: one execution request
    kRetire = 4,     //!< server -> client: a batch of retirements
    kResult = 5,     //!< server -> client: final outputs
    kError = 6,      //!< server -> client: typed failure
    kEnrollKeys = 7, //!< client -> server: serialized EvaluationKeys
    kEnrollAck = 8   //!< server -> client: fingerprint of stored keys
};

/** Wire error codes carried by kError frames. */
enum class WireErrorCode : std::uint32_t
{
    kVersionMismatch = 1, //!< handshake magic/version disagreement
    kMalformedFrame = 2,  //!< frame or payload failed validation
    kUnknownKey = 3,      //!< request names an unenrolled fingerprint
    kBadProgram = 4,      //!< program rejected (decode or shape)
    kExecutionFailed = 5  //!< server-side execution raised an error
};

/** What went wrong, from the client's perspective. */
enum class RemoteErrorKind
{
    kConnectFailed,   //!< TCP connect refused / unreachable
    kTimeout,         //!< per-request deadline expired
    kConnectionLost,  //!< peer closed or reset mid-exchange
    kMalformedFrame,  //!< frame failed structural validation
    kVersionMismatch, //!< handshake rejected
    kUnknownKey,      //!< server does not hold the request's keys
    kBadProgram,      //!< server rejected the shipped program
    kServerError,     //!< server-side execution failure
    kProtocol         //!< unexpected frame sequence
};

const char *remoteErrorKindName(RemoteErrorKind kind);

/**
 * The typed error every remote failure surfaces as. kind() is the
 * machine-readable classification (retry policy keys off it); what()
 * carries the human diagnostic, including the server's message for
 * server-reported failures.
 */
class RemoteError : public std::runtime_error
{
  public:
    RemoteError(RemoteErrorKind kind, const std::string &message);

    RemoteErrorKind kind() const { return kind_; }

  private:
    RemoteErrorKind kind_;
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::kError;
    std::vector<std::uint8_t> payload;
};

/** Append-only little-endian payload builder. */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    void bytes(const void *data, std::size_t size);

    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked payload reader: every read past the end throws
 * RemoteError(kMalformedFrame) — a truncated or lying payload can
 * never read out of bounds or be silently misinterpreted.
 */
class WireReader
{
  public:
    explicit WireReader(const std::vector<std::uint8_t> &payload)
        : data_(payload.data()), size_(payload.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    void bytes(void *out, std::size_t size);

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

    /** kMalformedFrame unless the payload was fully consumed (catches
     *  frames padded with trailing garbage). */
    void expectEnd() const;

  private:
    void need(std::size_t size) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** @{ Domain objects on the wire (shared by client and server). */
void writeCiphertext(WireWriter &w, const tfhe::LweCiphertext &ct);
tfhe::LweCiphertext readCiphertext(WireReader &r);

void writeTorusVector(WireWriter &w,
                      const std::vector<tfhe::Torus32> &values);
std::vector<tfhe::Torus32> readTorusVector(WireReader &r);

void writeWordVector(WireWriter &w,
                     const std::vector<std::uint64_t> &words);
std::vector<std::uint64_t> readWordVector(WireReader &r);
/** @} */

/** Deadline type used across the transport: every blocking socket
 *  operation takes one and throws RemoteError(kTimeout) at expiry. */
using Deadline = std::chrono::steady_clock::time_point;

/** A deadline `timeout` from now. */
Deadline deadlineAfter(std::chrono::milliseconds timeout);

/**
 * RAII TCP socket. Non-copyable; closing is idempotent. shutdownBoth()
 * is safe from another thread and unblocks a blocked peer loop (how
 * the server interrupts its connections on stop()).
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept;
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close();
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** Connect to host:port or throw RemoteError(kConnectFailed); the
 *  attempt itself is bounded by `timeout`. */
Socket connectTcp(const std::string &host, std::uint16_t port,
                  std::chrono::milliseconds timeout);

/** Send one frame, throwing kTimeout past the deadline and
 *  kConnectionLost when the peer resets. */
void sendFrame(const Socket &socket, FrameType type,
               const std::vector<std::uint8_t> &payload,
               Deadline deadline);

/**
 * Receive one frame. Throws kTimeout past the deadline,
 * kConnectionLost on a peer close or reset mid-frame (a truncated
 * frame is indistinguishable from a dropped connection and is treated
 * as one), and kMalformedFrame on an oversized payload length or an
 * unknown frame type.
 */
Frame recvFrame(const Socket &socket, Deadline deadline);

/** True when the peer closed cleanly before any byte of a next frame
 *  (end of a well-behaved connection); otherwise behaves like
 *  recvFrame. The server's per-connection loop uses this to tell a
 *  clean goodbye from a mid-frame drop. */
bool recvFrameOrClose(const Socket &socket, Deadline deadline,
                      Frame &out);

/** @{ Handshake helpers. */
void sendHello(const Socket &socket, FrameType type, Deadline deadline);

/** Validate a Hello/HelloAck payload; throws kVersionMismatch on a
 *  magic or version disagreement. */
void checkHello(const Frame &frame, FrameType expected);
/** @} */

/** Encode/send one kError frame (server side). */
void sendError(const Socket &socket, WireErrorCode code,
               const std::string &message, Deadline deadline);

/** Decode a kError frame into the RemoteError it implies. */
RemoteError decodeError(const Frame &frame);

} // namespace morphling::exec::remote

#endif // MORPHLING_EXEC_REMOTE_PROTOCOL_H
