#include "circuit_executor.h"

#include <chrono>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace morphling::exec {

using circuit::Op;

CircuitExecutor::CircuitExecutor(const tfhe::TfheParams &params,
                                 ExecutionBackend &backend,
                                 tfhe::BatchOptions options)
    : params_(params), backend_(backend), options_(options),
      scheduler_(params)
{
}

CircuitResult
CircuitExecutor::run(const circuit::LoweredCircuit &lowered,
                     const std::vector<tfhe::LweCiphertext> &inputs)
{
    MORPHLING_SPAN("exec", "circuit.run");
    panic_if(lowered.circuit == nullptr, "lowered circuit has no source");
    const auto &c = *lowered.circuit;
    panic_if(inputs.size() != c.numInputs(), "circuit has ",
             c.numInputs(), " inputs, got ", inputs.size());

    CircuitResult result;
    result.totalBootstraps = lowered.totalBootstraps;
    std::vector<tfhe::LweCiphertext> values(c.numNodes());
    std::vector<char> ready(c.numNodes(), 0);

    // Linear sweep: bind inputs/constants and resolve NOT chains whose
    // operands are ready. Nodes are in dependency order, so one
    // ascending pass settles everything computable without a
    // bootstrap; called once up front and again after each level.
    std::size_t next_input = 0;
    auto sweep_linear = [&]() {
        for (unsigned i = 0; i < c.numNodes(); ++i) {
            if (ready[i])
                continue;
            const auto &n = c.node(i);
            switch (n.op) {
              case Op::BitInput:
              case Op::WordInput:
                values[i] = inputs[next_input++];
                ready[i] = 1;
                break;
              case Op::Const: {
                const tfhe::Torus32 mu = n.constValue
                                             ? tfhe::boolMu()
                                             : (0 - tfhe::boolMu());
                values[i] = tfhe::LweCiphertext::trivial(
                    params_.lweDimension, mu);
                ready[i] = 1;
                break;
              }
              case Op::Not:
                if (ready[n.a]) {
                    values[i] = tfhe::gateNot(values[n.a]);
                    ready[i] = 1;
                }
                break;
              default:
                break; // bootstrapped; settled by its level's steps
            }
        }
    };
    sweep_linear();

    std::uint64_t seq = 0;
    for (unsigned l = 0; l < lowered.numLevels(); ++l) {
        MORPHLING_SPAN("exec", "circuit.level");
        const auto t0 = std::chrono::steady_clock::now();
        CircuitLevelStats stats;
        stats.level = l + 1;
        stats.steps = lowered.levels[l].size();

        for (std::size_t s = 0; s < lowered.levels[l].size(); ++s) {
            const auto &step = lowered.levels[l][s];
            // Materialize the slot inputs: each gate's pre-bootstrap
            // linear combination, each Lut node's word operand.
            std::vector<tfhe::LweCiphertext> slot_inputs;
            slot_inputs.reserve(step.nodes.size());
            for (circuit::Wire w : step.nodes) {
                const auto &n = c.node(w);
                panic_if(!ready[n.a] || (n.b >= 0 && !ready[n.b]),
                         "node ", w, " scheduled before its inputs");
                if (n.op == Op::Lut) {
                    slot_inputs.push_back(values[n.a]);
                } else {
                    slot_inputs.push_back(tfhe::gateLinear(
                        circuit::toBoolGate(n.op), values[n.a],
                        values[n.b]));
                }
            }

            const Job job =
                step.signLut
                    ? Job::sign(slot_inputs, step.lutEntries, options_)
                    : Job::batch(slot_inputs, step.lutEntries,
                                 options_);
            auto exec = backend_.run(step.program, job);
            panic_if(!exec.hasOutputs, backend_.name(),
                     " produced no ciphertexts; circuits need a "
                     "functional backend");
            panic_if(exec.outputs.size() != step.nodes.size(),
                     "step produced ", exec.outputs.size(),
                     " outputs for ", step.nodes.size(), " slots");
            for (std::size_t k = 0; k < step.nodes.size(); ++k) {
                values[step.nodes[k]] = std::move(exec.outputs[k]);
                ready[step.nodes[k]] = 1;
            }
            stats.bootstraps += step.nodes.size();

            result.retired.reserve(result.retired.size() +
                                   exec.retired.size());
            for (auto &r : exec.retired) {
                CircuitRetirement entry;
                entry.level = l + 1;
                entry.step = s;
                entry.inst = r;
                entry.inst.seq = seq++;
                result.retired.push_back(entry);
            }
        }

        sweep_linear();
        stats.wallNanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        result.levels.push_back(stats);
    }
    sweep_linear(); // inputs-only circuits (no levels) bind here too

    result.outputs.reserve(c.outputs().size());
    for (circuit::Wire w : c.outputs()) {
        panic_if(!ready[w], "output wire ", w, " never computed");
        result.outputs.push_back(values[w]);
    }
    return result;
}

CircuitResult
CircuitExecutor::run(const circuit::Circuit &circuit,
                     const std::vector<tfhe::LweCiphertext> &inputs)
{
    const auto lowered = circuit::lower(circuit, scheduler_);
    return run(lowered, inputs);
}

} // namespace morphling::exec
