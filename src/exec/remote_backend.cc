#include "exec/remote_backend.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace morphling::exec {

using remote::Frame;
using remote::FrameType;
using remote::RemoteError;
using remote::RemoteErrorKind;
using remote::WireReader;
using remote::WireWriter;

namespace {

constexpr std::size_t kFrameOverhead = 5;

/** Process-unique request ids: a random per-process salt combined
 *  with a counter, so two client processes retrying against the same
 *  server (or one process across reconnects) never collide in the
 *  server's idempotency cache. */
std::uint64_t
nextRequestId()
{
    static const std::uint64_t salt = [] {
        std::random_device rd;
        return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    }();
    static std::atomic<std::uint64_t> counter{0};
    return salt ^
           ((counter.fetch_add(1) + 1) * 0x9E3779B97F4A7C15ull);
}

bool
isRetryable(RemoteErrorKind kind)
{
    return kind == RemoteErrorKind::kConnectFailed ||
           kind == RemoteErrorKind::kConnectionLost;
}

} // namespace

RemoteBackend::RemoteBackend(const tfhe::EvaluationKeys &keys,
                             RemoteClientConfig config)
    : keys_(&keys), config_(std::move(config)),
      fingerprint_(config_.fingerprint)
{
    fatal_if(config_.port == 0,
             "RemoteBackend: config.port must name the server's TCP "
             "port (0 is not a destination)");
    fatal_if(config_.maxAttempts == 0,
             "RemoteBackend: maxAttempts must be >= 1");
}

RemoteBackend::RemoteBackend(const tfhe::KeySet &keys,
                             RemoteClientConfig config)
    : keys_(nullptr), config_(std::move(config)),
      fingerprint_(config_.fingerprint)
{
    fatal_if(config_.port == 0,
             "RemoteBackend: config.port must name the server's TCP "
             "port (0 is not a destination)");
    fatal_if(config_.maxAttempts == 0,
             "RemoteBackend: maxAttempts must be >= 1");
    ownedKeys_ = tfhe::EvaluationKeys::fromKeySet(keys);
    keys_ = &*ownedKeys_;
}

RemoteBackend::~RemoteBackend() = default;

tfhe::KeyFingerprint
RemoteBackend::fingerprint() const
{
    if (!fingerprint_.has_value())
        fingerprint_ = tfhe::fingerprintEvaluationKeys(*keys_);
    return *fingerprint_;
}

void
RemoteBackend::closeConnection()
{
    socket_.close();
}

void
RemoteBackend::load(const compiler::Program &program, const Job &job)
{
    retired_.clear();
    outputs_.clear();
    hasOutputs_ = false;
    cursor_ = 0;
    loaded_ = false;
    serverExecutions_ = 0;
    bytesSent_ = 0;
    bytesReceived_ = 0;
    executeRemote(program, job);
    loaded_ = true;
}

std::optional<RetiredInstruction>
RemoteBackend::step()
{
    panic_if(!loaded_, "step() before load()");
    if (cursor_ >= retired_.size())
        return std::nullopt;
    return retired_[cursor_++];
}

bool
RemoteBackend::done() const
{
    return loaded_ && cursor_ >= retired_.size();
}

ExecutionResult
RemoteBackend::finish()
{
    panic_if(!loaded_, "finish() before load()");
    panic_if(!done(), "finish() before the program fully retired");
    ExecutionResult result;
    result.backend = name();
    result.outputs = std::move(outputs_);
    result.hasOutputs = hasOutputs_;
    result.retired = std::move(retired_);
    outputs_.clear();
    retired_.clear();
    cursor_ = 0;
    loaded_ = false;
    return result;
}

std::vector<std::uint8_t>
RemoteBackend::encodeExecute(const compiler::Program &program,
                             const Job &job) const
{
    WireWriter w;
    w.u64(requestId_);
    w.u64(fingerprint());
    w.u8(job.signLut ? 1 : 0);
    w.u32(job.options.threads);
    w.u8(job.options.checkNoise ? 1 : 0);
    w.f64(job.options.minSlotSigmas);
    static const std::vector<tfhe::Torus32> kNoLut;
    remote::writeTorusVector(w, job.lut ? *job.lut : kNoLut);
    remote::writeWordVector(w, program.serializeFramed());
    const std::size_t inputs = job.inputs ? job.inputs->size() : 0;
    w.u32(static_cast<std::uint32_t>(inputs));
    for (std::size_t i = 0; i < inputs; ++i)
        remote::writeCiphertext(w, (*job.inputs)[i]);
    return w.take();
}

void
RemoteBackend::ensureConnected(remote::Deadline deadline)
{
    if (socket_.valid())
        return;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
        throw RemoteError(RemoteErrorKind::kTimeout,
                          "request deadline expired before connect");
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              now);
    socket_ = remote::connectTcp(config_.host, config_.port,
                                 std::min(config_.connectTimeout,
                                          remaining));
    remote::sendHello(socket_, FrameType::kHello, deadline);
    Frame ack = remote::recvFrame(socket_, deadline);
    if (ack.type == FrameType::kError) {
        socket_.close();
        throw remote::decodeError(ack);
    }
    remote::checkHello(ack, FrameType::kHelloAck);
}

void
RemoteBackend::enroll(remote::Deadline deadline)
{
    std::ostringstream os;
    tfhe::saveEvaluationKeys(os, *keys_);
    const std::string blob = os.str();
    const std::vector<std::uint8_t> payload(blob.begin(), blob.end());
    remote::sendFrame(socket_, FrameType::kEnrollKeys, payload,
                      deadline);
    bytesSent_ += payload.size() + kFrameOverhead;
    Frame ack = remote::recvFrame(socket_, deadline);
    bytesReceived_ += ack.payload.size() + kFrameOverhead;
    if (ack.type == FrameType::kError)
        throw remote::decodeError(ack);
    if (ack.type != FrameType::kEnrollAck)
        throw RemoteError(RemoteErrorKind::kProtocol,
                          "expected EnrollAck after key enrollment");
    WireReader r(ack.payload);
    const std::uint64_t acked = r.u64();
    r.expectEnd();
    if (acked != fingerprint())
        throw RemoteError(
            RemoteErrorKind::kProtocol,
            morphling::detail::concat(
                "server fingerprinted the enrolled keys as ",
                tfhe::fingerprintHex(acked), ", expected ",
                tfhe::fingerprintHex(fingerprint()),
                " — serialization disagreement between peers"));
}

bool
RemoteBackend::receiveResponse(const compiler::Program &program,
                               remote::Deadline deadline)
{
    for (;;) {
        Frame frame = remote::recvFrame(socket_, deadline);
        bytesReceived_ += frame.payload.size() + kFrameOverhead;
        switch (frame.type) {
        case FrameType::kRetire: {
            WireReader r(frame.payload);
            const std::uint64_t id = r.u64();
            if (id != requestId_)
                throw RemoteError(RemoteErrorKind::kProtocol,
                                  "retirement frame for a different "
                                  "request id");
            const std::uint32_t count = r.u32();
            for (std::uint32_t i = 0; i < count; ++i) {
                RetiredInstruction ri;
                ri.index = static_cast<std::size_t>(r.u64());
                ri.seq = r.u64();
                ri.tick = r.u64();
                if (ri.index >= program.size())
                    throw RemoteError(
                        RemoteErrorKind::kProtocol,
                        "retired instruction index out of range");
                ri.inst = program.at(ri.index);
                retired_.push_back(ri);
            }
            r.expectEnd();
            break;
        }
        case FrameType::kResult: {
            WireReader r(frame.payload);
            const std::uint64_t id = r.u64();
            if (id != requestId_)
                throw RemoteError(RemoteErrorKind::kProtocol,
                                  "result frame for a different "
                                  "request id");
            serverExecutions_ = r.u64();
            hasOutputs_ = r.u8() != 0;
            const std::uint32_t count = r.u32();
            outputs_.clear();
            outputs_.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i)
                outputs_.push_back(remote::readCiphertext(r));
            r.expectEnd();
            return true;
        }
        case FrameType::kError: {
            RemoteError err = remote::decodeError(frame);
            if (err.kind() == RemoteErrorKind::kUnknownKey &&
                config_.autoEnroll)
                return false; // caller enrolls and resends
            throw err;
        }
        default:
            throw RemoteError(RemoteErrorKind::kProtocol,
                              morphling::detail::concat(
                                  "unexpected frame type ",
                                  static_cast<int>(frame.type),
                                  " in response position"));
        }
    }
}

void
RemoteBackend::executeRemote(const compiler::Program &program,
                             const Job &job)
{
    requestId_ = nextRequestId();
    const std::vector<std::uint8_t> payload =
        encodeExecute(program, job);
    const remote::Deadline deadline =
        remote::deadlineAfter(config_.requestTimeout);
    std::chrono::milliseconds backoff = config_.backoffBase;
    attempts_ = 0;
    bool enrolledThisRequest = false;

    for (;;) {
        ++attempts_;
        try {
            ensureConnected(deadline);
            retired_.clear(); // partial stream from a failed attempt
            remote::sendFrame(socket_, FrameType::kExecute, payload,
                              deadline);
            bytesSent_ += payload.size() + kFrameOverhead;
            if (receiveResponse(program, deadline))
                return;
            // Server does not hold our keys: enroll once, resend the
            // same request id on the same connection and attempt.
            if (enrolledThisRequest)
                throw RemoteError(
                    RemoteErrorKind::kUnknownKey,
                    "server still rejects our key fingerprint after "
                    "enrollment");
            enroll(deadline);
            enrolledThisRequest = true;
            retired_.clear();
            remote::sendFrame(socket_, FrameType::kExecute, payload,
                              deadline);
            bytesSent_ += payload.size() + kFrameOverhead;
            if (receiveResponse(program, deadline))
                return;
            throw RemoteError(
                RemoteErrorKind::kUnknownKey,
                "server still rejects our key fingerprint after "
                "enrollment");
        } catch (const RemoteError &e) {
            socket_.close();
            if (!isRetryable(e.kind()) ||
                attempts_ >= config_.maxAttempts)
                throw;
            const auto now = std::chrono::steady_clock::now();
            if (now + backoff >= deadline)
                throw RemoteError(
                    RemoteErrorKind::kTimeout,
                    morphling::detail::concat(
                        "request deadline expired while backing off "
                        "after: ",
                        e.what()));
            std::this_thread::sleep_for(backoff);
            backoff = std::min(backoff * 2, config_.backoffCap);
        }
    }
}

} // namespace morphling::exec
