/**
 * @file
 * Lockstep co-simulation: retire a functional and a timing backend
 * over the same compiled Program, cross-checking as they go.
 *
 * Checks performed (docs/execution_model.md):
 *  - lockstep per-group order: both backends retire the identical
 *    instruction sequence within every scheduling group, matched
 *    incrementally as the two retirement streams advance;
 *  - coverage: each backend retires every program instruction exactly
 *    once;
 *  - program order: each backend's per-group retirement sequence equals
 *    the group's stream in the Program;
 *  - dependency order (timing backends): raw completion ticks are
 *    monotone within every chunk chain, and no instruction after a
 *    barrier completes before the barrier releases;
 *  - sharded references (either side a ShardedBackend): the shard
 *    slices partition the program — every group owned by exactly one
 *    shard, slices jointly covering each instruction once — and every
 *    timing shard's shard-local completion log passes the
 *    dependency-order checks above against its slice;
 *  - end-of-program correctness (opt-in via referenceKeys): functional
 *    outputs are bit-identical to the tfhe::batchBootstrap reference —
 *    or, with decryptKeys set, decrypt to the same padded messages
 *    (the equivalence level the kDatapath engine guarantees).
 *
 * Mismatches are collected as readable diagnostics in CosimReport, not
 * panics — the co-simulator is the test oracle, so it must survive a
 * broken backend to describe it.
 */

#ifndef MORPHLING_EXEC_COSIM_H
#define MORPHLING_EXEC_COSIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "exec/backend.h"
#include "tfhe/keyset.h"
#include "tfhe/serialize.h"

namespace morphling::exec {

/** Knobs of one co-simulation run. */
struct CosimOptions
{
    /** When set, functional outputs are additionally checked
     *  bit-exact against the tfhe::batchBootstrap reference (only
     *  meaningful when the functional backend uses the workspace XPU
     *  engine, which shares the library's arithmetic). */
    const tfhe::EvaluationKeys *referenceKeys = nullptr;

    /** Decrypt-level equivalence mode: when set (together with
     *  referenceKeys), the end-of-program check decrypts both the
     *  backend outputs and the library reference with these secret
     *  keys and compares padded messages over `messageSpace` instead
     *  of raw ciphertext bits. This is the check the
     *  XpuEngine::kDatapath merge-split FFT engine can pass — its
     *  rotations differ from the library path by sub-noise rounding,
     *  so bit-exactness is the wrong oracle for it. */
    const tfhe::KeySet *decryptKeys = nullptr;

    /** Padded message space of the decrypt-level comparison. */
    std::uint32_t messageSpace = 4;

    /** Stop collecting diagnostics after this many. */
    std::size_t maxErrors = 16;
};

/** Outcome of one co-simulation run. */
struct CosimReport
{
    std::vector<std::string> errors;
    std::uint64_t instructions = 0;        //!< program size
    std::uint64_t lockstepComparisons = 0; //!< matched retirement pairs
    ExecutionResult functional;
    ExecutionResult timing;

    bool ok() const { return errors.empty(); }

    /** One-line human-readable verdict. */
    std::string summary() const;
};

/**
 * Drives two backends instruction-by-instruction over one program.
 * The first backend must produce outputs (hasOutputs), the second a
 * report (hasReport) — conventionally FunctionalBackend and
 * TimingBackend, but any ExecutionBackend pair satisfying the
 * retirement contract can be cross-checked (tests use stub backends to
 * prove mismatches are caught).
 */
class LockstepCosim
{
  public:
    LockstepCosim(ExecutionBackend &functional,
                  ExecutionBackend &timing, CosimOptions options = {});

    /** Execute `program` on both backends in lockstep. */
    CosimReport run(const compiler::Program &program, const Job &job);

  private:
    ExecutionBackend &functional_;
    ExecutionBackend &timing_;
    CosimOptions options_;
};

} // namespace morphling::exec

#endif // MORPHLING_EXEC_COSIM_H
