/**
 * @file
 * Pluggable execution backends over the compiled instruction stream.
 *
 * The compiled compiler::Program is the single artifact every layer
 * consumes (docs/execution_model.md): the same stream that drives the
 * cycle model can be interpreted against real ciphertexts. An
 * ExecutionBackend retires a Program instruction by instruction —
 * FunctionalBackend computes real TFHE data, TimingBackend replays the
 * arch::Accelerator cycle model's retirement, and cosim.h locks the two
 * together to cross-check that one IR means one behaviour.
 *
 * Retirement contract shared by all backends: every program instruction
 * is retired exactly once, and instructions of the same group retire in
 * program order (groups may interleave; the interleaving is
 * backend-specific but deterministic).
 */

#ifndef MORPHLING_EXEC_BACKEND_H
#define MORPHLING_EXEC_BACKEND_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "arch/accelerator.h"
#include "compiler/program.h"
#include "tfhe/batch.h"
#include "tfhe/lwe.h"
#include "tfhe/serialize.h"

namespace morphling::exec {

/** Which backend executes a program (e.g. the service's
 *  ServiceConfig::backend knob). */
enum class BackendKind
{
    kFunctional, //!< interpret against real ciphertexts
    kTiming,     //!< cycle model only, no data
    kCosim,      //!< functional + timing in lockstep, cross-checked
    /** Superbatch fanned out across ServiceConfig::numShards
     *  functional workers (exec::ShardedBackend). */
    kShardedFunctional,
    /** Execute on a RemoteServer over TCP (exec::RemoteBackend):
     *  the program, ciphertexts and LUT ship over the wire and
     *  retirements stream back. Configured by BackendSpec::remote. */
    kRemote
};

/** Stable name for logs and config dumps. */
const char *backendKindName(BackendKind kind);

/** One retired instruction, as reported by a backend. */
struct RetiredInstruction
{
    std::size_t index = 0;      //!< position in Program::instructions()
    compiler::Instruction inst; //!< the instruction itself
    std::uint64_t seq = 0;      //!< backend-local retirement sequence
    /** Virtual completion time. Simulator ticks for the timing
     *  backend; 0 for the functional backend (untimed). */
    std::uint64_t tick = 0;
};

/**
 * The single submission type every backend (and the service) accepts:
 * the data a program executes against. The timing backend ignores the
 * ciphertexts; the functional backend requires inputs/lut whenever the
 * program performs blind rotations. Pointees must outlive the run.
 *
 * Build one through the batch()/sign() factories below rather than by
 * assigning fields — they encode the two LUT modes correctly.
 */
struct Job
{
    /** One input LWE ciphertext per blind-rotation slot; size must
     *  equal Program::totalBlindRotations(). */
    const std::vector<tfhe::LweCiphertext> *inputs = nullptr;

    /** The LUT every bootstrap in the program evaluates. In sign mode
     *  (signLut below) it holds exactly one entry: mu. */
    const std::vector<tfhe::Torus32> *lut = nullptr;

    /** When true, blind rotations use the constant sign test
     *  polynomial tfhe::constantTestPolynomial(N, (*lut)[0]) — gate
     *  bootstrapping, mapping every ciphertext to +-mu by phase sign —
     *  instead of the padded staircase tfhe::buildTestPolynomial
     *  derives from a message LUT. The two are distinct test-vector
     *  families: no staircase LUT can express the constant polynomial
     *  (its top half-slot is pinned to -lut[0]). */
    bool signLut = false;

    /** Execution knobs (threads within the batch, noise audit). */
    tfhe::BatchOptions options;

    /** A programmable-bootstrap job: every input evaluated through the
     *  padded staircase LUT. */
    static Job batch(const std::vector<tfhe::LweCiphertext> &inputs,
                     const std::vector<tfhe::Torus32> &lut,
                     tfhe::BatchOptions options = {});

    /** A gate-bootstrap job: every input sign-bootstrapped to +-mu,
     *  where `mu` is a one-entry vector owned by the caller (kept as a
     *  vector so Job stays non-owning and uniform). */
    static Job sign(const std::vector<tfhe::LweCiphertext> &inputs,
                    const std::vector<tfhe::Torus32> &mu,
                    tfhe::BatchOptions options = {});
};

/** What one backend produced over one program execution. */
struct ExecutionResult
{
    std::string_view backend; //!< name() of the producing backend

    /** Key-switched result ciphertexts, one per blind-rotation slot
     *  (functional backends only; see hasOutputs). */
    std::vector<tfhe::LweCiphertext> outputs;
    bool hasOutputs = false;

    /** Cycle-model report (timing backends only; see hasReport). */
    arch::SimReport report;
    bool hasReport = false;

    /** Full retirement log in retirement order. */
    std::vector<RetiredInstruction> retired;
};

/**
 * A machine that executes compiled Programs.
 *
 * Two driving styles:
 *  - run(program, job): load + retire everything + finish, using
 *    whatever internal parallelism the backend supports.
 *  - load() then step() until nullopt then finish(): single-stepped
 *    retirement, the mode the lockstep co-simulator drives.
 *
 * Backends are single-driver objects: do not interleave calls from
 * multiple threads. A backend may be reused by calling load() again
 * after finish().
 */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    virtual std::string_view name() const = 0;

    /** Bind a program and its data; resets any previous run. */
    virtual void load(const compiler::Program &program,
                      const Job &job) = 0;

    /** Retire the next instruction, or nullopt when the program has
     *  fully retired. */
    virtual std::optional<RetiredInstruction> step() = 0;

    /** True once every instruction has retired. */
    virtual bool done() const = 0;

    /** Collect the results of the loaded run. */
    virtual ExecutionResult finish() = 0;

    /** Convenience: load, retire everything, finish. Overridden by
     *  backends with a faster internal path. */
    virtual ExecutionResult run(const compiler::Program &program,
                                const Job &job);
};

/**
 * How a RemoteBackend reaches its RemoteServer and how hard it tries.
 * Lives here (rather than remote_backend.h) so BackendSpec — and
 * through it ServiceConfig — can carry it without pulling in the
 * transport headers.
 */
struct RemoteClientConfig
{
    std::string host = "127.0.0.1";

    /** Server TCP port; kRemote refuses to build with 0. */
    std::uint16_t port = 0;

    /** Per-request deadline covering connect, send, execution and the
     *  full response stream — including retries; a request never
     *  outlives it. */
    std::chrono::milliseconds requestTimeout{60000};

    /** Bound on one TCP connect attempt (also clipped by the request
     *  deadline). */
    std::chrono::milliseconds connectTimeout{2000};

    /** Total tries per request (first attempt + retries) on
     *  connection-level failures. Non-transport errors (version
     *  mismatch, bad program, server error) never retry. */
    unsigned maxAttempts = 4;

    /** Capped exponential backoff between retries. */
    std::chrono::milliseconds backoffBase{50};
    std::chrono::milliseconds backoffCap{2000};

    /** Enroll this client's evaluation keys over the wire when the
     *  server rejects the fingerprint as unknown, then resend. */
    bool autoEnroll = true;

    /** Precomputed key fingerprint. Supplying it skips the (BSK-sized)
     *  canonical serialization fingerprintEvaluationKeys performs —
     *  the service computes it once per tenant, not once per batch. */
    std::optional<tfhe::KeyFingerprint> fingerprint;
};

/**
 * Everything needed to stand up one execution backend — the single
 * spec the service and the circuit executor build backends from
 * instead of per-kind constructor piles.
 */
struct BackendSpec
{
    BackendKind kind = BackendKind::kFunctional;

    /** Functional workers for kShardedFunctional. */
    unsigned numShards = 4;

    /** Accelerator geometry for kTiming. */
    arch::ArchConfig timing;

    /** Server coordinates and retry policy for kRemote. */
    RemoteClientConfig remote;
};

/**
 * Build the backend a spec describes. kCosim is not constructible here
 * — the lockstep co-simulator drives two backends and lives behind its
 * own API (cosim.h); asking for it panics. The keys must outlive the
 * returned backend.
 */
std::unique_ptr<ExecutionBackend>
makeBackend(const tfhe::EvaluationKeys &keys, const BackendSpec &spec = {});

/** KeySet convenience: same backends, keys taken from the bundle. */
std::unique_ptr<ExecutionBackend> makeBackend(const tfhe::KeySet &keys,
                                              const BackendSpec &spec = {});

} // namespace morphling::exec

#endif // MORPHLING_EXEC_BACKEND_H
