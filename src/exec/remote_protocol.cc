#include "remote_protocol.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/logging.h"

namespace morphling::exec::remote {

namespace {

[[noreturn]] void
throwErrno(RemoteErrorKind kind, const char *what)
{
    throw RemoteError(kind, detail::concat(what, ": ",
                                           std::strerror(errno)));
}

/** Milliseconds until the deadline, clamped at zero; throws kTimeout
 *  once it has passed. */
int
remainingMs(Deadline deadline)
{
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
        throw RemoteError(RemoteErrorKind::kTimeout,
                          "request deadline expired");
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now).count();
    // poll() takes an int; a deadline years out still polls sanely.
    return static_cast<int>(std::min<long long>(ms + 1, 1 << 30));
}

/** Wait until the socket is ready for `events` or the deadline
 *  passes. POLLERR/POLLHUP wake the subsequent recv/send, which then
 *  reports the real condition. */
void
pollOrTimeout(int fd, short events, Deadline deadline)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, remainingMs(deadline));
    if (rc < 0) {
        if (errno == EINTR)
            return;
        throwErrno(RemoteErrorKind::kConnectionLost, "poll failed");
    }
    if (rc == 0) {
        throw RemoteError(RemoteErrorKind::kTimeout,
                          "request deadline expired");
    }
}

void
sendAll(const Socket &socket, const void *data, std::size_t size,
        Deadline deadline)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        pollOrTimeout(socket.fd(), POLLOUT, deadline);
        const ssize_t n = ::send(socket.fd(), p + sent, size - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR) {
                continue;
            }
            throwErrno(RemoteErrorKind::kConnectionLost, "send failed");
        }
        sent += static_cast<std::size_t>(n);
    }
}

/**
 * Read exactly `size` bytes. When `allowCleanClose` and the peer
 * closed before the first byte, returns false (end of connection);
 * a close after any byte arrived is a truncated frame and throws
 * kConnectionLost.
 */
bool
recvExact(const Socket &socket, void *data, std::size_t size,
          Deadline deadline, bool allowCleanClose)
{
    auto *p = static_cast<std::uint8_t *>(data);
    std::size_t got = 0;
    while (got < size) {
        pollOrTimeout(socket.fd(), POLLIN, deadline);
        const ssize_t n = ::recv(socket.fd(), p + got, size - got, 0);
        if (n == 0) {
            if (allowCleanClose && got == 0)
                return false;
            throw RemoteError(RemoteErrorKind::kConnectionLost,
                              "connection closed mid-frame");
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR) {
                continue;
            }
            throwErrno(RemoteErrorKind::kConnectionLost, "recv failed");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    panic_if(flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0,
             "fcntl(O_NONBLOCK) failed: ", std::strerror(errno));
}

bool
validFrameType(std::uint8_t type)
{
    return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
           type <= static_cast<std::uint8_t>(FrameType::kEnrollAck);
}

bool
recvFrameImpl(const Socket &socket, Deadline deadline, Frame &out,
              bool allowCleanClose)
{
    std::uint8_t header[5];
    if (!recvExact(socket, header, sizeof(header), deadline,
                   allowCleanClose)) {
        return false;
    }
    std::uint32_t payload_size = 0;
    std::memcpy(&payload_size, header, sizeof(payload_size));
    if (payload_size > kMaxFramePayload) {
        throw RemoteError(
            RemoteErrorKind::kMalformedFrame,
            detail::concat("frame payload of ", payload_size,
                           " bytes exceeds the ", kMaxFramePayload,
                           "-byte cap"));
    }
    if (!validFrameType(header[4])) {
        throw RemoteError(RemoteErrorKind::kMalformedFrame,
                          detail::concat("unknown frame type ",
                                         unsigned{header[4]}));
    }
    out.type = static_cast<FrameType>(header[4]);
    out.payload.resize(payload_size);
    if (payload_size > 0) {
        recvExact(socket, out.payload.data(), payload_size, deadline,
                  false);
    }
    return true;
}

} // namespace

const char *
remoteErrorKindName(RemoteErrorKind kind)
{
    switch (kind) {
      case RemoteErrorKind::kConnectFailed:
        return "connect-failed";
      case RemoteErrorKind::kTimeout:
        return "timeout";
      case RemoteErrorKind::kConnectionLost:
        return "connection-lost";
      case RemoteErrorKind::kMalformedFrame:
        return "malformed-frame";
      case RemoteErrorKind::kVersionMismatch:
        return "version-mismatch";
      case RemoteErrorKind::kUnknownKey:
        return "unknown-key";
      case RemoteErrorKind::kBadProgram:
        return "bad-program";
      case RemoteErrorKind::kServerError:
        return "server-error";
      case RemoteErrorKind::kProtocol:
        return "protocol";
    }
    return "unknown";
}

RemoteError::RemoteError(RemoteErrorKind kind, const std::string &message)
    : std::runtime_error(detail::concat("remote backend [",
                                        remoteErrorKindName(kind),
                                        "]: ", message)),
      kind_(kind)
{
}

void
WireWriter::u32(std::uint32_t v)
{
    bytes(&v, sizeof(v));
}

void
WireWriter::u64(std::uint64_t v)
{
    bytes(&v, sizeof(v));
}

void
WireWriter::f64(double v)
{
    bytes(&v, sizeof(v));
}

void
WireWriter::bytes(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + size);
}

void
WireReader::need(std::size_t size) const
{
    if (size_ - pos_ < size) {
        throw RemoteError(RemoteErrorKind::kMalformedFrame,
                          detail::concat("payload truncated: need ",
                                         size, " bytes, have ",
                                         size_ - pos_));
    }
}

std::uint8_t
WireReader::u8()
{
    need(1);
    return data_[pos_++];
}

std::uint32_t
WireReader::u32()
{
    std::uint32_t v = 0;
    bytes(&v, sizeof(v));
    return v;
}

std::uint64_t
WireReader::u64()
{
    std::uint64_t v = 0;
    bytes(&v, sizeof(v));
    return v;
}

double
WireReader::f64()
{
    double v = 0;
    bytes(&v, sizeof(v));
    return v;
}

void
WireReader::bytes(void *out, std::size_t size)
{
    need(size);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
}

void
WireReader::expectEnd() const
{
    if (pos_ != size_) {
        throw RemoteError(RemoteErrorKind::kMalformedFrame,
                          detail::concat(size_ - pos_,
                                         " trailing bytes in payload"));
    }
}

void
writeCiphertext(WireWriter &w, const tfhe::LweCiphertext &ct)
{
    w.u32(ct.dimension());
    w.bytes(ct.raw().data(), ct.raw().size() * sizeof(tfhe::Torus32));
}

tfhe::LweCiphertext
readCiphertext(WireReader &r)
{
    const std::uint32_t dim = r.u32();
    if (dim == 0 || dim > (1u << 24)) {
        throw RemoteError(RemoteErrorKind::kMalformedFrame,
                          detail::concat("implausible LWE dimension ",
                                         dim));
    }
    tfhe::LweCiphertext ct(dim);
    r.bytes(ct.raw().data(), ct.raw().size() * sizeof(tfhe::Torus32));
    return ct;
}

void
writeTorusVector(WireWriter &w, const std::vector<tfhe::Torus32> &values)
{
    w.u32(static_cast<std::uint32_t>(values.size()));
    w.bytes(values.data(), values.size() * sizeof(tfhe::Torus32));
}

std::vector<tfhe::Torus32>
readTorusVector(WireReader &r)
{
    const std::uint32_t count = r.u32();
    if (count > (1u << 20)) {
        throw RemoteError(RemoteErrorKind::kMalformedFrame,
                          detail::concat("implausible torus vector of ",
                                         count, " entries"));
    }
    std::vector<tfhe::Torus32> values(count);
    r.bytes(values.data(), values.size() * sizeof(tfhe::Torus32));
    return values;
}

void
writeWordVector(WireWriter &w, const std::vector<std::uint64_t> &words)
{
    w.u64(words.size());
    w.bytes(words.data(), words.size() * sizeof(std::uint64_t));
}

std::vector<std::uint64_t>
readWordVector(WireReader &r)
{
    const std::uint64_t count = r.u64();
    if (count > (1u << 24)) {
        throw RemoteError(RemoteErrorKind::kMalformedFrame,
                          detail::concat("implausible word vector of ",
                                         count, " entries"));
    }
    std::vector<std::uint64_t> words(count);
    r.bytes(words.data(), words.size() * sizeof(std::uint64_t));
    return words;
}

Deadline
deadlineAfter(std::chrono::milliseconds timeout)
{
    return std::chrono::steady_clock::now() + timeout;
}

Socket::Socket(Socket &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Socket
connectTcp(const std::string &host, std::uint16_t port,
           std::chrono::milliseconds timeout)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    const std::string port_str = std::to_string(port);
    const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                                 &res);
    if (rc != 0) {
        throw RemoteError(RemoteErrorKind::kConnectFailed,
                          detail::concat("cannot resolve ", host, ": ",
                                         ::gai_strerror(rc)));
    }

    const Deadline deadline = deadlineAfter(timeout);
    std::string last_error = "no addresses";
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        Socket socket(::socket(ai->ai_family, ai->ai_socktype,
                               ai->ai_protocol));
        if (!socket.valid()) {
            last_error = std::strerror(errno);
            continue;
        }
        setNonBlocking(socket.fd());
        const int one = 1;
        ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        if (::connect(socket.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
            ::freeaddrinfo(res);
            return socket;
        }
        if (errno != EINPROGRESS) {
            last_error = std::strerror(errno);
            continue;
        }
        try {
            pollOrTimeout(socket.fd(), POLLOUT, deadline);
        } catch (const RemoteError &) {
            last_error = "connect timed out";
            continue;
        }
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &so_error,
                         &len) == 0 &&
            so_error == 0) {
            ::freeaddrinfo(res);
            return socket;
        }
        last_error = std::strerror(so_error);
    }
    ::freeaddrinfo(res);
    throw RemoteError(RemoteErrorKind::kConnectFailed,
                      detail::concat("cannot connect to ", host, ":",
                                     port, ": ", last_error));
}

void
sendFrame(const Socket &socket, FrameType type,
          const std::vector<std::uint8_t> &payload, Deadline deadline)
{
    panic_if(payload.size() > kMaxFramePayload,
             "attempted to send an oversized frame");
    std::uint8_t header[5];
    const auto payload_size =
        static_cast<std::uint32_t>(payload.size());
    std::memcpy(header, &payload_size, sizeof(payload_size));
    header[4] = static_cast<std::uint8_t>(type);
    sendAll(socket, header, sizeof(header), deadline);
    if (!payload.empty())
        sendAll(socket, payload.data(), payload.size(), deadline);
}

Frame
recvFrame(const Socket &socket, Deadline deadline)
{
    Frame frame;
    if (!recvFrameImpl(socket, deadline, frame, false)) {
        throw RemoteError(RemoteErrorKind::kConnectionLost,
                          "connection closed");
    }
    return frame;
}

bool
recvFrameOrClose(const Socket &socket, Deadline deadline, Frame &out)
{
    return recvFrameImpl(socket, deadline, out, true);
}

void
sendHello(const Socket &socket, FrameType type, Deadline deadline)
{
    WireWriter w;
    w.u32(kProtocolMagic);
    w.u32(kProtocolVersion);
    sendFrame(socket, type, w.take(), deadline);
}

void
checkHello(const Frame &frame, FrameType expected)
{
    if (frame.type == FrameType::kError)
        throw decodeError(frame);
    if (frame.type != expected) {
        throw RemoteError(RemoteErrorKind::kProtocol,
                          "peer did not open with a handshake frame");
    }
    WireReader r(frame.payload);
    const std::uint32_t magic = r.u32();
    const std::uint32_t version = r.u32();
    r.expectEnd();
    if (magic != kProtocolMagic) {
        throw RemoteError(RemoteErrorKind::kVersionMismatch,
                          "peer is not a Morphling remote endpoint");
    }
    if (version != kProtocolVersion) {
        throw RemoteError(
            RemoteErrorKind::kVersionMismatch,
            detail::concat("peer speaks protocol version ", version,
                           ", this build speaks ", kProtocolVersion));
    }
}

void
sendError(const Socket &socket, WireErrorCode code,
          const std::string &message, Deadline deadline)
{
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(code));
    w.u32(static_cast<std::uint32_t>(message.size()));
    w.bytes(message.data(), message.size());
    sendFrame(socket, FrameType::kError, w.take(), deadline);
}

RemoteError
decodeError(const Frame &frame)
{
    WireReader r(frame.payload);
    const std::uint32_t code = r.u32();
    const std::uint32_t length = r.u32();
    std::string message(length, '\0');
    r.bytes(message.data(), length);

    RemoteErrorKind kind = RemoteErrorKind::kServerError;
    switch (static_cast<WireErrorCode>(code)) {
      case WireErrorCode::kVersionMismatch:
        kind = RemoteErrorKind::kVersionMismatch;
        break;
      case WireErrorCode::kMalformedFrame:
        kind = RemoteErrorKind::kMalformedFrame;
        break;
      case WireErrorCode::kUnknownKey:
        kind = RemoteErrorKind::kUnknownKey;
        break;
      case WireErrorCode::kBadProgram:
        kind = RemoteErrorKind::kBadProgram;
        break;
      case WireErrorCode::kExecutionFailed:
        kind = RemoteErrorKind::kServerError;
        break;
    }
    return RemoteError(kind,
                       detail::concat("server reported: ", message));
}

} // namespace morphling::exec::remote
