/**
 * @file
 * The server half of the remote execution split: a TCP server hosting
 * an inner ExecutionBackend behind the framed protocol of
 * remote_protocol.h.
 *
 * Each connection is handled on its own thread: handshake, then a
 * loop of enrollment and execution requests. Evaluation keys are held
 * in a registry keyed by their content-derived fingerprint
 * (tfhe::fingerprintEvaluationKeys) — pre-provisioned through
 * addKeys() or enrolled over the wire — and every execution request
 * names the fingerprint it runs under, so one server serves many
 * tenants' keys the way service::TenantRegistry does in-process.
 *
 * Execution streams retirements back incrementally: the inner backend
 * is single-stepped and every `retireChunk` retirements ship as one
 * kRetire frame, followed by a kResult frame with the output
 * ciphertexts. The retirement order is the inner backend's stepped
 * order — for the default single-threaded job this is bit-identical
 * to a local FunctionalBackend run (asserted in tests/test_remote.cc).
 *
 * Idempotency: completed requests are cached by request id (bounded
 * LRU). A client that lost its connection mid-stream retries with the
 * same id and gets the cached response replayed — the request is
 * never executed twice, even when the disconnect raced the final
 * frames. A request whose original execution is still in flight
 * blocks the retry until the result lands, then replays it. If the
 * connection dies mid-execution the server finishes and caches the
 * result anyway, so the retry finds it.
 */

#ifndef MORPHLING_EXEC_REMOTE_SERVER_H
#define MORPHLING_EXEC_REMOTE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/backend.h"
#include "exec/remote_protocol.h"
#include "tfhe/serialize.h"

namespace morphling::exec {

/** Configuration of a RemoteServer. */
struct RemoteServerConfig
{
    /** Bind address. The default serves loopback only — this protocol
     *  carries no authentication; anything wider belongs behind a
     *  fronting proxy. */
    std::string bindHost = "127.0.0.1";

    /** TCP port; 0 binds an ephemeral port (read it back via
     *  port()). */
    std::uint16_t port = 0;

    /** The backend every request executes on. Must produce ciphertext
     *  outputs (kRemote itself and kTiming are rejected at start()). */
    BackendSpec inner;

    /** Retirements per kRetire frame. */
    unsigned retireChunk = 32;

    /** Completed requests kept for idempotent retry (LRU). */
    std::size_t maxCachedResults = 64;

    /** Patience for one frame's bytes (and for the handshake). A peer
     *  that stalls mid-frame longer than this is dropped. */
    std::chrono::milliseconds frameTimeout{10000};

    /** Patience for the next request on an idle connection. */
    std::chrono::milliseconds idleTimeout{60000};

    /**
     * Fault injection for the transport-failure tests: when >= 0, the
     * first execution closes the connection abruptly after this many
     * kRetire frames (execution still completes and caches, modeling
     * a link that died mid-stream). Fires once per server.
     */
    int dropAfterRetireFrames = -1;
};

/** Observable counters (tests and the roundtrip bench). */
struct RemoteServerStats
{
    std::uint64_t connections = 0;  //!< accepted TCP connections
    std::uint64_t requests = 0;     //!< kExecute frames parsed
    std::uint64_t executions = 0;   //!< inner-backend runs
    std::uint64_t replays = 0;      //!< served from the result cache
    std::uint64_t enrollments = 0;  //!< keys enrolled over the wire
    std::uint64_t rejected = 0;     //!< kError frames sent
    std::uint64_t dropped = 0;      //!< connections lost mid-exchange
    std::uint64_t bytesIn = 0;      //!< request payload bytes parsed
    std::uint64_t bytesOut = 0;     //!< response payload bytes sent
};

/**
 * Hosts an inner ExecutionBackend behind the remote protocol.
 * start()/stop() bracket the serving window; the destructor stops.
 * Thread-safe: addKeys() and stats() may be called while serving.
 */
class RemoteServer
{
  public:
    explicit RemoteServer(RemoteServerConfig config = {});
    ~RemoteServer();

    RemoteServer(const RemoteServer &) = delete;
    RemoteServer &operator=(const RemoteServer &) = delete;

    /** Pre-provision evaluation keys (the fork-style deployment where
     *  the server inherits keys instead of receiving them over the
     *  wire). Returns their fingerprint. */
    tfhe::KeyFingerprint addKeys(tfhe::EvaluationKeys keys);

    /** Bind, listen, and serve until stop(). fatal() on a config the
     *  server cannot serve with; throws RemoteError(kConnectFailed)
     *  when the port cannot be bound. */
    void start();

    /** Stop accepting, unblock and join every connection. Requests
     *  already executing run to completion (and populate the
     *  idempotency cache) but their responses are not delivered.
     *  Idempotent. */
    void stop();

    /** True between start() and stop(). */
    bool running() const;

    /** The bound TCP port (the ephemeral one when config.port == 0).
     *  Valid after start(). */
    std::uint16_t port() const;

    RemoteServerStats stats() const;

    /** How many times the request id was actually executed (0 when
     *  never seen, beyond-LRU entries forget). The double-execution
     *  guard the retry tests assert on. */
    std::uint64_t executionsFor(std::uint64_t requestId) const;

  private:
    struct CachedRetirement
    {
        std::uint64_t index = 0;
        std::uint64_t seq = 0;
        std::uint64_t tick = 0;
    };

    struct CachedResult
    {
        std::vector<CachedRetirement> retired;
        std::vector<tfhe::LweCiphertext> outputs;
        bool hasOutputs = false;
        std::uint64_t executions = 0;
        bool done = false; //!< false while the first execution runs
    };

    struct Connection
    {
        remote::Socket socket;
        std::thread thread;
        /** Set by the connection thread as it exits; read by the
         *  acceptor when reaping (atomic: no lock on the write side). */
        std::atomic<bool> finished{false};
    };

    void acceptLoop();
    void serveConnection(Connection *conn);

    /** One kExecute frame: parse, dedup, execute, stream, cache. */
    void handleExecute(Connection *conn,
                       const std::vector<std::uint8_t> &payload);
    void handleEnroll(Connection *conn,
                      const std::vector<std::uint8_t> &payload);

    /** Stream a cached (or just-computed) response. Returns false if
     *  the connection broke mid-stream (the cache keeps the result
     *  for the retry). */
    bool streamResult(Connection *conn, std::uint64_t request_id,
                      const CachedResult &result);

    void sendErrorCounted(Connection *conn, remote::WireErrorCode code,
                          const std::string &message);

    /** Bounded-LRU insert under cacheMu_. */
    void cacheInsertLocked(std::uint64_t request_id, CachedResult value);

    RemoteServerConfig config_;

    remote::Socket listener_;
    std::uint16_t boundPort_ = 0;
    std::thread acceptor_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> dropFired_{false};

    mutable std::mutex connMu_;
    std::list<Connection> connections_;

    mutable std::mutex keysMu_;
    std::map<tfhe::KeyFingerprint,
             std::shared_ptr<const tfhe::EvaluationKeys>>
        keys_;

    mutable std::mutex cacheMu_;
    std::condition_variable cacheCv_; //!< retries await in-flight runs
    std::map<std::uint64_t, CachedResult> cache_;
    std::list<std::uint64_t> cacheOrder_; //!< LRU, oldest first
    /** Execution counts survive LRU eviction (small, test hook). */
    std::map<std::uint64_t, std::uint64_t> executionCounts_;

    mutable std::mutex statsMu_;
    RemoteServerStats stats_;
};

} // namespace morphling::exec

#endif // MORPHLING_EXEC_REMOTE_SERVER_H
