#include "backend.h"

#include "common/logging.h"
#include "exec/functional_backend.h"
#include "exec/remote_backend.h"
#include "exec/sharded_backend.h"
#include "exec/timing_backend.h"

namespace morphling::exec {

namespace {

Job
makeJob(const std::vector<tfhe::LweCiphertext> &inputs,
        const std::vector<tfhe::Torus32> &lut, bool sign_lut,
        tfhe::BatchOptions options)
{
    panic_if(sign_lut && lut.size() != 1,
             "sign jobs carry exactly one LUT entry (mu), got ",
             lut.size());
    Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    job.signLut = sign_lut;
    job.options = options;
    return job;
}

template <typename Keys>
std::unique_ptr<ExecutionBackend>
makeBackendImpl(const Keys &keys, const BackendSpec &spec)
{
    switch (spec.kind) {
      case BackendKind::kFunctional:
        return std::make_unique<FunctionalBackend>(keys);
      case BackendKind::kTiming:
        return std::make_unique<TimingBackend>(spec.timing,
                                               keys.params);
      case BackendKind::kShardedFunctional:
        panic_if(spec.numShards == 0, "sharded backend needs >= 1 shard");
        return std::make_unique<ShardedBackend>(
            ShardedBackend::functional(keys, spec.numShards));
      case BackendKind::kRemote:
        fatal_if(spec.remote.port == 0,
                 "kRemote needs BackendSpec::remote.port (the "
                 "RemoteServer's TCP port)");
        return std::make_unique<RemoteBackend>(keys, spec.remote);
      case BackendKind::kCosim:
        panic("kCosim is not a standalone backend; drive a "
              "LockstepCosim (exec/cosim.h) instead");
    }
    panic("unknown backend kind ", static_cast<int>(spec.kind));
}

} // namespace

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kFunctional:
        return "functional";
      case BackendKind::kTiming:
        return "timing";
      case BackendKind::kCosim:
        return "cosim";
      case BackendKind::kShardedFunctional:
        return "sharded-functional";
      case BackendKind::kRemote:
        return "remote";
    }
    panic("unknown backend kind ", static_cast<int>(kind));
}

ExecutionResult
ExecutionBackend::run(const compiler::Program &program, const Job &job)
{
    load(program, job);
    while (step())
        ;
    return finish();
}

Job
Job::batch(const std::vector<tfhe::LweCiphertext> &inputs,
           const std::vector<tfhe::Torus32> &lut,
           tfhe::BatchOptions options)
{
    return makeJob(inputs, lut, false, options);
}

Job
Job::sign(const std::vector<tfhe::LweCiphertext> &inputs,
          const std::vector<tfhe::Torus32> &mu, tfhe::BatchOptions options)
{
    return makeJob(inputs, mu, true, options);
}

std::unique_ptr<ExecutionBackend>
makeBackend(const tfhe::EvaluationKeys &keys, const BackendSpec &spec)
{
    return makeBackendImpl(keys, spec);
}

std::unique_ptr<ExecutionBackend>
makeBackend(const tfhe::KeySet &keys, const BackendSpec &spec)
{
    return makeBackendImpl(keys, spec);
}

} // namespace morphling::exec
