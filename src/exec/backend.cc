#include "backend.h"

#include "common/logging.h"

namespace morphling::exec {

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kFunctional:
        return "functional";
      case BackendKind::kTiming:
        return "timing";
      case BackendKind::kCosim:
        return "cosim";
      case BackendKind::kShardedFunctional:
        return "sharded-functional";
    }
    panic("unknown backend kind ", static_cast<int>(kind));
}

ExecutionResult
ExecutionBackend::run(const compiler::Program &program, const Job &job)
{
    load(program, job);
    while (step())
        ;
    return finish();
}

} // namespace morphling::exec
