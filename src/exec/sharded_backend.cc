#include "sharded_backend.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/logging.h"
#include "exec/timing_backend.h"
#include "telemetry/metrics.h"
#include "telemetry/sim_bridge.h"
#include "telemetry/telemetry.h"

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace morphling::exec {

using compiler::Opcode;

namespace {

/** CPU time of the calling thread; 0 when the platform clock is
 *  unavailable (callers fall back to wall time). */
std::uint64_t
threadCpuNanos()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
    }
#endif
    return 0;
}

std::uint64_t
wallNanosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

ShardedBackend::ShardedBackend(
    std::vector<std::unique_ptr<ExecutionBackend>> shards)
    : shards_(std::move(shards))
{
    fatal_if(shards_.empty(), "ShardedBackend needs at least one shard");
    for (const auto &shard : shards_)
        fatal_if(shard == nullptr, "ShardedBackend given a null shard");
}

ShardedBackend
ShardedBackend::functional(const tfhe::EvaluationKeys &keys,
                           unsigned numShards, FunctionalConfig config)
{
    fatal_if(numShards == 0, "sharded backend needs >= 1 shard");
    std::vector<std::unique_ptr<ExecutionBackend>> shards;
    shards.reserve(numShards);
    for (unsigned s = 0; s < numShards; ++s)
        shards.push_back(
            std::make_unique<FunctionalBackend>(keys, config));
    return ShardedBackend(std::move(shards));
}

ShardedBackend
ShardedBackend::functional(const tfhe::KeySet &keys, unsigned numShards,
                           FunctionalConfig config)
{
    fatal_if(numShards == 0, "sharded backend needs >= 1 shard");
    std::vector<std::unique_ptr<ExecutionBackend>> shards;
    shards.reserve(numShards);
    for (unsigned s = 0; s < numShards; ++s)
        shards.push_back(
            std::make_unique<FunctionalBackend>(keys, config));
    return ShardedBackend(std::move(shards));
}

ShardedBackend
ShardedBackend::timing(const arch::ArchConfig &config,
                       const tfhe::TfheParams &params,
                       unsigned numShards)
{
    fatal_if(numShards == 0, "sharded backend needs >= 1 shard");
    std::vector<std::unique_ptr<ExecutionBackend>> shards;
    shards.reserve(numShards);
    for (unsigned s = 0; s < numShards; ++s)
        shards.push_back(std::make_unique<TimingBackend>(config, params));
    return ShardedBackend(std::move(shards));
}

ShardedBackend
ShardedBackend::fleetTiming(const arch::ArchConfig &config,
                            const tfhe::TfheParams &params,
                            unsigned numShards)
{
    fatal_if(numShards == 0, "sharded backend needs >= 1 shard");
    ShardedBackend b;
    b.fleetMode_ = true;
    b.fleetShards_ = numShards;
    b.fleetConfig_ = config;
    b.fleetParams_ = &params;
    return b;
}

const compiler::ProgramSlice &
ShardedBackend::slice(unsigned s) const
{
    panic_if(s >= slices_.size(), "shard ", s, " out of range");
    return slices_[s];
}

const ExecutionBackend &
ShardedBackend::shardBackend(unsigned s) const
{
    panic_if(s >= shards_.size(), "shard ", s, " out of range");
    return *shards_[s];
}

void
ShardedBackend::reset()
{
    slices_.clear();
    slotMap_.clear();
    shardInputs_.clear();
    stats_.clear();
    merged_.clear();
    outputs_.clear();
    hasOutputs_ = false;
    report_ = arch::SimReport{};
    hasReport_ = false;
    makespan_ = 0;
    cursor_ = 0;
    loaded_ = false;
    fleetReport_ = arch::FleetReport{};
    shardCompletions_.clear();
}

void
ShardedBackend::load(const compiler::Program &program, const Job &job)
{
    MORPHLING_SPAN("exec", "sharded.load");
    reset();

    const unsigned n_shards = numShards();
    const unsigned n_groups = program.numGroups();

    // Round-robin shard assignment by group id. Every shard gets at
    // least one (possibly empty) group stream so the fan-out below is
    // uniform in shard count.
    slices_.reserve(n_shards);
    for (unsigned s = 0; s < n_shards; ++s) {
        std::vector<std::uint8_t> groups;
        for (unsigned g = s; g < std::max(n_groups, n_shards);
             g += n_shards)
            groups.push_back(static_cast<std::uint8_t>(g));
        slices_.push_back(program.sliceGroups(
            program.name() + "/shard" + std::to_string(s), groups));
    }

    // Flat input-slot cursor over the whole program, mirroring the
    // functional backend's slot assignment: each DMA.LD_LWE covers the
    // next `count` slots in program emission order.
    std::vector<std::size_t> slot_begin(program.size(), 0);
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < program.size(); ++i) {
        if (program.at(i).op == Opcode::DmaLoadLwe) {
            slot_begin[i] = cursor;
            cursor += program.at(i).count;
        }
    }

    slotMap_.resize(n_shards);
    shardInputs_.resize(n_shards);
    for (unsigned s = 0; s < n_shards; ++s) {
        for (const std::size_t gi : slices_[s].globalIndex) {
            const auto &inst = program.at(gi);
            if (inst.op != Opcode::DmaLoadLwe)
                continue;
            for (unsigned k = 0; k < inst.count; ++k)
                slotMap_[s].push_back(slot_begin[gi] + k);
        }
        if (job.inputs != nullptr) {
            shardInputs_[s].reserve(slotMap_[s].size());
            for (const std::size_t slot : slotMap_[s]) {
                panic_if(slot >= job.inputs->size(),
                         "shard slot ", slot, " beyond the job's ",
                         job.inputs->size(), " inputs");
                shardInputs_[s].push_back((*job.inputs)[slot]);
            }
        }
    }

    // Fan out. Private-memory shards run on their own threads against
    // their own inner backends; fleet shards advance together in one
    // shared-fabric event queue.
    std::vector<ExecutionResult> results(n_shards);
    stats_.resize(n_shards);
    if (fleetMode_)
        runShardsFleet(results);
    else
        runShardsThreaded(program, job, results);

    const auto merge0 = std::chrono::steady_clock::now();
    {
        MORPHLING_SPAN("exec", "sharded.merge");
        mergeRetirement(program, results);
        mergeOutputs(program, results);
        mergeReports(results);
    }

    MORPHLING_TELEMETRY_ONLY({
        auto &reg = telemetry::MetricsRegistry::instance();
        reg.counter("exec.sharded.runs", "sharded program executions")
            .inc();
        reg.gauge("exec.sharded.shards", "shards in the last run")
            .set(static_cast<double>(n_shards));
        const double total =
            std::max<double>(1.0, static_cast<double>(program.size()));
        for (unsigned s = 0; s < n_shards; ++s) {
            reg.gauge("exec.sharded.shard" + std::to_string(s) +
                          ".occupancy",
                      "fraction of the program's instructions this "
                      "shard executed in the last run")
                .set(static_cast<double>(stats_[s].instructions) /
                     total);
        }
        reg.histogram("exec.sharded.merge_latency_us",
                      "per-shard retirement logs -> global program "
                      "order")
            .observe(static_cast<double>(wallNanosSince(merge0)) /
                     1e3);
        // Per-shard virtual-time tracks: one interval per timing
        // shard spanning its local makespan, rendered next to the
        // per-component tracks in the Chrome trace.
        for (unsigned s = 0; s < n_shards; ++s) {
            if (stats_[s].hasReport) {
                MORPHLING_SIM_INTERVAL(
                    "sharded.shard" + std::to_string(s), "makespan",
                    0, stats_[s].cycles, 0);
            }
        }
    })

    loaded_ = true;
}

void
ShardedBackend::runShardsThreaded(const compiler::Program &program,
                                  const Job &job,
                                  std::vector<ExecutionResult> &results)
{
    (void)program;
    const unsigned n_shards = numShards();
    auto run_shard = [&](unsigned s) {
        MORPHLING_SPAN("exec", "sharded.shard");
        const auto wall0 = std::chrono::steady_clock::now();
        const std::uint64_t cpu0 = threadCpuNanos();
        Job shard_job;
        shard_job.inputs = &shardInputs_[s];
        shard_job.lut = job.lut;
        shard_job.signLut = job.signLut;
        shard_job.options = job.options;
        results[s] = shards_[s]->run(slices_[s].program, shard_job);
        const std::uint64_t cpu1 = threadCpuNanos();
        auto &st = stats_[s];
        st.shard = s;
        st.groups = slices_[s].groups;
        st.instructions = slices_[s].program.size();
        st.blindRotations = slices_[s].program.totalBlindRotations();
        st.wallNanos = wallNanosSince(wall0);
        st.cpuNanos =
            (cpu1 > cpu0) ? cpu1 - cpu0 : st.wallNanos; // clockless hosts
        st.hasReport = results[s].hasReport;
        st.cycles = results[s].hasReport ? results[s].report.cycles : 0;
    };
    if (n_shards == 1) {
        run_shard(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_shards);
        for (unsigned s = 0; s < n_shards; ++s)
            pool.emplace_back(run_shard, s);
        for (auto &t : pool)
            t.join();
    }
}

void
ShardedBackend::runShardsFleet(std::vector<ExecutionResult> &results)
{
    MORPHLING_SPAN("exec", "sharded.fleet");
    const unsigned n_shards = numShards();
    const auto wall0 = std::chrono::steady_clock::now();
    const std::uint64_t cpu0 = threadCpuNanos();

    arch::AcceleratorFleet fleet(fleetConfig_, *fleetParams_, n_shards);
    std::vector<const compiler::Program *> programs;
    std::vector<arch::RetireHook> hooks;
    programs.reserve(n_shards);
    hooks.reserve(n_shards);
    shardCompletions_.assign(n_shards, {});
    for (unsigned s = 0; s < n_shards; ++s) {
        programs.push_back(&slices_[s].program);
        auto &log = shardCompletions_[s];
        log.reserve(slices_[s].program.size());
        hooks.push_back([&log](std::size_t index,
                               const compiler::Instruction &inst,
                               std::uint64_t tick) {
            RetiredInstruction r;
            r.index = index;
            r.inst = inst;
            r.seq = log.size();
            r.tick = tick;
            log.push_back(r);
        });
    }
    fleetReport_ = fleet.run(programs, hooks);

    const std::uint64_t cpu1 = threadCpuNanos();
    const std::uint64_t wall = wallNanosSince(wall0);
    for (unsigned s = 0; s < n_shards; ++s) {
        results[s].backend = "fleet-timing";
        results[s].retired = architecturalRetirement(
            slices_[s].program, shardCompletions_[s]);
        results[s].hasOutputs = false;
        results[s].hasReport = slices_[s].program.size() > 0;
        results[s].report = fleetReport_.shards[s];
        auto &st = stats_[s];
        st.shard = s;
        st.groups = slices_[s].groups;
        st.instructions = slices_[s].program.size();
        st.blindRotations = slices_[s].program.totalBlindRotations();
        // Every fleet shard advances in the same event queue on one
        // host thread; per-shard host time is not separable.
        st.wallNanos = wall;
        st.cpuNanos = (cpu1 > cpu0) ? cpu1 - cpu0 : wall;
        st.hasReport = results[s].hasReport;
        st.cycles = results[s].hasReport ? results[s].report.cycles : 0;
    }
}

void
ShardedBackend::mergeRetirement(const compiler::Program &program,
                                std::vector<ExecutionResult> &results)
{
    const unsigned n_groups = program.numGroups();
    // Per-group queues in global coordinates. Each shard retires its
    // groups in program order (the retirement contract), so a group's
    // queue is its stream in program order no matter how the inner
    // backend interleaved its groups.
    std::vector<std::vector<RetiredInstruction>> queue(n_groups);
    for (unsigned s = 0; s < numShards(); ++s) {
        const auto &slice = slices_[s];
        panic_if(results[s].retired.size() != slice.program.size(),
                 "shard ", s, " retired ", results[s].retired.size(),
                 " of ", slice.program.size(), " instructions");
        for (const auto &r : results[s].retired) {
            panic_if(r.index >= slice.globalIndex.size(),
                     "shard ", s, " retired out-of-range index ",
                     r.index);
            const std::size_t gi = slice.globalIndex[r.index];
            RetiredInstruction global = r;
            global.index = gi;
            global.inst = program.at(gi);
            queue[global.inst.group].push_back(global);
        }
    }

    // Deterministic interleave, reproducing FunctionalBackend's
    // group-parallel order exactly: per barrier-delimited segment,
    // groups ascending, program order within a group, then the
    // segment's barrier retirements in group order.
    merged_.reserve(program.size());
    std::vector<std::size_t> head(n_groups, 0);
    auto emit = [&](const RetiredInstruction &r) {
        merged_.push_back(r);
        merged_.back().seq = merged_.size() - 1;
    };
    while (merged_.size() < program.size()) {
        for (unsigned g = 0; g < n_groups; ++g) {
            auto &q = queue[g];
            while (head[g] < q.size() &&
                   q[head[g]].inst.op != Opcode::Barrier)
                emit(q[head[g]++]);
        }
        bool released = false;
        for (unsigned g = 0; g < n_groups; ++g) {
            auto &q = queue[g];
            if (head[g] < q.size() &&
                q[head[g]].inst.op == Opcode::Barrier) {
                emit(q[head[g]++]);
                released = true;
            }
        }
        if (!released && merged_.size() < program.size())
            panic("sharded merge stalled at ", merged_.size(), " of ",
                  program.size(), " instructions");
    }
}

void
ShardedBackend::mergeOutputs(const compiler::Program &program,
                             std::vector<ExecutionResult> &results)
{
    hasOutputs_ = true;
    for (const auto &r : results)
        hasOutputs_ = hasOutputs_ && r.hasOutputs;
    if (!hasOutputs_)
        return;

    const std::uint64_t total = program.totalBlindRotations();
    unsigned dim = 0;
    for (const auto &r : results) {
        if (!r.outputs.empty()) {
            dim = r.outputs.front().dimension();
            break;
        }
    }
    outputs_.assign(total, tfhe::LweCiphertext(dim));
    for (unsigned s = 0; s < numShards(); ++s) {
        panic_if(results[s].outputs.size() != slotMap_[s].size(),
                 "shard ", s, " produced ", results[s].outputs.size(),
                 " outputs for ", slotMap_[s].size(), " slots");
        for (std::size_t j = 0; j < slotMap_[s].size(); ++j)
            outputs_[slotMap_[s][j]] = std::move(results[s].outputs[j]);
    }
}

void
ShardedBackend::mergeReports(std::vector<ExecutionResult> &results)
{
    // Fleet view over the timing shards: the run finishes when the
    // slowest shard does (makespan = max), work counters sum across
    // chips, utilizations are re-derived against the fleet makespan.
    // Per-chip detail stays available through shardStats() and the
    // shard backends.
    unsigned reporting = 0;
    std::uint64_t bootstraps = 0;
    for (const auto &r : results) {
        if (!r.hasReport)
            continue;
        if (reporting == 0)
            report_ = r.report; // param echo, breakdown maps
        ++reporting;
        makespan_ = std::max(makespan_, r.report.cycles);
        bootstraps += r.report.bootstraps;
    }
    hasReport_ = reporting > 0;
    if (!hasReport_)
        return;

    arch::SimReport fleet = report_;
    fleet.cycles = makespan_;
    fleet.seconds = 0;
    fleet.bootstraps = bootstraps;
    fleet.hbmBytes = 0;
    fleet.bskBytes = 0;
    fleet.vpuDmaBytes = 0;
    fleet.vpuKsCycles = 0;
    fleet.vpuMsCycles = 0;
    fleet.vpuSeCycles = 0;
    fleet.vpuPaluCycles = 0;
    fleet.xpuBusyCycles = 0;
    fleet.xpuStallCycles = 0;
    fleet.chipPowerW = 0;
    fleet.nocAggregateTBs = 0;
    fleet.pipelineLatencyMs = 0;
    fleet.meanChunkLatencyMs = 0;
    for (const auto &r : results) {
        if (!r.hasReport)
            continue;
        const auto &rep = r.report;
        fleet.seconds = std::max(fleet.seconds, rep.seconds);
        fleet.hbmBytes += rep.hbmBytes;
        fleet.bskBytes += rep.bskBytes;
        fleet.vpuDmaBytes += rep.vpuDmaBytes;
        fleet.vpuKsCycles += rep.vpuKsCycles;
        fleet.vpuMsCycles += rep.vpuMsCycles;
        fleet.vpuSeCycles += rep.vpuSeCycles;
        fleet.vpuPaluCycles += rep.vpuPaluCycles;
        fleet.xpuBusyCycles += rep.xpuBusyCycles;
        fleet.xpuStallCycles += rep.xpuStallCycles;
        fleet.chipPowerW += rep.chipPowerW;
        fleet.nocAggregateTBs += rep.nocAggregateTBs;
        fleet.pipelineLatencyMs =
            std::max(fleet.pipelineLatencyMs, rep.pipelineLatencyMs);
        fleet.meanChunkLatencyMs =
            std::max(fleet.meanChunkLatencyMs, rep.meanChunkLatencyMs);
    }
    const double span_cycles = static_cast<double>(
        std::max<std::uint64_t>(1, makespan_) * reporting);
    fleet.xpuBusyFrac =
        static_cast<double>(fleet.xpuBusyCycles) / span_cycles;
    fleet.xpuStallFrac =
        static_cast<double>(fleet.xpuStallCycles) / span_cycles;
    if (fleet.seconds > 0) {
        fleet.throughputBs =
            static_cast<double>(fleet.bootstraps) / fleet.seconds;
        fleet.hbmAchievedGBs =
            static_cast<double>(fleet.hbmBytes) / fleet.seconds / 1e9;
        if (fleet.bootstraps > 0) {
            fleet.energyPerBsUj = fleet.chipPowerW * fleet.seconds /
                                  static_cast<double>(fleet.bootstraps) *
                                  1e6;
        }
    }
    report_ = fleet;
}

std::optional<RetiredInstruction>
ShardedBackend::step()
{
    panic_if(!loaded_, "step() before load()");
    if (cursor_ >= merged_.size())
        return std::nullopt;
    return merged_[cursor_++];
}

bool
ShardedBackend::done() const
{
    return loaded_ && cursor_ >= merged_.size();
}

ExecutionResult
ShardedBackend::finish()
{
    panic_if(!loaded_, "finish() before load()");
    panic_if(!done(), "finish() before the program fully retired");
    ExecutionResult result;
    result.backend = name();
    result.outputs = std::move(outputs_);
    result.hasOutputs = hasOutputs_;
    result.report = report_;
    result.hasReport = hasReport_;
    result.retired = std::move(merged_);
    merged_.clear();
    outputs_.clear();
    cursor_ = 0;
    loaded_ = false;
    return result;
}

} // namespace morphling::exec
