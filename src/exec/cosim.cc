#include "cosim.h"

#include <deque>
#include <sstream>

#include "common/logging.h"
#include "exec/sharded_backend.h"
#include "tfhe/encoding.h"
#include "exec/timing_backend.h"
#include "telemetry/telemetry.h"

namespace morphling::exec {

using compiler::Opcode;

namespace {

/** Bounded error collector: keeps diagnostics readable when a broken
 *  backend would otherwise emit thousands. */
class ErrorSink
{
  public:
    explicit ErrorSink(std::vector<std::string> &errors,
                       std::size_t max)
        : errors_(errors), max_(max)
    {
    }

    template <typename... Args>
    void
    add(Args &&...args)
    {
        ++total_;
        if (errors_.size() >= max_)
            return;
        std::ostringstream oss;
        (oss << ... << args);
        errors_.push_back(oss.str());
    }

    std::size_t total() const { return total_; }

  private:
    std::vector<std::string> &errors_;
    std::size_t max_;
    std::size_t total_ = 0;
};

/** Exactly-once coverage plus per-group program-order check of one
 *  backend's retirement log. */
void
checkRetirement(const compiler::Program &program,
                const std::vector<RetiredInstruction> &retired,
                std::string_view backend, ErrorSink &sink)
{
    if (retired.size() != program.size()) {
        sink.add(backend, " retired ", retired.size(), " of ",
                 program.size(), " instructions");
    }
    std::vector<char> seen(program.size(), 0);
    for (const auto &r : retired) {
        if (r.index >= program.size()) {
            sink.add(backend, " retired out-of-range index ", r.index);
            continue;
        }
        if (seen[r.index]) {
            sink.add(backend, " retired instruction ", r.index, " (",
                     r.inst.toString(), ") more than once");
        }
        seen[r.index] = 1;
        if (!(r.inst == program.at(r.index))) {
            sink.add(backend, " retired a mutated instruction at ",
                     r.index, ": ", r.inst.toString(), " vs ",
                     program.at(r.index).toString());
        }
    }

    // Per-group program order: the subsequence of retired indices of
    // each group must be strictly increasing (program order).
    std::vector<std::size_t> last(program.numGroups(), 0);
    std::vector<char> started(program.numGroups(), 0);
    for (const auto &r : retired) {
        if (r.index >= program.size())
            continue;
        const unsigned g = program.at(r.index).group;
        if (started[g] && r.index <= last[g]) {
            sink.add(backend, " violated group ", g,
                     " program order: index ", r.index, " after ",
                     last[g]);
        }
        started[g] = 1;
        last[g] = r.index;
    }
}

/** Dependency-order checks over the timing backend's raw completion
 *  log: tick monotonicity within every chunk chain, and barrier
 *  segmentation (nothing after a rendezvous completes before it
 *  releases). */
void
checkCompletionOrder(const compiler::Program &program,
                     const std::vector<RetiredInstruction> &completions,
                     ErrorSink &sink)
{
    if (completions.size() != program.size())
        return; // coverage diagnostics already emitted

    std::vector<std::uint64_t> tick_of(program.size(), 0);
    for (const auto &r : completions) {
        if (r.index < program.size())
            tick_of[r.index] = r.tick;
    }

    // Chains mirror the HW scheduler: a new chain starts at each
    // staging head (LD_LWE / LD_DATA) or barrier. Within a chain,
    // completion ticks must be monotone — instruction j depends on
    // j-1.
    const auto &instrs = program.instructions();
    std::vector<std::uint64_t> chain_last(program.numGroups(), 0);
    std::vector<char> in_chain(program.numGroups(), 0);
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const auto &inst = instrs[i];
        const unsigned g = inst.group;
        const bool starts_chain = inst.op == Opcode::DmaLoadLwe ||
                                  inst.op == Opcode::DmaLoadData ||
                                  inst.op == Opcode::Barrier;
        if (starts_chain || !in_chain[g]) {
            in_chain[g] = 1;
            chain_last[g] = tick_of[i];
            continue;
        }
        if (tick_of[i] < chain_last[g]) {
            sink.add("timing completed ", inst.toString(),
                     " (index ", i, ") at tick ", tick_of[i],
                     ", before its chain predecessor at ",
                     chain_last[g]);
        }
        chain_last[g] = std::max(chain_last[g], tick_of[i]);
    }

    // Barrier segmentation: every instruction after a barrier set must
    // complete no earlier than the rendezvous released.
    std::uint64_t floor = 0;
    std::uint64_t pending_floor = 0;
    bool pending = false;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].op == Opcode::Barrier) {
            pending_floor = std::max(pending_floor, tick_of[i]);
            pending = true;
            continue;
        }
        if (pending) {
            floor = std::max(floor, pending_floor);
            pending = false;
            pending_floor = 0;
        }
        if (tick_of[i] < floor) {
            sink.add("timing completed ", instrs[i].toString(),
                     " (index ", i, ") at tick ", tick_of[i],
                     ", before the preceding barrier released at ",
                     floor);
        }
    }
}

/** Sharded-reference checks: the shard slices must partition the
 *  program (every group owned by exactly one shard, slice streams
 *  jointly covering every instruction), and each timing shard's
 *  shard-local completion log must satisfy the same dependency-order
 *  invariants as a monolithic timing backend. */
void
checkSharded(const compiler::Program &program,
             const ShardedBackend &sharded, ErrorSink &sink)
{
    const unsigned n_groups = program.numGroups();
    std::vector<unsigned> owners(n_groups, 0);
    std::size_t covered = 0;
    for (unsigned s = 0; s < sharded.numShards(); ++s) {
        const auto &slice = sharded.slice(s);
        for (const unsigned g : slice.groups) {
            if (g < n_groups)
                ++owners[g];
        }
        covered += slice.program.size();
    }
    for (unsigned g = 0; g < n_groups; ++g) {
        if (owners[g] != 1) {
            sink.add("sharded partition: group ", g, " is owned by ",
                     owners[g], " shards, expected exactly one");
        }
    }
    if (covered != program.size()) {
        sink.add("sharded partition: slices cover ", covered, " of ",
                 program.size(), " instructions");
    }
    if (sharded.fleetMode()) {
        // Fleet shards have no inner TimingBackend; their raw
        // shared-clock completion logs come straight off the backend.
        const auto &logs = sharded.shardCompletions();
        for (unsigned s = 0; s < sharded.numShards(); ++s) {
            checkCompletionOrder(sharded.slice(s).program, logs[s],
                                 sink);
        }
        return;
    }
    for (unsigned s = 0; s < sharded.numShards(); ++s) {
        const auto *tb = dynamic_cast<const TimingBackend *>(
            &sharded.shardBackend(s));
        if (tb != nullptr) {
            checkCompletionOrder(sharded.slice(s).program,
                                 tb->completionOrder(), sink);
        }
    }
}

} // namespace

std::string
CosimReport::summary() const
{
    std::ostringstream oss;
    if (ok()) {
        oss << "cosim OK: " << instructions << " instructions, "
            << lockstepComparisons << " lockstep comparisons";
        if (timing.hasReport)
            oss << ", " << timing.report.cycles << " cycles";
    } else {
        oss << "cosim FAILED with " << errors.size()
            << " diagnostics; first: " << errors.front();
    }
    return oss.str();
}

LockstepCosim::LockstepCosim(ExecutionBackend &functional,
                             ExecutionBackend &timing,
                             CosimOptions options)
    : functional_(functional), timing_(timing), options_(options)
{
}

CosimReport
LockstepCosim::run(const compiler::Program &program, const Job &job)
{
    MORPHLING_SPAN("exec", "cosim");
    CosimReport report;
    report.instructions = program.size();
    ErrorSink sink(report.errors, options_.maxErrors);

    functional_.load(program, job);
    timing_.load(program, job);

    // Retire both backends instruction by instruction, matching the
    // streams per group as they advance. Backends interleave groups
    // differently (round-robin vs. simulated time), so the match
    // point is the per-group queue, not the global sequence.
    const unsigned n_groups = std::max(1u, program.numGroups());
    std::vector<std::deque<RetiredInstruction>> fq(n_groups);
    std::vector<std::deque<RetiredInstruction>> tq(n_groups);
    std::vector<RetiredInstruction> f_log, t_log;
    f_log.reserve(program.size());
    t_log.reserve(program.size());

    bool f_done = false, t_done = false;
    while (!f_done || !t_done) {
        if (!f_done) {
            if (auto r = functional_.step()) {
                f_log.push_back(*r);
                if (r->inst.group < n_groups)
                    fq[r->inst.group].push_back(*r);
            } else {
                f_done = true;
            }
        }
        if (!t_done) {
            if (auto r = timing_.step()) {
                t_log.push_back(*r);
                if (r->inst.group < n_groups)
                    tq[r->inst.group].push_back(*r);
            } else {
                t_done = true;
            }
        }
        for (unsigned g = 0; g < n_groups; ++g) {
            while (!fq[g].empty() && !tq[g].empty()) {
                const auto &f = fq[g].front();
                const auto &t = tq[g].front();
                if (f.index != t.index || !(f.inst == t.inst)) {
                    sink.add("lockstep mismatch in group ", g, ": ",
                             functional_.name(), " retired index ",
                             f.index, " (", f.inst.toString(), "), ",
                             timing_.name(), " retired index ",
                             t.index, " (", t.inst.toString(), ")");
                }
                ++report.lockstepComparisons;
                fq[g].pop_front();
                tq[g].pop_front();
            }
        }
    }
    for (unsigned g = 0; g < n_groups; ++g) {
        if (!fq[g].empty() || !tq[g].empty()) {
            sink.add("group ", g, " retirement counts differ: ",
                     functional_.name(), " has ", fq[g].size(),
                     " unmatched, ", timing_.name(), " has ",
                     tq[g].size());
        }
    }

    checkRetirement(program, f_log, functional_.name(), sink);
    checkRetirement(program, t_log, timing_.name(), sink);

    for (ExecutionBackend *backend : {&functional_, &timing_}) {
        if (const auto *tb = dynamic_cast<TimingBackend *>(backend))
            checkCompletionOrder(program, tb->completionOrder(), sink);
        else if (const auto *sb = dynamic_cast<ShardedBackend *>(backend))
            checkSharded(program, *sb, sink);
    }

    report.functional = functional_.finish();
    report.timing = timing_.finish();

    // End-of-program ciphertext correctness vs. the library reference.
    if (options_.referenceKeys != nullptr && job.inputs != nullptr &&
        job.lut != nullptr && report.functional.hasOutputs) {
        const auto reference =
            job.signLut ? tfhe::batchSignBootstrap(
                              *options_.referenceKeys, *job.inputs,
                              (*job.lut)[0], job.options)
                        : tfhe::batchBootstrap(*options_.referenceKeys,
                                               *job.inputs, *job.lut,
                                               job.options);
        if (reference.size() != report.functional.outputs.size()) {
            sink.add("output count mismatch: backend produced ",
                     report.functional.outputs.size(),
                     ", reference produced ", reference.size());
        } else if (options_.decryptKeys != nullptr) {
            // Decrypt-level equivalence: the oracle for engines whose
            // arithmetic is correct but not bit-identical (kDatapath).
            const auto &ks = *options_.decryptKeys;
            const std::uint32_t space = options_.messageSpace;
            for (std::size_t i = 0; i < reference.size(); ++i) {
                const auto got = tfhe::decryptPadded(
                    ks, report.functional.outputs[i], space);
                const auto want =
                    tfhe::decryptPadded(ks, reference[i], space);
                if (got != want) {
                    sink.add("output ", i, " decrypts to ", got,
                             ", reference decrypts to ", want,
                             " (space ", space, ")");
                }
            }
        } else {
            for (std::size_t i = 0; i < reference.size(); ++i) {
                if (report.functional.outputs[i].raw() !=
                    reference[i].raw()) {
                    sink.add("output ", i, " is not bit-identical to "
                             "the tfhe::bootstrapInto reference");
                }
            }
        }
    }

    if (sink.total() > report.errors.size()) {
        report.errors.push_back(
            "... " +
            std::to_string(sink.total() - report.errors.size()) +
            " further diagnostics suppressed");
    }
    return report;
}

} // namespace morphling::exec
