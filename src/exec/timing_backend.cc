#include "timing_backend.h"

#include <algorithm>

#include "common/logging.h"

namespace morphling::exec {

std::vector<RetiredInstruction>
architecturalRetirement(const compiler::Program &program,
                        const std::vector<RetiredInstruction> &completions)
{
    // Coverage: the simulation must have completed every instruction
    // exactly once — anything else is a scheduler bug.
    panic_if(completions.size() != program.size(),
             "simulation completed ", completions.size(), " of ",
             program.size(), " instructions");
    std::vector<char> seen(program.size(), 0);
    for (const auto &r : completions) {
        panic_if(r.index >= program.size(),
                 "instruction index ", r.index, " out of range");
        panic_if(seen[r.index], "instruction ", r.index,
                 " completed twice");
        seen[r.index] = 1;
    }

    std::vector<std::uint64_t> tick_of(program.size(), 0);
    for (const auto &r : completions)
        tick_of[r.index] = r.tick;

    std::vector<std::uint64_t> group_floor(program.numGroups(), 0);
    std::vector<RetiredInstruction> retired;
    retired.reserve(program.size());
    const auto &instrs = program.instructions();
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        auto &floor = group_floor[instrs[i].group];
        floor = std::max(floor, tick_of[i]);
        RetiredInstruction r;
        r.index = i;
        r.inst = instrs[i];
        r.tick = floor;
        retired.push_back(r);
    }
    std::stable_sort(retired.begin(), retired.end(),
                     [](const RetiredInstruction &a,
                        const RetiredInstruction &b) {
                         return a.tick < b.tick;
                     });
    for (std::size_t i = 0; i < retired.size(); ++i)
        retired[i].seq = i;
    return retired;
}

TimingBackend::TimingBackend(arch::ArchConfig config,
                             const tfhe::TfheParams &params)
    : accel_(std::move(config), params)
{
}

void
TimingBackend::load(const compiler::Program &program, const Job &job)
{
    (void)job; // the cycle model carries no ciphertext data
    completions_.clear();
    retireOrder_.clear();
    cursor_ = 0;

    report_ = accel_.run(
        program,
        [this](std::size_t index, const compiler::Instruction &inst,
               std::uint64_t tick) {
            RetiredInstruction r;
            r.index = index;
            r.inst = inst;
            r.seq = completions_.size();
            r.tick = tick;
            completions_.push_back(r);
        });

    // Architectural retirement: per group in program order, each
    // instruction retiring at the running max of its group's
    // completion ticks (ROB view over the overlapping chains).
    retireOrder_ = architecturalRetirement(program, completions_);

    loaded_ = true;
}

std::optional<RetiredInstruction>
TimingBackend::step()
{
    panic_if(!loaded_, "step() before load()");
    if (cursor_ >= retireOrder_.size())
        return std::nullopt;
    return retireOrder_[cursor_++];
}

bool
TimingBackend::done() const
{
    return loaded_ && cursor_ >= retireOrder_.size();
}

ExecutionResult
TimingBackend::finish()
{
    panic_if(!loaded_, "finish() before load()");
    panic_if(!done(), "finish() before the program fully retired");
    ExecutionResult result;
    result.backend = name();
    result.report = report_;
    result.hasReport = true;
    result.retired = std::move(retireOrder_);
    retireOrder_.clear();
    cursor_ = 0;
    loaded_ = false;
    return result;
}

} // namespace morphling::exec
