/**
 * @file
 * The timing execution backend: wraps the arch::Accelerator cycle
 * model behind the ExecutionBackend interface, semantics unchanged.
 *
 * load() runs the event-driven simulation eagerly (the cycle model is
 * not single-steppable from outside the event queue) and records the
 * raw per-instruction completion events via the scheduler's retire
 * hook. Completion order within a group is NOT program order — the HW
 * scheduler keeps up to three chunk chains of a group in flight, so
 * chunk t+1's head may complete while chunk t drains its tail. step()
 * therefore replays the *architectural* retirement: per group, program
 * order, each instruction retiring at the running maximum of its
 * group's completion ticks (a reorder-buffer view), groups interleaved
 * by retire tick. The raw completion log stays available through
 * completionOrder() for dependency-order verification.
 */

#ifndef MORPHLING_EXEC_TIMING_BACKEND_H
#define MORPHLING_EXEC_TIMING_BACKEND_H

#include <vector>

#include "arch/accelerator.h"
#include "arch/config.h"
#include "exec/backend.h"

namespace morphling::exec {

/**
 * Coverage-check a raw completion log (every instruction exactly
 * once) and replay it as the architectural retirement: per group in
 * program order, each instruction retiring at the running max of its
 * group's completion ticks (a reorder-buffer view over the HW
 * scheduler's overlapping chains), globally stable-sorted by retire
 * tick. Shared by TimingBackend and the fleet-timing sharded mode.
 */
std::vector<RetiredInstruction>
architecturalRetirement(const compiler::Program &program,
                        const std::vector<RetiredInstruction> &completions);

/** Replays the cycle model's retirement through the backend API. */
class TimingBackend final : public ExecutionBackend
{
  public:
    TimingBackend(arch::ArchConfig config,
                  const tfhe::TfheParams &params);

    std::string_view name() const override { return "timing"; }

    /** Runs the full simulation; the Job's ciphertext data is ignored
     *  (the cycle model is data-free). */
    void load(const compiler::Program &program,
              const Job &job) override;
    std::optional<RetiredInstruction> step() override;
    bool done() const override;
    ExecutionResult finish() override;

    /** Raw completion events in simulator order: tick = the event
     *  queue time each instruction's resource finished. */
    const std::vector<RetiredInstruction> &completionOrder() const
    {
        return completions_;
    }

    /** The cycle-model report of the loaded run. */
    const arch::SimReport &report() const { return report_; }

  private:
    arch::Accelerator accel_;
    bool loaded_ = false;
    std::vector<RetiredInstruction> completions_;
    std::vector<RetiredInstruction> retireOrder_;
    std::size_t cursor_ = 0;
    arch::SimReport report_;
};

} // namespace morphling::exec

#endif // MORPHLING_EXEC_TIMING_BACKEND_H
