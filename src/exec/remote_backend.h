/**
 * @file
 * The client half of the remote execution split: an ExecutionBackend
 * that ships its program, input ciphertexts and LUT to a RemoteServer
 * over the framed TCP protocol (remote_protocol.h) and replays the
 * streamed retirement log locally.
 *
 * Drop-in contract: for the default single-threaded Job the retirement
 * log and output ciphertexts are bit-identical to a local
 * FunctionalBackend run of the same program (the server single-steps
 * its inner backend; tests/test_remote.cc asserts the identity),
 * so MultiTenantService and submitCircuit work over the wire
 * unchanged — select it with ServiceConfig::backend = kRemote.
 *
 * Robustness:
 *  - every request carries a deadline (RemoteClientConfig::
 *    requestTimeout) covering connect + send + execution + response;
 *    expiry surfaces as RemoteError(kTimeout), never a hang;
 *  - connection-level failures (refused connect, peer reset mid-
 *    stream) retry with capped exponential backoff up to maxAttempts,
 *    still under the same deadline;
 *  - retries resend the same request id, and the server's idempotency
 *    cache guarantees the work is never executed twice — a disconnect
 *    that raced the final frames replays the cached result;
 *  - non-transport failures (version mismatch, malformed frame, bad
 *    program, server-side error) are typed, never retried.
 */

#ifndef MORPHLING_EXEC_REMOTE_BACKEND_H
#define MORPHLING_EXEC_REMOTE_BACKEND_H

#include <cstdint>
#include <optional>
#include <vector>

#include "exec/backend.h"
#include "exec/remote_protocol.h"
#include "tfhe/keyset.h"
#include "tfhe/serialize.h"

namespace morphling::exec {

/**
 * Executes programs on a RemoteServer. Like ShardedBackend, load()
 * performs the whole (remote) execution eagerly; step() then replays
 * the streamed retirement log and finish() returns the outputs.
 *
 * The connection is established lazily on the first load() and reused
 * across runs. Single-driver like every ExecutionBackend; one backend
 * is one connection.
 */
class RemoteBackend final : public ExecutionBackend
{
  public:
    /** Evaluation keys must outlive the backend (the usual server-key
     *  deployment; mirrors FunctionalBackend). */
    RemoteBackend(const tfhe::EvaluationKeys &keys,
                  RemoteClientConfig config);

    /** KeySet convenience: extracts and owns the evaluation half. */
    RemoteBackend(const tfhe::KeySet &keys, RemoteClientConfig config);

    ~RemoteBackend() override;

    std::string_view name() const override { return "remote"; }

    /** Execute remotely (connect, handshake, send, stream back), with
     *  deadline/retry as configured. Throws remote::RemoteError. */
    void load(const compiler::Program &program, const Job &job) override;

    std::optional<RetiredInstruction> step() override;
    bool done() const override;
    ExecutionResult finish() override;

    /** The fingerprint requests run under (computed once and cached
     *  unless the config supplied it). */
    tfhe::KeyFingerprint fingerprint() const;

    /** @{ Last-request introspection (tests and the roundtrip bench). */
    std::uint64_t lastRequestId() const { return requestId_; }
    unsigned lastAttempts() const { return attempts_; }

    /** How many times the server reports having executed the last
     *  request — 1 even after a mid-stream disconnect + retry. */
    std::uint64_t lastServerExecutions() const
    {
        return serverExecutions_;
    }

    /** Payload bytes sent/received over the last load(). */
    std::uint64_t lastBytesSent() const { return bytesSent_; }
    std::uint64_t lastBytesReceived() const { return bytesReceived_; }
    /** @} */

    /** Drop the connection (next load() reconnects). Tests use this to
     *  exercise the reconnect path deliberately. */
    void closeConnection();

  private:
    void executeRemote(const compiler::Program &program, const Job &job);

    /** Connect + Hello/HelloAck when not already connected. */
    void ensureConnected(remote::Deadline deadline);

    /** Serialize our keys to the server, verify the acked
     *  fingerprint. */
    void enroll(remote::Deadline deadline);

    /** Receive kRetire/kResult frames for requestId_ until the result
     *  lands; returns false when the server asked for enrollment
     *  (kUnknownKey with autoEnroll on). */
    bool receiveResponse(const compiler::Program &program,
                         remote::Deadline deadline);

    std::vector<std::uint8_t> encodeExecute(
        const compiler::Program &program, const Job &job) const;

    const tfhe::EvaluationKeys *keys_;
    /** Storage behind keys_ for the KeySet overload. */
    std::optional<tfhe::EvaluationKeys> ownedKeys_;
    RemoteClientConfig config_;
    mutable std::optional<tfhe::KeyFingerprint> fingerprint_;

    remote::Socket socket_;

    // Replayed state of the last load().
    std::vector<RetiredInstruction> retired_;
    std::vector<tfhe::LweCiphertext> outputs_;
    bool hasOutputs_ = false;
    std::size_t cursor_ = 0;
    bool loaded_ = false;

    std::uint64_t requestId_ = 0;
    unsigned attempts_ = 0;
    std::uint64_t serverExecutions_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;
};

} // namespace morphling::exec

#endif // MORPHLING_EXEC_REMOTE_BACKEND_H
