/**
 * @file
 * The functional execution backend: interprets a compiled Program
 * against real LWE ciphertexts.
 *
 * DMA instructions move ciphertext/key data through modeled per-chunk
 * staging buffers, VPU instructions run the library's mod-switch /
 * sample-extract / key-switch stages, and XpuBlindRotate runs a real
 * blind rotation. Because each chunk executes the exact stage sequence
 * of tfhe::bootstrapInto (mod-switch -> workspace blind rotation ->
 * sample extraction -> key switching), the outputs are bit-identical
 * to the library reference — the property the lockstep co-simulator
 * asserts.
 *
 * The backend doubles as an IR validity checker: a stream that loads a
 * chunk twice, rotates before mod-switching, stores before
 * key-switching, or whose DMA.LD_LWE totals disagree with its XPU.BR
 * totals panics instead of silently computing garbage.
 */

#ifndef MORPHLING_EXEC_FUNCTIONAL_BACKEND_H
#define MORPHLING_EXEC_FUNCTIONAL_BACKEND_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "arch/functional/functional_xpu.h"
#include "exec/backend.h"
#include "tfhe/bootstrap.h"
#include "tfhe/keyset.h"
#include "tfhe/serialize.h"
#include "tfhe/workspace.h"

namespace morphling::exec {

/** Which engine executes XpuBlindRotate instructions. */
enum class XpuEngine
{
    /** The zero-allocation workspace blind rotation
     *  (tfhe::blindRotate through a BootstrapWorkspace): bit-exact vs.
     *  tfhe::bootstrapInto. The default, and the only engine the
     *  bit-exactness co-sim check admits. */
    kWorkspace,

    /** The merge-split FFT datapath model
     *  (arch::functional::FunctionalXpu, Figure 5): computes real
     *  rotations that decrypt identically but differ from the library
     *  path by sub-noise rounding (see tests/test_functional_xpu.cc).
     *  Requires a caller-supplied coefficient-domain BSK. */
    kDatapath
};

/** Construction-time knobs of the functional backend. */
struct FunctionalConfig
{
    XpuEngine xpuEngine = XpuEngine::kWorkspace;

    /** Coefficient-domain BSK for XpuEngine::kDatapath (generate via
     *  arch::functional::generateRawBsk; needs secret keys). Must
     *  outlive the backend. Ignored by kWorkspace. */
    const std::vector<tfhe::GgswCiphertext> *rawBsk = nullptr;

    /** VPE array geometry for the datapath engine. */
    unsigned datapathRows = 4;
    unsigned datapathCols = 4;
};

/**
 * Interprets Programs against real ciphertexts. Holds references to
 * the key material — the keys must outlive the backend.
 */
class FunctionalBackend final : public ExecutionBackend
{
  public:
    explicit FunctionalBackend(const tfhe::EvaluationKeys &keys,
                               FunctionalConfig config = {});
    explicit FunctionalBackend(const tfhe::KeySet &keys,
                               FunctionalConfig config = {});

    std::string_view name() const override { return "functional"; }

    void load(const compiler::Program &program,
              const Job &job) override;
    std::optional<RetiredInstruction> step() override;
    bool done() const override;
    ExecutionResult finish() override;

    /** Fast path: barrier-delimited segments execute their groups in
     *  parallel (Job::options.threads workers, each with its own
     *  workspace) while preserving per-group program order. Falls back
     *  to sequential stepping for 1 thread or the datapath engine
     *  (which is single-instance stateful). */
    ExecutionResult run(const compiler::Program &program,
                        const Job &job) override;

  private:
    /** Pipeline state of one LD_LWE..ST_LWE chunk. The booleans track
     *  stage progress so malformed streams panic. */
    struct Chunk
    {
        std::size_t slotBegin = 0; //!< first input/output slot covered
        unsigned count = 0;
        bool staged = false;
        bool modSwitched = false;
        bool bskArmed = false;
        bool rotated = false;
        bool extracted = false;
        bool kskLoaded = false;
        bool keySwitched = false;
        bool stored = false;
        std::vector<tfhe::LweCiphertext> staging; //!< DMA'd inputs
        std::vector<std::vector<std::uint32_t>> switched;
        std::vector<tfhe::GlweCiphertext> accs;
        std::vector<tfhe::LweCiphertext> extractedCts;
        std::vector<tfhe::LweCiphertext> results;
    };

    /** One program instruction with its chunk binding (-1 for ops that
     *  carry no chunk data: barriers, LD_DATA, PALU). */
    struct InstrRef
    {
        std::size_t index = 0;
        int chunk = -1;
    };

    struct Group
    {
        std::vector<InstrRef> stream; //!< program order
        std::size_t pc = 0;
    };

    void reset();
    void bindProgram(const compiler::Program &program, const Job &job);
    void execute(const InstrRef &ref, tfhe::BootstrapWorkspace &ws);
    void blindRotateChunk(Chunk &chunk, tfhe::BootstrapWorkspace &ws);
    RetiredInstruction makeRetired(std::size_t index);
    /** All unfinished groups sit at the same barrier: retire it for
     *  every group (into pendingRetire_) and advance past it. */
    void releaseBarrier();
    void runParallel(unsigned threads);
    bool allFinished() const;

    const tfhe::TfheParams &params_;
    const tfhe::BootstrapKey &bsk_;
    const tfhe::KeySwitchKey &ksk_;
    FunctionalConfig config_;
    std::unique_ptr<arch::functional::FunctionalXpu> xpu_;

    const compiler::Program *program_ = nullptr;
    const std::vector<tfhe::LweCiphertext> *inputs_ = nullptr;
    bool loaded_ = false;
    tfhe::TorusPolynomial testPoly_;
    std::vector<Chunk> chunks_;
    std::vector<Group> groups_;
    std::vector<tfhe::LweCiphertext> outputs_;
    std::vector<RetiredInstruction> log_;
    std::deque<RetiredInstruction> pendingRetire_;
    std::uint64_t seq_ = 0;
    unsigned rr_ = 0; //!< round-robin group cursor for step()
};

} // namespace morphling::exec

#endif // MORPHLING_EXEC_FUNCTIONAL_BACKEND_H
