/**
 * @file
 * Observation hook for instruction retirement in the cycle model.
 *
 * The HW scheduler invokes the hook once per program instruction, at
 * the simulator tick the instruction completes (for barriers: the tick
 * the rendezvous releases). Shared by HwScheduler (which calls it) and
 * Accelerator (which plumbs it through run()) without either header
 * having to include the other.
 */

#ifndef MORPHLING_ARCH_RETIRE_HOOK_H
#define MORPHLING_ARCH_RETIRE_HOOK_H

#include <cstddef>
#include <cstdint>
#include <functional>

#include "compiler/isa.h"

namespace morphling::arch {

/**
 * Called as (index into Program::instructions(), the instruction,
 * completion tick). Pure observer: must not mutate simulation state,
 * and installing one never changes cycle counts.
 */
using RetireHook = std::function<void(
    std::size_t index, const compiler::Instruction &inst,
    std::uint64_t tick)>;

} // namespace morphling::arch

#endif // MORPHLING_ARCH_RETIRE_HOOK_H
