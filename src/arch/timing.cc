#include "timing.h"

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::arch {

EpRoundTiming
epRoundTiming(const tfhe::TfheParams &params, const ArchConfig &config,
              unsigned ciphertexts)
{
    const std::uint64_t kp1 = params.glweDimension + 1;
    const std::uint64_t lb = params.bskLevels;

    EpRoundTiming t;
    t.rowsActive = std::min(ciphertexts, config.vpeRows);
    panic_if(t.rowsActive == 0, "round with zero ciphertexts");

    // One polynomial pass: N/2 transform-domain elements at
    // vectorLanes elements per cycle.
    t.passCycles = divCeil<std::uint64_t>(params.polyDegree / 2,
                                          config.vectorLanes);

    // Per-ciphertext polynomial counts by reuse mode (Figure 2).
    std::uint64_t fwd_polys, inv_polys;
    switch (config.reuse) {
      case ReuseMode::None:
        fwd_polys = kp1 * lb * kp1; // re-transformed per column
        inv_polys = kp1 * lb * kp1; // every product inverted
        break;
      case ReuseMode::Input:
        fwd_polys = kp1 * lb;       // shared along the VPE row
        inv_polys = kp1 * lb * kp1; // every product inverted
        break;
      case ReuseMode::InputOutput:
        fwd_polys = kp1 * lb; // shared along the VPE row
        inv_polys = kp1;      // Fourier accumulation: one per column
        break;
      default:
        panic("unknown reuse mode");
    }

    // A ciphertext with more output components than VPE columns
    // multiplexes the array in column passes.
    const std::uint64_t col_passes =
        divCeil<std::uint64_t>(kp1, config.vpeCols);

    const std::uint64_t per_pass = config.polysPerFftPass();
    t.fwdCycles = divCeil<std::uint64_t>(t.rowsActive * fwd_polys,
                                         config.fftUnitsPerXpu * per_pass) *
                  t.passCycles;
    t.invCycles = divCeil<std::uint64_t>(t.rowsActive * inv_polys,
                                         config.ifftUnitsPerXpu * per_pass) *
                  t.passCycles;
    t.vpeCycles = kp1 * lb * t.passCycles * col_passes;
    return t;
}

std::uint64_t
bskBytesPerIteration(const tfhe::TfheParams &params)
{
    // (k+1) l_b x (k+1) polynomials, N/2 complex elements of 8 bytes
    // (32-bit real + 32-bit imaginary, Section V-A).
    return params.polysPerGgsw() * (params.polyDegree / 2) * 8;
}

VpuTaskCycles
vpuTaskCycles(const tfhe::TfheParams &params, const ArchConfig &config)
{
    const std::uint64_t lanes = config.totalVpuLanes();
    const std::uint64_t n = params.lweDimension;
    const std::uint64_t kn = params.extractedLweDimension();

    VpuTaskCycles c;
    // Mod switch: scale+round every element of the (n+1)-tuple.
    c.modSwitch = divCeil<std::uint64_t>(n + 1, lanes);
    // Sample extraction: data regrouping of the kN+1 extracted words.
    c.sampleExtract = divCeil<std::uint64_t>(kn + 1, lanes);
    // Key switch: kN masks x l_k digits, each scaling an (n+1)-word
    // LWE ciphertext (Algorithm 1, line 6).
    c.keySwitch =
        divCeil<std::uint64_t>(kn * params.kskLevels * (n + 1), lanes);
    return c;
}

std::uint64_t
vpuPAluCycles(const tfhe::TfheParams &params, const ArchConfig &config,
              std::uint64_t macs)
{
    // One ciphertext-scalar MAC touches all n+1 words.
    return divCeil<std::uint64_t>(macs * (params.lweDimension + 1),
                                  std::uint64_t{config.totalVpuLanes()});
}

BootstrapEstimate
estimateBootstrap(const tfhe::TfheParams &params, const ArchConfig &config)
{
    const auto round = epRoundTiming(params, config, config.vpeRows);
    const auto vpu = vpuTaskCycles(params, config);

    BootstrapEstimate est;
    // Latency: n sequential rounds plus the per-ciphertext VPU stages.
    est.latencyCycles = params.lweDimension * round.roundCycles() +
                        vpu.modSwitch + vpu.sampleExtract +
                        vpu.keySwitch;
    est.latencyMs = static_cast<double>(est.latencyCycles) /
                    (config.clockGHz * 1e6);

    const double hz = config.clockGHz * 1e9;
    const double xpu_batch_cycles = static_cast<double>(
        params.lweDimension * round.roundCycles());
    est.xpuThroughputBs = static_cast<double>(config.numXpus) *
                          round.rowsActive * hz / xpu_batch_cycles;
    const double vpu_per_ct = static_cast<double>(
        vpu.modSwitch + vpu.sampleExtract + vpu.keySwitch);
    est.vpuThroughputBs = hz / vpu_per_ct;
    est.throughputBs =
        std::min(est.xpuThroughputBs, est.vpuThroughputBs);
    return est;
}

} // namespace morphling::arch
