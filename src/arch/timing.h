/**
 * @file
 * The XPU external-product round timing model.
 *
 * One "round" is one blind-rotation iteration for the ciphertexts an
 * XPU holds in its VPE rows. The streaming pipeline moves 8
 * transform-domain elements per cycle, so one polynomial pass through a
 * transform unit takes (N/2)/8 cycles; merge-split FFT packs two
 * polynomials into one pass. Per round the demands are:
 *
 *   forward:  rows * fwdPolysPerCiphertext over fftUnits slots
 *   inverse:  rows * invPolysPerCiphertext over ifftUnits slots
 *   VPE:      (k+1) l_b passes of occupancy per VPE (columns parallel)
 *
 * with the per-ciphertext polynomial counts depending on the reuse mode
 * (see arch/analysis.h). The round time is the maximum of the three,
 * scaled by ceil((k+1)/vpeCols) when a ciphertext needs more output
 * columns than the array has.
 *
 * This closed-form model is validated against Table V: with the default
 * configuration it reproduces the paper's bootstrap latencies for sets
 * I-IV to within a few percent (see tests/test_timing.cc).
 */

#ifndef MORPHLING_ARCH_TIMING_H
#define MORPHLING_ARCH_TIMING_H

#include <cstdint>

#include "arch/config.h"
#include "tfhe/params.h"

namespace morphling::arch {

/** Cycle breakdown of one external-product round on one XPU. */
struct EpRoundTiming
{
    std::uint64_t passCycles = 0; //!< one polynomial through one unit
    std::uint64_t fwdCycles = 0;  //!< input-transform stream time
    std::uint64_t invCycles = 0;  //!< output-transform stream time
    std::uint64_t vpeCycles = 0;  //!< VPE occupancy
    unsigned rowsActive = 0;      //!< ciphertexts served this round

    /** The pipelined round time: the slowest stage. */
    std::uint64_t
    roundCycles() const
    {
        return std::max({fwdCycles, invCycles, vpeCycles});
    }
};

/**
 * Timing of one round serving `ciphertexts` on one XPU (clamped to the
 * row count; the caller accounts for multiple passes if it oversubmits).
 */
EpRoundTiming epRoundTiming(const tfhe::TfheParams &params,
                            const ArchConfig &config,
                            unsigned ciphertexts);

/** Bytes of BSK (transform domain) streamed per blind-rotation
 *  iteration; shared by all XPUs via the Private-A2 multicast. */
std::uint64_t bskBytesPerIteration(const tfhe::TfheParams &params);

/** VPU cycle costs of the non-blind-rotation tasks, per ciphertext. */
struct VpuTaskCycles
{
    std::uint64_t modSwitch = 0;
    std::uint64_t sampleExtract = 0;
    std::uint64_t keySwitch = 0;
};

VpuTaskCycles vpuTaskCycles(const tfhe::TfheParams &params,
                            const ArchConfig &config);

/** VPU cycles for `macs` ciphertext-scalar MACs (P-ALU linear ops):
 *  each MAC touches an (n+1)-word LWE ciphertext. */
std::uint64_t vpuPAluCycles(const tfhe::TfheParams &params,
                            const ArchConfig &config, std::uint64_t macs);

/**
 * Closed-form steady-state estimate for one full bootstrap batch:
 * per-bootstrap latency in cycles (n rounds plus pipeline fill) and
 * ideal chip throughput in bootstraps per second, before memory
 * bandwidth effects (the event-driven simulator refines this).
 */
struct BootstrapEstimate
{
    std::uint64_t latencyCycles = 0;
    double latencyMs = 0;
    double xpuThroughputBs = 0; //!< compute-side ceiling
    double vpuThroughputBs = 0; //!< key-switch-side ceiling
    double throughputBs = 0;    //!< min of the two
};

BootstrapEstimate estimateBootstrap(const tfhe::TfheParams &params,
                                    const ArchConfig &config);

} // namespace morphling::arch

#endif // MORPHLING_ARCH_TIMING_H
