#include "vpu.h"

#include "common/logging.h"
#include "sim/trace.h"
#include "telemetry/sim_bridge.h"

namespace morphling::arch {

VpuModel::VpuModel(sim::EventQueue &eq, const ArchConfig &config,
                   const tfhe::TfheParams &params)
    : eq_(eq), config_(config), params_(params),
      taskCycles_(vpuTaskCycles(params, config)),
      groupBusyUntil_(config.vpuLaneGroups, 0)
{
}

std::uint64_t
VpuModel::cyclesFor(compiler::Opcode op, unsigned count,
                    std::uint64_t operand) const
{
    using compiler::Opcode;
    switch (op) {
      case Opcode::VpuModSwitch:
        return taskCycles_.modSwitch * count;
      case Opcode::VpuSampleExtract:
        return taskCycles_.sampleExtract * count;
      case Opcode::VpuKeySwitch:
        return taskCycles_.keySwitch * count;
      case Opcode::VpuPAlu:
        return vpuPAluCycles(params_, config_, operand);
      default:
        panic("not a VPU opcode: ", compiler::opcodeName(op));
    }
}

sim::Tick
VpuModel::submit(unsigned lane_group, compiler::Opcode op, unsigned count,
                 std::uint64_t operand, sim::EventQueue::Callback on_done)
{
    panic_if(lane_group >= groupBusyUntil_.size(),
             "lane group out of range");
    // One lane-group has 1/groups of the lanes: scale the full-width
    // cost up accordingly.
    const std::uint64_t cycles =
        cyclesFor(op, count, operand) * config_.vpuLaneGroups;

    // Mod switch and sample extraction are tiny next to key switching;
    // the lane-group datapath interleaves them into whatever long task
    // is streaming instead of serializing behind it (their cycles still
    // count as occupancy).
    const bool fine_grained = op == compiler::Opcode::VpuModSwitch ||
                              op == compiler::Opcode::VpuSampleExtract;
    sim::Tick done;
    if (fine_grained) {
        done = eq_.now() + cycles;
        groupBusyUntil_[lane_group] =
            std::max(groupBusyUntil_[lane_group], done);
    } else {
        const sim::Tick start =
            std::max(eq_.now(), groupBusyUntil_[lane_group]);
        done = start + cycles;
        groupBusyUntil_[lane_group] = done;
    }
    busyCycles_ += cycles;
    MORPHLING_SIM_INTERVAL("vpu.lane" + std::to_string(lane_group),
                           compiler::opcodeName(op), done - cycles,
                           done, 0);

    stats_.scalar("busy_cycles", "lane-group busy cycles (sum)") +=
        static_cast<double>(cycles);
    stats_.scalar("busy_" + compiler::opcodeName(op)) +=
        static_cast<double>(cycles);
    ++stats_.scalar("tasks", "instructions executed");

    DTRACE(eq_, "vpu", compiler::opcodeName(op), " x", count,
           " on lane-group ", lane_group, ": ", cycles,
           " cycles, done @", done);
    if (on_done)
        eq_.schedule(done, std::move(on_done));
    return done;
}

std::uint64_t
VpuModel::busyCyclesFor(compiler::Opcode op) const
{
    const std::string name = "busy_" + compiler::opcodeName(op);
    if (!stats_.has(name))
        return 0;
    return static_cast<std::uint64_t>(stats_.lookup(name).value());
}

sim::Tick
VpuModel::drainTick() const
{
    sim::Tick max_tick = 0;
    for (auto t : groupBusyUntil_)
        max_tick = std::max(max_tick, t);
    return max_tick;
}

} // namespace morphling::arch
