/**
 * @file
 * Functional model of the Private-A1 double-pointer rotator
 * (Section V-C).
 *
 * Instead of physically shifting the accumulator polynomial (variable
 * latency, pipeline stalls), the hardware keeps ACC in place and walks
 * two read pointers: ptrA follows the original layout, ptrB follows the
 * layout rotated by X^a~. Coefficients are packed eight to a vector in
 * fixed bank locations, so a rotation that is not a multiple of the
 * vector width needs the reorder unit to stitch each output vector from
 * two adjacent stored vectors; coefficients that wrap past X^N come
 * back negated (X^N = -1).
 *
 * The functional model reproduces mulByXPower exactly (tested) while
 * exposing the address-generation behaviour (split accesses, sign
 * masks) that makes the hardware single-cycle-per-vector.
 */

#ifndef MORPHLING_ARCH_ROTATOR_H
#define MORPHLING_ARCH_ROTATOR_H

#include <cstdint>

#include "tfhe/polynomial.h"

namespace morphling::arch {

/** Address-generation result for one output vector of the rotated
 *  stream. */
struct RotatorAccess
{
    unsigned firstVector;  //!< stored vector holding the first source
    unsigned secondVector; //!< neighbour vector (== firstVector when
                           //!< aligned)
    unsigned offset;       //!< element offset into firstVector
    bool split;            //!< true when the reorder unit must merge
                           //!< two stored vectors
};

/** The double-pointer rotator for one ring degree / vector width. */
class Rotator
{
  public:
    Rotator(unsigned poly_degree, unsigned lanes);

    unsigned polyDegree() const { return polyDegree_; }
    unsigned lanes() const { return lanes_; }
    unsigned numVectors() const { return polyDegree_ / lanes_; }

    /**
     * Produce X^power * poly (power in [0, 2N)) by double-pointer
     * reads, without moving the stored polynomial. Bit-identical to
     * Polynomial::mulByXPower.
     */
    tfhe::TorusPolynomial rotate(const tfhe::TorusPolynomial &poly,
                                 unsigned power) const;

    /** Address generation for output vector `vector_idx` of a rotation
     *  by `power`. */
    RotatorAccess accessFor(unsigned vector_idx, unsigned power) const;

    /** True when every output vector of this rotation needs the
     *  reorder unit (unaligned rotation). */
    bool needsReorder(unsigned power) const;

  private:
    unsigned polyDegree_;
    unsigned lanes_;
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_ROTATOR_H
