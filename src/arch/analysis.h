/**
 * @file
 * Closed-form transform-count analysis of the reuse types (Section III,
 * Figures 2 and 3).
 *
 * Per external product and per ciphertext, the number of domain
 * transforms is:
 *
 *   No-Reuse:            2 (k+1)^2 l_b   (F and F^-1 per product)
 *   Input-Reuse:         (k+1) l_b + (k+1)^2 l_b
 *   Input+Output-Reuse:  (k+1) l_b + (k+1)
 *
 * At set C (N, n, k, l_b) = (512, 487, 3, 3) the no-reuse bootstrap
 * needs 2 * 16 * 3 * 487 = 46,752 transforms — the paper's headline —
 * and the reductions of Figure 3 (25% at (1,1) for input reuse, up to
 * 83.3% at (3,3) for input+output reuse) follow from the same
 * formulas.
 */

#ifndef MORPHLING_ARCH_ANALYSIS_H
#define MORPHLING_ARCH_ANALYSIS_H

#include <cstdint>

#include "arch/config.h"
#include "tfhe/params.h"

namespace morphling::arch {

/** Domain transforms per external product per ciphertext. */
std::uint64_t transformsPerExternalProduct(unsigned glwe_dimension,
                                           unsigned bsk_levels,
                                           ReuseMode mode);

/** Domain transforms for one full bootstrap (n external products). */
std::uint64_t transformsPerBootstrap(const tfhe::TfheParams &params,
                                     ReuseMode mode);

/** Fractional reduction of `mode` relative to No-Reuse, in [0, 1). */
double transformReduction(unsigned glwe_dimension, unsigned bsk_levels,
                          ReuseMode mode);

/**
 * How many times each operand is reusable inside one external product
 * (Section IV-B's reuse-opportunity analysis).
 */
struct ReuseOpportunity
{
    std::uint64_t accInputReuse;  //!< each decomposed polynomial: k+1
    std::uint64_t bskReuse;       //!< within one ciphertext: 1 (none)
    std::uint64_t accOutputReuse; //!< partial-sum reuse: (k+1) l_b
};

ReuseOpportunity reuseOpportunity(const tfhe::TfheParams &params);

} // namespace morphling::arch

#endif // MORPHLING_ARCH_ANALYSIS_H
