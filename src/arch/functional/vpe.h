/**
 * @file
 * Functional model of one Vector Processing Element (Section V-A2).
 *
 * A VPE performs element-wise multiply-accumulate on transform-domain
 * vectors: the streamed ACC input meets the streamed BSK column and the
 * partial sum stays resident in POLY-ACC-REG ("the ACC output
 * stationary dataflow"). Two register instances let the finished dot
 * product queue for the IFFT while the next accumulation starts — and
 * the row-neighbour adder supports the flexible column mapping.
 */

#ifndef MORPHLING_ARCH_FUNCTIONAL_VPE_H
#define MORPHLING_ARCH_FUNCTIONAL_VPE_H

#include <cstdint>

#include "tfhe/fft.h"

namespace morphling::arch::functional {

/** One VPE: a pair of POLY-ACC registers plus a complex MAC. */
class Vpe
{
  public:
    explicit Vpe(unsigned ring_degree);

    unsigned ringDegree() const { return ringDegree_; }

    /** Begin a new dot product in the active register. */
    void clearAccumulator();

    /** One streamed multiply-accumulate:
     *  POLY-ACC += acc_input (*) bsk_column (element-wise). */
    void multiplyAccumulate(const tfhe::FourierPolynomial &acc_input,
                            const tfhe::FourierPolynomial &bsk_column);

    /** Row-neighbour partial-sum addition (the adder on the right side
     *  of the VPE, used for flexible mapping). */
    void addPartialFrom(const Vpe &neighbour);

    /** The active accumulation register. */
    const tfhe::FourierPolynomial &accumulator() const;

    /**
     * Retire the finished dot product: returns the register now queued
     * for the IFFT and switches accumulation to the other instance
     * (which is cleared).
     */
    const tfhe::FourierPolynomial &retireForIfft();

    /** MAC operations performed (element-wise complex mults). */
    std::uint64_t macOps() const { return macOps_; }

  private:
    unsigned ringDegree_;
    tfhe::FourierPolynomial regs_[2];
    unsigned active_ = 0;
    std::uint64_t macOps_ = 0;
};

} // namespace morphling::arch::functional

#endif // MORPHLING_ARCH_FUNCTIONAL_VPE_H
