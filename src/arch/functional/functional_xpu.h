/**
 * @file
 * A functional (data-carrying) model of one XPU (Figure 5): the
 * double-pointer rotator, the decomposition units, the merge-split
 * FFTs, the VPE array with ACC-output-stationary dataflow, and the
 * per-row IFFTs — computing REAL blind rotations that decrypt
 * identically to the reference library path.
 *
 * This is the RTL-equivalent the performance model abstracts: each
 * component processes actual ciphertext data through the paper's
 * dataflow, and the pass/MAC counters ground the cycle model's resource
 * arithmetic (tests cross-check both).
 */

#ifndef MORPHLING_ARCH_FUNCTIONAL_FUNCTIONAL_XPU_H
#define MORPHLING_ARCH_FUNCTIONAL_FUNCTIONAL_XPU_H

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/functional/ms_fft.h"
#include "arch/functional/vpe.h"
#include "arch/rotator.h"
#include "common/rng.h"
#include "tfhe/ggsw.h"
#include "tfhe/keyset.h"
#include "tfhe/params.h"

namespace morphling::arch::functional {

/** Datapath statistics accumulated over an XPU's lifetime. */
struct XpuDatapathStats
{
    std::uint64_t fftPasses = 0;  //!< forward merge-split passes
    std::uint64_t ifftPasses = 0; //!< inverse merge-split passes
    std::uint64_t vpeMacOps = 0;  //!< element-wise complex MACs
    std::uint64_t rotations = 0;  //!< double-pointer rotations served
    std::uint64_t iterations = 0; //!< blind-rotation iterations
};

/** The functional XPU. */
class FunctionalXpu
{
  public:
    /**
     * @param params TFHE parameter set
     * @param rows   VPE rows (concurrent ciphertexts; default 4)
     * @param cols   VPE columns (>= k+1 output components; default 4)
     */
    FunctionalXpu(const tfhe::TfheParams &params, unsigned rows = 4,
                  unsigned cols = 4);

    /**
     * Load a coefficient-domain bootstrapping key into Private-A2,
     * transforming every GGSW polynomial through the merge-split FFT
     * (the "pre-computed transform-domain data of BSK").
     */
    void loadBootstrapKey(
        const std::vector<tfhe::GgswCiphertext> &bsk);

    /** True once a BSK is resident. */
    bool bskLoaded() const { return !bsk_.empty(); }

    /**
     * Engine entry point (exec::FunctionalBackend's XpuEngine::
     * kDatapath): blind-rotate one ciphertext (one VPE row) — the full
     * n-iteration accumulation ACC_i = BSK_i [.] (X^{a~_i} ACC_{i-1} -
     * ACC_{i-1}) + ACC_{i-1}, starting from X^{-b~} * (0,..,0,TP).
     *
     * @param test_poly the test polynomial TP
     * @param switched  mod-switched ciphertext (masks then body)
     */
    tfhe::GlweCiphertext
    runBlindRotate(const tfhe::TorusPolynomial &test_poly,
                   const std::vector<std::uint32_t> &switched);

    /**
     * Engine entry point: blind-rotate up to `rows` ciphertexts
     * concurrently, reusing each streamed BSK_i across all rows (the
     * input-reuse dimension of the array).
     */
    std::vector<tfhe::GlweCiphertext>
    runBlindRotateBatch(const tfhe::TorusPolynomial &test_poly,
                        const std::vector<std::vector<std::uint32_t>>
                            &switched_batch);

    /** Lifetime datapath statistics (MACs summed over the VPEs). */
    XpuDatapathStats stats() const;

  private:
    /** One external-product iteration for one row's accumulator. */
    void externalProductStep(tfhe::GlweCiphertext &acc,
                             unsigned iteration, unsigned a_tilde,
                             unsigned row);

    const tfhe::TfheParams &params_;
    unsigned rows_, cols_;

    Rotator rotator_;
    MergeSplitFft msFft_;
    std::vector<std::vector<Vpe>> vpes_; //!< [row][col]

    // Private-A2 contents: bsk_[i][r][c] spectra (merge-split
    // convention; NOT interchangeable with tfhe::FourierGgsw).
    std::vector<std::vector<std::vector<tfhe::FourierPolynomial>>>
        bsk_;

    XpuDatapathStats stats_;
};

/**
 * Generate a coefficient-domain BSK (the functional XPU transforms it
 * itself): one GGSW encryption of every LWE key bit.
 */
std::vector<tfhe::GgswCiphertext>
generateRawBsk(const tfhe::LweKey &lwe_key,
               const tfhe::GlweKey &glwe_key, Rng &rng);

} // namespace morphling::arch::functional

#endif // MORPHLING_ARCH_FUNCTIONAL_FUNCTIONAL_XPU_H
