/**
 * @file
 * Functional model of the Merge-Split fully-pipelined FFT
 * (Section V-A3).
 *
 * The hardware trick: polynomial coefficients are real, so two
 * polynomials can share one complex FFT — merge them as real and
 * imaginary parts, transform once, and split the spectrum using the
 * conjugate symmetry of real-input transforms (the Coef buffer holds
 * the half-spectrum needed by the split adders/shifters). One FFT unit
 * therefore transforms two polynomials per pass, doubling throughput
 * "with only minimal hardware overhead".
 *
 * Math: with zeta = e^{i*pi/N}, the negacyclic spectrum of a real
 * polynomial a is a^_k = sum_j a_j zeta^{(2k+1)j}; only k = 0..N/2-1
 * are independent (a^_{N-1-k} = conj(a^_k)). Merging two polynomials
 * as z_j = (a_j + i*b_j) * zeta^j and taking C = FFT_N(z) gives
 *
 *   a^_k = (C[(N-k) mod N] + conj(C[(k+1) mod N])) / 2
 *   b^_k = (C[(N-k) mod N] - conj(C[(k+1) mod N])) / (2i)
 *
 * and the inverse pass reassembles C from two accumulated spectra and
 * untwists. This model is bit-faithful (verified against the
 * schoolbook negacyclic product) and counts its passes so the timing
 * model's merge-split factor of two is grounded in a working datapath.
 *
 * Note: this unit's spectrum ordering (odd evaluations k = 0..N/2-1)
 * differs from tfhe::NegacyclicFft's folded ordering; spectra from the
 * two engines must not be mixed point-wise. The functional XPU uses
 * this engine exclusively, including for its BSK precomputation.
 */

#ifndef MORPHLING_ARCH_FUNCTIONAL_MS_FFT_H
#define MORPHLING_ARCH_FUNCTIONAL_MS_FFT_H

#include <cstdint>
#include <vector>

#include "tfhe/fft.h"
#include "tfhe/polynomial.h"

namespace morphling::arch::functional {

/** The merge-split FFT unit. */
class MergeSplitFft
{
  public:
    explicit MergeSplitFft(unsigned ring_degree);

    unsigned ringDegree() const { return n_; }

    /** Transform two integer polynomials in ONE forward pass. */
    void forwardPair(const tfhe::IntPolynomial &a,
                     const tfhe::IntPolynomial &b,
                     tfhe::FourierPolynomial &a_out,
                     tfhe::FourierPolynomial &b_out) const;

    /** Transform two torus polynomials (BSK precompute path). */
    void forwardPair(const tfhe::TorusPolynomial &a,
                     const tfhe::TorusPolynomial &b,
                     tfhe::FourierPolynomial &a_out,
                     tfhe::FourierPolynomial &b_out) const;

    /** Inverse-transform two accumulated spectra in ONE pass, rounding
     *  onto the discretized torus. */
    void inversePair(const tfhe::FourierPolynomial &a_in,
                     const tfhe::FourierPolynomial &b_in,
                     tfhe::TorusPolynomial &a_out,
                     tfhe::TorusPolynomial &b_out) const;

    /** FFT-unit passes performed so far (each pass carried two
     *  polynomials). */
    std::uint64_t passes() const { return passes_; }

  private:
    void forwardReals(const double *a, const double *b,
                      tfhe::FourierPolynomial &a_out,
                      tfhe::FourierPolynomial &b_out) const;

    unsigned n_;
    tfhe::ComplexFft fft_; //!< full N-point complex core
    std::vector<double> twistRe_, twistIm_; //!< zeta^j, j = 0..N-1
    mutable std::vector<double> scratchRe_, scratchIm_;
    mutable std::uint64_t passes_ = 0;
};

} // namespace morphling::arch::functional

#endif // MORPHLING_ARCH_FUNCTIONAL_MS_FFT_H
