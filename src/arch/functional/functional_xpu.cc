#include "functional_xpu.h"

#include "common/logging.h"

namespace morphling::arch::functional {

using tfhe::FourierPolynomial;
using tfhe::GgswCiphertext;
using tfhe::GlweCiphertext;
using tfhe::IntPolynomial;
using tfhe::TorusPolynomial;

FunctionalXpu::FunctionalXpu(const tfhe::TfheParams &params,
                             unsigned rows, unsigned cols)
    : params_(params), rows_(rows), cols_(cols),
      rotator_(params.polyDegree, 8), msFft_(params.polyDegree)
{
    fatal_if(cols_ < params.glweDimension + 1,
             "functional XPU needs at least k+1 = ",
             params.glweDimension + 1, " VPE columns, has ", cols_);
    vpes_.resize(rows_);
    for (auto &row : vpes_) {
        row.reserve(cols_);
        for (unsigned c = 0; c < cols_; ++c)
            row.emplace_back(params.polyDegree);
    }
}

void
FunctionalXpu::loadBootstrapKey(const std::vector<GgswCiphertext> &bsk)
{
    const unsigned n_poly = params_.polyDegree;
    const unsigned kp1 = params_.glweDimension + 1;
    const unsigned rows = kp1 * params_.bskLevels;

    bsk_.clear();
    bsk_.resize(bsk.size());
    for (std::size_t i = 0; i < bsk.size(); ++i) {
        panic_if(bsk[i].numRows() != rows, "GGSW shape mismatch");
        auto &dst = bsk_[i];
        dst.assign(rows, std::vector<FourierPolynomial>());
        for (unsigned r = 0; r < rows; ++r)
            dst[r].assign(kp1, FourierPolynomial(n_poly));

        // Merge-split transform: two polynomials per FFT pass, walking
        // the GGSW matrix in row-major order.
        const TorusPolynomial *pending = nullptr;
        FourierPolynomial *pending_out = nullptr;
        for (unsigned r = 0; r < rows; ++r) {
            for (unsigned c = 0; c < kp1; ++c) {
                const TorusPolynomial &poly =
                    bsk[i].row(r).component(c);
                if (pending == nullptr) {
                    pending = &poly;
                    pending_out = &dst[r][c];
                } else {
                    msFft_.forwardPair(*pending, poly, *pending_out,
                                       dst[r][c]);
                    ++stats_.fftPasses;
                    pending = nullptr;
                }
            }
        }
        if (pending != nullptr) {
            // Odd count: pair the last polynomial with zero.
            TorusPolynomial zero(n_poly);
            FourierPolynomial sink(n_poly);
            msFft_.forwardPair(*pending, zero, *pending_out, sink);
            ++stats_.fftPasses;
        }
    }
}

void
FunctionalXpu::externalProductStep(GlweCiphertext &acc,
                                   unsigned iteration, unsigned a_tilde,
                                   unsigned row)
{
    const unsigned n_poly = params_.polyDegree;
    const unsigned kp1 = params_.glweDimension + 1;
    const unsigned levels = params_.bskLevels;

    // 1. Double-pointer rotation + subtraction (ptrB - ptrA streams).
    std::vector<TorusPolynomial> diff;
    diff.reserve(kp1);
    for (unsigned c = 0; c < kp1; ++c) {
        TorusPolynomial rotated =
            rotator_.rotate(acc.component(c), a_tilde);
        rotated.subAssign(acc.component(c));
        diff.push_back(std::move(rotated));
        ++stats_.rotations;
    }

    // 2. Decomposition units: (k+1) polynomials -> (k+1)*l_b digits.
    std::vector<IntPolynomial> digits;
    std::vector<IntPolynomial> scratch;
    digits.reserve(static_cast<std::size_t>(kp1) * levels);
    for (unsigned c = 0; c < kp1; ++c) {
        tfhe::gadgetDecompose(diff[c], params_.bskBaseBits, levels,
                              scratch);
        for (auto &d : scratch)
            digits.push_back(std::move(d));
        scratch.clear();
    }

    // 3. Merge-split forward FFT: two digit polynomials per pass.
    std::vector<FourierPolynomial> digits_f(
        digits.size(), FourierPolynomial(n_poly));
    for (std::size_t d = 0; d + 1 < digits.size(); d += 2) {
        msFft_.forwardPair(digits[d], digits[d + 1], digits_f[d],
                           digits_f[d + 1]);
        ++stats_.fftPasses;
    }
    if (digits.size() % 2 == 1) {
        IntPolynomial zero(n_poly);
        FourierPolynomial sink(n_poly);
        msFft_.forwardPair(digits.back(), zero, digits_f.back(), sink);
        ++stats_.fftPasses;
    }

    // 4. VPE array, ACC-output stationary: the streamed digit spectra
    // flow along the row; each column's VPE holds one output
    // component's partial sum in POLY-ACC-REG.
    auto &row_vpes = vpes_[row];
    for (unsigned c = 0; c < kp1; ++c)
        row_vpes[c].clearAccumulator();
    const auto &bsk_i = bsk_[iteration];
    for (std::size_t r = 0; r < digits_f.size(); ++r) {
        for (unsigned c = 0; c < kp1; ++c)
            row_vpes[c].multiplyAccumulate(digits_f[r], bsk_i[r][c]);
    }
    // 5. Per-row IFFT, merge-split: two output components per pass,
    // then the CMux addition back into the in-place accumulator.
    std::vector<TorusPolynomial> results(
        kp1, TorusPolynomial(n_poly));
    for (unsigned c = 0; c + 1 < kp1; c += 2) {
        msFft_.inversePair(row_vpes[c].retireForIfft(),
                           row_vpes[c + 1].retireForIfft(), results[c],
                           results[c + 1]);
        ++stats_.ifftPasses;
    }
    if (kp1 % 2 == 1) {
        FourierPolynomial zero(n_poly);
        TorusPolynomial sink(n_poly);
        msFft_.inversePair(vpes_[row][kp1 - 1].retireForIfft(), zero,
                           results[kp1 - 1], sink);
        ++stats_.ifftPasses;
    }
    for (unsigned c = 0; c < kp1; ++c)
        acc.component(c).addAssign(results[c]);
}

GlweCiphertext
FunctionalXpu::runBlindRotate(const TorusPolynomial &test_poly,
                              const std::vector<std::uint32_t> &switched)
{
    std::vector<std::vector<std::uint32_t>> batch = {switched};
    return std::move(runBlindRotateBatch(test_poly, batch).front());
}

std::vector<GlweCiphertext>
FunctionalXpu::runBlindRotateBatch(
    const TorusPolynomial &test_poly,
    const std::vector<std::vector<std::uint32_t>> &switched_batch)
{
    panic_if(bsk_.empty(), "no bootstrapping key loaded");
    panic_if(switched_batch.empty() || switched_batch.size() > rows_,
             "batch must fill 1..rows VPE rows");
    const unsigned n = static_cast<unsigned>(bsk_.size());
    const unsigned two_n = 2 * params_.polyDegree;

    // Initialize every row's accumulator: X^{-b~} * (0,..,0,TP),
    // realized through the double-pointer rotator.
    std::vector<GlweCiphertext> accs;
    accs.reserve(switched_batch.size());
    for (const auto &switched : switched_batch) {
        panic_if(switched.size() != n + 1,
                 "mod-switched ciphertext has wrong length");
        GlweCiphertext acc = GlweCiphertext::trivial(
            params_.glweDimension, test_poly);
        const unsigned b_tilde = switched[n] % two_n;
        if (b_tilde != 0) {
            for (unsigned c = 0; c <= params_.glweDimension; ++c) {
                acc.component(c) = rotator_.rotate(
                    acc.component(c), two_n - b_tilde);
            }
            ++stats_.rotations;
        }
        accs.push_back(std::move(acc));
    }

    // n iterations; each streamed BSK_i serves every active row.
    for (unsigned i = 0; i < n; ++i) {
        bool any_active = false;
        for (std::size_t row = 0; row < accs.size(); ++row) {
            const unsigned a_tilde =
                switched_batch[row][i] % two_n;
            if (a_tilde == 0)
                continue; // X^0: CMux output equals its input
            externalProductStep(accs[row], i, a_tilde,
                                static_cast<unsigned>(row));
            any_active = true;
        }
        if (any_active)
            ++stats_.iterations;
    }
    return accs;
}

XpuDatapathStats
FunctionalXpu::stats() const
{
    XpuDatapathStats out = stats_;
    for (const auto &row : vpes_) {
        for (const auto &vpe : row)
            out.vpeMacOps += vpe.macOps();
    }
    return out;
}

std::vector<GgswCiphertext>
generateRawBsk(const tfhe::LweKey &lwe_key, const tfhe::GlweKey &glwe_key,
               Rng &rng)
{
    std::vector<GgswCiphertext> bsk;
    bsk.reserve(lwe_key.dimension());
    for (unsigned i = 0; i < lwe_key.dimension(); ++i) {
        bsk.push_back(GgswCiphertext::encrypt(
            glwe_key, lwe_key.bits()[i],
            glwe_key.params().glweNoiseStd, rng));
    }
    return bsk;
}

} // namespace morphling::arch::functional
