#include "vpe.h"

#include "common/logging.h"

namespace morphling::arch::functional {

Vpe::Vpe(unsigned ring_degree)
    : ringDegree_(ring_degree),
      regs_{tfhe::FourierPolynomial(ring_degree),
            tfhe::FourierPolynomial(ring_degree)}
{
}

void
Vpe::clearAccumulator()
{
    regs_[active_].clear();
}

void
Vpe::multiplyAccumulate(const tfhe::FourierPolynomial &acc_input,
                        const tfhe::FourierPolynomial &bsk_column)
{
    regs_[active_].mulAddAssign(acc_input, bsk_column);
    macOps_ += acc_input.size();
}

void
Vpe::addPartialFrom(const Vpe &neighbour)
{
    panic_if(neighbour.ringDegree_ != ringDegree_,
             "VPE degree mismatch");
    regs_[active_].addAssign(neighbour.regs_[neighbour.active_]);
}

const tfhe::FourierPolynomial &
Vpe::accumulator() const
{
    return regs_[active_];
}

const tfhe::FourierPolynomial &
Vpe::retireForIfft()
{
    const unsigned retired = active_;
    active_ ^= 1;
    regs_[active_].clear();
    return regs_[retired];
}

} // namespace morphling::arch::functional
