#include "ms_fft.h"

#include <cmath>

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::arch::functional {

using tfhe::FourierPolynomial;
using tfhe::IntPolynomial;
using tfhe::Torus32;
using tfhe::TorusPolynomial;

MergeSplitFft::MergeSplitFft(unsigned ring_degree)
    : n_(ring_degree), fft_(ring_degree)
{
    panic_if(!isPowerOfTwo(n_) || n_ < 4, "bad ring degree ", n_);
    twistRe_.resize(n_);
    twistIm_.resize(n_);
    for (unsigned j = 0; j < n_; ++j) {
        const double angle = M_PI * static_cast<double>(j) /
                             static_cast<double>(n_);
        twistRe_[j] = std::cos(angle);
        twistIm_[j] = std::sin(angle);
    }
    scratchRe_.resize(n_);
    scratchIm_.resize(n_);
}

void
MergeSplitFft::forwardReals(const double *a, const double *b,
                            FourierPolynomial &a_out,
                            FourierPolynomial &b_out) const
{
    panic_if(a_out.ringDegree() != n_ || b_out.ringDegree() != n_,
             "spectrum degree mismatch");
    auto &re = scratchRe_;
    auto &im = scratchIm_;
    // Merge + twist: z_j = (a_j + i b_j) * zeta^j.
    for (unsigned j = 0; j < n_; ++j) {
        re[j] = a[j] * twistRe_[j] - b[j] * twistIm_[j];
        im[j] = a[j] * twistIm_[j] + b[j] * twistRe_[j];
    }
    fft_.forward(re.data(), im.data());
    ++passes_;

    // Split: recover both spectra from C and its conjugate mirror.
    for (unsigned k = 0; k < n_ / 2; ++k) {
        const unsigned m1 = (n_ - k) % n_;
        const unsigned m2 = (k + 1) % n_;
        const double c1r = re[m1], c1i = im[m1];
        const double c2r = re[m2], c2i = -im[m2]; // conj(C[m2])
        a_out.re(k) = 0.5 * (c1r + c2r);
        a_out.im(k) = 0.5 * (c1i + c2i);
        // (C1 - conj(C2)) / (2i) = (imag part, -real part) / 2.
        b_out.re(k) = 0.5 * (c1i - c2i);
        b_out.im(k) = -0.5 * (c1r - c2r);
    }
}

void
MergeSplitFft::forwardPair(const IntPolynomial &a, const IntPolynomial &b,
                           FourierPolynomial &a_out,
                           FourierPolynomial &b_out) const
{
    panic_if(a.degree() != n_ || b.degree() != n_, "degree mismatch");
    std::vector<double> da(n_), db(n_);
    for (unsigned j = 0; j < n_; ++j) {
        da[j] = static_cast<double>(a[j]);
        db[j] = static_cast<double>(b[j]);
    }
    forwardReals(da.data(), db.data(), a_out, b_out);
}

void
MergeSplitFft::forwardPair(const TorusPolynomial &a,
                           const TorusPolynomial &b,
                           FourierPolynomial &a_out,
                           FourierPolynomial &b_out) const
{
    panic_if(a.degree() != n_ || b.degree() != n_, "degree mismatch");
    std::vector<double> da(n_), db(n_);
    for (unsigned j = 0; j < n_; ++j) {
        da[j] =
            static_cast<double>(static_cast<std::int32_t>(a[j]));
        db[j] =
            static_cast<double>(static_cast<std::int32_t>(b[j]));
    }
    forwardReals(da.data(), db.data(), a_out, b_out);
}

void
MergeSplitFft::inversePair(const FourierPolynomial &a_in,
                           const FourierPolynomial &b_in,
                           TorusPolynomial &a_out,
                           TorusPolynomial &b_out) const
{
    panic_if(a_in.ringDegree() != n_ || b_in.ringDegree() != n_,
             "spectrum degree mismatch");
    panic_if(a_out.degree() != n_ || b_out.degree() != n_,
             "degree mismatch");
    auto &re = scratchRe_;
    auto &im = scratchIm_;

    // Rebuild the merged spectrum C_m = a^_k + i b^_k at
    // k = (N - m) mod N, using conjugate symmetry for k >= N/2.
    for (unsigned m = 0; m < n_; ++m) {
        const unsigned k = (n_ - m) % n_;
        if (k < n_ / 2) {
            re[m] = a_in.re(k) - b_in.im(k);
            im[m] = a_in.im(k) + b_in.re(k);
        } else {
            const unsigned kk = n_ - 1 - k;
            // conj(a^_kk) + i conj(b^_kk)
            //   = (a.re + b.im) + i (b.re - a.im)
            re[m] = a_in.re(kk) + b_in.im(kk);
            im[m] = b_in.re(kk) - a_in.im(kk);
        }
    }
    fft_.inverse(re.data(), im.data());
    ++passes_;

    const double scale = 1.0 / static_cast<double>(n_);
    const double modulus = 4294967296.0;
    for (unsigned j = 0; j < n_; ++j) {
        // Untwist: z_j * zeta^{-j}; real part -> a, imaginary -> b.
        const double zr = re[j] * scale;
        const double zi = im[j] * scale;
        const double ar = zr * twistRe_[j] + zi * twistIm_[j];
        const double bi = zi * twistRe_[j] - zr * twistIm_[j];
        a_out[j] = static_cast<Torus32>(static_cast<std::int64_t>(
            std::llround(std::remainder(ar, modulus))));
        b_out[j] = static_cast<Torus32>(static_cast<std::int64_t>(
            std::llround(std::remainder(bi, modulus))));
    }
}

} // namespace morphling::arch::functional
