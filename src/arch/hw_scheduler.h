/**
 * @file
 * The HW scheduler (Section V-E): consumes the SW scheduler's
 * per-group instruction streams and dispatches to the XPU complex, the
 * VPU lane-groups and the DMA engines.
 *
 * The unit of scheduling is a *chunk chain*: the dependent instruction
 * sequence of one batch of ciphertexts (LD_LWE -> MS -> LD_BSK -> BR ->
 * SE -> LD_KSK -> KS -> ST_LWE). Chains of the same group execute with
 * a small in-flight window (double buffering: chunk t+1 may start its
 * head while chunk t drains its tail through the VPU — the decoupling
 * the Shared buffer provides). Barrier instructions rendezvous all
 * groups at application-stage boundaries.
 */

#ifndef MORPHLING_ARCH_HW_SCHEDULER_H
#define MORPHLING_ARCH_HW_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/config.h"
#include "arch/retire_hook.h"
#include "arch/vpu.h"
#include "arch/xpu.h"
#include "compiler/program.h"
#include "sim/dma.h"
#include "sim/event_queue.h"
#include "sim/stats.h"

namespace morphling::arch {

/** Dispatches one compiled program over the modelled resources. */
class HwScheduler
{
  public:
    HwScheduler(sim::EventQueue &eq, const compiler::Program &program,
                const ArchConfig &config, XpuComplex &xpu, VpuModel &vpu,
                sim::DmaEngine &vpu_dma, sim::DmaEngine &xpu_dma,
                std::function<void()> on_all_done = nullptr);

    /** Kick off every group's first chain. */
    void start();

    /** Install an observation hook fired once per instruction at its
     *  completion tick (barriers: at rendezvous release). Must be set
     *  before start(); never alters dispatch order or cycle counts. */
    void setRetireHook(RetireHook hook) { retireHook_ = std::move(hook); }

    bool finished() const
    {
        return chainsCompleted_ == totalChains_;
    }

    /** Per-chunk latency (first instruction issue to last completion),
     *  in cycles. */
    const sim::Histogram &chunkLatency() const { return chunkLatency_; }

    sim::StatSet &stats() { return statSet_; }
    const sim::StatSet &statSet() const { return statSet_; }

  private:
    struct Chain
    {
        /** One instruction plus its index into the flat program, so
         *  retirement can be reported against the original stream. */
        struct Slot
        {
            compiler::Instruction inst;
            std::size_t index = 0;
        };

        std::vector<Slot> instrs;
        std::size_t pc = 0;
        sim::Tick startTick = 0;
        bool isBarrier = false;
    };

    struct GroupState
    {
        std::vector<Chain> chains;
        std::size_t nextChain = 0;
        unsigned inflight = 0;
        bool waitingAtBarrier = false;
    };

    void buildChains(const compiler::Program &program);
    void pump(unsigned g);
    void step(unsigned g, Chain &chain);
    void dispatch(unsigned g, Chain &chain, const Chain::Slot &slot);
    void chainDone(unsigned g, Chain &chain);
    void releaseBarrier();

    sim::EventQueue &eq_;
    const ArchConfig &config_;
    XpuComplex &xpu_;
    VpuModel &vpu_;
    sim::DmaEngine &vpuDma_;
    sim::DmaEngine &xpuDma_;
    std::function<void()> onAllDone_;
    RetireHook retireHook_;

    std::vector<GroupState> groups_;
    /** Chunk chains a group may have in flight: 3 = the staged chunk's
     *  head may run while the previous blind-rotates and the one
     *  before drains through SE/KS (Shared-buffer decoupling). */
    unsigned inflightLimit_;
    std::size_t totalChains_ = 0;
    std::size_t chainsCompleted_ = 0;
    unsigned barrierArrivals_ = 0;
    unsigned barrierExpected_ = 0;

    sim::StatSet statSet_{"scheduler"};
    sim::Histogram &chunkLatency_;
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_HW_SCHEDULER_H
