/**
 * @file
 * Area and power model (Table IV).
 *
 * We cannot run TSMC 28nm synthesis, so per-component area/power
 * densities are calibrated constants derived from Table IV of the
 * paper: each structural component (decomposition unit, FFT/IFFT unit,
 * VPE, buffers per MiB, VPU per lane, NoC per XPU, HBM2e PHY) carries
 * the density implied by the paper's breakdown. The model therefore
 * reproduces Table IV at the default configuration and scales
 * consistently for the architecture sweeps (Figure 8), which is exactly
 * what the sweeps need it for.
 */

#ifndef MORPHLING_ARCH_AREA_POWER_H
#define MORPHLING_ARCH_AREA_POWER_H

#include <string>
#include <vector>

#include "arch/config.h"

namespace morphling::arch {

/** Area (mm^2) and power (W) of one component. */
struct AreaPower
{
    double areaMm2 = 0;
    double powerW = 0;

    AreaPower &
    operator+=(const AreaPower &other)
    {
        areaMm2 += other.areaMm2;
        powerW += other.powerW;
        return *this;
    }
    AreaPower
    scaled(double factor) const
    {
        return {areaMm2 * factor, powerW * factor};
    }
};

/** A named line of the breakdown table. */
struct AreaPowerEntry
{
    std::string component;
    AreaPower value;
};

/** The full chip breakdown. */
struct AreaPowerBreakdown
{
    std::vector<AreaPowerEntry> entries;

    AreaPower total() const;

    /** Value of a named entry; fatal() if absent. */
    const AreaPower &entry(const std::string &component) const;
};

/** Per-XPU breakdown (the upper half of Table IV). */
AreaPowerBreakdown xpuAreaPower(const ArchConfig &config);

/** Whole-chip breakdown (Table IV). */
AreaPowerBreakdown chipAreaPower(const ArchConfig &config);

} // namespace morphling::arch

#endif // MORPHLING_ARCH_AREA_POWER_H
