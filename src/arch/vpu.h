/**
 * @file
 * The programmable Vector Processing Unit (Section V-B).
 *
 * Four lane-groups of 32 lanes execute the memory-bound tasks: modulus
 * switching, sample extraction, key switching, and application-level
 * P-ALU vector work. Each lane-group is programmed individually and
 * serves one scheduling group ("each group can be programmed
 * individually based on the scheduled computations"), which is what
 * keeps the four group streams phase-aligned: their key switches run
 * concurrently on separate lane-groups instead of serializing.
 *
 * cyclesFor() reports costs at full 128-lane width (the whole-VPU view
 * used for latency estimates); a submission to one lane-group scales by
 * the group count since each group has 1/groups of the lanes.
 */

#ifndef MORPHLING_ARCH_VPU_H
#define MORPHLING_ARCH_VPU_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.h"
#include "arch/timing.h"
#include "compiler/isa.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "tfhe/params.h"

namespace morphling::arch {

/** Cycle-level VPU model: one server per lane-group. */
class VpuModel
{
  public:
    VpuModel(sim::EventQueue &eq, const ArchConfig &config,
             const tfhe::TfheParams &params);

    /**
     * Cycle cost of one VPU instruction at full VPU width
     * (all lane-groups cooperating).
     *
     * @param op      a VPU-class opcode
     * @param count   ciphertexts covered
     * @param operand op-specific (MAC count for P-ALU)
     */
    std::uint64_t cyclesFor(compiler::Opcode op, unsigned count,
                            std::uint64_t operand) const;

    /**
     * Enqueue an instruction on one lane-group; `on_done` runs at
     * completion. Work within a lane-group is serialized; different
     * lane-groups run concurrently.
     *
     * @return completion tick
     */
    sim::Tick submit(unsigned lane_group, compiler::Opcode op,
                     unsigned count, std::uint64_t operand,
                     sim::EventQueue::Callback on_done);

    /** Total lane-group busy cycles (sum over groups). */
    std::uint64_t busyCycles() const { return busyCycles_; }

    /** Busy cycles attributed to one opcode kind. */
    std::uint64_t busyCyclesFor(compiler::Opcode op) const;

    /** Max busy-until across lane-groups (VPU drain time). */
    sim::Tick drainTick() const;

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    sim::EventQueue &eq_;
    const ArchConfig &config_;
    const tfhe::TfheParams &params_;
    VpuTaskCycles taskCycles_; //!< full-width per-ciphertext costs
    std::vector<sim::Tick> groupBusyUntil_;
    std::uint64_t busyCycles_ = 0;
    sim::StatSet stats_{"vpu"};
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_VPU_H
