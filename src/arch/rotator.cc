#include "rotator.h"

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::arch {

Rotator::Rotator(unsigned poly_degree, unsigned lanes)
    : polyDegree_(poly_degree), lanes_(lanes)
{
    fatal_if(!isPowerOfTwo(poly_degree) || !isPowerOfTwo(lanes),
             "rotator sizes must be powers of two");
    fatal_if(lanes == 0 || lanes > poly_degree,
             "bad vector width ", lanes);
}

tfhe::TorusPolynomial
Rotator::rotate(const tfhe::TorusPolynomial &poly, unsigned power) const
{
    panic_if(poly.degree() != polyDegree_, "degree mismatch");
    panic_if(power >= 2 * polyDegree_, "power out of range");

    tfhe::TorusPolynomial out(polyDegree_);
    const unsigned n = polyDegree_;
    // Output coefficient j comes from source index (j - power) mod 2N;
    // a source index in [N, 2N) addresses coefficient (idx - N) with a
    // sign flip. This is exactly the second pointer's address
    // arithmetic: base pointer minus rotation, with the sign mask
    // derived from the wrap count.
    for (unsigned j = 0; j < n; ++j) {
        const unsigned src = (j + 2 * n - power) % (2 * n);
        if (src < n) {
            out[j] = poly[src];
        } else {
            out[j] = 0 - poly[src - n];
        }
    }
    return out;
}

RotatorAccess
Rotator::accessFor(unsigned vector_idx, unsigned power) const
{
    panic_if(vector_idx >= numVectors(), "vector index out of range");
    const unsigned n = polyDegree_;
    // First source coefficient feeding this output vector.
    const unsigned first_src =
        (vector_idx * lanes_ + 2 * n - power) % (2 * n) % n;

    RotatorAccess acc;
    acc.offset = first_src % lanes_;
    acc.firstVector = first_src / lanes_;
    acc.split = acc.offset != 0;
    acc.secondVector =
        acc.split ? (acc.firstVector + 1) % numVectors()
                  : acc.firstVector;
    return acc;
}

bool
Rotator::needsReorder(unsigned power) const
{
    return power % lanes_ != 0;
}

} // namespace morphling::arch
