/**
 * @file
 * Morphling architecture configuration (Figure 4, Section VI-B).
 *
 * The default configuration is the paper's: four XPUs with 4x4 VPE
 * arrays (two merge-split FFT units and four IFFT units each), one VPU
 * of four 32-lane groups, the four specialized buffers (Private-A1 4MB,
 * Private-A2 4MB, Private-B 2MB, Shared 1MB), one HBM2e stack at a
 * moderate 310 GB/s average with 2 channels prioritized for the XPU/BSK
 * path and 6 for the VPU/KSK path, all at 1.2 GHz in 28nm.
 *
 * Architecture *variants* — the reuse-type ablation of Figure 7-b and
 * the sweeps of Figure 8 — are expressed as modified copies of this
 * struct.
 */

#ifndef MORPHLING_ARCH_CONFIG_H
#define MORPHLING_ARCH_CONFIG_H

#include <string>

#include "sim/hbm.h"
#include "tfhe/params.h"

namespace morphling::arch {

/**
 * Which transform-domain reuse the XPU dataflow implements (Figure 2).
 *
 * - None:        every VPE transforms its own inputs and inverse-
 *                transforms every product (MATCHA-style).
 * - Input:       input transforms are shared along a VPE row, but each
 *                product is inverse-transformed individually
 *                (Strix-style).
 * - InputOutput: inputs shared along rows AND products accumulated in
 *                the transform domain, one inverse transform per output
 *                component (Morphling).
 */
enum class ReuseMode
{
    None,
    Input,
    InputOutput,
};

/** Short display name of a reuse mode. */
std::string reuseModeName(ReuseMode mode);

/** Full architecture configuration. */
struct ArchConfig
{
    // Compute complex
    unsigned numXpus = 4;
    unsigned vpeRows = 4;         //!< concurrent ciphertexts per XPU
    unsigned vpeCols = 4;         //!< output components in flight
    unsigned fftUnitsPerXpu = 2;  //!< forward (input) transform units
    unsigned ifftUnitsPerXpu = 4; //!< inverse (output) transform units
    bool mergeSplitFft = true;    //!< two polynomials per FFT pass
    ReuseMode reuse = ReuseMode::InputOutput;
    unsigned vectorLanes = 8; //!< transform elements per cycle per unit

    // Vector processing unit
    unsigned vpuLaneGroups = 4;
    unsigned vpuLanesPerGroup = 32;

    // Clock
    double clockGHz = 1.2;

    // On-chip buffers (KiB)
    unsigned privateA1KiB = 4096;
    unsigned privateA2KiB = 4096;
    unsigned privateBKiB = 2048;
    unsigned sharedKiB = 1024;

    // External memory
    sim::HbmConfig hbm{};         //!< 8 channels, 310 GB/s, 1.2 GHz
    unsigned xpuHbmChannels = 2;  //!< BSK streaming channels
    unsigned vpuHbmChannels = 6;  //!< KSK / data channels (prioritized)

    /**
     * BSK reuse across consecutive ciphertext streams is bounded by 4
     * (Section IV-C) and by how many in-flight ACC stream sets fit in
     * Private-A1.
     */
    unsigned maxStreamSets = 4;

    /**
     * XPUs one Private-A2 bank multicast reaches (Section V-D: "each
     * bank establishing a multicast connection to four XPUs").
     * Configurations with more XPUs need one BSK stream per multicast
     * domain, which is what saturates the BSK path beyond four XPUs
     * (Figure 8-b).
     */
    unsigned multicastDomainXpus = 4;

    /**
     * Modelled Private-A1 footprint of one in-flight stream set, as a
     * multiple of numXpus * vpeRows * accBytes: double-buffered ACC
     * plus rotation staging, LWE masks and bank-conflict padding.
     * Calibrated so the 128-bit sets need the paper's 4096 KiB for full
     * stream reuse (Figure 8-a).
     */
    unsigned a1StreamSetFactor = 4;

    /**
     * BSK slices kept resident-or-in-flight ahead of the running
     * blind-rotation iteration. 2 is the paper's Private-A2 double
     * buffer (BSK_{i+1} streams while BSK_i computes); 1 disables
     * prefetch (serial fetch-then-compute, the ablation baseline);
     * >= 3 additionally arms BSK_0 eagerly at LD_BSK dispatch and
     * pipelines deeper, at the cost of more Private-A2 capacity
     * (BufferSet::a2FitsPrefetch).
     */
    unsigned bskPrefetchDepth = 2;

    /**
     * How long the XPU complex waits to gather additional
     * blind-rotation jobs into a wave before starting short-handed
     * (cycles). Small against a wave (hundreds of thousands of
     * cycles); large enough to absorb scheduling jitter between the
     * four group streams (DMA serialization, VPU drain skew).
     */
    unsigned waveGatherCycles = 32768;

    /** Total VPU MAC lanes. */
    unsigned
    totalVpuLanes() const
    {
        return vpuLaneGroups * vpuLanesPerGroup;
    }

    /** Bootstrapping "cores": concurrently blind-rotated ciphertexts. */
    unsigned
    bootstrapCores() const
    {
        return numXpus * vpeRows;
    }

    /** Polynomials one FFT pass slot can carry. */
    unsigned
    polysPerFftPass() const
    {
        return mergeSplitFft ? 2 : 1;
    }

    /** In-flight stream sets Private-A1 sustains for this parameter
     *  set: clamp(floor(A1 / setBytes), 1, maxStreamSets). */
    unsigned streamSetsFor(const tfhe::TfheParams &params) const;

    /** Total forward + inverse transform units on the chip. */
    unsigned
    totalTransformUnits() const
    {
        return numXpus * (fftUnitsPerXpu + ifftUnitsPerXpu);
    }

    /** fatal() on inconsistent configuration. */
    void validate() const;

    /** The paper's shipping configuration. */
    static ArchConfig morphlingDefault();

    /** Copy with a different reuse mode / merge-split setting (the
     *  Figure 7-b variants; resources unchanged). */
    ArchConfig withReuse(ReuseMode mode, bool merge_split) const;
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_CONFIG_H
