#include "config.h"

#include "common/logging.h"

namespace morphling::arch {

std::string
reuseModeName(ReuseMode mode)
{
    switch (mode) {
      case ReuseMode::None:
        return "No-Reuse";
      case ReuseMode::Input:
        return "Input-Reuse";
      case ReuseMode::InputOutput:
        return "Input+Output-Reuse";
    }
    panic("unknown reuse mode");
}

unsigned
ArchConfig::streamSetsFor(const tfhe::TfheParams &params) const
{
    const std::uint64_t set_bytes = std::uint64_t{numXpus} * vpeRows *
                                    params.accBytes() *
                                    a1StreamSetFactor;
    const std::uint64_t capacity = std::uint64_t{privateA1KiB} * 1024;
    const std::uint64_t sets = capacity / set_bytes;
    if (sets == 0)
        return 1;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(sets, maxStreamSets));
}

void
ArchConfig::validate() const
{
    fatal_if(numXpus == 0 || vpeRows == 0 || vpeCols == 0,
             "XPU geometry must be nonzero");
    fatal_if(fftUnitsPerXpu == 0 || ifftUnitsPerXpu == 0,
             "need at least one transform unit of each kind");
    fatal_if(vectorLanes == 0, "vector lanes must be nonzero");
    fatal_if(totalVpuLanes() == 0, "VPU must have lanes");
    fatal_if(clockGHz <= 0, "clock must be positive");
    fatal_if(privateA1KiB == 0 || privateA2KiB == 0,
             "private buffers must be nonzero");
    fatal_if(xpuHbmChannels + vpuHbmChannels > hbm.channels,
             "channel partition exceeds HBM channels: ",
             xpuHbmChannels, " + ", vpuHbmChannels, " > ",
             hbm.channels);
    fatal_if(xpuHbmChannels == 0 || vpuHbmChannels == 0,
             "both DMA paths need channels");
    fatal_if(maxStreamSets == 0, "maxStreamSets must be >= 1");
    fatal_if(bskPrefetchDepth == 0,
             "bskPrefetchDepth must be >= 1 (1 = no prefetch)");
}

ArchConfig
ArchConfig::morphlingDefault()
{
    ArchConfig cfg;
    cfg.validate();
    return cfg;
}

ArchConfig
ArchConfig::withReuse(ReuseMode mode, bool merge_split) const
{
    ArchConfig cfg = *this;
    cfg.reuse = mode;
    cfg.mergeSplitFft = merge_split;
    cfg.validate();
    return cfg;
}

} // namespace morphling::arch
