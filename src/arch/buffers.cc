#include "buffers.h"

#include <algorithm>

#include "arch/timing.h"
#include "common/logging.h"

namespace morphling::arch {

OnChipBuffer::OnChipBuffer(std::string name, std::uint64_t capacity_bytes,
                           unsigned banks)
    : name_(std::move(name)), capacity_(capacity_bytes), banks_(banks)
{
    fatal_if(capacity_ == 0, "buffer '", name_, "' has zero capacity");
    fatal_if(banks_ == 0, "buffer '", name_, "' needs banks");
}

double
OnChipBuffer::occupancy() const
{
    return static_cast<double>(allocated_) /
           static_cast<double>(capacity_);
}

bool
OnChipBuffer::canFit(std::uint64_t bytes) const
{
    return allocated_ + bytes <= capacity_;
}

void
OnChipBuffer::allocate(std::uint64_t bytes)
{
    panic_if(!canFit(bytes), "buffer '", name_, "' overflow: ",
             allocated_, " + ", bytes, " > ", capacity_);
    allocated_ += bytes;
    peak_ = std::max(peak_, allocated_);
}

void
OnChipBuffer::release(std::uint64_t bytes)
{
    panic_if(bytes > allocated_, "buffer '", name_,
             "' releasing more than allocated");
    allocated_ -= bytes;
}

BufferSet::BufferSet(const ArchConfig &config)
    : privateA1("private_a1", std::uint64_t{config.privateA1KiB} * 1024,
                16),
      privateA2("private_a2", std::uint64_t{config.privateA2KiB} * 1024,
                4),
      privateB("private_b", std::uint64_t{config.privateBKiB} * 1024, 8),
      shared("shared", std::uint64_t{config.sharedKiB} * 1024, 4)
{
}

bool
BufferSet::a2FitsDoubleBuffer(const tfhe::TfheParams &params) const
{
    return a2FitsPrefetch(params, 2);
}

bool
BufferSet::a2FitsPrefetch(const tfhe::TfheParams &params,
                          unsigned depth) const
{
    // Twiddle factors: one set of N/2 complex values per ring degree.
    const std::uint64_t twiddle_bytes = params.polyDegree / 2 * 8;
    const std::uint64_t demand =
        std::uint64_t{std::max(1u, depth)} *
            bskBytesPerIteration(params) +
        twiddle_bytes;
    if (demand > privateA2.capacityBytes()) {
        warn("Private-A2 (", privateA2.capacityBytes() / 1024,
             " KiB) cannot hold ", depth,
             " BSK iterations of set ", params.name, " (needs ",
             demand / 1024, " KiB)");
        return false;
    }
    return true;
}

} // namespace morphling::arch
