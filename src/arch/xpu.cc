#include "xpu.h"

#include "common/bits.h"
#include "common/logging.h"
#include "sim/trace.h"
#include "telemetry/sim_bridge.h"

namespace morphling::arch {

XpuComplex::XpuComplex(sim::EventQueue &eq, const ArchConfig &config,
                       const tfhe::TfheParams &params,
                       sim::DmaEngine &bsk_dma)
    : eq_(eq), config_(config), params_(params), bskDma_(bsk_dma),
      streamSets_(config.streamSetsFor(params))
{
    stats_.scalar("stream_sets", "BSK reuse across consecutive streams")
        .set(streamSets_);
}

std::uint64_t
XpuComplex::jobRoundCycles(const Job &job) const
{
    // Ciphertexts are spread across the XPUs; a job larger than the
    // total row capacity multiplexes the arrays in extra passes.
    const unsigned capacity = config_.numXpus * config_.vpeRows;
    const unsigned per_xpu = divCeil(
        std::min(job.count, capacity), config_.numXpus);
    const unsigned passes = divCeil(job.count, capacity);
    const auto t =
        epRoundTiming(params_, config_, std::max(1u, per_xpu));
    return t.roundCycles() * passes;
}

void
XpuComplex::submitBlindRotate(unsigned group, unsigned count,
                              std::uint64_t iterations,
                              sim::EventQueue::Callback on_done)
{
    panic_if(count == 0, "empty blind rotation");
    if (group >= pending_.size())
        pending_.resize(group + 1);
    pending_[group].push_back(
        Job{count, iterations, std::move(on_done), eq_.now()});
    ++pendingJobs_;
    ++stats_.scalar("jobs", "blind-rotation jobs submitted");
    tryStartWave();
}

void
XpuComplex::tryStartWave()
{
    if (waveActive_ || pendingJobs_ == 0)
        return;

    // A wave takes the head job of each group queue so the stream sets
    // stay phase-aligned with the SW scheduler's groups. Start when
    // enough distinct groups are ready; the gather timer fires a
    // forced start so a trailing partial batch never waits forever.
    unsigned ready_groups = 0;
    for (const auto &q : pending_)
        ready_groups += q.empty() ? 0 : 1;

    if (ready_groups < streamSets_ && !gatherExpired_) {
        if (!gatherArmed_) {
            gatherArmed_ = true;
            eq_.scheduleIn(config_.waveGatherCycles, [this]() {
                gatherArmed_ = false;
                gatherExpired_ = true;
                tryStartWave();
                gatherExpired_ = false;
            });
        }
        return;
    }

    // One job per ready group first, then round-robin refill from the
    // remaining queues up to the stream-set width.
    wave_.clear();
    for (auto &q : pending_) {
        if (wave_.size() >= streamSets_)
            break;
        if (!q.empty()) {
            wave_.push_back(std::move(q.front()));
            q.pop_front();
            --pendingJobs_;
        }
    }
    bool took_one = true;
    while (wave_.size() < streamSets_ && pendingJobs_ > 0 && took_one) {
        took_one = false;
        for (auto &q : pending_) {
            if (wave_.size() >= streamSets_)
                break;
            if (!q.empty()) {
                wave_.push_back(std::move(q.front()));
                q.pop_front();
                --pendingJobs_;
                took_one = true;
            }
        }
    }
    waveActive_ = true;
    waveIter_ = 0;
    waveIterations_ = 0;
    for (const auto &job : wave_)
        waveIterations_ = std::max(waveIterations_, job.iterations);
    ++wavesStarted_;
    ++stats_.scalar("waves", "waves started");
    DTRACE(eq_, "xpu", "wave ", wavesStarted_, " starts with ",
           wave_.size(), " stream set(s), ", waveIterations_,
           " iterations");
    stats_.histogram("wave_jobs", "jobs per wave")
        .sample(static_cast<double>(wave_.size()));

    // Cold start: BSK_0. If an eager arm (depth >= 3) already put it
    // in flight — or it has landed — adopt that stream instead of
    // issuing a duplicate; compute begins when it is resident.
    bskIssuedSlices_ = 1;
    bskArrivedSlices_ = 0;
    if (coldArmIssued_) {
        if (coldArmArrived_)
            bskArrivedSlices_ = 1;
        coldArmIssued_ = false;
        coldArmArrived_ = false;
        ++stats_.scalar("cold_arms_used",
                        "waves whose BSK_0 was eagerly armed");
    } else {
        fetchBsk(0, [this]() { bskArrived(); });
    }
    if (bskArrivedSlices_ > waveIter_) {
        waitingForBsk_ = false;
        beginIteration();
    } else {
        waitingForBsk_ = true;
        stallStart_ = eq_.now();
    }
}

void
XpuComplex::armColdPrefetch()
{
    if (config_.bskPrefetchDepth < 3 || waveActive_ || coldArmIssued_)
        return;
    coldArmIssued_ = true;
    coldArmArrived_ = false;
    ++stats_.scalar("cold_arms", "eager BSK_0 streams started");
    fetchBsk(0, [this]() {
        // If a wave adopted the arm before it landed, this is that
        // wave's slice-0 arrival; otherwise hold it for the next wave.
        if (waveActive_ && !coldArmIssued_)
            bskArrived();
        else
            coldArmArrived_ = true;
    });
}

void
XpuComplex::fetchBsk(std::uint64_t slice, sim::EventQueue::Callback cb)
{
    // One BSK stream per multicast domain: the A2 multicast reaches
    // multicastDomainXpus XPUs, so wider chips fetch the same GGSW
    // once per domain.
    const std::uint64_t domains = divCeil(
        config_.numXpus, config_.multicastDomainXpus);
    const std::uint64_t bytes = bskBytesPerIteration(params_) * domains;
    if (fetcher_ != nullptr)
        fetcher_->fetch(slice, bytes, std::move(cb));
    else
        bskDma_.load(bytes, std::move(cb));
}

void
XpuComplex::pumpPrefetch()
{
    // Keep up to `bskPrefetchDepth` slices resident-or-in-flight ahead
    // of the running iteration. Depth 2 is the paper's double buffer;
    // depth 1 degenerates to a serial fetch-then-compute loop.
    const std::uint64_t depth = std::max(1u, config_.bskPrefetchDepth);
    const std::uint64_t target =
        std::min(waveIterations_, waveIter_ + depth);
    while (bskIssuedSlices_ < target) {
        ++bskIssuedSlices_;
        fetchBsk(bskIssuedSlices_ - 1, [this]() { bskArrived(); });
    }
}

void
XpuComplex::bskArrived()
{
    ++bskArrivedSlices_;
    if (waitingForBsk_ && waveActive_ &&
        bskArrivedSlices_ > waveIter_) {
        stallCycles_ += eq_.now() - stallStart_;
        MORPHLING_SIM_INTERVAL("xpu", "bsk_stall", stallStart_,
                               eq_.now(), 0);
        stats_.scalar("stall_cycles", "cycles stalled on BSK")
            .set(static_cast<double>(stallCycles_));
        waitingForBsk_ = false;
        beginIteration();
    }
}

void
XpuComplex::beginIteration()
{
    panic_if(bskArrivedSlices_ <= waveIter_,
             "iteration started without BSK");

    // Process every stream set back-to-back against the resident
    // BSK_i; stream the next slice(s) under the compute.
    std::uint64_t cycles = 0;
    for (const auto &job : wave_) {
        if (job.iterations > waveIter_)
            cycles += jobRoundCycles(job);
    }
    panic_if(cycles == 0, "iteration with no active jobs");
    busyCycles_ += cycles;
    MORPHLING_SIM_INTERVAL("xpu", "iteration", eq_.now(),
                           eq_.now() + cycles, 0);

    pumpPrefetch();
    eq_.scheduleIn(cycles, [this]() { finishIteration(); });
}

void
XpuComplex::finishIteration()
{
    ++waveIter_;
    if (waveIter_ >= waveIterations_) {
        stats_.scalar("iterations", "blind-rotation iterations run") +=
            static_cast<double>(waveIter_);
        stats_.scalar("busy_cycles", "XPU compute cycles")
            .set(static_cast<double>(busyCycles_));
        // Wave complete: release the jobs.
        std::vector<Job> done;
        done.swap(wave_);
        waveActive_ = false;
        DTRACE(eq_, "xpu", "wave complete (", done.size(), " job(s))");
        for (auto &job : done) {
            stats_.scalar("ciphertexts", "ciphertexts blind-rotated") +=
                job.count;
            if (job.onDone)
                job.onDone();
        }
        tryStartWave();
        return;
    }
    // Without a prefetch buffer the next slice is only requested once
    // the compute has finished (depth >= 2 issued it under compute).
    if (config_.bskPrefetchDepth <= 1)
        pumpPrefetch();
    if (bskArrivedSlices_ > waveIter_) {
        beginIteration();
    } else {
        waitingForBsk_ = true;
        stallStart_ = eq_.now();
        DTRACE(eq_, "xpu", "stall: BSK_", waveIter_,
               " not yet in Private-A2");
    }
}

} // namespace morphling::arch
