#include "fleet.h"

#include <memory>
#include <string>

#include "arch/buffers.h"
#include "arch/hw_scheduler.h"
#include "arch/vpu.h"
#include "arch/xpu.h"
#include "common/logging.h"
#include "sim/dma.h"
#include "sim/event_queue.h"
#include "sim/hbm.h"
#include "telemetry/telemetry.h"

namespace morphling::arch {

namespace {

/** Routes one shard's BSK fetches through the shared multicast DMA,
 *  tagged by blind-rotation iteration so phase-aligned shards
 *  coalesce onto one HBM read. */
class FleetBskFetcher : public BskFetcher
{
  public:
    FleetBskFetcher(sim::MulticastDma &dma, unsigned consumer)
        : dma_(dma), consumer_(consumer)
    {
    }

    void
    fetch(std::uint64_t iteration, std::uint64_t bytes,
          sim::EventQueue::Callback on_done) override
    {
        dma_.request(consumer_, iteration, bytes, std::move(on_done));
    }

  private:
    sim::MulticastDma &dma_;
    unsigned consumer_;
};

} // namespace

AcceleratorFleet::AcceleratorFleet(ArchConfig config,
                                   const tfhe::TfheParams &params,
                                   unsigned num_shards)
    : config_(std::move(config)), params_(params),
      numShards_(num_shards)
{
    fatal_if(numShards_ == 0, "fleet needs at least one shard");
    config_.validate();
    params_.validate();
}

FleetReport
AcceleratorFleet::run(
    const std::vector<const compiler::Program *> &programs,
    const std::vector<RetireHook> &hooks) const
{
    MORPHLING_SPAN("arch", "fleet_simulate");
    panic_if(programs.size() != numShards_, "fleet of ", numShards_,
             " shards given ", programs.size(), " programs");
    panic_if(!hooks.empty() && hooks.size() != numShards_,
             "retire hooks must be empty or one per shard");

    // The shared fabric: the shards' HBM stacks unified. Channel count
    // and aggregate bandwidth scale with the fleet; the per-channel
    // rate is unchanged, so a single private stream is no faster — the
    // win comes from broadcast striping over all BSK channels.
    sim::EventQueue eq;
    sim::HbmConfig fabric = config_.hbm;
    fabric.channels *= numShards_;
    fabric.bandwidthGBs *= static_cast<double>(numShards_);
    sim::Hbm hbm(eq, fabric);

    // Channel layout: per-shard VPU/KSK blocks first, then one
    // contiguous block of all the BSK channels so broadcasts stripe
    // across every shard's share of the fabric.
    const unsigned vpu_ch = config_.vpuHbmChannels;
    const unsigned bsk_first = vpu_ch * numShards_;
    const unsigned bsk_channels = config_.xpuHbmChannels * numShards_;
    sim::MulticastDma bsk_bus(
        eq, hbm, "fleet_bsk", bsk_first, bsk_channels, numShards_,
        std::max(2u, config_.bskPrefetchDepth));

    struct Shard
    {
        std::unique_ptr<sim::DmaEngine> vpuDma;
        std::unique_ptr<sim::DmaEngine> xpuDma;
        std::unique_ptr<BufferSet> buffers;
        std::unique_ptr<XpuComplex> xpu;
        std::unique_ptr<VpuModel> vpu;
        std::unique_ptr<FleetBskFetcher> fetcher;
        std::unique_ptr<HwScheduler> sched;
        bool done = false;
        sim::Tick finish = 0;
    };
    std::vector<Shard> shards(numShards_);

    for (unsigned s = 0; s < numShards_; ++s) {
        Shard &sh = shards[s];
        if (programs[s] == nullptr || programs[s]->size() == 0) {
            sh.done = true;
            continue;
        }
        const std::string tag = std::to_string(s);
        sh.vpuDma = std::make_unique<sim::DmaEngine>(
            eq, hbm, "vpu_dma" + tag, s * vpu_ch, vpu_ch);
        // The private BSK engine is only the XpuComplex's fallback
        // path; the fleet fetcher below owns all BSK traffic.
        sh.xpuDma = std::make_unique<sim::DmaEngine>(
            eq, hbm, "xpu_dma" + tag, bsk_first, bsk_channels);
        sh.buffers = std::make_unique<BufferSet>(config_);
        sh.buffers->a2FitsPrefetch(params_, config_.bskPrefetchDepth);
        sh.xpu = std::make_unique<XpuComplex>(eq, config_, params_,
                                              *sh.xpuDma);
        sh.fetcher = std::make_unique<FleetBskFetcher>(bsk_bus, s);
        sh.xpu->setBskFetcher(sh.fetcher.get());
        sh.vpu = std::make_unique<VpuModel>(eq, config_, params_);
        sh.sched = std::make_unique<HwScheduler>(
            eq, *programs[s], config_, *sh.xpu, *sh.vpu, *sh.vpuDma,
            *sh.xpuDma, [&eq, &sh]() {
                sh.done = true;
                sh.finish = eq.now();
            });
        if (!hooks.empty() && hooks[s])
            sh.sched->setRetireHook(hooks[s]);
    }

    for (auto &sh : shards) {
        if (sh.sched)
            sh.sched->start();
    }
    eq.runAll();
    for (unsigned s = 0; s < numShards_; ++s) {
        panic_if(!shards[s].done, "fleet shard ", s,
                 " drained without completing its program");
    }

    FleetReport fr;
    fr.shards.reserve(numShards_);
    for (unsigned s = 0; s < numShards_; ++s) {
        const Shard &sh = shards[s];
        if (!sh.sched) {
            SimReport empty;
            empty.paramSet = params_.name;
            fr.shards.push_back(std::move(empty));
            continue;
        }
        SimReportInputs in;
        in.program = programs[s];
        in.cycles = sh.finish;
        in.xpu = sh.xpu.get();
        in.vpu = sh.vpu.get();
        in.meanChunkLatencyCycles = sh.sched->chunkLatency().mean();
        in.vpuDmaBytes = sh.vpuDma->totalBytes();
        in.bskBytes = bsk_bus.deliveredBytes(s);
        in.hbmBytes = in.vpuDmaBytes + in.bskBytes;
        const double seconds = static_cast<double>(sh.finish) /
                               (config_.clockGHz * 1e9);
        in.hbmAchievedGBs =
            seconds > 0
                ? static_cast<double>(in.hbmBytes) / seconds / 1e9
                : 0.0;
        fr.shards.push_back(buildSimReport(config_, params_, in));
        fr.makespanCycles = std::max(fr.makespanCycles, sh.finish);
    }
    fr.makespanSeconds = static_cast<double>(fr.makespanCycles) /
                         (config_.clockGHz * 1e9);
    fr.bskFetchedBytes = bsk_bus.fetchedBytes();
    fr.bskDeliveredBytes = bsk_bus.deliveredBytes();
    fr.broadcastAmortization =
        fr.bskFetchedBytes > 0
            ? static_cast<double>(fr.bskDeliveredBytes) /
                  static_cast<double>(fr.bskFetchedBytes)
            : 1.0;
    fr.broadcastFetches = bsk_bus.fetches();
    fr.broadcastJoins = bsk_bus.joins();
    fr.residencyHits = bsk_bus.residencyHits();
    return fr;
}

} // namespace morphling::arch
