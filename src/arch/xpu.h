/**
 * @file
 * Cycle-level model of the external-product complex: all XPUs plus the
 * Private-A2 BSK streaming path (Sections IV-B, IV-C, V-A).
 *
 * Blind-rotation jobs (one per scheduling group, up to 16 ciphertexts
 * spread over the four XPUs' VPE rows) are gathered into *waves* of up
 * to S jobs, where S is the number of consecutive ciphertext streams
 * Private-A1 can hold (streamSetsFor). Jobs in a wave advance in
 * lockstep: each blind-rotation iteration processes every job
 * back-to-back against the same BSK_i, so one BSK fetch from HBM is
 * shared by (rows x XPUs x S) ciphertexts — up to the paper's 64-fold
 * reuse. BSK_{i+1} is prefetched into the double-buffered Private-A2
 * while iteration i computes; if the prefetch has not landed when the
 * compute finishes, the complex stalls (counted separately).
 */

#ifndef MORPHLING_ARCH_XPU_H
#define MORPHLING_ARCH_XPU_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "arch/config.h"
#include "arch/timing.h"
#include "sim/dma.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "tfhe/params.h"

namespace morphling::arch {

/** The four XPUs plus BSK streaming, as one schedulable resource. */
class XpuComplex
{
  public:
    XpuComplex(sim::EventQueue &eq, const ArchConfig &config,
               const tfhe::TfheParams &params, sim::DmaEngine &bsk_dma);

    /**
     * Submit one group's blind rotation.
     *
     * @param group      scheduling group (waves take one job per group
     *                   so stream sets stay phase-aligned)
     * @param count      ciphertexts (<= rows * XPUs for one round per
     *                   iteration; larger counts multiplex rounds)
     * @param iterations n, the LWE dimension
     * @param on_done    completion callback
     */
    void submitBlindRotate(unsigned group, unsigned count,
                           std::uint64_t iterations,
                           sim::EventQueue::Callback on_done);

    bool idle() const { return !waveActive_ && pendingJobs_ == 0; }

    std::uint64_t busyCycles() const { return busyCycles_; }
    std::uint64_t stallCycles() const { return stallCycles_; }
    std::uint64_t wavesStarted() const { return wavesStarted_; }

    /** Stream sets Private-A1 sustains for this parameter set. */
    unsigned streamSets() const { return streamSets_; }

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    struct Job
    {
        unsigned count;
        std::uint64_t iterations;
        sim::EventQueue::Callback onDone;
        sim::Tick submitted;
    };

    /** Cycles one iteration takes for one job across the XPUs. */
    std::uint64_t jobRoundCycles(const Job &job) const;

    void tryStartWave();
    void beginIteration();
    void finishIteration();
    void bskArrived();
    void issuePrefetch(std::uint64_t iteration);

    sim::EventQueue &eq_;
    const ArchConfig &config_;
    const tfhe::TfheParams &params_;
    sim::DmaEngine &bskDma_;

    std::vector<std::deque<Job>> pending_; //!< one queue per group
    std::size_t pendingJobs_ = 0;
    std::vector<Job> wave_;
    std::uint64_t waveIter_ = 0;
    std::uint64_t waveIterations_ = 0;
    bool waveActive_ = false;
    bool bskReady_ = false;
    bool waitingForBsk_ = false;
    bool gatherArmed_ = false;
    bool gatherExpired_ = false;
    sim::Tick stallStart_ = 0;

    unsigned streamSets_;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t stallCycles_ = 0;
    std::uint64_t wavesStarted_ = 0;
    sim::StatSet stats_{"xpu"};
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_XPU_H
