/**
 * @file
 * Cycle-level model of the external-product complex: all XPUs plus the
 * Private-A2 BSK streaming path (Sections IV-B, IV-C, V-A).
 *
 * Blind-rotation jobs (one per scheduling group, up to 16 ciphertexts
 * spread over the four XPUs' VPE rows) are gathered into *waves* of up
 * to S jobs, where S is the number of consecutive ciphertext streams
 * Private-A1 can hold (streamSetsFor). Jobs in a wave advance in
 * lockstep: each blind-rotation iteration processes every job
 * back-to-back against the same BSK_i, so one BSK fetch from HBM is
 * shared by (rows x XPUs x S) ciphertexts — up to the paper's 64-fold
 * reuse. BSK_{i+1} is prefetched into the double-buffered Private-A2
 * while iteration i computes; if the prefetch has not landed when the
 * compute finishes, the complex stalls (counted separately).
 */

#ifndef MORPHLING_ARCH_XPU_H
#define MORPHLING_ARCH_XPU_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "arch/config.h"
#include "arch/timing.h"
#include "sim/dma.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "tfhe/params.h"

namespace morphling::arch {

/**
 * Source of BSK slices for the XPU complex.
 *
 * The default path streams from the chip's private BSK DMA engine;
 * the fleet model substitutes a fetcher that routes requests through
 * a shared multicast fabric so one HBM read feeds every shard
 * phase-aligned on the same blind-rotation iteration.
 */
class BskFetcher
{
  public:
    virtual ~BskFetcher() = default;

    /**
     * Deliver the BSK slice for blind-rotation iteration `iteration`
     * (`bytes` bytes); `on_done` fires when it is resident.
     */
    virtual void fetch(std::uint64_t iteration, std::uint64_t bytes,
                       sim::EventQueue::Callback on_done) = 0;
};

/** The four XPUs plus BSK streaming, as one schedulable resource. */
class XpuComplex
{
  public:
    XpuComplex(sim::EventQueue &eq, const ArchConfig &config,
               const tfhe::TfheParams &params, sim::DmaEngine &bsk_dma);

    /**
     * Route BSK fetches through `fetcher` instead of the private DMA
     * engine. The caller keeps ownership; pass nullptr to restore the
     * private path.
     */
    void setBskFetcher(BskFetcher *fetcher) { fetcher_ = fetcher; }

    /**
     * Eager cold-start arm: begin streaming BSK_0 before the wave has
     * gathered, so the first iteration starts warm. Only active when
     * `bskPrefetchDepth >= 3` (the default double buffer keeps the
     * paper's cold-start behavior); the HW scheduler calls this when
     * it dispatches an LD_BSK marker.
     */
    void armColdPrefetch();

    /**
     * Submit one group's blind rotation.
     *
     * @param group      scheduling group (waves take one job per group
     *                   so stream sets stay phase-aligned)
     * @param count      ciphertexts (<= rows * XPUs for one round per
     *                   iteration; larger counts multiplex rounds)
     * @param iterations n, the LWE dimension
     * @param on_done    completion callback
     */
    void submitBlindRotate(unsigned group, unsigned count,
                           std::uint64_t iterations,
                           sim::EventQueue::Callback on_done);

    bool idle() const { return !waveActive_ && pendingJobs_ == 0; }

    std::uint64_t busyCycles() const { return busyCycles_; }
    std::uint64_t stallCycles() const { return stallCycles_; }
    std::uint64_t wavesStarted() const { return wavesStarted_; }

    /** Stream sets Private-A1 sustains for this parameter set. */
    unsigned streamSets() const { return streamSets_; }

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    struct Job
    {
        unsigned count;
        std::uint64_t iterations;
        sim::EventQueue::Callback onDone;
        sim::Tick submitted;
    };

    /** Cycles one iteration takes for one job across the XPUs. */
    std::uint64_t jobRoundCycles(const Job &job) const;

    void tryStartWave();
    void beginIteration();
    void finishIteration();
    void bskArrived();
    void pumpPrefetch();
    void fetchBsk(std::uint64_t slice, sim::EventQueue::Callback cb);

    sim::EventQueue &eq_;
    const ArchConfig &config_;
    const tfhe::TfheParams &params_;
    sim::DmaEngine &bskDma_;
    BskFetcher *fetcher_ = nullptr;

    std::vector<std::deque<Job>> pending_; //!< one queue per group
    std::size_t pendingJobs_ = 0;
    std::vector<Job> wave_;
    std::uint64_t waveIter_ = 0;
    std::uint64_t waveIterations_ = 0;
    //! BSK slices issued / landed for the current wave. The next
    //! iteration may begin once arrivals exceed waveIter_.
    std::uint64_t bskIssuedSlices_ = 0;
    std::uint64_t bskArrivedSlices_ = 0;
    bool waveActive_ = false;
    bool waitingForBsk_ = false;
    bool gatherArmed_ = false;
    bool gatherExpired_ = false;
    bool coldArmIssued_ = false;
    bool coldArmArrived_ = false;
    sim::Tick stallStart_ = 0;

    unsigned streamSets_;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t stallCycles_ = 0;
    std::uint64_t wavesStarted_ = 0;
    sim::StatSet stats_{"xpu"};
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_XPU_H
