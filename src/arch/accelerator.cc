#include "accelerator.h"

#include "arch/area_power.h"
#include "arch/buffers.h"
#include "arch/hw_scheduler.h"
#include "arch/vpu.h"
#include "arch/xpu.h"
#include "common/logging.h"
#include "compiler/sw_scheduler.h"
#include "sim/dma.h"
#include "sim/event_queue.h"
#include "sim/hbm.h"
#include "sim/noc.h"
#include "telemetry/telemetry.h"

namespace morphling::arch {

Accelerator::Accelerator(ArchConfig config,
                         const tfhe::TfheParams &params)
    : config_(std::move(config)), params_(params)
{
    config_.validate();
    params_.validate();
}

SimReport
Accelerator::run(const compiler::Program &program) const
{
    return run(program, RetireHook{});
}

SimReport
buildSimReport(const ArchConfig &config,
               const tfhe::TfheParams &params,
               const SimReportInputs &in)
{
    panic_if(in.program == nullptr || in.xpu == nullptr ||
                 in.vpu == nullptr,
             "buildSimReport needs program, xpu and vpu observations");
    const compiler::Program &program = *in.program;
    const XpuComplex &xpu = *in.xpu;
    const VpuModel &vpu = *in.vpu;

    SimReport r;
    r.cycles = in.cycles;
    r.seconds = static_cast<double>(r.cycles) /
                (config.clockGHz * 1e9);
    r.bootstraps = program.totalBlindRotations();
    r.throughputBs =
        r.seconds > 0 ? static_cast<double>(r.bootstraps) / r.seconds
                      : 0;
    r.paramSet = params.name;
    r.streamSets = xpu.streamSets();

    const auto est = estimateBootstrap(params, config);
    r.pipelineLatencyMs = est.latencyMs;
    r.meanChunkLatencyMs = in.meanChunkLatencyCycles /
                           (config.clockGHz * 1e6);

    r.xpuBusyCycles = xpu.busyCycles();
    r.xpuStallCycles = xpu.stallCycles();
    r.xpuBusyFrac = static_cast<double>(r.xpuBusyCycles) / r.cycles;
    r.xpuStallFrac = static_cast<double>(r.xpuStallCycles) / r.cycles;

    using compiler::Opcode;
    r.vpuKsCycles = vpu.busyCyclesFor(Opcode::VpuKeySwitch);
    r.vpuMsCycles = vpu.busyCyclesFor(Opcode::VpuModSwitch);
    r.vpuSeCycles = vpu.busyCyclesFor(Opcode::VpuSampleExtract);
    r.vpuPaluCycles = vpu.busyCyclesFor(Opcode::VpuPAlu);
    r.vpuBusyFrac = static_cast<double>(vpu.busyCycles()) /
                    (static_cast<double>(r.cycles) *
                     config.vpuLaneGroups);

    r.chipPowerW = chipAreaPower(config).total().powerW;
    if (r.bootstraps > 0) {
        r.energyPerBsUj = r.chipPowerW * r.seconds /
                          static_cast<double>(r.bootstraps) * 1e6;
    }

    r.hbmBytes = in.hbmBytes;
    r.hbmAchievedGBs = in.hbmAchievedGBs;
    r.bskBytes = in.bskBytes;
    r.vpuDmaBytes = in.vpuDmaBytes;

    // NoC accounting (Section V-D): the fixed-topology links sized so
    // the default chip provides the paper's 4.8 TB/s, loaded with the
    // traffic each dataflow edge carried during this run. The widest
    // ports serve the Private-A1 crossbar — the rotator feeds two
    // polynomial streams per row plus the IFFT writeback — and the
    // remaining structures split the rest: per XPU,
    // 512 + 128 + 128 + 232 = 1000 B/cycle, i.e. 4.8 TB/s at 4 XPUs
    // and 1.2 GHz.
    {
        sim::EventQueue noc_eq;
        sim::Noc noc(noc_eq);
        auto &a1_xpu =
            noc.addLink("a1_to_xpu_xbar", config.numXpus * 512);
        auto &a2_xpu =
            noc.addLink("a2_to_xpu_multicast", config.numXpus * 128);
        auto &xpu_shared =
            noc.addLink("xpu_to_shared_xbar", config.numXpus * 128);
        auto &vpu_side =
            noc.addLink("shared_b_to_vpu_xbar", config.numXpus * 232);
        r.nocAggregateTBs = noc.aggregateBandwidthTBs(config.clockGHz);

        const std::uint64_t kp1 = params.glweDimension + 1;
        const std::uint64_t acc_poly_bytes =
            kp1 * params.polyDegree * 4;
        const std::uint64_t iterations =
            r.bootstraps * params.lweDimension;
        // ptrA + ptrB reads plus the writeback of every iteration.
        a1_xpu.transfer(iterations * acc_poly_bytes * 3);
        // BSK multicast: exactly the XPU DMA volume.
        a2_xpu.transfer(r.bskBytes);
        // Blind-rotation results out, extracted samples onward.
        xpu_shared.transfer(r.bootstraps * acc_poly_bytes);
        vpu_side.transfer(
            r.vpuDmaBytes +
            r.bootstraps * (params.extractedLweDimension() + 1) * 4);

        // Normalize occupancy over the measured makespan.
        for (const auto *link : {&a1_xpu, &a2_xpu, &xpu_shared,
                                 &vpu_side}) {
            const double busy_cycles =
                static_cast<double>(link->totalBytes()) /
                link->widthBytesPerCycle();
            r.nocUtilization[link->name()] =
                busy_cycles / static_cast<double>(r.cycles);
        }
    }

    // Closed-form per-ciphertext latency decomposition (Figure 7-a):
    // cycles spent in each pipeline stage for one bootstrap.
    const auto round = epRoundTiming(params, config, config.vpeRows);
    const auto vpu_cost = vpuTaskCycles(params, config);
    r.latencyBreakdown["XPU (blind rotation)"] = static_cast<double>(
        params.lweDimension * round.roundCycles());
    r.latencyBreakdown["VPU (mod switch)"] =
        static_cast<double>(vpu_cost.modSwitch);
    r.latencyBreakdown["VPU (sample extract)"] =
        static_cast<double>(vpu_cost.sampleExtract);
    r.latencyBreakdown["VPU (key switch)"] =
        static_cast<double>(vpu_cost.keySwitch);
    return r;
}

SimReport
Accelerator::run(const compiler::Program &program,
                 const RetireHook &on_retire) const
{
    MORPHLING_SPAN("arch", "simulate");
    sim::EventQueue eq;
    sim::Hbm hbm(eq, config_.hbm);

    // Static channel partition (Section IV-C): the first
    // vpuHbmChannels serve the VPU/KSK path with priority, the next
    // xpuHbmChannels stream BSK.
    sim::DmaEngine vpu_dma(eq, hbm, "vpu_dma", 0,
                           config_.vpuHbmChannels);
    sim::DmaEngine xpu_dma(eq, hbm, "xpu_dma", config_.vpuHbmChannels,
                           config_.xpuHbmChannels);

    BufferSet buffers(config_);
    buffers.a2FitsPrefetch(params_, config_.bskPrefetchDepth);

    XpuComplex xpu(eq, config_, params_, xpu_dma);
    VpuModel vpu(eq, config_, params_);

    bool done = false;
    HwScheduler scheduler(eq, program, config_, xpu, vpu, vpu_dma,
                          xpu_dma, [&done]() { done = true; });
    if (on_retire)
        scheduler.setRetireHook(on_retire);
    scheduler.start();
    eq.runAll();
    panic_if(!done, "simulation drained without completing the program");

    SimReportInputs in;
    in.program = &program;
    in.cycles = eq.now();
    in.xpu = &xpu;
    in.vpu = &vpu;
    in.meanChunkLatencyCycles = scheduler.chunkLatency().mean();
    in.hbmBytes = hbm.totalBytes();
    in.hbmAchievedGBs = hbm.achievedBandwidthGBs();
    in.bskBytes = xpu_dma.totalBytes();
    in.vpuDmaBytes = vpu_dma.totalBytes();
    return buildSimReport(config_, params_, in);
}

SimReport
Accelerator::runBootstrapBatch(std::uint64_t count) const
{
    // Batch geometry follows the architecture: one group fills every
    // VPE row (16 for the default 4x4 arrangement), and one group per
    // stream set keeps the BSK-sharing waves full. KSK reuse spans the
    // whole superbatch (the paper's 64).
    compiler::SchedulerConfig sched;
    sched.groupSize = config_.numXpus * config_.vpeRows;
    sched.numGroups = config_.maxStreamSets;
    sched.kskReuse = sched.groupSize * sched.numGroups;
    compiler::SwScheduler sw(params_, sched);
    return run(sw.scheduleBootstrapBatch(count));
}

} // namespace morphling::arch
