#include "analysis.h"

namespace morphling::arch {

std::uint64_t
transformsPerExternalProduct(unsigned glwe_dimension, unsigned bsk_levels,
                             ReuseMode mode)
{
    const std::uint64_t kp1 = glwe_dimension + 1;
    const std::uint64_t lb = bsk_levels;
    switch (mode) {
      case ReuseMode::None:
        return 2 * kp1 * kp1 * lb;
      case ReuseMode::Input:
        return kp1 * lb + kp1 * kp1 * lb;
      case ReuseMode::InputOutput:
        return kp1 * lb + kp1;
    }
    return 0;
}

std::uint64_t
transformsPerBootstrap(const tfhe::TfheParams &params, ReuseMode mode)
{
    return params.lweDimension *
           transformsPerExternalProduct(params.glweDimension,
                                        params.bskLevels, mode);
}

double
transformReduction(unsigned glwe_dimension, unsigned bsk_levels,
                   ReuseMode mode)
{
    const auto base = transformsPerExternalProduct(
        glwe_dimension, bsk_levels, ReuseMode::None);
    const auto with =
        transformsPerExternalProduct(glwe_dimension, bsk_levels, mode);
    return 1.0 - static_cast<double>(with) / static_cast<double>(base);
}

ReuseOpportunity
reuseOpportunity(const tfhe::TfheParams &params)
{
    ReuseOpportunity r;
    r.accInputReuse = params.glweDimension + 1;
    r.bskReuse = 1;
    r.accOutputReuse =
        std::uint64_t{params.glweDimension + 1} * params.bskLevels;
    return r;
}

} // namespace morphling::arch
