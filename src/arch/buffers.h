/**
 * @file
 * The four specialized on-chip buffers (Section V-C): capacity
 * accounting and occupancy tracking.
 *
 * - Private-A1: ACC ciphertexts + LWE masks; hosts the double-pointer
 *   rotator. Its capacity bounds how many consecutive ciphertext
 *   streams can share one BSK fetch.
 * - Private-A2: transform-domain BSK + twiddle factors; a double buffer
 *   that prefetches BSK_{i+1} while BSK_i streams to the VPE arrays.
 * - Shared: XPU<->VPU decoupling buffer for blind-rotation results.
 * - Private-B: VPU-side data (LWE ciphertexts, KSK slices, operands).
 */

#ifndef MORPHLING_ARCH_BUFFERS_H
#define MORPHLING_ARCH_BUFFERS_H

#include <cstdint>
#include <string>

#include "arch/config.h"
#include "sim/stats.h"
#include "tfhe/params.h"

namespace morphling::arch {

/** One multibank SRAM buffer with allocation bookkeeping. */
class OnChipBuffer
{
  public:
    OnChipBuffer(std::string name, std::uint64_t capacity_bytes,
                 unsigned banks);

    const std::string &name() const { return name_; }
    std::uint64_t capacityBytes() const { return capacity_; }
    unsigned banks() const { return banks_; }

    std::uint64_t allocatedBytes() const { return allocated_; }
    std::uint64_t freeBytes() const { return capacity_ - allocated_; }
    double occupancy() const;

    bool canFit(std::uint64_t bytes) const;

    /** Reserve bytes; panics on overflow (models must size checks
     *  before allocating). */
    void allocate(std::uint64_t bytes);
    void release(std::uint64_t bytes);

    /** Peak occupancy seen so far. */
    std::uint64_t peakBytes() const { return peak_; }

  private:
    std::string name_;
    std::uint64_t capacity_;
    unsigned banks_;
    std::uint64_t allocated_ = 0;
    std::uint64_t peak_ = 0;
};

/** The chip's buffer complement, built from an ArchConfig. */
struct BufferSet
{
    OnChipBuffer privateA1;
    OnChipBuffer privateA2;
    OnChipBuffer privateB;
    OnChipBuffer shared;

    explicit BufferSet(const ArchConfig &config);

    /**
     * Private-A2 demand for double-buffered BSK streaming: two
     * iterations' worth of transform-domain GGSW plus the twiddle
     * tables. Returns true (and warns otherwise) when the configured
     * A2 fits it.
     */
    bool a2FitsDoubleBuffer(const tfhe::TfheParams &params) const;

    /**
     * Generalization of a2FitsDoubleBuffer to an arbitrary prefetch
     * depth: `depth` iterations' worth of transform-domain GGSW
     * (resident + in flight) plus the twiddle tables.
     */
    bool a2FitsPrefetch(const tfhe::TfheParams &params,
                        unsigned depth) const;
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_BUFFERS_H
