#include "area_power.h"

#include "common/logging.h"

namespace morphling::arch {

namespace {

// 28nm densities implied by Table IV at the default configuration.
constexpr AreaPower kDecompUnit{0.0025, 0.0010};   // x4 = 0.01 mm^2
constexpr AreaPower kFftUnit{0.61, 0.455};         // x2 = 1.22 / 0.91
constexpr AreaPower kCoefBuffer{0.03, 0.015};      // x2 = 0.06 / 0.03
constexpr AreaPower kTwiddleBuffer{0.75, 0.37};
constexpr AreaPower kVpe{0.294375, 0.195625};      // x16 = 4.71 / 3.13
constexpr AreaPower kIfftUnit{0.6125, 0.455};      // x4 = 2.45 / 1.82
constexpr AreaPower kXpuControl{0.03, 0.0};        // rotator ports etc.
constexpr AreaPower kVpuPerLane{0.22 / 128, 0.13 / 128};
constexpr AreaPower kNocPerXpu{0.21 / 4, 0.17 / 4};
constexpr AreaPower kHbmPhy{14.90, 15.90};

// Buffer densities per MiB (paper values at the default sizes).
constexpr AreaPower kA1PerMiB{8.31 / 4, 4.27 / 4};
constexpr AreaPower kA2PerMiB{8.10 / 4, 3.99 / 4};
constexpr AreaPower kBPerMiB{4.05 / 2, 2.42 / 2};
constexpr AreaPower kSharedPerMiB{2.02, 0.99};

} // namespace

AreaPower
AreaPowerBreakdown::total() const
{
    AreaPower sum;
    for (const auto &e : entries)
        sum += e.value;
    return sum;
}

const AreaPower &
AreaPowerBreakdown::entry(const std::string &component) const
{
    for (const auto &e : entries) {
        if (e.component == component)
            return e.value;
    }
    fatal("no area/power entry '", component, "'");
}

AreaPowerBreakdown
xpuAreaPower(const ArchConfig &config)
{
    AreaPowerBreakdown b;
    const unsigned vpes = config.vpeRows * config.vpeCols;
    // One decomposition unit per VPE row (Figure 5 shows four).
    b.entries.push_back(
        {"decomposition units", kDecompUnit.scaled(config.vpeRows)});
    b.entries.push_back(
        {"FFT units", kFftUnit.scaled(config.fftUnitsPerXpu)});
    b.entries.push_back(
        {"coef buffers", kCoefBuffer.scaled(config.fftUnitsPerXpu)});
    b.entries.push_back({"twiddle buffer", kTwiddleBuffer});
    b.entries.push_back({"VPE array", kVpe.scaled(vpes)});
    b.entries.push_back(
        {"IFFT units", kIfftUnit.scaled(config.ifftUnitsPerXpu)});
    b.entries.push_back({"control/rotator ports", kXpuControl});
    return b;
}

AreaPowerBreakdown
chipAreaPower(const ArchConfig &config)
{
    AreaPowerBreakdown b;
    const AreaPower xpu = xpuAreaPower(config).total();
    b.entries.push_back({"XPUs", xpu.scaled(config.numXpus)});
    b.entries.push_back(
        {"VPU", kVpuPerLane.scaled(config.totalVpuLanes())});
    b.entries.push_back({"NoC", kNocPerXpu.scaled(config.numXpus)});
    b.entries.push_back(
        {"Private-A1", kA1PerMiB.scaled(config.privateA1KiB / 1024.0)});
    b.entries.push_back(
        {"Private-A2", kA2PerMiB.scaled(config.privateA2KiB / 1024.0)});
    b.entries.push_back(
        {"Private-B", kBPerMiB.scaled(config.privateBKiB / 1024.0)});
    b.entries.push_back(
        {"Shared", kSharedPerMiB.scaled(config.sharedKiB / 1024.0)});
    b.entries.push_back({"HBM2e PHY", kHbmPhy});
    return b;
}

} // namespace morphling::arch
