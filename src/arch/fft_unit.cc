#include "fft_unit.h"

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::arch {

PipelinedFftUnit::PipelinedFftUnit(unsigned ring_degree, unsigned lanes)
    : ringDegree_(ring_degree), lanes_(lanes)
{
    fatal_if(!isPowerOfTwo(ring_degree) || !isPowerOfTwo(lanes),
             "FFT unit sizes must be powers of two");
    fatal_if(lanes == 0 || lanes > ring_degree / 2,
             "bad lane count ", lanes);
}

unsigned
PipelinedFftUnit::stages() const
{
    return log2Floor(ringDegree_ / 2);
}

sim::Tick
PipelinedFftUnit::issueInterval() const
{
    return (ringDegree_ / 2) / lanes_;
}

sim::Tick
PipelinedFftUnit::fillLatency() const
{
    // One cycle per butterfly stage plus the total depth of the
    // delay-commutator memories. An MDC pipeline reordering N/2
    // points for lanes-wide consumption needs (N/2 - lanes)/lanes
    // groups of buffering across its shuffling stages.
    return stages() + (ringDegree_ / 2 - lanes_) / lanes_;
}

PipelinedFftUnit::PassTiming
PipelinedFftUnit::issuePass(sim::Tick ready)
{
    PassTiming t;
    t.issueStart = std::max(ready, inputBusyUntil_);
    t.issueEnd = t.issueStart + issueInterval();
    t.firstOutput = t.issueStart + fillLatency();
    t.lastOutput = t.firstOutput + issueInterval();
    inputBusyUntil_ = t.issueEnd;
    ++passes_;
    return t;
}

std::uint64_t
PipelinedFftUnit::throughputCycles(unsigned ring_degree, unsigned lanes,
                                   std::uint64_t pass_count)
{
    return pass_count *
           (static_cast<std::uint64_t>(ring_degree / 2) / lanes);
}

} // namespace morphling::arch
