#include "hw_scheduler.h"

#include "common/logging.h"
#include "sim/trace.h"

namespace morphling::arch {

using compiler::Instruction;
using compiler::Opcode;

HwScheduler::HwScheduler(sim::EventQueue &eq,
                         const compiler::Program &program,
                         const ArchConfig &config, XpuComplex &xpu,
                         VpuModel &vpu, sim::DmaEngine &vpu_dma,
                         sim::DmaEngine &xpu_dma,
                         std::function<void()> on_all_done)
    : eq_(eq), config_(config), xpu_(xpu), vpu_(vpu), vpuDma_(vpu_dma),
      xpuDma_(xpu_dma), onAllDone_(std::move(on_all_done)),
      inflightLimit_(3),
      chunkLatency_(statSet_.histogram(
          "chunk_latency_cycles",
          "per-chunk latency, first issue to last completion"))
{
    buildChains(program);
}

void
HwScheduler::buildChains(const compiler::Program &program)
{
    // Find the number of groups actually used.
    unsigned max_group = 0;
    for (const auto &inst : program.instructions())
        max_group = std::max<unsigned>(max_group, inst.group);
    groups_.resize(max_group + 1);

    // A new chain starts at each data-staging head instruction or at a
    // barrier (which forms its own chain).
    auto starts_chain = [](Opcode op) {
        return op == Opcode::DmaLoadLwe || op == Opcode::DmaLoadData;
    };

    const auto &instrs = program.instructions();
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const auto &inst = instrs[i];
        auto &gs = groups_[inst.group];
        const bool need_new =
            gs.chains.empty() || inst.op == Opcode::Barrier ||
            gs.chains.back().isBarrier || starts_chain(inst.op);
        if (need_new) {
            Chain chain;
            chain.isBarrier = inst.op == Opcode::Barrier;
            gs.chains.push_back(std::move(chain));
        }
        gs.chains.back().instrs.push_back(Chain::Slot{inst, i});
    }

    totalChains_ = 0;
    for (const auto &gs : groups_)
        totalChains_ += gs.chains.size();
    statSet_.scalar("chains", "chunk chains in the program")
        .set(static_cast<double>(totalChains_));
}

void
HwScheduler::start()
{
    panic_if(totalChains_ == 0, "empty program");
    for (unsigned g = 0; g < groups_.size(); ++g)
        pump(g);
}

void
HwScheduler::pump(unsigned g)
{
    auto &gs = groups_[g];
    while (gs.inflight < inflightLimit_ &&
           gs.nextChain < gs.chains.size()) {
        Chain &chain = gs.chains[gs.nextChain];
        if (chain.isBarrier) {
            // A barrier only fires once the group fully drained, and
            // releases once every group arrived.
            if (gs.inflight > 0 || gs.waitingAtBarrier)
                return;
            gs.waitingAtBarrier = true;
            ++barrierArrivals_;
            if (barrierExpected_ == 0)
                barrierExpected_ = static_cast<unsigned>(groups_.size());
            if (barrierArrivals_ == barrierExpected_)
                releaseBarrier();
            return;
        }
        ++gs.inflight;
        chain.startTick = eq_.now();
        gs.nextChain++;
        step(g, chain);
    }
}

void
HwScheduler::releaseBarrier()
{
    barrierArrivals_ = 0;
    ++statSet_.scalar("barriers", "stage barriers crossed");
    DTRACE(eq_, "sched", "barrier released for all groups");
    for (unsigned g = 0; g < groups_.size(); ++g) {
        auto &gs = groups_[g];
        panic_if(!gs.waitingAtBarrier, "barrier release without arrival");
        gs.waitingAtBarrier = false;
        Chain &chain = gs.chains[gs.nextChain];
        panic_if(!chain.isBarrier, "barrier bookkeeping out of sync");
        if (retireHook_) {
            const auto &slot = chain.instrs.front();
            retireHook_(slot.index, slot.inst, eq_.now());
        }
        gs.nextChain++;
        ++chainsCompleted_; // the barrier chain itself
    }
    if (chainsCompleted_ == totalChains_) {
        if (onAllDone_)
            onAllDone_();
        return;
    }
    for (unsigned g = 0; g < groups_.size(); ++g)
        pump(g);
}

void
HwScheduler::step(unsigned g, Chain &chain)
{
    if (chain.pc == chain.instrs.size()) {
        chainDone(g, chain);
        return;
    }
    const Chain::Slot &slot = chain.instrs[chain.pc++];
    DTRACE(eq_, "sched", "g", g, " issue ", slot.inst.toString());
    dispatch(g, chain, slot);
}

void
HwScheduler::dispatch(unsigned g, Chain &chain, const Chain::Slot &slot)
{
    const Instruction &inst = slot.inst;
    // Retirement is observed in the completion continuation, at the
    // tick the resource reports the instruction done.
    auto continue_chain = [this, g, &chain, slot]() {
        if (retireHook_)
            retireHook_(slot.index, slot.inst, eq_.now());
        step(g, chain);
    };

    switch (inst.op) {
      case Opcode::DmaLoadLwe:
      case Opcode::DmaLoadKsk:
      case Opcode::DmaLoadData:
      case Opcode::DmaStoreLwe:
        vpuDma_.load(inst.operand, continue_chain);
        break;
      case Opcode::DmaLoadBsk:
        // BSK streaming is owned by the XPU complex (per-iteration
        // prefetch into Private-A2); the instruction is the arming
        // marker and completes immediately. At prefetch depth >= 3
        // the arm also starts BSK_0 streaming ahead of the wave.
        ++statSet_.scalar("bsk_arms", "DMA.LD_BSK markers seen");
        xpu_.armColdPrefetch();
        continue_chain();
        break;
      case Opcode::VpuModSwitch:
      case Opcode::VpuSampleExtract:
      case Opcode::VpuKeySwitch:
      case Opcode::VpuPAlu:
        vpu_.submit(g % config_.vpuLaneGroups, inst.op, inst.count,
                    inst.operand, continue_chain);
        break;
      case Opcode::XpuBlindRotate:
        xpu_.submitBlindRotate(g, inst.count, inst.operand,
                               continue_chain);
        break;
      case Opcode::Barrier:
        panic("barrier inside a chunk chain");
    }
}

void
HwScheduler::chainDone(unsigned g, Chain &chain)
{
    auto &gs = groups_[g];
    panic_if(gs.inflight == 0, "chain completion underflow");
    --gs.inflight;
    ++chainsCompleted_;
    chunkLatency_.sample(
        static_cast<double>(eq_.now() - chain.startTick));

    if (chainsCompleted_ == totalChains_) {
        if (onAllDone_)
            onAllDone_();
        return;
    }
    pump(g);
}

} // namespace morphling::arch
