/**
 * @file
 * Cycle-stepped model of one fully-pipelined FFT unit (Section V-A3):
 * the 8-coefficient-parallel multi-delay-commutator architecture with
 * all log2(N/2) butterfly stages and shuffling buffers instantiated,
 * so a new polynomial pass can be issued every (N/2)/lanes cycles and
 * transform-domain data streams out every cycle after the pipeline
 * fills.
 *
 * The wave/round models in timing.h charge exactly one "pass slot" of
 * (N/2)/lanes cycles per polynomial (two with merge-split); this unit
 * model verifies that abstraction: back-to-back passes sustain that
 * issue interval, and the fill latency (butterfly stages plus
 * commutator delay memories) is a constant that pipelining hides in
 * steady state.
 */

#ifndef MORPHLING_ARCH_FFT_UNIT_H
#define MORPHLING_ARCH_FFT_UNIT_H

#include <cstdint>

#include "sim/event_queue.h"

namespace morphling::arch {

/** One pipelined FFT/IFFT unit. */
class PipelinedFftUnit
{
  public:
    /**
     * @param ring_degree N (the unit transforms N/2 complex points)
     * @param lanes       elements accepted/produced per cycle
     */
    PipelinedFftUnit(unsigned ring_degree, unsigned lanes = 8);

    unsigned ringDegree() const { return ringDegree_; }
    unsigned lanes() const { return lanes_; }

    /** Number of butterfly stages: log2(N/2). */
    unsigned stages() const;

    /** Cycles one pass occupies the input port: (N/2)/lanes. */
    sim::Tick issueInterval() const;

    /**
     * Pipeline fill latency from first input to first output:
     * one cycle per butterfly stage plus the delay-commutator
     * memories, which hold (N/2 - lanes)/lanes element-groups in
     * total across the stages.
     */
    sim::Tick fillLatency() const;

    /** Timing of one polynomial pass through the unit. */
    struct PassTiming
    {
        sim::Tick issueStart;  //!< first input group accepted
        sim::Tick issueEnd;    //!< input port free again
        sim::Tick firstOutput; //!< first transform-domain group out
        sim::Tick lastOutput;  //!< pass fully drained
    };

    /**
     * Issue a pass whose input is ready at `ready`; serializes behind
     * the previous pass's input occupancy (NOT its drain — the pipe
     * overlaps them).
     */
    PassTiming issuePass(sim::Tick ready);

    /** Tick at which the input port frees. */
    sim::Tick inputFreeAt() const { return inputBusyUntil_; }

    std::uint64_t passes() const { return passes_; }

    /**
     * Steady-state cycles to stream `pass_count` back-to-back passes
     * (the quantity the round-timing model charges).
     */
    static std::uint64_t throughputCycles(unsigned ring_degree,
                                          unsigned lanes,
                                          std::uint64_t pass_count);

  private:
    unsigned ringDegree_;
    unsigned lanes_;
    sim::Tick inputBusyUntil_ = 0;
    std::uint64_t passes_ = 0;
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_FFT_UNIT_H
