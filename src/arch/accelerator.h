/**
 * @file
 * The top-level Morphling model: buffers, DMA engines, HBM, XPU
 * complex, VPU and HW scheduler wired per Figure 4, plus the simulation
 * report the benchmarks consume.
 */

#ifndef MORPHLING_ARCH_ACCELERATOR_H
#define MORPHLING_ARCH_ACCELERATOR_H

#include <cstdint>
#include <map>
#include <string>

#include "arch/config.h"
#include "arch/retire_hook.h"
#include "arch/timing.h"
#include "compiler/program.h"
#include "tfhe/params.h"

namespace morphling::arch {

/** Results of one simulated program execution. */
struct SimReport
{
    // Makespan
    std::uint64_t cycles = 0;
    double seconds = 0;

    // Bootstrapping
    std::uint64_t bootstraps = 0;
    double throughputBs = 0; //!< bootstraps per second (measured)

    /** Closed-form single-bootstrap pipeline latency (the Table V
     *  latency metric: one un-batched bootstrap through MS -> BR ->
     *  SE -> KS with BSK streaming keeping up). */
    double pipelineLatencyMs = 0;

    /** Measured mean latency of a scheduled chunk (includes stream
     *  interleaving; >= pipelineLatencyMs by design). */
    double meanChunkLatencyMs = 0;

    // Component activity
    double xpuBusyFrac = 0;  //!< XPU compute / makespan
    double xpuStallFrac = 0; //!< XPU waiting on BSK / makespan
    double vpuBusyFrac = 0;  //!< mean lane-group utilization
    std::uint64_t vpuKsCycles = 0;
    std::uint64_t vpuMsCycles = 0;
    std::uint64_t vpuSeCycles = 0;
    std::uint64_t vpuPaluCycles = 0;
    std::uint64_t xpuBusyCycles = 0;
    std::uint64_t xpuStallCycles = 0;

    // Memory system
    std::uint64_t hbmBytes = 0;
    double hbmAchievedGBs = 0;
    std::uint64_t bskBytes = 0; //!< XPU-path traffic
    std::uint64_t vpuDmaBytes = 0;

    // Network-on-chip (Section V-D): per-link occupancy over the run
    // and the chip-wide provisioned bandwidth.
    std::map<std::string, double> nocUtilization;
    double nocAggregateTBs = 0;

    // Energy (from the Table IV power model over the makespan)
    double chipPowerW = 0;
    double energyPerBsUj = 0; //!< microjoules per bootstrap

    // Configuration echo
    unsigned streamSets = 0;
    std::string paramSet;

    /** Latency breakdown per pipeline stage (cycles for one
     *  ciphertext, closed form) — the Figure 7-a decomposition. */
    std::map<std::string, double> latencyBreakdown;
};

class XpuComplex;
class VpuModel;

/**
 * Raw observations one simulated chip produced; everything
 * buildSimReport needs beyond the configuration. The fleet model
 * reuses this to assemble per-shard reports over the shared fabric.
 */
struct SimReportInputs
{
    const compiler::Program *program = nullptr;
    std::uint64_t cycles = 0; //!< makespan (or shard finish tick)
    const XpuComplex *xpu = nullptr;
    const VpuModel *vpu = nullptr;
    double meanChunkLatencyCycles = 0;
    std::uint64_t hbmBytes = 0;
    double hbmAchievedGBs = 0;
    std::uint64_t bskBytes = 0;
    std::uint64_t vpuDmaBytes = 0;
};

/** Assemble the SimReport (throughput, activity fractions, NoC and
 *  latency breakdowns) from one chip's observations. */
SimReport buildSimReport(const ArchConfig &config,
                         const tfhe::TfheParams &params,
                         const SimReportInputs &in);

/** The simulated chip. */
class Accelerator
{
  public:
    Accelerator(ArchConfig config, const tfhe::TfheParams &params);

    const ArchConfig &config() const { return config_; }
    const tfhe::TfheParams &params() const { return params_; }

    /** Simulate one compiled program to completion. */
    SimReport run(const compiler::Program &program) const;

    /** Same simulation, with an observation hook fired once per
     *  retired instruction. The hook never perturbs the model: cycle
     *  counts are identical with and without it. */
    SimReport run(const compiler::Program &program,
                  const RetireHook &on_retire) const;

    /** Convenience: schedule and run `count` independent bootstraps
     *  (the Table V measurement). */
    SimReport runBootstrapBatch(std::uint64_t count) const;

  private:
    ArchConfig config_;
    const tfhe::TfheParams &params_;
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_ACCELERATOR_H
