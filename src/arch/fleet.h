/**
 * @file
 * Fleet model: N Morphling chips on one shared memory fabric.
 *
 * The private-memory sharded model hits the BSK-streaming bound: every
 * chip independently streams the full bootstrapping key, so per-shard
 * BSK transfer time stays constant while per-shard compute shrinks,
 * capping 4-shard makespan scaling near 1.2x. The fleet model unifies
 * the shards' HBM stacks into one fabric (channels and bandwidth scale
 * with N, per-channel rate unchanged) and routes every BSK fetch
 * through a shared multicast DMA keyed by blind-rotation iteration:
 * shards phase-aligned on the same BSK slice coalesce into a single
 * striped read over all N*xpuHbmChannels channels, so the slice
 * transfer time drops by ~N while compute per shard stays put — the
 * MATCHA-style key-transfer reuse lever, applied across chips.
 */

#ifndef MORPHLING_ARCH_FLEET_H
#define MORPHLING_ARCH_FLEET_H

#include <cstdint>
#include <vector>

#include "arch/accelerator.h"
#include "arch/config.h"
#include "arch/retire_hook.h"
#include "compiler/program.h"
#include "tfhe/params.h"

namespace morphling::arch {

/** Results of one fleet simulation. */
struct FleetReport
{
    /** Per-shard reports; `cycles` is each shard's finish tick on the
     *  shared clock. */
    std::vector<SimReport> shards;

    std::uint64_t makespanCycles = 0; //!< last shard's finish tick
    double makespanSeconds = 0;

    // BSK broadcast telemetry over the shared fabric.
    std::uint64_t bskFetchedBytes = 0;   //!< actual HBM traffic
    std::uint64_t bskDeliveredBytes = 0; //!< sum over shards
    double broadcastAmortization = 1.0;  //!< delivered / fetched
    std::uint64_t broadcastFetches = 0;  //!< fresh HBM reads
    std::uint64_t broadcastJoins = 0;    //!< coalesced into in-flight
    std::uint64_t residencyHits = 0;     //!< served from residency
};

/**
 * N accelerators contending on (and broadcasting over) one shared
 * memory fabric, advanced in a single deterministic event queue.
 */
class AcceleratorFleet
{
  public:
    /**
     * @param config     per-chip configuration (the fabric scales its
     *                   HBM channels/bandwidth by num_shards)
     * @param params     TFHE parameter set
     * @param num_shards chips in the fleet
     */
    AcceleratorFleet(ArchConfig config, const tfhe::TfheParams &params,
                     unsigned num_shards);

    const ArchConfig &config() const { return config_; }
    unsigned numShards() const { return numShards_; }

    /**
     * Simulate one program per shard to completion on the shared
     * fabric. `hooks` (when non-empty) carries one retirement
     * observation hook per shard; hooks never perturb the model.
     * Shards with empty programs finish immediately.
     */
    FleetReport
    run(const std::vector<const compiler::Program *> &programs,
        const std::vector<RetireHook> &hooks = {}) const;

  private:
    ArchConfig config_;
    const tfhe::TfheParams &params_;
    unsigned numShards_;
};

} // namespace morphling::arch

#endif // MORPHLING_ARCH_FLEET_H
