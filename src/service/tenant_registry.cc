#include "tenant_registry.h"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace morphling::service {

namespace {

/** FNV-1a 64 over the serialized bytes — the same function
 *  tfhe::fingerprintEvaluationKeys streams through, applied to the
 *  cold copy we already hold (tested equal in test_tenant.cc). */
tfhe::KeyFingerprint
fingerprintBytes(const std::string &bytes)
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ull;
    }
    return hash;
}

std::size_t
clampCapacity(std::size_t max_resident)
{
    return max_resident == 0 ? 1 : max_resident;
}

} // namespace

TenantRegistry::TenantRegistry(TenantRegistryConfig config,
                               telemetry::MetricsRegistry *metrics)
    : config_{clampCapacity(config.maxResident)},
      mHits_((metrics ? *metrics : telemetry::MetricsRegistry::instance())
                 .counter("tenant.registry.hits",
                          "acquire() served from resident keys")),
      mWarmUps_(
          (metrics ? *metrics : telemetry::MetricsRegistry::instance())
              .counter("tenant.registry.warmups",
                       "acquire() that re-materialized cold keys")),
      mEvictions_(
          (metrics ? *metrics : telemetry::MetricsRegistry::instance())
              .counter("tenant.registry.evictions",
                       "materialized keys dropped (LRU or release)")),
      mWarmUpUs_(
          (metrics ? *metrics : telemetry::MetricsRegistry::instance())
              .histogram("tenant.registry.warmup_us",
                         "cost of one key re-materialization")),
      mResident_(
          (metrics ? *metrics : telemetry::MetricsRegistry::instance())
              .gauge("tenant.registry.resident",
                     "tenants with materialized keys")),
      mResidentBytes_(
          (metrics ? *metrics : telemetry::MetricsRegistry::instance())
              .gauge("tenant.registry.resident_bytes",
                     "wire bytes of materialized keys")),
      mCapacity_(
          (metrics ? *metrics : telemetry::MetricsRegistry::instance())
              .gauge("tenant.registry.capacity",
                     "configured maxResident"))
{
    mCapacity_.set(static_cast<double>(config_.maxResident));
}

tfhe::KeyFingerprint
TenantRegistry::enroll(const TenantId &tenant,
                       const tfhe::EvaluationKeys &keys)
{
    std::ostringstream oss(std::ios::binary);
    tfhe::saveEvaluationKeys(oss, keys);
    std::string bytes = std::move(oss).str();
    const auto fp = fingerprintBytes(bytes);

    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = entries_.try_emplace(tenant);
    if (!inserted) {
        if (it->second.fp == fp)
            return fp; // byte-identical re-enrollment
        evictLocked(it); // key rotation: drop the stale resident copy
    }
    it->second.fp = fp;
    it->second.coldBytes = std::move(bytes);
    return fp;
}

std::shared_ptr<const tfhe::EvaluationKeys>
TenantRegistry::acquire(const TenantId &tenant)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(tenant);
    if (it == entries_.end())
        throw std::out_of_range("TenantRegistry: unknown tenant \"" +
                                tenant + "\"");
    auto &entry = it->second;
    if (entry.keys != nullptr) {
        ++hits_;
        mHits_.inc();
        lru_.splice(lru_.begin(), lru_, entry.lruPos);
        return entry.keys;
    }

    // Warm-up: re-materialize from cold storage, measured — this is
    // the cost an undersized working set pays on every re-admission.
    const auto t0 = std::chrono::steady_clock::now();
    std::istringstream iss(entry.coldBytes, std::ios::binary);
    entry.keys = std::make_shared<const tfhe::EvaluationKeys>(
        tfhe::loadEvaluationKeys(iss));
    const auto t1 = std::chrono::steady_clock::now();
    lastWarmUpUs_ =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    ++warmUps_;
    mWarmUps_.inc();
    mWarmUpUs_.observe(lastWarmUpUs_);
    lru_.push_front(tenant);
    entry.lruPos = lru_.begin();
    residentBytes_ += entry.coldBytes.size();

    while (lru_.size() > config_.maxResident) {
        auto victim = entries_.find(lru_.back());
        evictLocked(victim);
    }
    mResident_.set(static_cast<double>(lru_.size()));
    mResidentBytes_.set(static_cast<double>(residentBytes_));
    return entry.keys;
}

void
TenantRegistry::release(const TenantId &tenant)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(tenant);
    if (it != entries_.end())
        evictLocked(it);
}

void
TenantRegistry::evictLocked(std::map<TenantId, Entry>::iterator it)
{
    auto &entry = it->second;
    if (entry.keys == nullptr)
        return;
    entry.keys.reset(); // holders keep the keys alive; we let go
    lru_.erase(entry.lruPos);
    residentBytes_ -= entry.coldBytes.size();
    ++evictions_;
    mEvictions_.inc();
    mResident_.set(static_cast<double>(lru_.size()));
    mResidentBytes_.set(static_cast<double>(residentBytes_));
}

bool
TenantRegistry::enrolled(const TenantId &tenant) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.count(tenant) != 0;
}

bool
TenantRegistry::resident(const TenantId &tenant) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(tenant);
    return it != entries_.end() && it->second.keys != nullptr;
}

std::optional<tfhe::KeyFingerprint>
TenantRegistry::fingerprint(const TenantId &tenant) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(tenant);
    if (it == entries_.end())
        return std::nullopt;
    return it->second.fp;
}

TenantRegistryStats
TenantRegistry::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    TenantRegistryStats s;
    s.enrolled = entries_.size();
    s.resident = lru_.size();
    s.hits = hits_;
    s.warmUps = warmUps_;
    s.evictions = evictions_;
    s.residentBytes = residentBytes_;
    s.lastWarmUpUs = lastWarmUpUs_;
    return s;
}

} // namespace morphling::service
