/**
 * @file
 * The multi-tenant front door: routes submissions by TenantId across
 * per-tenant BootstrapServices, with admission control, a bounded
 * key working set, and per-tenant SLO accounting.
 *
 * Why one service per tenant: a superbatch blind-rotates against one
 * BSK, so ciphertexts of different tenants can never share a batch —
 * the tenant is a hard batching boundary. Each tenant therefore gets
 * its own BootstrapService (lazily created on first use) over keys
 * handed out by the TenantRegistry, with `TenantQuota::weight`
 * dedicated worker threads — the per-tenant share of execution
 * capacity.
 *
 * Fairness: admission is a per-tenant token bucket denominated in
 * bootstraps (TenantQuota::ratePerSec / burst). A flooding tenant
 * drains its own bucket and blocks (submit) or bounces (trySubmit)
 * there, before ever reaching the shared machine — so a trickle
 * tenant's latency is bounded by its own service's queue, not by the
 * flood (tests/test_tenant.cc proves the p99 bound under an
 * adversarial neighbour).
 *
 * Key working set: at most maxLiveServices tenants keep a live
 * service at a time. Materializing one more tears down the
 * least-recently-used *idle* service first (a draining or mid-submit
 * tenant is skipped — shutdown must never race submitters), releases
 * its registry keys, and re-admission warms the keys back up from
 * cold storage. Registered LUTs are replayed on re-materialization,
 * so LutIds stay valid across evictions and re-admitted tenants
 * produce bit-identical ciphertexts.
 *
 * Observability: every tenant exports "tenant.<name>.*" counters and
 * a latency histogram through telemetry::MetricsRegistry
 * (Prometheus/JSON), and stats(tenant) folds them into a TenantStats
 * snapshot with p50/p99 estimates and SLO-breach counts.
 *
 * Thread safety: every public method may be called from any thread.
 */

#ifndef MORPHLING_SERVICE_MULTI_TENANT_SERVICE_H
#define MORPHLING_SERVICE_MULTI_TENANT_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "service/bootstrap_service.h"
#include "service/tenant_registry.h"
#include "service/tenant_stats.h"

namespace morphling::service {

/** Configuration of a MultiTenantService. */
struct MultiTenantConfig
{
    /** Template of every per-tenant service; numWorkers is replaced
     *  by the tenant's quota weight and onComplete by the tenant
     *  stats hook. */
    ServiceConfig service;

    /** Key working-set bounds (LRU capacity, warm-up accounting). */
    TenantRegistryConfig registry;

    /** Tenants with a live BootstrapService at a time; 0 mirrors
     *  registry.maxResident. */
    std::size_t maxLiveServices = 0;

    /** Metrics destination (nullptr = the process registry). */
    telemetry::MetricsRegistry *metrics = nullptr;
};

class MultiTenantService
{
  public:
    /** Throws std::invalid_argument when the service template or a
     *  capacity knob is rejected (ServiceConfig::validate()). */
    explicit MultiTenantService(MultiTenantConfig config = {});

    MultiTenantService(const MultiTenantService &) = delete;
    MultiTenantService &operator=(const MultiTenantService &) = delete;

    /** Drains every tenant service (shutdown()) if still running. */
    ~MultiTenantService();

    /**
     * Enroll a tenant: keys go to the registry's cold storage (the
     * caller's copy is not retained), the quota takes effect on the
     * next admission. Re-adding an existing tenant updates quota and
     * keys; when the key fingerprint or worker weight changes while
     * the tenant's service is live, that service is drained and torn
     * down so the next submission re-materializes under the new keys
     * and weight. Throws std::invalid_argument on a degenerate quota
     * (negative rate/SLO, zero burst with a rate, zero weight).
     */
    tfhe::KeyFingerprint addTenant(const TenantId &tenant,
                                   const tfhe::EvaluationKeys &keys,
                                   TenantQuota quota = {});

    /** Register a LUT in the tenant's namespace. Ids are per tenant
     *  and survive eviction (replayed on re-materialization). */
    LutId registerLut(const TenantId &tenant,
                      std::vector<tfhe::Torus32> lut);

    /** Submit one bootstrap, blocking first on the tenant's token
     *  bucket, then on the tenant service's backpressure. */
    std::future<tfhe::LweCiphertext>
    submit(const TenantId &tenant, tfhe::LweCiphertext ct, LutId lut,
           std::optional<ServiceClock::time_point> deadline =
               std::nullopt);

    /** Fail-fast submission: std::nullopt when the tenant's bucket is
     *  empty or its service is saturated — both counted as throttled,
     *  and only a forwarded request counts as submitted. */
    std::optional<std::future<tfhe::LweCiphertext>>
    trySubmit(const TenantId &tenant, tfhe::LweCiphertext ct,
              LutId lut,
              std::optional<ServiceClock::time_point> deadline =
                  std::nullopt);

    /** Submit a whole circuit; draws bootstrapCount() tokens at once,
     *  so big circuits pay proportional admission. A circuit larger
     *  than the bucket depth waits for a full bucket and leaves the
     *  balance negative (paid back at ratePerSec) rather than
     *  blocking forever on tokens the bucket can never hold. */
    std::future<std::vector<tfhe::LweCiphertext>>
    submitCircuit(const TenantId &tenant, circuit::Circuit circuit,
                  std::vector<tfhe::LweCiphertext> inputs);

    /** Per-tenant snapshot (throws std::out_of_range when unknown). */
    TenantStats stats(const TenantId &tenant) const;

    /** The tenant's underlying ServiceStats while its service is
     *  live; nullopt after an idle eviction. */
    std::optional<ServiceStats>
    serviceStats(const TenantId &tenant) const;

    std::vector<TenantId> tenants() const;

    TenantRegistry &registry() { return registry_; }

    /** Flush every live tenant service's partial batches. */
    void flush();

    /** Stop admission and drain every tenant service. Idempotent. */
    void shutdown();

  private:
    /** The quota is split across its readers' locks: re-adding a
     *  tenant during live traffic rewrites each knob under the lock
     *  (or atomic) its hot-path reader uses, so no reader ever sees a
     *  torn or racing TenantQuota. */
    struct Tenant
    {
        TenantId name;
        tfhe::KeyFingerprint fp = 0; //!< guarded by mu_

        /** Worker-thread share of the service; guarded by mu_ (read
         *  at materialization). */
        unsigned weight = 1;

        /** LUT tables in registration order, replayed on every
         *  materialization so ids stay stable across evictions. */
        std::vector<std::vector<tfhe::Torus32>> luts;

        std::unique_ptr<BootstrapService> service; //!< guarded by mu_
        std::uint64_t lastUsed = 0; //!< LRU tick, guarded by mu_
        std::atomic<std::uint32_t> inflight{0}; //!< submits in flight

        // Token bucket and its quota knobs, guarded by the owning
        // service's admitMu_.
        double ratePerSec = 0;
        double burst = 0;
        double tokens = 0;
        ServiceClock::time_point lastRefill{};
        bool primed = false; //!< bucket starts full on first admit

        /** SLO bound in microseconds, read lock-free by completion
         *  callbacks on worker threads. */
        std::atomic<double> sloLatencyUs{0};

        // Hot-path stats handles (lock-free; registry-owned).
        telemetry::Counter *submitted = nullptr;
        telemetry::Counter *throttled = nullptr;
        telemetry::Counter *completed = nullptr;
        telemetry::Counter *bootstraps = nullptr;
        telemetry::Counter *sloBreaches = nullptr;
        telemetry::Counter *deadlineMisses = nullptr;
        telemetry::Histogram *latencyUs = nullptr;

        void observe(const CompletionInfo &info);
    };

    /** Decrements Tenant::inflight when a forwarded call returns. */
    struct InflightGuard
    {
        Tenant *t;
        explicit InflightGuard(Tenant *tenant) : t(tenant) {}
        InflightGuard(const InflightGuard &) = delete;
        InflightGuard &operator=(const InflightGuard &) = delete;
        ~InflightGuard()
        {
            t->inflight.fetch_sub(1, std::memory_order_release);
        }
    };

    Tenant &find(const TenantId &tenant);
    const Tenant &find(const TenantId &tenant) const;

    /** Token-bucket admission of `cost` bootstraps; blocks until the
     *  bucket refills when `block`, else returns false (throttled).
     *  A cost above the bucket depth is admitted once the bucket is
     *  full and drives the balance negative — refill clamps tokens to
     *  burst, so waiting for the full cost would never terminate. */
    bool admit(Tenant &t, double cost, bool block);

    /** Ensure the tenant's service is live (reclaiming the LRU idle
     *  service when at capacity), bump its recency and inflight
     *  count. Returns with mu_ released. */
    BootstrapService &materialize(Tenant &t);

    /** Tear down least-recently-used *idle* services until below
     *  maxLiveServices. Caller holds mu_. */
    void reclaimLocked();

    /** Wait for the tenant's in-flight submitters to drain (releasing
     *  `lk` while sleeping), then shut down and destroy its service
     *  and release its registry keys. Caller holds mu_ via `lk`;
     *  returns with it re-held. No-op when no service is live. */
    void drainAndTeardownLocked(std::unique_lock<std::mutex> &lk,
                                Tenant &t);

    const MultiTenantConfig config_;
    const std::size_t maxLive_;
    telemetry::MetricsRegistry &metrics_;
    TenantRegistry registry_;

    mutable std::mutex mu_; //!< tenant map, services, LRU ticks
    std::map<TenantId, std::unique_ptr<Tenant>> tenants_;
    std::uint64_t useClock_ = 0;
    /** Written under mu_, but also read by admitters holding only
     *  admitMu_ — hence atomic. */
    std::atomic<bool> stopped_{false};

    std::mutex admitMu_; //!< token buckets
    std::condition_variable admitCv_;
};

} // namespace morphling::service

#endif // MORPHLING_SERVICE_MULTI_TENANT_SERVICE_H
